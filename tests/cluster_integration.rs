//! Whole-stack integration tests: application threads → user-level library
//! → OS segment driver → NIC firmware → fabric and back, across multiple
//! nodes.

use vnet::prelude::*;
use vnet::{Cluster, ClusterConfig};

/// Echo thread used across tests. Replies are retried under send-queue
/// backpressure (dropping one would leak the client's credit).
struct Echo {
    ep: EpId,
    served: u64,
    pending: Vec<DeliveredMsg>,
}

impl Echo {
    fn new(ep: EpId) -> Self {
        Echo { ep, served: 0, pending: Vec::new() }
    }

    fn answer(&mut self, sys: &mut Sys<'_>, m: DeliveredMsg) {
        match sys.reply(self.ep, &m, 0, m.msg.args, m.msg.payload_bytes.min(64)) {
            Ok(_) => self.served += 1,
            Err(_) => self.pending.push(m),
        }
    }
}

impl ThreadBody for Echo {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while let Some(m) = self.pending.pop() {
            let before = self.pending.len();
            self.answer(sys, m);
            if self.pending.len() > before {
                return Step::Yield; // still backpressured
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
            self.answer(sys, m);
        }
        if self.pending.is_empty() {
            Step::WaitEvent(self.ep)
        } else {
            Step::Yield
        }
    }
}

/// Client sending a fixed number of requests to one translation index.
struct Client {
    ep: EpId,
    idx: usize,
    total: u32,
    bytes: u32,
    sent: u32,
    replies: u32,
    bounces: u32,
}

impl Client {
    fn new(ep: EpId, idx: usize, total: u32, bytes: u32) -> Self {
        Client { ep, idx, total, bytes, sent: 0, replies: 0, bounces: 0 }
    }
}

impl ThreadBody for Client {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while self.sent < self.total {
            match sys.request(self.ep, self.idx, 1, [self.sent as u64, 0, 0, 0], self.bytes) {
                Ok(_) => self.sent += 1,
                Err(SendError::NoCredit) | Err(SendError::QueueFull) => break,
                Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                Err(e) => panic!("{e:?}"),
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Reply) {
            if m.undeliverable {
                self.bounces += 1;
            } else {
                self.replies += 1;
            }
        }
        if self.replies + self.bounces == self.total {
            Step::Exit
        } else {
            Step::WaitEvent(self.ep)
        }
    }
}

#[test]
fn three_party_virtual_network() {
    // Three processes on three nodes, all-pairs virtual network; each
    // rank sends to both peers and answers both peers.
    struct Both {
        ep: EpId,
        me: usize,
        total_each: u32,
        sent: [u32; 2],
        replies: u32,
        served: u64,
        pending: Vec<DeliveredMsg>,
    }
    impl Both {
        fn peer_idx(&self, k: usize) -> usize {
            let others: Vec<usize> = (0..3).filter(|&i| i != self.me).collect();
            others[k]
        }
    }
    impl ThreadBody for Both {
        fn run(&mut self, sys: &mut Sys<'_>) -> Step {
            let mut progressed = false;
            for k in 0..2usize {
                while self.sent[k] < self.total_each {
                    let idx = self.peer_idx(k);
                    match sys.request(self.ep, idx, 0, [0; 4], 0) {
                        Ok(_) => {
                            self.sent[k] += 1;
                            progressed = true;
                        }
                        Err(SendError::NoCredit) | Err(SendError::QueueFull) => break,
                        Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                        Err(e) => panic!("{e:?}"),
                    }
                }
            }
            while let Some(m) = self.pending.pop() {
                if sys.reply(self.ep, &m, 0, [0; 4], 0).is_err() {
                    self.pending.push(m);
                    break;
                }
                self.served += 1;
                progressed = true;
            }
            while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
                if sys.reply(self.ep, &m, 0, [0; 4], 0).is_err() {
                    self.pending.push(m);
                } else {
                    self.served += 1;
                }
                progressed = true;
            }
            while sys.poll(self.ep, QueueSel::Reply).is_some() {
                self.replies += 1;
                progressed = true;
            }
            if self.replies == 2 * self.total_each
                && self.served >= 2 * self.total_each as u64
            {
                return Step::Exit;
            }
            if progressed {
                Step::Yield
            } else {
                Step::WaitEvent(self.ep)
            }
        }
    }

    let mut c = Cluster::new(ClusterConfig::now(3));
    let eps: Vec<GlobalEp> = (0..3).map(|i| c.create_endpoint(HostId(i))).collect();
    c.build_virtual_network(&eps);
    let tids: Vec<Tid> = (0..3)
        .map(|i| {
            c.spawn_thread(
                HostId(i as u32),
                Box::new(Both {
                    ep: eps[i].ep,
                    me: i,
                    total_each: 25,
                    sent: [0; 2],
                    replies: 0,
                    served: 0,
                    pending: Vec::new(),
                }),
            )
        })
        .collect();
    c.run_for(SimDuration::from_secs(5));
    for (i, &t) in tids.iter().enumerate() {
        let b: &Both = c.body(HostId(i as u32), t).unwrap();
        assert_eq!(b.replies, 50, "rank {i} replies");
        assert_eq!(b.served, 50, "rank {i} served");
    }
}

#[test]
fn bulk_and_small_interleaved() {
    let mut c = Cluster::new(ClusterConfig::now(2));
    let a = c.create_endpoint(HostId(0));
    let b = c.create_endpoint(HostId(1));
    c.build_virtual_network(&[a, b]);
    c.spawn_thread(HostId(1), Box::new(Echo::new(b.ep)));
    let small = c.spawn_thread(HostId(0), Box::new(Client::new(a.ep, 1, 60, 0)));
    // A second endpoint on host 0 streams bulk to the same server.
    let a2 = c.create_endpoint(HostId(0));
    c.connect(a2, 1, b);
    let bulk = c.spawn_thread(HostId(0), Box::new(Client::new(a2.ep, 1, 40, 8192)));
    c.run_for(SimDuration::from_secs(10));
    let s: &Client = c.body(HostId(0), small).unwrap();
    let l: &Client = c.body(HostId(0), bulk).unwrap();
    assert_eq!(s.replies, 60);
    assert_eq!(l.replies, 40);
    assert_eq!(s.bounces + l.bounces, 0);
}

#[test]
fn survives_transmission_errors_end_to_end() {
    let mut cfg = ClusterConfig::now(2);
    cfg.drop_prob = 0.05;
    cfg.corrupt_prob = 0.02;
    let mut c = Cluster::new(cfg);
    let a = c.create_endpoint(HostId(0));
    let b = c.create_endpoint(HostId(1));
    c.build_virtual_network(&[a, b]);
    c.spawn_thread(HostId(1), Box::new(Echo::new(b.ep)));
    let t = c.spawn_thread(HostId(0), Box::new(Client::new(a.ep, 1, 100, 0)));
    c.run_for(SimDuration::from_secs(20));
    let cl: &Client = c.body(HostId(0), t).unwrap();
    assert_eq!(cl.replies, 100, "exactly-once delivery through a lossy fabric");
    assert_eq!(cl.bounces, 0);
    assert!(
        c.telemetry().snapshot().counter("host0.nic.retransmits") > 0,
        "losses must be recovered by retransmission"
    );
}

#[test]
fn endpoint_overcommit_on_one_host() {
    // 12 endpoints on one 8-frame host, each talking to its own peer on
    // the other host: every conversation completes despite remapping.
    let mut c = Cluster::new(ClusterConfig::now(2));
    let mut pairs = Vec::new();
    for _ in 0..12 {
        let a = c.create_endpoint(HostId(0));
        let b = c.create_endpoint(HostId(1));
        c.connect(a, 1, b);
        c.connect(b, 1, a);
        pairs.push((a, b));
    }
    let mut tids = Vec::new();
    for &(a, b) in &pairs {
        c.spawn_thread(HostId(1), Box::new(Echo::new(b.ep)));
        tids.push(c.spawn_thread(HostId(0), Box::new(Client::new(a.ep, 1, 30, 0))));
    }
    c.run_for(SimDuration::from_secs(30));
    for (i, &t) in tids.iter().enumerate() {
        let cl: &Client = c.body(HostId(0), t).unwrap();
        assert_eq!(cl.replies, 30, "conversation {i} completes");
    }
    // Both hosts overcommitted: remapping must have occurred on h0 and h1.
    let snap = c.telemetry().snapshot();
    assert!(snap.counter("host0.os.unloads") > 0, "h0 evictions");
    assert!(snap.counter("host1.os.unloads") > 0, "h1 evictions");
}

#[test]
fn pageout_endpoint_comes_back() {
    let mut c = Cluster::new(ClusterConfig::now(2));
    let a = c.create_endpoint(HostId(0));
    let b = c.create_endpoint(HostId(1));
    c.build_virtual_network(&[a, b]);
    // Page the client endpoint out to the swap area before any use.
    assert!(c.world_mut().os_mut(0).pageout(a.ep));
    c.spawn_thread(HostId(1), Box::new(Echo::new(b.ep)));
    let t = c.spawn_thread(HostId(0), Box::new(Client::new(a.ep, 1, 10, 0)));
    c.run_for(SimDuration::from_secs(5));
    let cl: &Client = c.body(HostId(0), t).unwrap();
    assert_eq!(cl.replies, 10, "swap-in (vm pageout path) must recover");
    assert!(c.telemetry().snapshot().counter("host0.os.page_ins") >= 1);
}

#[test]
fn full_now_cluster_smoke() {
    // All 100 nodes of the fat tree exchange one round with a neighbour.
    let mut c = Cluster::new(ClusterConfig::now(100));
    let eps: Vec<GlobalEp> =
        (0..100).map(|i| c.create_endpoint(HostId(i))).collect();
    // Pairwise rings: node i talks to node (i+50) % 100 (crosses spines).
    let mut tids = Vec::new();
    for i in 0..50u32 {
        let a = eps[i as usize];
        let b = eps[(i + 50) as usize];
        c.connect(a, 1, b);
        c.connect(b, 1, a);
        c.spawn_thread(HostId(i + 50), Box::new(Echo::new(b.ep)));
        tids.push((HostId(i), c.spawn_thread(HostId(i), Box::new(Client::new(a.ep, 1, 20, 0)))));
    }
    c.run_for(SimDuration::from_secs(5));
    for &(h, t) in &tids {
        let cl: &Client = c.body(h, t).unwrap();
        assert_eq!(cl.replies, 20, "pair at {h} completes");
    }
}

#[test]
fn deterministic_full_stack() {
    let run = |seed| {
        let mut c = Cluster::new(ClusterConfig::now(4).with_seed(seed));
        let eps: Vec<GlobalEp> = (0..4).map(|i| c.create_endpoint(HostId(i))).collect();
        c.build_virtual_network(&eps);
        for i in 1..4u32 {
            c.spawn_thread(HostId(i), Box::new(Echo::new(eps[i as usize].ep)));
        }
        let t = c.spawn_thread(HostId(0), Box::new(Client::new(eps[0].ep, 1, 50, 0)));
        c.run_for(SimDuration::from_millis(500));
        let cl: &Client = c.body(HostId(0), t).unwrap();
        let sent = c.telemetry().snapshot().counter("host0.nic.data_sent");
        (c.events_processed(), cl.replies, sent)
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99).0, run(100).0, "different seeds explore different schedules");
}

#[test]
fn hot_swap_link_mid_conversation() {
    // §3.2: the substrate must "support hot-swap of links and switches for
    // incremental scaling and adapt to changes in the physical topology
    // transparently". Kill the server's receive link mid-stream, restore
    // it, and require every message to complete exactly once.
    let mut c = Cluster::new(ClusterConfig::now(2));
    let a = c.create_endpoint(HostId(0));
    let b = c.create_endpoint(HostId(1));
    c.build_virtual_network(&[a, b]);
    c.spawn_thread(HostId(1), Box::new(Echo::new(b.ep)));
    let t = c.spawn_thread(HostId(0), Box::new(Client::new(a.ep, 1, 200, 0)));
    c.run_for(SimDuration::from_millis(2));
    // Crossbar link layout: link (hosts + dst) is the receive link of dst.
    let down = c.world().fabric.topology().host_down_link(HostId(1));
    c.world_mut().fabric.faults_mut().link_down(down);
    c.run_for(SimDuration::from_millis(40));
    c.world_mut().fabric.faults_mut().link_up(down);
    c.run_for(SimDuration::from_secs(10));
    let cl: &Client = c.body(HostId(0), t).unwrap();
    assert_eq!(cl.replies + cl.bounces, 200, "stream must finish after the swap");
    assert!(cl.replies >= 190, "nearly all survive: {} replies {} bounces", cl.replies, cl.bounces);
    assert!(
        c.telemetry().snapshot().counter("host0.nic.retransmits") > 0,
        "the outage must be bridged by retransmission"
    );
}

#[test]
fn name_service_rendezvous() {
    let mut c = Cluster::new(ClusterConfig::now(2));
    let server = c.create_endpoint(HostId(1));
    c.register_name("nfs/server0", server);
    let client = c.create_endpoint(HostId(0));
    assert!(c.connect_by_name(client, 0, "nfs/server0"));
    assert!(!c.connect_by_name(client, 1, "no/such/name"));
    c.spawn_thread(HostId(1), Box::new(Echo::new(server.ep)));
    let t = c.spawn_thread(HostId(0), Box::new(Client::new(client.ep, 0, 5, 0)));
    c.run_for(SimDuration::from_millis(50));
    let cl: &Client = c.body(HostId(0), t).unwrap();
    assert_eq!(cl.replies, 5, "named rendezvous carries real traffic");
}

#[test]
fn destroyed_endpoint_bounces_late_traffic() {
    let mut c = Cluster::new(ClusterConfig::now(2));
    let a = c.create_endpoint(HostId(0));
    let b = c.create_endpoint(HostId(1));
    c.build_virtual_network(&[a, b]);
    // Warm the pair with one exchange.
    c.spawn_thread(HostId(1), Box::new(Echo::new(b.ep)));
    let t = c.spawn_thread(HostId(0), Box::new(Client::new(a.ep, 1, 3, 0)));
    c.run_for(SimDuration::from_millis(50));
    assert_eq!(c.body::<Client>(HostId(0), t).unwrap().replies, 3);
    // Kill the server endpoint (process exit), then send again.
    c.destroy_endpoint(b);
    c.run_for(SimDuration::from_millis(20));
    assert!(!c.os(HostId(1)).exists(b.ep), "endpoint freed");
    let t2 = c.spawn_thread(HostId(0), Box::new(Client::new(a.ep, 1, 2, 0)));
    c.run_for(SimDuration::from_secs(2));
    let cl: &Client = c.body(HostId(0), t2).unwrap();
    assert_eq!(cl.bounces, 2, "traffic to a dead endpoint returns to sender");
    assert_eq!(cl.replies, 0);
}

#[test]
fn clean_runs_pass_the_invariant_audit() {
    // The cross-layer auditor observes every run (debug builds check at
    // each run_for boundary automatically); a healthy lossy run must come
    // out violation-free, with the ledger fully resolved.
    let mut cfg = ClusterConfig::now(2);
    cfg.drop_prob = 0.05;
    let mut c = Cluster::new(cfg);
    let a = c.create_endpoint(HostId(0));
    let b = c.create_endpoint(HostId(1));
    c.build_virtual_network(&[a, b]);
    c.spawn_thread(HostId(1), Box::new(Echo::new(b.ep)));
    let t = c.spawn_thread(HostId(0), Box::new(Client::new(a.ep, 1, 50, 0)));
    c.run_for(SimDuration::from_secs(10));
    assert_eq!(c.body::<Client>(HostId(0), t).unwrap().replies, 50);
    c.audit().expect("healthy run must satisfy every invariant");
    let counters = c.auditor().borrow().counters();
    assert_eq!(counters.posted, counters.delivered, "every post resolved by a delivery");
    assert!(counters.retransmits > 0, "the lossy fabric forced retransmissions");
}

/// Mutation check: break exactly-once on purpose (uid dedup disabled,
/// aggressive unbind churn over a lossy link → a retransmitted copy lands
/// after its unbound original already delivered) and require the auditor
/// to catch it with the named invariant and a trace dump.
#[test]
fn audit_catches_double_delivery() {
    let mut cfg = ClusterConfig::now(2);
    cfg.nic.dedup_window = 0; // the mutation: no duplicate suppression
    cfg.nic.max_retx_before_unbind = 1; // churn channels hard
    cfg.drop_prob = 0.30; // lose enough acks to force rebinds
    let mut c = Cluster::new(cfg);
    c.telemetry().set_debug_audit(false); // we *expect* violations; inspect manually
    c.telemetry().trace_enable();
    let a = c.create_endpoint(HostId(0));
    let b = c.create_endpoint(HostId(1));
    c.build_virtual_network(&[a, b]);
    c.spawn_thread(HostId(1), Box::new(Echo::new(b.ep)));
    c.spawn_thread(HostId(0), Box::new(Client::new(a.ep, 1, 40, 0)));
    c.run_for(SimDuration::from_secs(30));
    let report = c.audit().expect_err("disabling dedup must break exactly-once");
    assert!(
        report.contains("audit.exactly-once"),
        "violation must be named:\n{report}"
    );
    assert!(
        report.contains("trace (most recent last):"),
        "report must carry the trace dump:\n{report}"
    );
}

/// Mutation check: a component that acquires credits without limit (here
/// simulated by driving the auditor's hook directly, as a buggy user-level
/// library would) trips the credit-conservation invariant.
#[test]
fn audit_catches_credit_leak() {
    let mut c = Cluster::new(ClusterConfig::now(2));
    c.telemetry().set_debug_audit(false);
    let a = c.create_endpoint(HostId(0));
    let auditor = c.auditor();
    {
        let mut aud = auditor.borrow_mut();
        // 33 acquisitions against the 32-credit window, none released.
        for uid in 0..33u64 {
            aud.on_credit_acquire(c.now(), 0, a.ep.0, 0, 1000 + uid);
        }
    }
    let report = c.audit().expect_err("an overflowed credit window must be caught");
    assert!(
        report.contains("audit.credit-conservation"),
        "violation must be named:\n{report}"
    );
}

#[test]
fn process_exit_tears_everything_down() {
    let mut c = Cluster::new(ClusterConfig::now(2));
    let mut server_proc = vnet::corelib::cluster::Process::new(HostId(1));
    let sv = c.create_process_endpoint(&mut server_proc);
    c.spawn_process_thread(&mut server_proc, Box::new(Echo::new(sv.ep)));
    let cl = c.create_endpoint(HostId(0));
    c.connect(cl, 0, sv);
    let t = c.spawn_thread(HostId(0), Box::new(Client::new(cl.ep, 0, 5, 0)));
    c.run_for(SimDuration::from_millis(50));
    assert_eq!(c.body::<Client>(HostId(0), t).unwrap().replies, 5);
    // Kill the server process wholesale.
    c.exit_process(&server_proc);
    c.run_for(SimDuration::from_millis(20));
    assert!(!c.os(HostId(1)).exists(sv.ep), "endpoints freed on exit");
    assert_eq!(c.sched(HostId(1)).live_threads(), 0, "threads reaped on exit");
    // New traffic bounces.
    let t2 = c.spawn_thread(HostId(0), Box::new(Client::new(cl.ep, 0, 2, 0)));
    c.run_for(SimDuration::from_secs(2));
    assert_eq!(c.body::<Client>(HostId(0), t2).unwrap().bounces, 2);
}
