//! Mixed-fidelity smoke: a reduced-scale fat tree where a handful of
//! hosts run the complete machinery and the rest run the abstract LogP
//! model, under a full chaos campaign. The full-fidelity subset must keep
//! every cross-layer invariant (zero auditor violations, bounded
//! recovery) while abstract hosts stream background traffic through the
//! same faulty fabric.
//!
//! CI runs this under `VNET_SHARDS` ∈ {1, 4} and both epoch drivers; the
//! test deliberately leaves the shard count to the environment.

use vnet::net::{FaultScheduleSpec, GilbertElliott, LinkId, TopologySpec};
use vnet::prelude::*;

/// Echo server: replies to every request, retrying under backpressure.
struct Echo {
    ep: EpId,
    pending: Vec<DeliveredMsg>,
}

impl ThreadBody for Echo {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while let Some(m) = self.pending.pop() {
            if sys.reply(self.ep, &m, 0, m.msg.args, 0).is_err() {
                self.pending.push(m);
                return Step::Yield;
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
            if sys.reply(self.ep, &m, 0, m.msg.args, 0).is_err() {
                self.pending.push(m);
            }
        }
        if self.pending.is_empty() {
            Step::WaitEvent(self.ep)
        } else {
            Step::Yield
        }
    }
}

/// Client: `total` requests to translation 0, counting replies.
struct Client {
    ep: EpId,
    total: u32,
    sent: u32,
    replies: u32,
}

impl ThreadBody for Client {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while self.sent < self.total {
            match sys.request(self.ep, 0, 1, [self.sent as u64, 0, 0, 0], 0) {
                Ok(_) => self.sent += 1,
                Err(SendError::NoCredit) => break,
                Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                Err(e) => panic!("send failed: {e:?}"),
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Reply) {
            if !m.undeliverable {
                self.replies += 1;
            }
        }
        if self.replies == self.total {
            Step::Exit
        } else {
            Step::WaitEvent(self.ep)
        }
    }
}

fn at_us(us: u64) -> SimTime {
    SimTime::from_nanos(us * 1_000)
}

/// Chaos on the 16-host fat tree (L=4 leaves × 4 hosts, S=2 spines).
/// Link layout: host-up `[0,16)`, leaf-down `[16,32)`, leaf-up
/// `32 + l*S + s`, spine-down `40 + l*S + s`; switches: leaves `0..4`,
/// spines `4..6`. The flap hits leaf 0's spine-0 uplink — the full
/// subset's trunk — and spine switch 4 dies outright for a window.
fn chaos() -> FaultScheduleSpec {
    FaultScheduleSpec::none()
        .flap(LinkId(32), at_us(300), at_us(1_500))
        .fail_switch(4, at_us(2_000), at_us(3_000))
        .degrade(LinkId(43), at_us(1_000), at_us(4_000), 0.2, 0.05)
        .with_bursty(GilbertElliott::mild())
}

/// One full-fidelity host per leaf, so the full ring crosses the
/// flapping trunk and the failing spine rather than hiding inside one
/// leaf.
const FULL_HOSTS: [u32; 4] = [0, 4, 8, 12];
const HOSTS: u32 = 16;

#[test]
fn mixed_fidelity_chaos_smoke() {
    let abstract_hosts = (0..HOSTS).filter(|h| !FULL_HOSTS.contains(h));
    let mut c = Cluster::builder()
        .hosts(HOSTS)
        .topology(TopologySpec::FatTree { leaves: 4, hosts_per_leaf: 4, spines: 2 })
        .seed(0x51FE)
        .audit(true) // force hooks on in release builds too
        .fidelity(abstract_hosts, Fidelity::Abstract)
        .faults(chaos())
        .build();
    assert_eq!(c.fidelity_of(HostId(0)), Fidelity::Full);
    assert_eq!(c.fidelity_of(HostId(1)), Fidelity::Abstract);

    // Full subset: a cross-leaf request ring 0 → 4 → 8 → 12 → 0.
    let servers: Vec<GlobalEp> =
        FULL_HOSTS.iter().map(|&h| c.create_endpoint(HostId(h))).collect();
    let clients: Vec<GlobalEp> =
        FULL_HOSTS.iter().map(|&h| c.create_endpoint(HostId(h))).collect();
    let mut tids = Vec::new();
    for (i, &h) in FULL_HOSTS.iter().enumerate() {
        c.connect(clients[i], 0, servers[(i + 1) % FULL_HOSTS.len()]);
        c.spawn_thread(HostId(h), Box::new(Echo { ep: servers[i].ep, pending: Vec::new() }));
        let tid = c.spawn_thread(
            HostId(h),
            Box::new(Client { ep: clients[i].ep, total: 100, sent: 0, replies: 0 }),
        );
        tids.push((HostId(h), tid));
    }
    // Abstract background load: every other host streams to abstract
    // peers across the tree, sharing (and contending on) the faulty
    // trunks the full subset depends on.
    for h in (0..HOSTS).filter(|h| !FULL_HOSTS.contains(h)) {
        let peers: Vec<HostId> = (0..HOSTS)
            .filter(|&p| p != h && !FULL_HOSTS.contains(&p))
            .map(HostId)
            .collect();
        c.drive_abstract(
            HostId(h),
            AbstractTraffic {
                peers,
                payload_bytes: 1024,
                mean_gap: SimDuration::from_micros(15),
                count: 400,
            },
        );
    }

    c.run_for(SimDuration::from_millis(40));
    c.check_recovery(SimDuration::from_millis(30));

    // Zero auditor violations on the full-fidelity subset.
    if let Err(report) = c.audit() {
        panic!("full subset must stay clean under chaos:\n{report}");
    }
    for &(h, tid) in &tids {
        let cl: &Client = c.body(h, tid).expect("client body");
        assert_eq!(cl.replies, 100, "client on {h} must finish despite the campaign");
    }
    // Abstract traffic flowed — and with no retransmission behind it at
    // this fidelity, campaign drops show up as recvd < sent.
    let mut sent = 0u64;
    let mut recvd = 0u64;
    for h in (0..HOSTS).filter(|h| !FULL_HOSTS.contains(h)) {
        let s = c.abs_stats(HostId(h)).expect("abstract host");
        assert_eq!(s.sent, 400, "host {h} must drain its driven traffic");
        sent += s.sent;
        recvd += s.recvd;
    }
    assert!(recvd > 0, "abstract traffic must be delivered");
    assert!(recvd <= sent, "abstract fidelity has no retransmission");
    // Coarse counters surface in snapshots under host{N}.abs.*.
    let snap = c.telemetry().snapshot();
    assert_eq!(snap.counter("host1.abs.sent"), 400);
    assert!(snap.counter("host0.os.loads") >= 1, "full host ran the residency machine");
}

/// All-abstract world over the delay-only fabric: the cheapest
/// configuration must still run end-to-end (routes, faults, counters),
/// with nothing for the auditor to observe.
#[test]
fn delay_fabric_all_abstract_runs() {
    let mut c = Cluster::builder()
        .hosts(HOSTS)
        .topology(TopologySpec::FatTree { leaves: 4, hosts_per_leaf: 4, spines: 2 })
        .seed(0xAB50)
        .default_fidelity(Fidelity::Abstract)
        .fabric_fidelity(Fidelity::Abstract)
        .faults(chaos())
        .build();
    for h in 0..HOSTS {
        let peers: Vec<HostId> = (0..HOSTS).filter(|&p| p != h).map(HostId).collect();
        c.drive_abstract(
            HostId(h),
            AbstractTraffic {
                peers,
                payload_bytes: 256,
                mean_gap: SimDuration::from_micros(10),
                count: 200,
            },
        );
    }
    c.run_for(SimDuration::from_millis(10));
    c.audit().expect("no full-fidelity hosts, nothing to violate");
    let total: u64 = (0..HOSTS).map(|h| c.abs_stats(HostId(h)).unwrap().recvd).sum();
    assert!(total > 0, "delay-fabric traffic must be delivered");
    let snap = c.telemetry().snapshot();
    assert!(snap.counter("net.packets") > 0, "delay fabric reports net.* counters");
}

/// Full-only machinery must refuse abstract hosts loudly, not corrupt.
#[test]
#[should_panic(expected = "Fidelity::Abstract")]
fn endpoint_on_abstract_host_panics() {
    let mut c = Cluster::builder()
        .hosts(4)
        .fidelity([2, 3], Fidelity::Abstract)
        .build();
    let _ = c.create_endpoint(HostId(2));
}
