//! Seeded property test for the migration building block: endpoints are
//! repeatedly paged out to swap and faulted back in **while client traffic
//! is flowing**, across several seeds. Residency state, credits, and the
//! NI frame ledger must all be conserved — the cross-layer auditor checks
//! every invariant, and every request must be answered exactly once.
//!
//! This isolates the §4 residency round trip (NicRw → HostRo → Disk →
//! PagingIn → Host → Loading → NicRw) that live migration is built from:
//! the control plane's `begin_migrate_out` is the same eviction machinery
//! with the remap path held shut.

use vnet::prelude::*;
use vnet::sim::telemetry::MetricSet;
use vnet::sim::SimRng;
use vnet::{Cluster, ClusterConfig};

/// Echo service; replies are retried under send-queue backpressure.
struct Echo {
    ep: EpId,
    pending: Vec<DeliveredMsg>,
}

impl ThreadBody for Echo {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        let stash = std::mem::take(&mut self.pending);
        for m in stash {
            if sys.reply(self.ep, &m, 0, m.msg.args, 0).is_err() {
                self.pending.push(m);
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
            if sys.reply(self.ep, &m, 0, m.msg.args, 0).is_err() {
                self.pending.push(m);
            }
        }
        if self.pending.is_empty() {
            Step::WaitEvent(self.ep)
        } else {
            Step::Yield
        }
    }
}

/// Client pushing `total` requests through translation index 1 (its pair
/// network lists the client itself at slot 0, the service at slot 1).
struct Client {
    ep: EpId,
    total: u32,
    sent: u32,
    replies: u32,
}

impl ThreadBody for Client {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while let Some(m) = sys.poll(self.ep, QueueSel::Reply) {
            assert!(!m.undeliverable, "pageout churn must never bounce a message");
            self.replies += 1;
        }
        while self.sent < self.total {
            match sys.request(self.ep, 1, 1, [u64::from(self.sent), 0, 0, 0], 0) {
                Ok(_) => self.sent += 1,
                Err(SendError::NoCredit) | Err(SendError::QueueFull) => {
                    return Step::WaitEvent(self.ep)
                }
                Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                Err(e) => panic!("send failed: {e:?}"),
            }
        }
        if self.replies >= self.total {
            Step::Exit
        } else {
            Step::WaitEvent(self.ep)
        }
    }
}

/// One seeded run: 4 client/service pairs across 2 hosts with only 2 NI
/// frames per interface, so §4 residency churns constantly; between run
/// slices a seeded chooser forces LRU pageouts on both hosts so parked
/// endpoints round-trip through swap mid-conversation.
fn churn_run(seed: u64) {
    const PAIRS: usize = 4;
    let mut rng = SimRng::seed_from_u64(seed);
    let total = 30 + (rng.below(31) as u32); // 30..=60 requests per client

    let mut cfg = ClusterConfig::now(2).with_seed(seed).with_audit(true);
    cfg.nic.frames = 2; // frame pressure: 4 active endpoints, 2 frames
    let mut c = Cluster::new(cfg);

    let mut clients = Vec::new();
    for _ in 0..PAIRS {
        let cl = c.create_endpoint(HostId(0));
        let sv = c.create_endpoint(HostId(1));
        c.build_virtual_network(&[cl, sv]);
        c.spawn_thread(HostId(1), Box::new(Echo { ep: sv.ep, pending: Vec::new() }));
        let tid = c.spawn_thread(
            HostId(0),
            Box::new(Client { ep: cl.ep, total, sent: 0, replies: 0 }),
        );
        clients.push(tid);
    }

    // Churn phase: 160 slices of 250 µs (40 ms); each slice pages the
    // LRU parked endpoint out to swap on a seeded coin flip, per host.
    for _ in 0..160 {
        c.run_for(SimDuration::from_micros(250));
        for h in [HostId(1), HostId(0)] {
            if rng.below(2) == 0 {
                c.force_pageout_lru(h);
            }
        }
    }
    // Drain phase: no more forced pageouts; let every conversation finish.
    c.run_for(SimDuration::from_millis(200));

    for &tid in &clients {
        let cl: &Client = c.body(HostId(0), tid).expect("client body");
        assert_eq!(
            cl.replies, total,
            "seed {seed:#x}: client lost replies under pageout churn (sent {})",
            cl.sent
        );
    }
    // The churn actually exercised the round trip on the service host.
    let stats = c.os(HostId(1)).stats();
    assert!(stats.counter_value("page_outs") > 0, "seed {seed:#x}: no pageout happened");
    assert!(stats.counter_value("page_ins") > 0, "seed {seed:#x}: no pagein happened");
    // Residency census is conserved: everything settled out of swap and
    // out of transition once traffic stopped.
    let (resident, host, disk, trans) = c.os(HostId(1)).census();
    assert_eq!(resident + host + disk + trans, PAIRS, "endpoints leaked or vanished");
    assert_eq!(trans, 0, "endpoints stuck mid-transition after quiesce");
    // Credits and the frame ledger: every post resolved by exactly one
    // delivery, and the auditor (which also checks frame occupancy and
    // credit conservation continuously) saw nothing.
    let counters = c.auditor().borrow().counters();
    assert_eq!(counters.posted, counters.delivered, "unresolved or duplicated posts");
    if let Err(report) = c.audit() {
        panic!("seed {seed:#x} violated an invariant:\n{report}");
    }
}

#[test]
fn pageout_pagein_roundtrip_conserves_state_across_seeds() {
    for seed in [0x00AD_BEEF_u64, 0x1CEB_00DA, 0x5EED_0003, 0xFACE_FEED] {
        churn_run(seed);
    }
}
