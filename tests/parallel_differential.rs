//! Differential suite for the conservative parallel executor: for any
//! shard count the results must be **byte-identical** to the sequential
//! engine — same event count, same final clock, same audit ledger, same
//! telemetry span log, same causal trace, same application results.
//!
//! Covers ≥4 seeds × {2, 4, 8} shards × two topologies (crossbar and a
//! small fat tree), including a faulty-link configuration whose drops
//! force cross-shard retransmissions.

use vnet::net::{FaultScheduleSpec, GilbertElliott, LinkId, TopologySpec};
use vnet::prelude::*;
use vnet::sim::MsgFate;

/// Echo server: replies to every request, retrying under backpressure.
struct Echo {
    ep: EpId,
    pending: Vec<DeliveredMsg>,
}

impl Echo {
    fn new(ep: EpId) -> Self {
        Echo { ep, pending: Vec::new() }
    }

    fn answer(&mut self, sys: &mut Sys<'_>, m: DeliveredMsg) {
        if sys.reply(self.ep, &m, 0, m.msg.args, 0).is_err() {
            self.pending.push(m);
        }
    }
}

impl ThreadBody for Echo {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while let Some(m) = self.pending.pop() {
            let before = self.pending.len();
            self.answer(sys, m);
            if self.pending.len() > before {
                return Step::Yield;
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
            self.answer(sys, m);
        }
        if self.pending.is_empty() {
            Step::WaitEvent(self.ep)
        } else {
            Step::Yield
        }
    }
}

/// Client: `total` requests to translation 0, counting replies.
struct Client {
    ep: EpId,
    total: u32,
    sent: u32,
    replies: u32,
    sum: u64,
}

impl ThreadBody for Client {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while self.sent < self.total {
            match sys.request(self.ep, 0, 1, [self.sent as u64, 0, 0, 0], 0) {
                Ok(_) => self.sent += 1,
                Err(SendError::NoCredit) => break,
                Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                Err(e) => panic!("send failed: {e:?}"),
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Reply) {
            if !m.undeliverable {
                self.replies += 1;
                self.sum = self.sum.wrapping_add(m.msg.args[0]);
            }
        }
        if self.replies == self.total {
            Step::Exit
        } else {
            Step::WaitEvent(self.ep)
        }
    }
}

/// Everything a run can observably produce, for exact comparison.
#[derive(Debug, PartialEq)]
struct Outcome {
    shards_used: u32,
    events: u64,
    now_ns: u64,
    ledger: Vec<(u64, MsgFate)>,
    violations: u64,
    spans: String,
    trace: String,
    replies: Vec<(u32, u64)>,
    /// Cluster-wide `(unbinds, resyncs, failovers)` from the NIC stats —
    /// the recovery-path shape, compared exactly across shard counts.
    recovery: (u64, u64, u64),
}

struct Scenario {
    topology: TopologySpec,
    /// Leaf↔spine link latency override (`None` = same as `hop_latency`).
    /// A slow trunk makes the executor's per-shard-pair lookahead matrix
    /// genuinely asymmetric: inter-leaf pairs get wide windows while any
    /// intra-leaf traffic stays intra-shard under leaf alignment.
    trunk_latency: Option<SimDuration>,
    seed: u64,
    drop_prob: f64,
    corrupt_prob: f64,
    faults: FaultScheduleSpec,
    requests: u32,
    run_ms: u64,
}

/// Build the all-hosts request ring (host i's client targets host
/// (i+1) % n's server), run it, and collect every observable output.
fn run(sc: &Scenario, shards: u32) -> Outcome {
    let n = sc.topology.hosts();
    let mut cfg = ClusterConfig::now(n)
        .with_seed(sc.seed)
        .with_telemetry(true)
        .with_shards(shards);
    cfg.topology = sc.topology.clone();
    cfg.net.trunk_latency = sc.trunk_latency;
    cfg.drop_prob = sc.drop_prob;
    cfg.corrupt_prob = sc.corrupt_prob;
    cfg.faults = sc.faults.clone();
    let mut c = Cluster::new(cfg);
    c.telemetry().trace_enable();

    let servers: Vec<GlobalEp> = (0..n).map(|h| c.create_endpoint(HostId(h))).collect();
    let clients_ep: Vec<GlobalEp> = (0..n).map(|h| c.create_endpoint(HostId(h))).collect();
    for h in 0..n {
        c.connect(clients_ep[h as usize], 0, servers[((h + 1) % n) as usize]);
    }
    let mut client_tids = Vec::new();
    for h in 0..n {
        c.spawn_thread(HostId(h), Box::new(Echo::new(servers[h as usize].ep)));
        let tid = c.spawn_thread(
            HostId(h),
            Box::new(Client {
                ep: clients_ep[h as usize].ep,
                total: sc.requests,
                sent: 0,
                replies: 0,
                sum: 0,
            }),
        );
        client_tids.push((HostId(h), tid));
    }
    c.run_for(SimDuration::from_millis(sc.run_ms));

    let (ledger, violations) = {
        let a = c.auditor();
        let a = a.borrow();
        (a.ledger_snapshot(), a.total_violations())
    };
    let spans = c
        .telemetry()
        .handle()
        .map(|t| t.borrow().span_log())
        .unwrap_or_default();
    let trace = c.telemetry().trace_text();
    let replies = client_tids
        .iter()
        .map(|&(h, tid)| {
            let b: &Client = c.body(h, tid).expect("client body");
            (b.replies, b.sum)
        })
        .collect();
    let snap = c.telemetry().snapshot();
    let sum = |m: &str| (0..n).map(|h| snap.counter(&format!("host{h}.nic.{m}"))).sum::<u64>();
    let recovery = (sum("unbinds"), sum("resyncs"), sum("failovers"));
    Outcome {
        shards_used: c.shards(),
        events: c.events_processed(),
        now_ns: c.now().as_nanos(),
        ledger,
        violations,
        spans,
        trace,
        replies,
        recovery,
    }
}

fn check_scenario(sc: &Scenario, shard_counts: &[u32]) -> Outcome {
    let seq = run(sc, 1);
    assert_eq!(seq.shards_used, 1);
    assert!(
        seq.replies.iter().any(|&(r, _)| r > 0),
        "workload must make progress (seed {:#x})",
        sc.seed
    );
    for &s in shard_counts {
        let par = run(sc, s);
        assert!(par.shards_used > 1, "expected a parallel run for {s} shards");
        // Compare field-by-field so a mismatch names what diverged.
        assert_eq!(seq.replies, par.replies, "app results, {s} shards, seed {:#x}", sc.seed);
        assert_eq!(seq.events, par.events, "event count, {s} shards, seed {:#x}", sc.seed);
        assert_eq!(seq.now_ns, par.now_ns, "final clock, {s} shards, seed {:#x}", sc.seed);
        assert_eq!(seq.ledger, par.ledger, "audit ledger, {s} shards, seed {:#x}", sc.seed);
        assert_eq!(
            seq.violations, par.violations,
            "violations, {s} shards, seed {:#x}",
            sc.seed
        );
        assert_eq!(seq.spans, par.spans, "span log, {s} shards, seed {:#x}", sc.seed);
        assert_eq!(seq.trace, par.trace, "trace ring, {s} shards, seed {:#x}", sc.seed);
        assert_eq!(
            seq.recovery, par.recovery,
            "unbind/resync/failover counts, {s} shards, seed {:#x}",
            sc.seed
        );
    }
    seq
}

const SEEDS: [u64; 4] = [1, 7, 0xBEEF, 0xC0FFEE];

#[test]
fn crossbar_matches_sequential() {
    for &seed in &SEEDS {
        check_scenario(
            &Scenario {
                topology: TopologySpec::Crossbar { hosts: 8 },
                trunk_latency: None,
                seed,
                drop_prob: 0.0,
                corrupt_prob: 0.0,
                faults: FaultScheduleSpec::none(),
                requests: 4,
                run_ms: 4,
            },
            &[2, 4, 8],
        );
    }
}

#[test]
fn fat_tree_matches_sequential() {
    for &seed in &SEEDS {
        check_scenario(
            &Scenario {
                topology: TopologySpec::FatTree { leaves: 4, hosts_per_leaf: 2, spines: 2 },
                trunk_latency: None,
                seed,
                drop_prob: 0.0,
                corrupt_prob: 0.0,
                faults: FaultScheduleSpec::none(),
                requests: 4,
                run_ms: 4,
            },
            &[2, 4, 8],
        );
    }
}

#[test]
fn faulty_fat_tree_matches_sequential() {
    // Drops and corruptions force the stop-and-wait channels into
    // cross-shard retransmissions; episodes must replay identically.
    for &seed in &SEEDS {
        check_scenario(
            &Scenario {
                topology: TopologySpec::FatTree { leaves: 4, hosts_per_leaf: 2, spines: 2 },
                trunk_latency: None,
                seed,
                drop_prob: 0.05,
                corrupt_prob: 0.02,
                faults: FaultScheduleSpec::none(),
                requests: 4,
                run_ms: 6,
            },
            &[2, 4],
        );
    }
}

/// Satellite: a fault plan dropping/corrupting on a *cross-shard* link
/// produces identical retransmit episodes — as recorded in the telemetry
/// span log — whether the cluster runs on 1 shard or 4.
#[test]
fn cross_shard_retransmit_episodes_identical() {
    let sc = Scenario {
        topology: TopologySpec::FatTree { leaves: 4, hosts_per_leaf: 2, spines: 2 },
        trunk_latency: None,
        seed: 0x5EED_FA17,
        drop_prob: 0.2,
        corrupt_prob: 0.0,
        faults: FaultScheduleSpec::none(),
        requests: 6,
        run_ms: 8,
    };
    let seq = run(&sc, 1);
    let par = run(&sc, 4);
    assert_eq!(par.shards_used, 4);
    assert!(
        seq.spans.contains("retx"),
        "20% drop on inter-leaf routes must provoke at least one retransmission:\n{}",
        seq.spans
    );
    assert_eq!(seq.spans, par.spans, "retransmit span episodes diverged");
    assert_eq!(seq.ledger, par.ledger, "message fates diverged");
}

/// A full chaos campaign on the small fat tree: a link flap on leaf 0's
/// spine-0 uplink, a whole-spine-switch failure, a degraded spine-down
/// window, and Gilbert–Elliott bursty errors — all scheduled through the
/// event queue, so every shard count replays the identical campaign.
///
/// Small-fat-tree link layout (H=8 hosts, L=4 leaves, S=2 spines):
/// host-up `[0,8)`, leaf-down `[8,16)`, leaf-up `16 + l*S + s`,
/// spine-down `24 + l*S + s`; switches: leaves `0..4`, spines `4..6`.
fn at_us(us: u64) -> SimTime {
    SimTime::from_nanos(us * 1_000)
}

fn chaos_campaign() -> FaultScheduleSpec {
    let us = at_us;
    FaultScheduleSpec::none()
        .flap(LinkId(16), us(300), us(1_500))
        .fail_switch(4, us(2_000), us(3_000))
        .degrade(LinkId(27), us(1_000), us(4_000), 0.2, 0.05)
        .with_bursty(GilbertElliott::mild())
}

#[test]
fn chaos_campaign_matches_sequential() {
    for &seed in &[1u64, 0xBEEF] {
        let seq = check_scenario(
            &Scenario {
                topology: TopologySpec::FatTree { leaves: 4, hosts_per_leaf: 2, spines: 2 },
                trunk_latency: None,
                seed,
                drop_prob: 0.0,
                corrupt_prob: 0.0,
                faults: chaos_campaign(),
                requests: 200,
                run_ms: 24,
            },
            &[2, 4],
        );
        assert_eq!(seq.violations, 0, "campaign must complete clean (seed {seed:#x})");
        assert!(
            seq.replies.iter().all(|&(r, _)| r == 200),
            "every client must finish despite the campaign (seed {seed:#x}): {:?}",
            seq.replies
        );
    }
}

/// Satellite: a link-down window longer than the full
/// retransmit→backoff→unbind cycle (8 doublings from the 120 µs base RTO
/// sum to ~23 ms). Host 0's only uplink (crossbar) is down from the
/// start, so failover has no alternate route: the NIC must ride the
/// backoff, unbind after the bound, re-bind (advancing the channel
/// epoch), and deliver after the window — the receiver resynchronizing
/// its expected sequence. The whole episode must be field-by-field
/// identical on 1 and 4 shards.
#[test]
fn long_down_window_unbind_resync_identical() {
    let sc = Scenario {
        topology: TopologySpec::Crossbar { hosts: 8 },
        trunk_latency: None,
        seed: 0xD05EED,
        drop_prob: 0.0,
        corrupt_prob: 0.0,
        faults: FaultScheduleSpec::none().flap(LinkId(0), at_us(0), at_us(30_000)),
        requests: 8,
        run_ms: 70,
    };
    let seq = check_scenario(&sc, &[4]);
    let (unbinds, resyncs, failovers) = seq.recovery;
    assert!(unbinds > 0, "an 18 ms dead uplink must exhaust the retransmission bound");
    assert!(resyncs > 0, "post-window redelivery must resynchronize the receiver");
    assert_eq!(failovers, 0, "a host's sole uplink admits no alternate route");
    assert!(
        seq.replies.iter().all(|&(r, _)| r == 8),
        "all clients must finish once the window lifts: {:?}",
        seq.replies
    );
}

/// Satellite: **all** §5.1 multipath routes down at once. On the small
/// fat tree, leaf 0's only two uplinks (`LinkId(16)` spine 0,
/// `LinkId(17)` spine 1) are both dead from the start for 30 ms, so
/// every route between leaf 0's hosts (0, 1) and the rest of the tree
/// is down — failover has no live alternative and must not fire. The
/// affected channels have to ride the full retransmit→backoff→unbind
/// cycle, re-bind after the window, and resynchronize the receiver,
/// with zero auditor violations and the whole episode byte-identical
/// at 1 vs 2/4 shards.
#[test]
fn all_routes_down_leaf_isolated_recovers_identical() {
    let sc = Scenario {
        topology: TopologySpec::FatTree { leaves: 4, hosts_per_leaf: 2, spines: 2 },
        trunk_latency: None,
        seed: 0xA11_D0E5,
        drop_prob: 0.0,
        corrupt_prob: 0.0,
        faults: FaultScheduleSpec::none()
            .flap(LinkId(16), at_us(0), at_us(30_000))
            .flap(LinkId(17), at_us(0), at_us(30_000)),
        requests: 6,
        run_ms: 70,
    };
    let seq = check_scenario(&sc, &[2, 4]);
    let (unbinds, resyncs, _failovers) = seq.recovery;
    assert!(unbinds > 0, "a 30 ms window with every route down must exhaust the retry bound");
    assert!(resyncs > 0, "post-window redelivery must resynchronize the receiver");
    assert_eq!(seq.violations, 0, "isolation and recovery must stay audit-clean");
    assert!(
        seq.replies.iter().all(|&(r, _)| r == 6),
        "all clients must finish once the leaf rejoins: {:?}",
        seq.replies
    );
}

/// Everything a mixed-fidelity run observably produces: the full subset's
/// outputs (replies, ledger, violations, spans, trace) plus every abstract
/// host's coarse counters.
#[derive(Debug, PartialEq)]
struct MixedOutcome {
    shards_used: u32,
    events: u64,
    now_ns: u64,
    ledger: Vec<(u64, MsgFate)>,
    violations: u64,
    spans: String,
    trace: String,
    replies: Vec<(u32, u64)>,
    abs: Vec<(u64, u64, u64, u64, u64)>,
}

/// 4 full + 12 abstract hosts on a 16-host fat tree: the full hosts (leaf
/// 0) run the request ring among themselves while every abstract host
/// streams driven traffic to abstract peers on other leaves — cross-shard
/// under any partition. Gilbert–Elliott bursty errors hit both classes:
/// full channels retransmit, abstract hosts count `corrupt_drops`.
fn run_mixed(seed: u64, shards: u32) -> MixedOutcome {
    const FULL: u32 = 4;
    const HOSTS: u32 = 16;
    let mut fid = FidelityMap::full();
    fid.set_hosts(FULL..HOSTS, Fidelity::Abstract);
    let mut cfg = ClusterConfig::now(HOSTS)
        .with_seed(seed)
        .with_telemetry(true)
        .with_shards(shards)
        .with_fidelity(fid);
    cfg.topology = TopologySpec::FatTree { leaves: 4, hosts_per_leaf: 4, spines: 2 };
    cfg.faults = FaultScheduleSpec::none().with_bursty(GilbertElliott::mild());
    let mut c = Cluster::new(cfg);
    c.telemetry().trace_enable();

    let servers: Vec<GlobalEp> = (0..FULL).map(|h| c.create_endpoint(HostId(h))).collect();
    let clients_ep: Vec<GlobalEp> = (0..FULL).map(|h| c.create_endpoint(HostId(h))).collect();
    let mut client_tids = Vec::new();
    for h in 0..FULL {
        c.connect(clients_ep[h as usize], 0, servers[((h + 1) % FULL) as usize]);
        c.spawn_thread(HostId(h), Box::new(Echo::new(servers[h as usize].ep)));
        let tid = c.spawn_thread(
            HostId(h),
            Box::new(Client {
                ep: clients_ep[h as usize].ep,
                total: 8,
                sent: 0,
                replies: 0,
                sum: 0,
            }),
        );
        client_tids.push((HostId(h), tid));
    }
    for h in FULL..HOSTS {
        let peers: Vec<HostId> = (FULL..HOSTS).filter(|&p| p != h).map(HostId).collect();
        c.drive_abstract(
            HostId(h),
            AbstractTraffic {
                peers,
                payload_bytes: 512,
                mean_gap: SimDuration::from_micros(20),
                count: 64,
            },
        );
    }
    c.run_for(SimDuration::from_millis(8));

    let (ledger, violations) = {
        let a = c.auditor();
        let a = a.borrow();
        (a.ledger_snapshot(), a.total_violations())
    };
    MixedOutcome {
        shards_used: c.shards(),
        events: c.events_processed(),
        now_ns: c.now().as_nanos(),
        ledger,
        violations,
        spans: c.telemetry().handle().map(|t| t.borrow().span_log()).unwrap_or_default(),
        trace: c.telemetry().trace_text(),
        replies: client_tids
            .iter()
            .map(|&(h, tid)| {
                let b: &Client = c.body(h, tid).expect("client body");
                (b.replies, b.sum)
            })
            .collect(),
        abs: (FULL..HOSTS)
            .map(|h| {
                let s = c.abs_stats(HostId(h)).expect("abstract host");
                (s.sent, s.sent_bytes, s.recvd, s.recv_bytes, s.corrupt_drops)
            })
            .collect(),
    }
}

/// Satellite: mixed-fidelity determinism. A fixed-seed 4-full +
/// 12-abstract world must be byte-identical across shard counts 1/2/4 —
/// and, through the CI matrix's `VNET_PAR_DRIVER` axis, under both epoch
/// drivers (this test, like the whole suite, runs once per driver there).
#[test]
fn mixed_fidelity_matches_sequential() {
    for &seed in &[7u64, 0xBEEF] {
        let seq = run_mixed(seed, 1);
        assert_eq!(seq.shards_used, 1);
        assert!(
            seq.replies.iter().all(|&(r, _)| r == 8),
            "full-fidelity ring must finish (seed {seed:#x}): {:?}",
            seq.replies
        );
        assert!(
            seq.abs.iter().all(|&(sent, ..)| sent == 64),
            "every abstract host must drain its driven traffic (seed {seed:#x}): {:?}",
            seq.abs
        );
        assert!(
            seq.abs.iter().any(|&(_, _, recvd, ..)| recvd > 0),
            "abstract traffic must flow (seed {seed:#x})"
        );
        assert_eq!(seq.violations, 0, "full subset must stay clean (seed {seed:#x})");
        for shards in [2u32, 4] {
            let par = run_mixed(seed, shards);
            assert!(par.shards_used > 1, "expected a parallel run for {shards} shards");
            assert_eq!(seq.replies, par.replies, "app results, {shards} shards, seed {seed:#x}");
            assert_eq!(seq.abs, par.abs, "abstract counters, {shards} shards, seed {seed:#x}");
            assert_eq!(seq.events, par.events, "event count, {shards} shards, seed {seed:#x}");
            assert_eq!(seq.now_ns, par.now_ns, "final clock, {shards} shards, seed {seed:#x}");
            assert_eq!(seq.ledger, par.ledger, "audit ledger, {shards} shards, seed {seed:#x}");
            assert_eq!(
                seq.violations, par.violations,
                "violations, {shards} shards, seed {seed:#x}"
            );
            assert_eq!(seq.spans, par.spans, "span log, {shards} shards, seed {seed:#x}");
            assert_eq!(seq.trace, par.trace, "trace ring, {shards} shards, seed {seed:#x}");
        }
    }
}

/// Tentpole: a fat tree whose leaf↔spine trunks are 4x slower than the
/// host links. The per-shard-pair lookahead matrix is genuinely
/// asymmetric — every cross-shard path pays `hop + trunk`, so epochs are
/// much wider than the old global `2 × hop` bound — and results must
/// stay byte-identical to sequential at every shard count.
#[test]
fn asymmetric_trunk_fat_tree_matches_sequential() {
    for &seed in &SEEDS {
        check_scenario(
            &Scenario {
                topology: TopologySpec::FatTree { leaves: 8, hosts_per_leaf: 2, spines: 2 },
                trunk_latency: Some(SimDuration::from_nanos(1_200)),
                seed,
                drop_prob: 0.0,
                corrupt_prob: 0.0,
                faults: FaultScheduleSpec::none(),
                requests: 4,
                run_ms: 5,
            },
            &[2, 4, 8],
        );
    }
}

/// Everything an open-loop fleet run observably produces: the cluster
/// clock and event count, every abstract host's coarse counters, and the
/// full per-request latency histogram (all 64 buckets plus count and
/// sum), compared bucket-for-bucket across shard counts.
#[derive(Debug, PartialEq)]
struct OpenLoopOutcome {
    shards_used: u32,
    events: u64,
    now_ns: u64,
    abs: Vec<(u64, u64, u64, u64, u64)>,
    lat_buckets: Vec<u64>,
    lat_count: u64,
    lat_sum: u128,
}

/// A 32-host all-abstract fat tree driven by the open-loop client
/// population of `OpenLoopSpec`: Poisson arrivals, rotated-Zipf targets,
/// bounded-Pareto sizes. The run loop advances in fixed 1 ms slices and
/// checks the drain condition only at slice boundaries, mirroring how
/// `fleet_bench` decides when to stop — the walk itself must be
/// shard-count invariant.
fn run_open_loop(seed: u64, shards: u32) -> OpenLoopOutcome {
    const HOSTS: u32 = 32;
    let mut c = Cluster::builder()
        .topology(TopologySpec::FatTree { leaves: 8, hosts_per_leaf: 4, spines: 2 })
        .seed(seed)
        .audit(false)
        .telemetry(false)
        .shards(shards)
        .default_fidelity(Fidelity::Abstract)
        .build();
    let spec = OpenLoopSpec {
        streams: 2,
        mean_gap: SimDuration::from_micros(8),
        requests: 50,
        zipf_s: 1.0,
        targets: HOSTS,
        size_min: 64,
        size_max: 65_536,
        size_alpha: 1.3,
    };
    for h in 0..HOSTS {
        c.drive_open_loop(HostId(h), spec.clone());
    }
    let slice = SimDuration::from_millis(1);
    while c.open_loop_remaining() > 0 {
        c.run_for(slice);
        assert!(c.now().as_secs_f64() < 10.0, "open-loop workload wedged (seed {seed:#x})");
    }
    c.run_for(slice);
    c.run_for(slice);

    let lat = c.open_loop_latency();
    OpenLoopOutcome {
        shards_used: c.shards(),
        events: c.events_processed(),
        now_ns: c.now().as_nanos(),
        abs: (0..HOSTS)
            .map(|h| {
                let s = c.abs_stats(HostId(h)).expect("abstract host");
                (s.sent, s.sent_bytes, s.recvd, s.recv_bytes, s.corrupt_drops)
            })
            .collect(),
        lat_buckets: lat.buckets().to_vec(),
        lat_count: lat.count(),
        lat_sum: lat.sum(),
    }
}

/// Satellite: open-loop workload determinism. A fixed-seed 32-host
/// open-loop fleet must produce byte-identical metrics — every abstract
/// counter and every latency-histogram bucket — at 1, 2, and 4 shards,
/// and (through the CI matrix's `VNET_PAR_DRIVER` axis) under both epoch
/// drivers.
#[test]
fn open_loop_matches_sequential() {
    for &seed in &[7u64, 0xF1EE7] {
        let seq = run_open_loop(seed, 1);
        assert_eq!(seq.shards_used, 1);
        let total_sent: u64 = seq.abs.iter().map(|&(sent, ..)| sent).sum();
        assert_eq!(total_sent, 32 * 50, "every request must be emitted (seed {seed:#x})");
        assert_eq!(
            seq.lat_count, total_sent,
            "every request must be served within the drain window (seed {seed:#x})"
        );
        assert!(seq.lat_sum > 0, "latencies must be recorded (seed {seed:#x})");
        for shards in [2u32, 4] {
            let par = run_open_loop(seed, shards);
            assert!(par.shards_used > 1, "expected a parallel run for {shards} shards");
            assert_eq!(seq.abs, par.abs, "abstract counters, {shards} shards, seed {seed:#x}");
            assert_eq!(
                seq.lat_buckets, par.lat_buckets,
                "latency histogram, {shards} shards, seed {seed:#x}"
            );
            assert_eq!(seq.lat_sum, par.lat_sum, "latency sum, {shards} shards, seed {seed:#x}");
            assert_eq!(seq.events, par.events, "event count, {shards} shards, seed {seed:#x}");
            assert_eq!(seq.now_ns, par.now_ns, "final clock, {shards} shards, seed {seed:#x}");
        }
    }
}

/// The same slow-trunk tree under the full chaos campaign: scheduled
/// link flaps and switch failures slice the pair-lookahead matrix into
/// campaign intervals (a LinkUp can lower a pair's latency floor, so
/// epochs must not run past a transition), and the replay must still be
/// byte-identical for every shard count.
#[test]
fn asymmetric_trunk_campaign_matches_sequential() {
    for &seed in &[1u64, 0xBEEF] {
        let seq = check_scenario(
            &Scenario {
                topology: TopologySpec::FatTree { leaves: 4, hosts_per_leaf: 2, spines: 2 },
                trunk_latency: Some(SimDuration::from_nanos(1_200)),
                seed,
                drop_prob: 0.0,
                corrupt_prob: 0.0,
                faults: chaos_campaign(),
                requests: 100,
                run_ms: 24,
            },
            &[2, 4],
        );
        assert_eq!(seq.violations, 0, "campaign must complete clean (seed {seed:#x})");
        assert!(
            seq.replies.iter().all(|&(r, _)| r == 100),
            "every client must finish despite the campaign (seed {seed:#x}): {:?}",
            seq.replies
        );
    }
}
