//! Fixed-seed chaos smoke: one scheduled fault campaign — link flaps, a
//! whole-spine-switch failure, a degraded window, and Gilbert–Elliott
//! bursty errors — on the small fat tree, with the invariant auditor
//! forced on. The run must complete with **zero** violations, every
//! message resolved exactly once, at least one route failover, and the
//! bounded time-to-recovery check clean.
//!
//! Honors `VNET_SHARDS` (the CI chaos job runs it at 1 and 4 shards);
//! the explicit seed makes every run byte-reproducible.

use vnet::net::{FaultScheduleSpec, GilbertElliott, LinkId, TopologySpec};
use vnet::prelude::*;
use vnet::sim::MsgFate;

/// Echo server: replies to every request, retrying under backpressure.
struct Echo {
    ep: EpId,
    pending: Vec<DeliveredMsg>,
}

impl ThreadBody for Echo {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        let stash = std::mem::take(&mut self.pending);
        for m in stash {
            if sys.reply(self.ep, &m, 0, m.msg.args, 0).is_err() {
                self.pending.push(m);
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
            if sys.reply(self.ep, &m, 0, m.msg.args, 0).is_err() {
                self.pending.push(m);
            }
        }
        if self.pending.is_empty() {
            Step::WaitEvent(self.ep)
        } else {
            Step::Yield
        }
    }
}

/// Client: `total` requests to translation 0, counting replies.
struct Client {
    ep: EpId,
    total: u32,
    sent: u32,
    replies: u32,
}

impl ThreadBody for Client {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while self.sent < self.total {
            match sys.request(self.ep, 0, 1, [self.sent as u64, 0, 0, 0], 0) {
                Ok(_) => self.sent += 1,
                Err(SendError::NoCredit) => break,
                Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                Err(e) => panic!("send failed: {e:?}"),
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Reply) {
            if !m.undeliverable {
                self.replies += 1;
            }
        }
        if self.replies == self.total {
            Step::Exit
        } else {
            Step::WaitEvent(self.ep)
        }
    }
}

fn at_us(us: u64) -> SimTime {
    SimTime::from_nanos(us * 1_000)
}

/// The seeded campaign, on the small fat tree (H=8, L=4, S=2; link
/// layout: host-up `[0,8)`, leaf-down `[8,16)`, leaf-up `16 + l*S + s`,
/// spine-down `24 + l*S + s`; switches: leaves `0..4`, spines `4..6`):
/// two flaps on leaf uplinks, spine switch 0 dead for a millisecond, a
/// degraded spine-down window, and mild bursty errors throughout.
fn campaign() -> FaultScheduleSpec {
    FaultScheduleSpec::none()
        .flap(LinkId(16), at_us(300), at_us(1_500))
        .flap(LinkId(21), at_us(3_500), at_us(4_200))
        .fail_switch(4, at_us(2_000), at_us(3_000))
        .degrade(LinkId(27), at_us(1_000), at_us(4_000), 0.2, 0.05)
        .with_bursty(GilbertElliott::mild())
}

#[test]
fn seeded_campaign_recovers_clean() {
    let n: u32 = 8;
    let mut cfg = ClusterConfig::now(n)
        .with_seed(0xC4A0_57E5)
        .with_audit(true)
        .with_telemetry(true)
        .with_faults(campaign());
    cfg.topology = TopologySpec::FatTree { leaves: 4, hosts_per_leaf: 2, spines: 2 };
    let mut c = Cluster::new(cfg);

    // Request ring: host i's client targets host (i+1) % n's server, so
    // every spine trunk carries traffic through every fault window.
    let servers: Vec<GlobalEp> = (0..n).map(|h| c.create_endpoint(HostId(h))).collect();
    let clients: Vec<GlobalEp> = (0..n).map(|h| c.create_endpoint(HostId(h))).collect();
    let total = 300;
    let mut tids = Vec::new();
    for h in 0..n {
        c.connect(clients[h as usize], 0, servers[((h + 1) % n) as usize]);
        c.spawn_thread(
            HostId(h),
            Box::new(Echo { ep: servers[h as usize].ep, pending: Vec::new() }),
        );
        let tid = c.spawn_thread(
            HostId(h),
            Box::new(Client { ep: clients[h as usize].ep, total, sent: 0, replies: 0 }),
        );
        tids.push((HostId(h), tid));
    }
    c.run_for(SimDuration::from_millis(30));

    // Bounded time-to-recovery: everything posted must be resolved well
    // before `horizon + bound` (the run left ~26 ms after the last
    // transition; demand a 10 ms bound).
    assert!(c.fault_horizon() == at_us(4_200), "campaign horizon");
    c.check_recovery(SimDuration::from_millis(10));
    if let Err(report) = c.audit() {
        panic!("chaos campaign must finish with zero violations:\n{report}");
    }

    // Exactly-once: every client got every reply, and the delivery ledger
    // holds no unresolved or bounced message.
    for &(h, tid) in &tids {
        let b: &Client = c.body(h, tid).expect("client body");
        assert_eq!(b.replies, total, "client on {h} must see every reply exactly once");
    }
    let ledger = c.auditor().borrow().ledger_snapshot();
    assert!(!ledger.is_empty());
    assert!(
        ledger.iter().all(|&(_, f)| f == MsgFate::Delivered),
        "every message must resolve to Delivered"
    );

    // The campaign must actually have exercised the recovery machinery:
    // fabric drops in every scheduled category, and at least one route
    // failover around a scheduled-down link.
    let snap = c.telemetry().snapshot();
    let nic = |m: &str| (0..n).map(|h| snap.counter(&format!("host{h}.nic.{m}"))).sum::<u64>();
    assert!(snap.counter("net.drop_link_down") > 0, "down windows must drop packets");
    assert!(snap.counter("net.drop_burst") > 0, "bursty chains must drop packets");
    assert!(nic("retransmits") > 0, "drops must provoke retransmissions");
    let failovers = nic("failovers");
    assert!(failovers > 0, "a flapped trunk with idle alternates must fail over");
    assert_eq!(
        c.auditor().borrow().counters().failovers,
        failovers,
        "auditor and NIC stats must agree on failovers"
    );
}
