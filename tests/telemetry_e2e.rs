//! End-to-end tests of the unified telemetry layer: Perfetto export
//! schema, protocol-episode reconstruction across NIC and OS layers,
//! determinism with hooks attached, and drop accounting.

use vnet::apps::clientserver::{run_client_server_cluster, CsConfig, CsMode};
use vnet::prelude::*;
use vnet::sim::telemetry::json::Json;
use vnet::Cluster;

/// Parse a Chrome trace export and return the `traceEvents` array.
fn trace_events(trace: &str) -> Vec<Json> {
    let doc = Json::parse(trace).expect("perfetto export must be valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|u| u.as_str()),
        Some("ns"),
        "displayTimeUnit header"
    );
    doc.get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array")
        .to_vec()
}

fn field<'a>(ev: &'a Json, key: &str) -> Option<&'a str> {
    ev.get(key).and_then(|v| v.as_str())
}

/// Complete async episodes: names of every `b` event whose id also has a
/// matching `e` event.
fn complete_episodes(events: &[Json]) -> Vec<(String, String)> {
    let ends: Vec<&str> =
        events.iter().filter(|e| field(e, "ph") == Some("e")).filter_map(|e| field(e, "id")).collect();
    events
        .iter()
        .filter(|e| field(e, "ph") == Some("b"))
        .filter(|e| field(e, "id").is_some_and(|id| ends.contains(&id)))
        .map(|e| {
            (
                field(e, "cat").unwrap_or("").to_string(),
                field(e, "name").unwrap_or("").to_string(),
            )
        })
        .collect()
}

/// Golden schema test: an 8-host client/server run over a lossy fabric
/// exports a Perfetto trace with process/thread metadata, balanced async
/// spans, and at least one complete retransmission episode observable
/// end-to-end (channel retransmit span on the NIC, endpoint-load span in
/// the OS).
#[test]
fn perfetto_export_schema_golden() {
    let mut cs = CsConfig::small(7, CsMode::St, 8); // 7 clients + server = 8 hosts
    cs.warmup = SimDuration::from_millis(100);
    cs.measure = SimDuration::from_millis(300);
    cs.telemetry = true;
    cs.drop_prob = 0.05;
    let (_, c) = run_client_server_cluster(&cs);
    assert!(c.telemetry().enabled());

    let trace = c.telemetry().export_perfetto();
    let events = trace_events(&trace);
    assert!(events.len() > 20, "a lossy run must produce span traffic");

    // Metadata: every host that emitted events is a named process; the
    // per-layer tracks are named threads.
    let meta_names: Vec<&str> = events
        .iter()
        .filter(|e| field(e, "ph") == Some("M"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(|n| n.as_str()))
        .collect();
    assert!(meta_names.contains(&"host0"), "server process named: {meta_names:?}");
    assert!(meta_names.contains(&"nic.chan"), "channel track named");
    assert!(meta_names.contains(&"nic.dma"), "DMA track named");
    assert!(meta_names.contains(&"os.seg"), "OS residency track named");

    // Every event carries the mandatory fields.
    for ev in &events {
        let ph = field(ev, "ph").expect("ph");
        assert!(["M", "b", "e", "i"].contains(&ph), "unexpected phase {ph}");
        if ph != "M" {
            assert!(ev.get("ts").and_then(|t| t.as_f64()).is_some_and(|t| t >= 0.0));
            assert!(ev.get("pid").and_then(|p| p.as_f64()).is_some());
        }
        if ph == "b" || ph == "e" {
            assert!(field(ev, "id").is_some(), "async events need ids");
            assert!(field(ev, "cat").is_some(), "async events need categories");
        }
    }

    // The acceptance episode: a complete retransmission episode on a
    // channel track plus a complete endpoint-load span on the OS track —
    // the same recovery visible across both layers.
    let done = complete_episodes(&events);
    assert!(
        done.iter().any(|(cat, name)| cat == "nic.chan" && name == "retx_episode"),
        "no complete retransmit episode in {} episodes",
        done.len()
    );
    assert!(
        done.iter().any(|(cat, name)| cat == "os.seg" && name == "ep_load"),
        "no complete endpoint-load span"
    );
    assert!(
        done.iter().any(|(cat, name)| cat == "nic.dma" && name.starts_with("dma_")),
        "no complete DMA transfer span"
    );
}

/// Thrash-regime episode reconstruction: overcommitting the 8-frame
/// interface (10 clients) produces the full §4 story in one trace —
/// NotResident NACK backoff parks on the sender, endpoint load *and*
/// eviction spans on the server's OS track.
#[test]
fn perfetto_reconstructs_thrash_episodes() {
    let mut cs = CsConfig::small(10, CsMode::St, 8);
    cs.warmup = SimDuration::from_millis(100);
    cs.measure = SimDuration::from_millis(400);
    cs.telemetry = true;
    let (r, c) = run_client_server_cluster(&cs);
    assert!(r.nacks_not_resident > 0, "thrash regime must NACK");

    let events = trace_events(&c.telemetry().export_perfetto());
    let done = complete_episodes(&events);
    assert!(
        done.iter().any(|(cat, name)| cat == "nic.chan" && name == "nack_backoff"),
        "no complete NACK-backoff episode"
    );
    assert!(
        done.iter().any(|(cat, name)| cat == "os.seg" && name == "ep_load"),
        "no complete endpoint-load span"
    );
    assert!(
        done.iter().any(|(cat, name)| cat == "os.seg" && name == "ep_unload"),
        "no complete endpoint-eviction span"
    );
    // NACK markers appear as instants with their reason attached.
    assert!(
        events.iter().any(|e| field(e, "ph") == Some("i") && field(e, "name") == Some("nack_tx")),
        "NACK instants on the firmware track"
    );
}

/// Telemetry must observe, never perturb: the same seeded workload with
/// hooks attached and detached produces byte-identical protocol behavior
/// (event counts, simulated clock, per-layer counters).
#[test]
fn telemetry_does_not_perturb_protocol() {
    let run = |telemetry: bool| {
        let mut cs = CsConfig::small(4, CsMode::OneVn, 8);
        cs.warmup = SimDuration::from_millis(100);
        cs.measure = SimDuration::from_millis(300);
        cs.telemetry = telemetry;
        cs.drop_prob = 0.05;
        let (r, c) = run_client_server_cluster(&cs);
        let snap = c.telemetry().snapshot();
        (
            c.events_processed(),
            c.now(),
            snap.counter("host0.nic.data_sent"),
            snap.counter("host0.nic.retransmits"),
            snap.counter("host0.os.loads"),
            snap.counter("net.packets"),
            r.retransmits,
        )
    };
    assert_eq!(run(false), run(true), "telemetry hooks changed protocol behavior");
}

/// Satellite fix: trace-ring evictions surface in the unified snapshot as
/// `trace.dropped_events` instead of vanishing silently.
#[test]
fn trace_ring_drops_are_counted_in_snapshot() {
    let c = Cluster::builder().hosts(2).tracing(true).build();
    assert_eq!(c.telemetry().snapshot().counter("trace.dropped_events"), 0);
    {
        let mut ring = c.world().trace.borrow_mut();
        for i in 0..5000u32 {
            ring.record(SimTime::ZERO, 0, "test", format!("entry {i}"));
        }
    }
    let dropped = c.telemetry().snapshot().counter("trace.dropped_events");
    assert!(dropped > 0, "5000 records must overflow the 4096-entry ring");
    assert!(c.telemetry().trace_text().contains("earlier entries dropped"));
}

/// The builder and the unified handle compose: a telemetry-enabled
/// cluster built fluently exposes registry metrics and an exportable
/// (possibly empty) trace; snapshot deltas subtract counters.
#[test]
fn builder_telemetry_snapshot_delta_roundtrip() {
    let mut c = Cluster::builder().hosts(2).telemetry(true).seed(7).build();
    let a = c.create_endpoint(HostId(0));
    let b = c.create_endpoint(HostId(1));
    c.build_virtual_network(&[a, b]);
    c.make_resident(a);
    c.make_resident(b);
    let before = c.telemetry().snapshot();
    c.run_for(SimDuration::from_millis(5));
    let delta = c.telemetry().delta_since(&before);
    // Counters in the delta never exceed the absolute snapshot.
    let after = c.telemetry().snapshot();
    for (name, _) in delta.entries() {
        assert!(delta.counter(name) <= after.counter(name), "delta {name} exceeds total");
    }
    // Registry metrics (attached hooks) appear under their full names.
    assert!(
        after.get("host0.nic.frames_tx").is_some(),
        "registry counter missing from snapshot"
    );
    // Snapshot artifacts are valid JSON.
    let parsed = Json::parse(&after.to_json()).expect("metrics snapshot JSON");
    assert!(parsed.get("metrics").is_some());
}
