//! Control-plane chaos: the multi-tenant coordinator under a fault
//! campaign, on a mixed-fidelity cluster, with the invariant auditor
//! forced on.
//!
//! The scenario (fixed seed, byte-reproducible):
//!
//! * two tenants — "alpha" (tight byte quota: the noisy neighbor gets
//!   throttled) and "beta" — each with one service and one client on the
//!   full-fidelity half of a small fat tree;
//! * an open-loop Poisson population driving the abstract half, so the
//!   coordinator works under unrelated background load;
//! * a **live migration** of alpha's service requested to a host whose
//!   uplink the campaign takes down mid-protocol: the attempt aborts at
//!   `CreateDst`, retries with backoff to another host, and completes —
//!   all while the client keeps sending;
//! * the campaign **kills host 5** (its only uplink flaps 3–9 ms), so the
//!   reconcile loop must evict beta's service from it and re-converge;
//! * a **coordinator outage** window (5–7 ms) during which reconcile
//!   ticks degrade to cached-state serving (counted, not errored);
//! * the whole run must be byte-identical at 1 and 4 shards — control
//!   decisions are replicated state machines driven by keyed wheel
//!   events, not cross-shard messages.

use std::sync::Arc;
use vnet::corelib::EpFactory;
use vnet::net::{FaultScheduleSpec, LinkId, TopologySpec};
use vnet::prelude::*;
use vnet::sim::MsgFate;

fn at_us(us: u64) -> SimTime {
    SimTime::from_nanos(us * 1_000)
}

/// Echo service, stamped out by the tenant factory at every (re)creation
/// — including on the migration destination host.
struct Service {
    ep: EpId,
    pending: Vec<DeliveredMsg>,
}

impl ThreadBody for Service {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        let stash = std::mem::take(&mut self.pending);
        for m in stash {
            if sys.reply(self.ep, &m, 0, m.msg.args, 0).is_err() {
                self.pending.push(m);
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
            if sys.reply(self.ep, &m, 0, m.msg.args, 0).is_err() {
                self.pending.push(m);
            }
        }
        if self.pending.is_empty() {
            Step::WaitEvent(self.ep)
        } else {
            Step::Yield
        }
    }
}

/// Tenant client: keeps `total` requests flowing to translation 0 through
/// quota denials (yield, retry next epoch), credit exhaustion, and
/// undeliverable returns (a request that chased the old incarnation of a
/// migrated service comes back; the slot is re-sent through the updated
/// translation).
struct Client {
    ep: EpId,
    total: u32,
    sent: u32,
    replies: u32,
    returned: u32,
    denied: u64,
}

impl ThreadBody for Client {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while let Some(m) = sys.poll(self.ep, QueueSel::Reply) {
            if m.undeliverable {
                self.returned += 1;
                self.sent -= 1; // re-earn the slot; resend below
            } else {
                self.replies += 1;
            }
        }
        while self.sent < self.total {
            match sys.request(self.ep, 0, 1, [u64::from(self.sent), 0, 0, 0], 0) {
                Ok(_) => self.sent += 1,
                Err(SendError::NoCredit) => return Step::WaitEvent(self.ep),
                Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                Err(SendError::QuotaExceeded) => {
                    self.denied += 1;
                    return Step::Yield; // next epoch refills the budget
                }
                Err(e) => panic!("send failed: {e:?}"),
            }
        }
        if self.replies >= self.total {
            Step::Exit
        } else {
            Step::WaitEvent(self.ep)
        }
    }
}

/// Everything a run observably produces, for exact 1-vs-4-shard
/// comparison.
#[derive(Debug, PartialEq)]
struct Outcome {
    shards_used: u32,
    events: u64,
    now_ns: u64,
    ledger: Vec<(u64, MsgFate)>,
    violations: u64,
    spans: String,
    trace: String,
    /// (started, completed, failed, reconciles, cached_ticks, retries).
    ctl: (u64, u64, u64, u64, u64, u64),
    /// Final placements: (vid, host, raw endpoint id).
    placements: Vec<(u32, u32, u32)>,
    denials: u64,
    /// Per client: (replies, returned, quota denials observed).
    clients: Vec<(u32, u32, u64)>,
    abs: Vec<(u64, u64, u64, u64, u64)>,
    lat: (Vec<u64>, u64, u128),
}

const FULL_BASE: u32 = 4;
const HOSTS: u32 = 8;

fn control_spec() -> ControlSpec {
    let echo: EpFactory =
        Arc::new(|gep| Box::new(Service { ep: gep.ep, pending: Vec::new() }));
    ControlSpec {
        tenants: vec![
            TenantSpec {
                name: "alpha".into(),
                max_endpoints: 2,
                max_bound_channels: 1,
                bytes_per_epoch: 400, // per-ep slice: 200 → ~3 requests/epoch
                factory: echo.clone(),
            },
            TenantSpec {
                name: "beta".into(),
                max_endpoints: 2,
                max_bound_channels: 4,
                bytes_per_epoch: 1_000_000,
                factory: echo,
            },
        ],
        tick_period: SimDuration::from_micros(500),
        first_tick: at_us(100),
        horizon: at_us(38_000),
        outages: vec![(at_us(5_000), at_us(7_000))],
        phase_gap: SimDuration::from_micros(1_500),
        retry_backoff: SimDuration::from_micros(800),
        max_attempts: 3,
        epoch: SimDuration::from_millis(1),
        placement_pool: (FULL_BASE..HOSTS).collect(),
    }
}

fn run_once(shards: u32) -> Outcome {
    // Hosts 0–3 abstract (leaf 0 and 1), hosts 4–7 full (leaf 2 and 3).
    let mut fid = FidelityMap::full();
    fid.set_hosts(0..FULL_BASE, Fidelity::Abstract);
    let mut cfg = ClusterConfig::now(HOSTS)
        .with_seed(0xC4A0_57E5)
        .with_audit(true)
        .with_telemetry(true)
        .with_shards(shards)
        .with_fidelity(fid);
    cfg.topology = TopologySpec::FatTree { leaves: 4, hosts_per_leaf: 2, spines: 2 };
    // Host 5's only uplink dies 3–9 ms: kills the CreateDst of the
    // requested alpha migration (targeted at host 5) AND displaces beta's
    // service, which lives there.
    cfg.faults = FaultScheduleSpec::none().flap(LinkId(5), at_us(3_000), at_us(9_000));
    let mut c = Cluster::new(cfg);
    c.telemetry().trace_enable();
    c.install_control(control_spec());

    let (vid_sa, _) = c.ctl_create_service(0, HostId(4)).expect("alpha service");
    let (vid_sb, _) = c.ctl_create_service(1, HostId(5)).expect("beta service");
    let (vid_ca, gep_ca) = c.ctl_create_client(0, HostId(7)).expect("alpha client");
    let (vid_cb, gep_cb) = c.ctl_create_client(1, HostId(7)).expect("beta client");
    // Quota enforcement at the allocation boundary, both flavors.
    assert!(
        matches!(c.ctl_create_client(0, HostId(6)), Err(QuotaError::Endpoints { .. })),
        "alpha's endpoint quota (2) must reject a third endpoint"
    );
    c.ctl_connect(vid_ca, 0, vid_sa).expect("alpha connect");
    assert!(
        matches!(c.ctl_connect(vid_cb, 1, vid_sa), Err(QuotaError::BoundChannels { .. })),
        "alpha's bound-channel quota (1) must reject a second binding"
    );
    c.ctl_connect(vid_cb, 0, vid_sb).expect("beta connect");

    let tid_a = c.spawn_thread(
        HostId(7),
        Box::new(Client { ep: gep_ca.ep, total: 40, sent: 0, replies: 0, returned: 0, denied: 0 }),
    );
    let tid_b = c.spawn_thread(
        HostId(7),
        Box::new(Client { ep: gep_cb.ep, total: 150, sent: 0, replies: 0, returned: 0, denied: 0 }),
    );

    // Ask for a live migration of alpha's service onto the host the
    // campaign is about to kill: Drain lands before the flap, CreateDst
    // (first_tick + 2×phase_gap = 3.1 ms) lands just inside it.
    c.ctl_request_migration(vid_sa, Some(HostId(5)));

    // Background open-loop load on the abstract half.
    let ol = OpenLoopSpec {
        streams: 2,
        mean_gap: SimDuration::from_micros(25),
        requests: 300,
        zipf_s: 1.0,
        targets: FULL_BASE,
        size_min: 64,
        size_max: 4_096,
        size_alpha: 1.3,
    };
    for h in 0..FULL_BASE {
        c.drive_open_loop(HostId(h), ol.clone());
    }

    // Two slices: the 8 ms boundary lands mid-migration for both tenants,
    // exercising split/absorb of in-flight control state.
    c.run_for(SimDuration::from_millis(8));
    c.run_for(SimDuration::from_millis(32));

    assert_eq!(c.fault_horizon(), at_us(9_000), "campaign horizon");
    c.check_recovery(SimDuration::from_millis(20));
    c.check_reconverged(SimDuration::from_millis(15));
    c.auditor().borrow_mut().check_tenant_quota();
    if let Err(report) = c.audit() {
        panic!("control-plane chaos must finish with zero violations:\n{report}");
    }

    let ctl = c.control().expect("control installed");
    let outcome = Outcome {
        shards_used: c.shards(),
        events: c.events_processed(),
        now_ns: c.now().as_nanos(),
        ctl: (
            ctl.migrations_started,
            ctl.migrations_completed,
            ctl.migrations_failed,
            ctl.reconciles,
            ctl.cached_ticks,
            ctl.retries,
        ),
        placements: ctl.placements().map(|(v, m)| (v, m.host, m.ep.0)).collect(),
        denials: c.world().quota_denials(),
        ledger: {
            let a = c.auditor();
            let l = a.borrow().ledger_snapshot();
            l
        },
        violations: c.auditor().borrow().total_violations(),
        spans: c.telemetry().handle().map(|t| t.borrow().span_log()).unwrap_or_default(),
        trace: c.telemetry().trace_text(),
        clients: [tid_a, tid_b]
            .iter()
            .map(|&tid| {
                let b: &Client = c.body(HostId(7), tid).expect("client body");
                (b.replies, b.returned, b.denied)
            })
            .collect(),
        abs: (0..FULL_BASE)
            .map(|h| {
                let s = c.abs_stats(HostId(h)).expect("abstract host");
                (s.sent, s.sent_bytes, s.recvd, s.recv_bytes, s.corrupt_drops)
            })
            .collect(),
        lat: {
            let l = c.open_loop_latency();
            (l.buckets().to_vec(), l.count(), l.sum())
        },
    };

    // The scenario must have actually exercised every claimed mechanism.
    let (started, completed, failed, reconciles, cached, retries) = outcome.ctl;
    assert!(completed >= 2, "both displaced services must land: {:?}", outcome.ctl);
    assert!(failed >= 1, "the migration into the dead host must abort: {:?}", outcome.ctl);
    assert!(retries >= 1, "the aborted attempt must retry with backoff: {:?}", outcome.ctl);
    assert!(started > completed, "failed attempts count as started: {:?}", outcome.ctl);
    assert!(reconciles > 0, "the reconcile loop must run");
    assert!(cached >= 1, "outage-window ticks must degrade to cached state, not error");
    assert!(outcome.denials >= 1, "alpha's tight byte budget must throttle its client");
    for &(vid, host, _) in &outcome.placements {
        assert_ne!(host, 5, "vid {vid} must not remain on the killed host");
    }
    let sa = ctl.managed(vid_sa).expect("alpha service record");
    assert_ne!(sa.host, 4, "alpha's service must have moved off its origin");
    let sb = ctl.managed(vid_sb).expect("beta service record");
    assert_ne!(sb.host, 5, "beta's service must have been evicted from the dead host");
    assert_eq!(
        outcome.clients.iter().map(|&(r, ..)| r).collect::<Vec<_>>(),
        vec![40, 150],
        "both clients must see every reply exactly once despite the migrations"
    );
    assert!(
        outcome.clients[0].2 >= 1,
        "alpha's client must observe QuotaExceeded: {:?}",
        outcome.clients
    );
    assert_eq!(c.open_loop_remaining(), 0, "background load must drain");
    assert_eq!(outcome.lat.1, u64::from(FULL_BASE) * 300, "every open-loop request served");
    outcome
}

#[test]
fn coordinator_survives_campaign_and_matches_sequential() {
    let seq = run_once(1);
    assert_eq!(seq.shards_used, 1);
    assert_eq!(seq.violations, 0);
    let par = run_once(4);
    assert_eq!(par.shards_used, 4);
    // Field-by-field so a mismatch names what diverged.
    assert_eq!(seq.ctl, par.ctl, "control-plane counters");
    assert_eq!(seq.placements, par.placements, "final placements");
    assert_eq!(seq.denials, par.denials, "quota denials");
    assert_eq!(seq.clients, par.clients, "client results");
    assert_eq!(seq.abs, par.abs, "abstract host counters");
    assert_eq!(seq.lat, par.lat, "open-loop latency histogram");
    assert_eq!(seq.events, par.events, "event count");
    assert_eq!(seq.now_ns, par.now_ns, "final clock");
    assert_eq!(seq.ledger, par.ledger, "audit ledger");
    assert_eq!(seq.violations, par.violations, "violations");
    assert_eq!(seq.spans, par.spans, "span log");
    assert_eq!(seq.trace, par.trace, "trace ring");
}
