//! Time-sharing two parallel applications on one partition — §6.3 as a
//! runnable demo of the paper's generality claim: virtual networks adapt
//! to process scheduling instead of constraining it.
//!
//! ```text
//! cargo run --release --example timeshare -- [nodes]
//! ```

use vnet::apps::timeshare::{run_timeshare, SyntheticApp};
use vnet::prelude::SimDuration;

fn main() {
    let nodes: u32 =
        std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);

    println!("two communication-intensive parallel apps, {nodes} nodes each, no gang scheduler\n");
    let r = run_timeshare(
        nodes,
        2,
        |_| SyntheticApp {
            steps: 100,
            compute: SimDuration::from_micros(1_000),
            bytes: 512,
            imbalance: 0.0,
        },
        2026,
    );

    println!("running them in sequence : {:.3} s", r.sequential.as_secs_f64());
    println!("time-shared concurrently : {:.3} s", r.concurrent.as_secs_f64());
    println!(
        "slowdown                 : {:.1}% (paper: within 15% of the sequence)",
        (r.slowdown() - 1.0) * 100.0
    );
    for (i, (solo, shared)) in r.solo_comm.iter().zip(&r.shared_comm).enumerate() {
        println!(
            "app {i}: mean communication time {:.1} ms solo vs {:.1} ms shared (paper: nearly constant)",
            solo.as_secs_f64() * 1e3,
            shared.as_secs_f64() * 1e3
        );
    }
}
