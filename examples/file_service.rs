//! A cluster file service over virtual networks — the paper's generality
//! story ("high-speed communication ought to be available to all
//! components, including file systems … parallel clients and servers").
//!
//! ```text
//! cargo run --release --example file_service -- [clients]
//! ```
//!
//! One storage node exports a block store under a well-known name. Client
//! nodes resolve it through the rendezvous service, then issue a mix of
//! 8 KB block reads (bulk replies) and small stat calls. The server is
//! event-driven (sleeps on its endpoint mask, §3.3) and shares its node
//! with a background compute job to show the OS keeping the network fast
//! while the CPU is contended.

use vnet::prelude::*;
use vnet::Cluster;

const OP_STAT: u16 = 1;
const OP_READ: u16 = 2;

/// Event-driven block server: replies to stats with metadata words and to
/// reads with an 8 KB payload.
struct BlockServer {
    ep: EpId,
    stats_served: u64,
    reads_served: u64,
    pending: Vec<DeliveredMsg>,
}

impl BlockServer {
    fn serve(&mut self, sys: &mut Sys<'_>, m: DeliveredMsg) {
        let r = match m.msg.handler {
            OP_STAT => sys.reply(self.ep, &m, OP_STAT, [m.msg.args[0], 4096, 0o644, 0], 0),
            OP_READ => sys.reply(self.ep, &m, OP_READ, [m.msg.args[0], 0, 0, 0], 8192),
            other => panic!("unknown op {other}"),
        };
        match r {
            Ok(_) => {
                if m.msg.handler == OP_STAT {
                    self.stats_served += 1;
                } else {
                    self.reads_served += 1;
                }
            }
            Err(_) => self.pending.push(m), // backpressure: retry next burst
        }
    }
}

impl ThreadBody for BlockServer {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while let Some(m) = self.pending.pop() {
            let before = self.pending.len();
            self.serve(sys, m);
            if self.pending.len() > before {
                return Step::Yield;
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
            self.serve(sys, m);
        }
        if self.pending.is_empty() {
            Step::WaitEvent(self.ep)
        } else {
            Step::Yield
        }
    }
}

/// A compute job sharing the storage node's CPU.
struct BackgroundJob;
impl ThreadBody for BackgroundJob {
    fn run(&mut self, _sys: &mut Sys<'_>) -> Step {
        Step::Compute(SimDuration::from_millis(5))
    }
}

/// Client: alternating stat/read workload with up to 8 outstanding ops.
struct FsClient {
    ep: EpId,
    ops: u32,
    issued: u32,
    stats_done: u64,
    reads_done: u64,
    bytes_read: u64,
    t0: Option<SimTime>,
    t1: Option<SimTime>,
}

impl ThreadBody for FsClient {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        if self.t0.is_none() {
            self.t0 = Some(sys.now());
        }
        while self.issued < self.ops && sys.outstanding(self.ep) < 8 {
            let op = if self.issued.is_multiple_of(4) { OP_STAT } else { OP_READ };
            match sys.request(self.ep, 0, op, [self.issued as u64, 0, 0, 0], 0) {
                Ok(_) => self.issued += 1,
                Err(SendError::NoCredit) | Err(SendError::QueueFull) => break,
                Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                Err(e) => panic!("{e:?}"),
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Reply) {
            assert!(!m.undeliverable, "storage node vanished");
            match m.msg.handler {
                OP_STAT => self.stats_done += 1,
                OP_READ => {
                    self.reads_done += 1;
                    self.bytes_read += m.msg.payload_bytes as u64;
                }
                _ => unreachable!(),
            }
        }
        if self.stats_done + self.reads_done == self.ops as u64 {
            self.t1 = Some(sys.now());
            return Step::Exit;
        }
        Step::WaitEvent(self.ep)
    }
}

fn main() {
    let clients: u32 =
        std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(6);
    let mut cluster = Cluster::new(ClusterConfig::now(clients + 1));
    let storage = HostId(0);

    // The service registers its endpoint under a well-known name (§3.1
    // rendezvous) and goes to sleep on its event mask.
    let svc = cluster.create_endpoint(storage);
    cluster.register_name("blockstore/0", svc);
    cluster.spawn_thread(
        storage,
        Box::new(BlockServer { ep: svc.ep, stats_served: 0, reads_served: 0, pending: vec![] }),
    );
    cluster.spawn_thread(storage, Box::new(BackgroundJob));

    let ops = 400u32;
    let mut tids = Vec::new();
    for i in 0..clients {
        let h = HostId(i + 1);
        let ep = cluster.create_endpoint(h);
        assert!(cluster.connect_by_name(ep, 0, "blockstore/0"));
        tids.push((
            h,
            cluster.spawn_thread(
                h,
                Box::new(FsClient {
                    ep: ep.ep,
                    ops,
                    issued: 0,
                    stats_done: 0,
                    reads_done: 0,
                    bytes_read: 0,
                    t0: None,
                    t1: None,
                }),
            ),
        ));
    }

    cluster.run_for(SimDuration::from_secs(60));

    println!("{clients} clients x {ops} ops against one event-driven storage node:\n");
    println!("client  stats  reads  MB read  elapsed(ms)  MB/s");
    let mut total_bytes = 0u64;
    let mut makespan = 0.0f64;
    for (i, &(h, t)) in tids.iter().enumerate() {
        let c: &FsClient = cluster.body(h, t).expect("client");
        let el = (c.t1.expect("finished") - c.t0.unwrap()).as_secs_f64();
        total_bytes += c.bytes_read;
        makespan = makespan.max(el);
        println!(
            "{i:>6}  {:>5}  {:>5}  {:>7.1}  {:>11.1}  {:>5.1}",
            c.stats_done,
            c.reads_done,
            c.bytes_read as f64 / 1e6,
            el * 1e3,
            c.bytes_read as f64 / 1e6 / el
        );
    }
    println!(
        "\naggregate: {:.1} MB served in {:.1} ms = {:.1} MB/s (SBUS ceiling 46.8)",
        total_bytes as f64 / 1e6,
        makespan * 1e3,
        total_bytes as f64 / 1e6 / makespan
    );
    println!(
        "storage node also ran a compute job throughout; endpoint loads on it: {}",
        cluster
            .telemetry()
            .snapshot()
            .counter(&format!("host{}.os.loads", storage.0))
    );
}
