//! Split-C-style global arrays — a distributed histogram over a global
//! address space, the programming model the paper's Split-C users had.
//!
//! ```text
//! cargo run --release --example global_array -- [servers] [items]
//! ```
//!
//! One accessor scatters `items` values into a global array spread
//! block-cyclically over `servers` memory-server nodes with split-phase
//! puts, then reads back a sample to verify.

use vnet::apps::split_c::{provision, GlobalArray, GlobalArrayClient};
use vnet::prelude::*;
use vnet::Cluster;
use vnet::ClusterConfig;

struct Histogrammer {
    ep: EpId,
    cl: GlobalArrayClient,
    items: u64,
    issued: u64,
    phase: u8,
    sample_ok: u64,
    t0: Option<SimTime>,
    t1: Option<SimTime>,
}

impl ThreadBody for Histogrammer {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        if self.t0.is_none() {
            self.t0 = Some(sys.now());
        }
        self.cl.harvest(sys, self.ep);
        match self.phase {
            0 => {
                while self.issued < self.items {
                    // Hash each item into a bucket; store the item id.
                    let bucket = (self.issued * 2654435761) % self.cl.layout.words_total;
                    match self.cl.put(sys, self.ep, bucket, self.issued) {
                        Ok(()) => self.issued += 1,
                        Err(SendError::NoCredit) | Err(SendError::QueueFull) => break,
                        Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                        Err(e) => panic!("{e:?}"),
                    }
                }
                if self.issued == self.items && self.cl.quiescent() {
                    self.phase = 1;
                    self.issued = 0;
                }
                Step::Yield
            }
            1 => {
                while self.issued < 64 {
                    let idx = (self.issued * 13) % self.cl.layout.words_total;
                    match self.cl.get(sys, self.ep, idx) {
                        Ok(()) => self.issued += 1,
                        Err(SendError::NoCredit) | Err(SendError::QueueFull) => break,
                        Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                        Err(e) => panic!("{e:?}"),
                    }
                }
                if self.issued == 64 && self.cl.quiescent() {
                    self.sample_ok = self.cl.ops.completed_gets.len() as u64;
                    self.t1 = Some(sys.now());
                    self.phase = 2;
                    return Step::Exit;
                }
                Step::Yield
            }
            _ => Step::Exit,
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let servers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let items: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);

    let mut cluster = Cluster::new(ClusterConfig::now(servers as u32 + 1));
    let layout = GlobalArray::new(4096, servers, 64);
    let hosts: Vec<HostId> = (1..=servers as u32).map(HostId).collect();
    let acc = provision(&mut cluster, layout, &hosts, HostId(0));
    let t = cluster.spawn_thread(
        HostId(0),
        Box::new(Histogrammer {
            ep: acc.ep,
            cl: GlobalArrayClient::new(layout),
            items,
            issued: 0,
            phase: 0,
            sample_ok: 0,
            t0: None,
            t1: None,
        }),
    );
    cluster.run_for(SimDuration::from_secs(60));
    let h: &Histogrammer = cluster.body(HostId(0), t).expect("accessor");
    let el = (h.t1.expect("finished") - h.t0.unwrap()).as_secs_f64();
    println!(
        "{items} split-phase puts into a {}-word global array over {servers} memory servers",
        layout.words_total
    );
    println!("  elapsed          : {:.1} ms", el * 1e3);
    println!("  put rate         : {:.0} ops/s", items as f64 / el);
    println!("  read-back sample : {}/64 gets verified", h.sample_ok);
    let snap = cluster.telemetry().snapshot();
    println!(
        "  per-server gets+puts served: {:?}",
        hosts
            .iter()
            .map(|&hh| snap.counter(&format!("host{}.nic.deposits", hh.0)))
            .collect::<Vec<_>>()
    );
}
