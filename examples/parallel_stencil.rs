//! A parallel stencil application on the BSP layer — the "traditional
//! parallel library" use of virtual networks (the role MPICH-on-AM plays
//! in the paper).
//!
//! ```text
//! cargo run --release --example parallel_stencil -- [ranks] [iters]
//! ```
//!
//! Each rank owns a slab of a 1-D domain; per iteration it computes on its
//! slab and exchanges halo rows with both neighbours, then every 10
//! iterations joins a reduction (modeled by its communication pattern).

use vnet::apps::bsp::{launch_job, patterns, BspApp, BspRunner, SuperStep};
use vnet::prelude::*;
use vnet::Cluster;
use vnet::ClusterConfig;

struct Stencil {
    iters: u64,
    halo_bytes: u32,
    compute_per_iter: SimDuration,
}

impl BspApp for Stencil {
    fn step(&mut self, rank: usize, n: usize, step: u64) -> Option<SuperStep> {
        // Every 10th step is a reduction round-set; others are halo steps.
        let halo_steps = self.iters;
        if step >= halo_steps {
            return None;
        }
        let (l, r) = patterns::ring(rank, n);
        Some(SuperStep {
            compute: self.compute_per_iter,
            sends: vec![(l, self.halo_bytes), (r, self.halo_bytes)],
            recv_count: 2,
        })
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let ranks: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let iters: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);

    let mut cluster = Cluster::new(ClusterConfig::now(ranks));
    let hosts: Vec<HostId> = (0..ranks).map(HostId).collect();
    let job = launch_job(&mut cluster, &hosts, |_| Stencil {
        iters,
        halo_bytes: 4096,
        compute_per_iter: SimDuration::from_micros(500),
    });
    cluster.run_for(SimDuration::from_secs(60));

    println!("{ranks}-rank stencil, {iters} iterations, 4KB halos each way:\n");
    println!("rank  elapsed(ms)  compute(ms)  comm+wait(ms)  msgs");
    let mut slowest = 0.0f64;
    for (rank, &(h, t, _)) in job.iter().enumerate() {
        let st = &cluster.body::<BspRunner<Stencil>>(h, t).expect("rank").stats;
        let el = st.elapsed().expect("finished").as_secs_f64() * 1e3;
        let comp = st.compute.as_secs_f64() * 1e3;
        println!(
            "{rank:>4}  {el:>11.2}  {comp:>11.2}  {:>13.2}  {:>4}",
            el - comp,
            st.msgs_sent
        );
        slowest = slowest.max(el);
    }
    let ideal = iters as f64 * 0.5; // compute only
    println!("\nmakespan {slowest:.2} ms vs {ideal:.2} ms pure compute: {:.1}% comm overhead", (slowest / ideal - 1.0) * 100.0);
}
