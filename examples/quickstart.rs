//! Quickstart: two workstations, one virtual network, request/reply.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a two-node simulated cluster, creates an endpoint on each node,
//! wires them into a virtual network, and runs a ping-pong exchange while
//! printing what every layer did.

use vnet::prelude::*;
use vnet::Cluster;

/// Server thread: answers every request with `args[0] + 1`.
struct Counter {
    ep: EpId,
    served: u64,
}

impl ThreadBody for Counter {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
            self.served += 1;
            let _ = sys.reply(self.ep, &m, 0, [m.msg.args[0] + 1, 0, 0, 0], 0);
        }
        // Sleep on the endpoint's event mask until something arrives
        // (thread-based communication events, paper §3.3).
        Step::WaitEvent(self.ep)
    }
}

/// Client thread: sends `rounds` requests one at a time and records RTTs.
struct Client {
    ep: EpId,
    rounds: u32,
    sent: u32,
    got: u32,
    sent_at: SimTime,
    rtts_us: Vec<f64>,
}

impl ThreadBody for Client {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        if sys.outstanding(self.ep) == 0 {
            if self.sent == self.rounds {
                return Step::Exit;
            }
            // Translation index 1 = the second endpoint of the virtual
            // network (endpoint-relative naming, paper §3.1).
            sys.request(self.ep, 1, 0, [self.sent as u64, 0, 0, 0], 0)
                .expect("send");
            self.sent_at = sys.now();
            self.sent += 1;
            return Step::Yield;
        }
        if let Some(m) = sys.poll(self.ep, QueueSel::Reply) {
            assert_eq!(m.msg.args[0], self.got as u64 + 1, "handler math");
            self.got += 1;
            self.rtts_us.push((sys.now() - self.sent_at).as_micros_f64());
        }
        Step::Yield
    }
}

fn main() {
    // The paper's cluster configuration at 2 nodes: LANai-style NICs with
    // 8 endpoint frames, Solaris-style endpoint management, Myrinet-like
    // links.
    let mut cluster = Cluster::new(ClusterConfig::now(2));

    let a = cluster.create_endpoint(HostId(0));
    let b = cluster.create_endpoint(HostId(1));
    cluster.build_virtual_network(&[a, b]);

    cluster.spawn_thread(HostId(1), Box::new(Counter { ep: b.ep, served: 0 }));
    let client = cluster.spawn_thread(
        HostId(0),
        Box::new(Client {
            ep: a.ep,
            rounds: 100,
            sent: 0,
            got: 0,
            sent_at: SimTime::ZERO,
            rtts_us: Vec::new(),
        }),
    );

    cluster.run_for(SimDuration::from_millis(200));

    let c: &Client = cluster.body(HostId(0), client).expect("client body");
    assert_eq!(c.got, 100);
    let mean = c.rtts_us.iter().sum::<f64>() / c.rtts_us.len() as f64;
    // Every layer's counters through one flat snapshot (dotted
    // host/layer/metric names); see also MetricsSnapshot::to_table().
    let snap = cluster.telemetry().snapshot();
    println!("100 request/reply round trips completed");
    println!("  mean RTT            : {mean:.1} us");
    println!(
        "  endpoints faulted in : {} loads on h0, {} on h1 (demand residency, paper fig. 2)",
        snap.counter("host0.os.loads"),
        snap.counter("host1.os.loads")
    );
    println!(
        "  NIC h0               : {} data frames sent, {} acks received, {} retransmissions",
        snap.counter("host0.nic.data_sent"),
        snap.counter("host0.nic.acks_rx"),
        snap.counter("host0.nic.retransmits")
    );
    println!("  simulated time       : {}", cluster.now());
}
