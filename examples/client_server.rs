//! A cluster service under load: one server, many clients, overcommitted
//! NI resources — the paper's §6.4 scenario as a runnable demo.
//!
//! ```text
//! cargo run --release --example client_server -- [clients] [st|mt]
//! ```
//!
//! With more clients than the 8 NI endpoint frames, the OS starts
//! remapping endpoints on the fly; the demo prints the §6.4.1 diagnostics:
//! remap rate, NACK counts, and the bimodal client latency distribution.

use vnet::apps::clientserver::{run_client_server, CsConfig, CsMode};
use vnet::prelude::SimDuration;

fn main() {
    let mut args = std::env::args().skip(1);
    let clients: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let mode = match args.next().as_deref() {
        Some("mt") => CsMode::Mt,
        _ => CsMode::St,
    };

    let mut cfg = CsConfig::small(clients, mode, 8);
    cfg.measure = SimDuration::from_secs(3);
    println!(
        "{clients} clients streaming small requests at a {} server, 8 endpoint frames...",
        match mode {
            CsMode::Mt => "multi-threaded (event-driven)",
            _ => "single-threaded (polling)",
        }
    );
    let r = run_client_server(&cfg);

    println!("\naggregate throughput : {:>10.0} msgs/s", r.aggregate);
    let min = r.per_client.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = r.per_client.iter().cloned().fold(0.0, f64::max);
    println!("per-client range     : {min:>10.0} .. {max:.0} msgs/s");
    println!("endpoint remaps      : {:>10.1} /s (paper: 200-300/s under thrash)", r.remaps_per_sec);
    println!("NACK not-resident    : {:>10}", r.nacks_not_resident);
    println!("NACK queue-full      : {:>10}", r.nacks_queue_full);

    let mut rtt = r.rtt_us.clone();
    if let Some((lo, hi, frac)) = rtt.bimodal_split(8.0) {
        println!(
            "client RTTs are bimodal (paper section 6.4.1): fast mode {:.0} us ({:.0}% of requests), slow (remap) mode {:.0} us",
            lo,
            frac * 100.0,
            hi
        );
    } else {
        println!(
            "client RTTs unimodal: p50 {:.0} us, p99 {:.0} us (no remapping at this client count)",
            rtt.quantile(0.5),
            rtt.quantile(0.99)
        );
    }
}
