//! # vnet — virtual networks for fast, general-purpose communication
//!
//! A from-scratch Rust reproduction of *Mainwaring & Culler, "Design
//! Challenges of Virtual Networks: Fast, General-Purpose Communication"*
//! (PPoPP 1999): the Berkeley NOW cluster's virtual-network system —
//! Active Messages endpoints virtualized over scarce network-interface
//! resources — rebuilt as a deterministic discrete-event simulation of the
//! entire stack.
//!
//! This crate is a facade: it re-exports the workspace's layers.
//!
//! | layer | crate | contents |
//! |-------|-------|----------|
//! | programming interface + cluster | `vnet-core` | endpoints, virtual networks, protection, credits, thread events, [`Cluster`] |
//! | workloads | `vnet-apps` | LogP/bandwidth microbenchmarks, client/server contention, NPB skeletons, Linpack, time-sharing |
//! | host OS model | `vnet-os` | endpoint segment driver (4-state protocol), remap daemon, scheduler |
//! | network interface | `vnet-nic` | endpoint frames, stop-and-wait channels, WRR service, SBUS DMA |
//! | network fabric | `vnet-net` | cut-through fat-tree fabric, routing, faults |
//! | simulation kernel | `vnet-sim` | event engine, deterministic RNG, statistics |
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the full system inventory and experiment index.

pub use vnet_apps as apps;
pub use vnet_core as corelib;
pub use vnet_net as net;
pub use vnet_nic as nic;
pub use vnet_os as os;
pub use vnet_sim as sim;

pub use vnet_core::prelude;
pub use vnet_core::{Cluster, ClusterConfig, CostModel, Mode, SendError, Step, Sys, ThreadBody};
