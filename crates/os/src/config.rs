//! OS model configuration.

use crate::replace::ReplacementPolicy;
use vnet_sim::SimDuration;

/// Tunables of the endpoint segment driver and remap daemon.
#[derive(Clone, Debug)]
pub struct OsConfig {
    /// Whether the on-host r/w state exists (§4.2). When true (the paper's
    /// final design) a write fault returns immediately after scheduling the
    /// remap; when false (the original design, kept as an ablation) the
    /// faulting thread blocks until the endpoint is resident.
    pub fast_write_fault: bool,
    /// Eviction policy when all NI frames are occupied. The paper replaces
    /// "a resident endpoint at random".
    pub policy: ReplacementPolicy,
    /// Kernel time consumed by a page/protection fault before the thread
    /// resumes (trap + segment driver entry).
    pub fault_cost: SimDuration,
    /// Daemon bookkeeping time between remap pipeline steps ("the thread
    /// periodically services re-mapping requests in the background").
    /// Calibrated so a full unload+load cycle takes 3-4 ms, giving the
    /// §6.4.1 sustained remap rate of 200-300/s under thrash.
    pub daemon_op_cost: SimDuration,
    /// Latency to wake a thread blocked on a synchronization variable
    /// (driver event → cv broadcast → dispatch).
    pub wake_cost: SimDuration,
    /// Swap-in delay for endpoints in the on-disk state.
    pub disk_delay: SimDuration,
}

impl Default for OsConfig {
    fn default() -> Self {
        OsConfig {
            fast_write_fault: true,
            policy: ReplacementPolicy::Random,
            fault_cost: SimDuration::from_micros(25),
            daemon_op_cost: SimDuration::from_micros(1_200),
            wake_cost: SimDuration::from_micros(30),
            disk_delay: SimDuration::from_millis(12),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_design() {
        let c = OsConfig::default();
        assert!(c.fast_write_fault, "on-host r/w state is the shipped design");
        assert_eq!(c.policy, ReplacementPolicy::Random);
        assert!(c.disk_delay > c.daemon_op_cost);
    }
}
