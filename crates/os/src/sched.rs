//! Per-node thread scheduler.
//!
//! A conventional local time-sharing scheduler (§6.3 relies on "implicit
//! co-scheduling which coordinates the scheduling of processes within
//! parallel applications using conventional local schedulers"): one CPU per
//! node, a round-robin ready queue with a fixed quantum, and threads that
//! block on endpoint events or residency transitions (§3.3 thread-based
//! events).
//!
//! The scheduler owns only thread *states*; executing thread bodies is the
//! composing world's job (it asks [`Scheduler::current`], runs the body,
//! and reports back via `block`/`yield_current`/`exit_current`).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use vnet_nic::EpId;
use vnet_sim::{SimDuration, SimTime};

/// Thread identifier, unique within a node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tid(pub u32);

impl fmt::Debug for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Why a thread is not runnable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting on an endpoint's event mask (message arrival).
    EndpointEvent(EpId),
    /// Waiting for an endpoint to become resident (ablation path / page-in).
    Residency(EpId),
    /// Voluntary sleep until a deadline (the composing world arms the
    /// timer and calls [`Scheduler::wake`]).
    Sleep,
}

/// Scheduler tunables.
#[derive(Clone, Debug)]
pub struct SchedConfig {
    /// Round-robin timeslice.
    pub quantum: SimDuration,
    /// Context-switch cost charged when the running thread changes.
    pub switch_cost: SimDuration,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            quantum: SimDuration::from_millis(10),
            switch_cost: SimDuration::from_micros(15),
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum TState {
    Ready,
    Running,
    Blocked(BlockReason),
    Done,
}

/// One node's thread scheduler.
pub struct Scheduler {
    cfg: SchedConfig,
    threads: HashMap<Tid, TState>,
    ready: VecDeque<Tid>,
    running: Option<Tid>,
    last_ran: Option<Tid>,
    slice_started: SimTime,
    next_tid: u32,
    preemptions: u64,
    switches: u64,
}

impl Scheduler {
    /// Empty scheduler.
    pub fn new(cfg: SchedConfig) -> Self {
        Scheduler {
            cfg,
            threads: HashMap::new(),
            ready: VecDeque::new(),
            running: None,
            last_ran: None,
            slice_started: SimTime::ZERO,
            next_tid: 0,
            preemptions: 0,
            switches: 0,
        }
    }

    /// Create a thread in the Ready state; returns its id.
    pub fn spawn(&mut self) -> Tid {
        let tid = Tid(self.next_tid);
        self.next_tid += 1;
        self.threads.insert(tid, TState::Ready);
        self.ready.push_back(tid);
        tid
    }

    /// The thread currently on the CPU, if any.
    pub fn current(&self) -> Option<Tid> {
        self.running
    }

    /// Whether any thread is ready or running.
    pub fn has_runnable(&self) -> bool {
        self.running.is_some() || !self.ready.is_empty()
    }

    /// Number of threads waiting in the ready queue (excluding the
    /// incumbent).
    pub fn ready_count(&self) -> usize {
        self.ready.len()
    }

    /// Number of live (not Done) threads.
    pub fn live_threads(&self) -> usize {
        self.threads.values().filter(|s| **s != TState::Done).count()
    }

    /// Times the quantum expired on a running thread.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Thread-to-thread switches performed.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Dispatch: ensure some ready thread is running. Returns the switch
    /// cost to charge — zero when the incumbent keeps the CPU, nothing is
    /// runnable, or the same thread resumes after a yield (no context
    /// actually switches).
    pub fn dispatch(&mut self, now: SimTime) -> SimDuration {
        if self.running.is_some() {
            return SimDuration::ZERO;
        }
        let Some(tid) = self.ready.pop_front() else { return SimDuration::ZERO };
        debug_assert_eq!(self.threads[&tid], TState::Ready);
        self.threads.insert(tid, TState::Running);
        self.running = Some(tid);
        self.slice_started = now;
        if self.last_ran == Some(tid) {
            return SimDuration::ZERO;
        }
        self.last_ran = Some(tid);
        self.switches += 1;
        self.cfg.switch_cost
    }

    /// If the incumbent has exhausted its quantum and someone else is
    /// ready, move it to the back of the ready queue. Returns true if a
    /// preemption occurred (caller should then `dispatch`).
    pub fn preempt_if_due(&mut self, now: SimTime) -> bool {
        let Some(tid) = self.running else { return false };
        if self.ready.is_empty() {
            return false;
        }
        if now.since(self.slice_started) < self.cfg.quantum {
            return false;
        }
        self.threads.insert(tid, TState::Ready);
        self.ready.push_back(tid);
        self.running = None;
        self.preemptions += 1;
        true
    }

    /// Remaining quantum for the incumbent (full quantum if none).
    pub fn quantum_left(&self, now: SimTime) -> SimDuration {
        match self.running {
            Some(_) => self.cfg.quantum - now.since(self.slice_started),
            None => self.cfg.quantum,
        }
    }

    /// Block the running thread. Panics if no thread is running.
    pub fn block_current(&mut self, reason: BlockReason) -> Tid {
        let tid = self.running.take().expect("no running thread to block");
        self.threads.insert(tid, TState::Blocked(reason));
        tid
    }

    /// The running thread yields the CPU but stays ready.
    pub fn yield_current(&mut self) -> Tid {
        let tid = self.running.take().expect("no running thread to yield");
        self.threads.insert(tid, TState::Ready);
        self.ready.push_back(tid);
        tid
    }

    /// The running thread exits.
    pub fn exit_current(&mut self) -> Tid {
        let tid = self.running.take().expect("no running thread to exit");
        self.threads.insert(tid, TState::Done);
        tid
    }

    /// Wake a blocked thread (no-op for ready/running/done threads, so
    /// spurious wakeups are safe). Returns true if the thread became ready.
    pub fn wake(&mut self, tid: Tid) -> bool {
        match self.threads.get(&tid) {
            Some(TState::Blocked(_)) => {
                self.threads.insert(tid, TState::Ready);
                self.ready.push_back(tid);
                true
            }
            _ => false,
        }
    }

    /// All threads blocked on an event for endpoint `ep`, in tid order
    /// (deterministic wake order regardless of map layout).
    pub fn blocked_on_event(&self, ep: EpId) -> Vec<Tid> {
        let mut v: Vec<Tid> = self
            .threads
            .iter()
            .filter_map(|(t, s)| match s {
                TState::Blocked(BlockReason::EndpointEvent(e)) if *e == ep => Some(*t),
                _ => None,
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// All threads blocked waiting for `ep` to become resident, in tid
    /// order.
    pub fn blocked_on_residency(&self, ep: EpId) -> Vec<Tid> {
        let mut v: Vec<Tid> = self
            .threads
            .iter()
            .filter_map(|(t, s)| match s {
                TState::Blocked(BlockReason::Residency(e)) if *e == ep => Some(*t),
                _ => None,
            })
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> Scheduler {
        Scheduler::new(SchedConfig::default())
    }

    #[test]
    fn spawn_and_dispatch_fifo() {
        let mut s = sched();
        let a = s.spawn();
        let b = s.spawn();
        assert!(s.has_runnable());
        let cost = s.dispatch(SimTime::ZERO);
        assert!(cost > SimDuration::ZERO);
        assert_eq!(s.current(), Some(a));
        s.yield_current();
        s.dispatch(SimTime::ZERO);
        assert_eq!(s.current(), Some(b));
    }

    #[test]
    fn incumbent_keeps_cpu_without_dispatch_cost() {
        let mut s = sched();
        s.spawn();
        s.dispatch(SimTime::ZERO);
        assert_eq!(s.dispatch(SimTime::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn quantum_preemption_round_robins() {
        let mut s = sched();
        let a = s.spawn();
        let b = s.spawn();
        s.dispatch(SimTime::ZERO);
        // Before the quantum: no preemption.
        assert!(!s.preempt_if_due(SimTime::ZERO + SimDuration::from_millis(5)));
        // After: preempted, b dispatches.
        let t = SimTime::ZERO + SimDuration::from_millis(11);
        assert!(s.preempt_if_due(t));
        s.dispatch(t);
        assert_eq!(s.current(), Some(b));
        assert_eq!(s.preemptions(), 1);
        // a is at the back of the queue.
        let t2 = t + SimDuration::from_millis(11);
        assert!(s.preempt_if_due(t2));
        s.dispatch(t2);
        assert_eq!(s.current(), Some(a));
    }

    #[test]
    fn no_preemption_when_alone() {
        let mut s = sched();
        s.spawn();
        s.dispatch(SimTime::ZERO);
        assert!(!s.preempt_if_due(SimTime::ZERO + SimDuration::from_secs(5)));
    }

    #[test]
    fn block_and_wake_cycle() {
        let mut s = sched();
        let a = s.spawn();
        s.dispatch(SimTime::ZERO);
        let blocked = s.block_current(BlockReason::EndpointEvent(EpId(3)));
        assert_eq!(blocked, a);
        assert!(!s.has_runnable());
        assert_eq!(s.blocked_on_event(EpId(3)), vec![a]);
        assert!(s.wake(a));
        assert!(!s.wake(a), "double wake is a no-op");
        s.dispatch(SimTime::ZERO);
        assert_eq!(s.current(), Some(a));
    }

    #[test]
    fn residency_blocking_is_queryable() {
        let mut s = sched();
        let a = s.spawn();
        s.dispatch(SimTime::ZERO);
        s.block_current(BlockReason::Residency(EpId(1)));
        assert_eq!(s.blocked_on_residency(EpId(1)), vec![a]);
        assert!(s.blocked_on_event(EpId(1)).is_empty());
    }

    #[test]
    fn exit_reduces_live_count() {
        let mut s = sched();
        s.spawn();
        s.spawn();
        s.dispatch(SimTime::ZERO);
        assert_eq!(s.live_threads(), 2);
        s.exit_current();
        assert_eq!(s.live_threads(), 1);
        s.dispatch(SimTime::ZERO);
        s.exit_current();
        assert!(!s.has_runnable());
    }

    #[test]
    fn quantum_left_shrinks() {
        let mut s = sched();
        s.spawn();
        s.dispatch(SimTime::ZERO);
        let left = s.quantum_left(SimTime::ZERO + SimDuration::from_millis(4));
        assert_eq!(left, SimDuration::from_millis(6));
    }
}
