//! Solaris-style operating-system model: endpoint segment driver, virtual
//! memory integration, and a per-node thread scheduler.
//!
//! Implements §4 of the paper. Endpoint management "is cast as a virtual
//! memory problem": endpoints are memory-mapped segments whose backing store
//! migrates between NI endpoint frames, host memory, and the swap area,
//! under the four-state protocol of Figure 2:
//!
//! ```text
//!            write fault                      make-resident (daemon)
//! on-host r/o ----------> on-host r/w ----------------------------> on-NIC r/w
//!      ^  \                    ^                                        |
//!      |   \ vm pageout        | page-in                                | evict
//!      |    v                  |                                        | (random)
//!      |   on-disk ------------+                                        |
//!      +----------------------------------------------------------------+
//! ```
//!
//! The **on-host r/w** state is the paper's key robustness mechanism
//! (§4.2): a write fault schedules the re-mapping *asynchronously* and lets
//! the faulting thread continue immediately, writing into the host image.
//! [`OsConfig::fast_write_fault`] disables it to reproduce the paper's
//! ablation ("single threaded servers fell off sharply … because the server
//! thread blocked for the full duration of the upload").
//!
//! A background **remap daemon** (the paper's kernel thread) serializes
//! load/unload traffic to the NIC, picking eviction victims at random (the
//! paper's policy; LRU and FIFO are provided for contrast). Message arrival
//! for a non-resident endpoint raises a *proxy fault* through the same
//! machinery (§4.2).
//!
//! Like `vnet-nic`, everything is effect-based: the driver consumes
//! [`vnet_nic::DriverMsg`]s and emits [`OsOut`] effects that the composing
//! world applies.

#![warn(missing_docs)]

pub mod config;
pub mod replace;
pub mod sched;
pub mod segment;
pub mod stats;

pub use config::OsConfig;
pub use replace::ReplacementPolicy;
pub use sched::{BlockReason, SchedConfig, Scheduler, Tid};
pub use segment::{EpState, OsEvent, OsOut, SegmentDriver, WriteOutcome};
pub use stats::OsStats;
