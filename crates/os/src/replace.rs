//! Endpoint replacement policies.
//!
//! The paper's system "replaces a resident endpoint at random" (§4.2).
//! LRU and FIFO variants exist for the ablation benchmarks that DESIGN.md
//! calls out — random is cheap and avoids pathological thrash cycles under
//! round-robin access patterns, which is exactly what the contrast shows.

use vnet_nic::EpId;
use vnet_sim::{SimRng, SimTime};

/// Which resident endpoint to evict when every frame is occupied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Uniform random among resident endpoints (the paper's choice).
    Random,
    /// Least recently *activated* (load time / last fault as the proxy the
    /// OS actually observes).
    Lru,
    /// First loaded, first evicted.
    Fifo,
}

impl ReplacementPolicy {
    /// Choose a victim from `candidates` (endpoint, last-activity, load-seq)
    /// tuples. Returns `None` when empty.
    pub fn choose(
        self,
        rng: &mut SimRng,
        candidates: &[(EpId, SimTime, u64)],
    ) -> Option<EpId> {
        if candidates.is_empty() {
            return None;
        }
        Some(match self {
            ReplacementPolicy::Random => candidates[rng.index(candidates.len())].0,
            ReplacementPolicy::Lru => {
                candidates.iter().min_by_key(|c| c.1).expect("nonempty").0
            }
            ReplacementPolicy::Fifo => {
                candidates.iter().min_by_key(|c| c.2).expect("nonempty").0
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands() -> Vec<(EpId, SimTime, u64)> {
        vec![
            (EpId(0), SimTime::from_nanos(500), 2),
            (EpId(1), SimTime::from_nanos(100), 3),
            (EpId(2), SimTime::from_nanos(900), 1),
        ]
    }

    #[test]
    fn empty_has_no_victim() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(ReplacementPolicy::Random.choose(&mut rng, &[]), None);
    }

    #[test]
    fn lru_picks_stalest() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(ReplacementPolicy::Lru.choose(&mut rng, &cands()), Some(EpId(1)));
    }

    #[test]
    fn fifo_picks_oldest_load() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(ReplacementPolicy::Fifo.choose(&mut rng, &cands()), Some(EpId(2)));
    }

    #[test]
    fn random_covers_all_candidates() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(ReplacementPolicy::Random.choose(&mut rng, &cands()).unwrap());
        }
        assert_eq!(seen.len(), 3, "random must eventually pick every candidate");
    }
}
