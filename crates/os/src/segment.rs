//! The endpoint segment driver (§4.2–§4.3).
//!
//! Owns every endpoint on a node: its four-state residency record, its host
//! image while non-resident, the remap daemon that serializes load/unload
//! traffic to the NIC, and the bookkeeping that turns NIC driver messages
//! into thread wakeups.

use crate::config::OsConfig;
use crate::sched::Tid;
use crate::stats::OsStats;
use std::collections::{HashMap, HashSet, VecDeque};
use vnet_nic::{DriverMsg, DriverOp, EndpointImage, EpId, ProtectionKey};
use vnet_sim::telemetry::{SpanId, TelemetryHandle};
use vnet_sim::{AuditHandle, Auditor, EpPhase, SimDuration, SimRng, SimTime, TraceHandle};

/// Perfetto track for segment-driver residency transitions.
pub const TRACK_SEG: &str = "os.seg";

/// Telemetry state owned by one segment driver: residency transitions
/// (remap request → loaded, eviction → unloaded, swap-in) become spans
/// on the `os.seg` track; faults become instantaneous markers. Hooks are
/// no-ops when detached (the driver holds an `Option` of this).
struct OsTelemetry {
    tel: TelemetryHandle,
    host: u32,
    /// Open remap span per endpoint (first remap request → Loaded).
    load_spans: HashMap<EpId, SpanId>,
    /// Open eviction span per endpoint (Unload issued → Unloaded).
    unload_spans: HashMap<EpId, SpanId>,
    /// Open swap-in span per endpoint (PagingIn → PageInDone).
    pagein_spans: HashMap<EpId, SpanId>,
}

impl OsTelemetry {
    fn new(host: u32, tel: TelemetryHandle) -> Self {
        OsTelemetry {
            tel,
            host,
            load_spans: HashMap::new(),
            unload_spans: HashMap::new(),
            pagein_spans: HashMap::new(),
        }
    }

    fn begin(
        map: &mut HashMap<EpId, SpanId>,
        tel: &TelemetryHandle,
        host: u32,
        at: SimTime,
        ep: EpId,
        name: &'static str,
        detail: String,
    ) {
        if let std::collections::hash_map::Entry::Vacant(e) = map.entry(ep) {
            e.insert(tel.borrow_mut().span_begin(at, host, TRACK_SEG, name, detail));
        }
    }

    fn end(map: &mut HashMap<EpId, SpanId>, tel: &TelemetryHandle, at: SimTime, ep: EpId) {
        if let Some(id) = map.remove(&ep) {
            tel.borrow_mut().span_end(at, id);
        }
    }

    fn load_begin(&mut self, at: SimTime, ep: EpId, detail: String) {
        Self::begin(&mut self.load_spans, &self.tel, self.host, at, ep, "ep_load", detail);
    }

    fn load_end(&mut self, at: SimTime, ep: EpId) {
        Self::end(&mut self.load_spans, &self.tel, at, ep);
    }

    fn unload_begin(&mut self, at: SimTime, ep: EpId, detail: String) {
        Self::begin(&mut self.unload_spans, &self.tel, self.host, at, ep, "ep_unload", detail);
    }

    fn unload_end(&mut self, at: SimTime, ep: EpId) {
        Self::end(&mut self.unload_spans, &self.tel, at, ep);
    }

    fn pagein_begin(&mut self, at: SimTime, ep: EpId) {
        Self::begin(&mut self.pagein_spans, &self.tel, self.host, at, ep, "page_in", String::new());
    }

    fn pagein_end(&mut self, at: SimTime, ep: EpId) {
        Self::end(&mut self.pagein_spans, &self.tel, at, ep);
    }

    fn instant(&mut self, at: SimTime, name: &'static str, detail: String) {
        self.tel.borrow_mut().instant(at, self.host, TRACK_SEG, name, detail);
    }
}

/// Residency state of an endpoint (Figure 2 of the paper, plus the
/// transition states the driver needs for bookkeeping).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EpState {
    /// Parked in host memory, read-only mapping: a write (or arrival)
    /// faults and schedules a remap.
    HostRo,
    /// Host memory, writable: remap scheduled, application keeps running
    /// (the §4.2 robustness state).
    HostRw,
    /// Image handed to the NIC; load DMA in progress.
    Loading,
    /// Resident in an NI endpoint frame, serviceable.
    NicRw,
    /// Eviction in progress (NIC is quiescing + unloading).
    Unloading,
    /// Paged out to the swap area ("vm pageout").
    Disk,
    /// Swap-in in progress.
    PagingIn,
    /// Being destroyed; ignored by the daemon.
    Freeing,
}

/// Effects emitted by the segment driver.
#[derive(Debug)]
pub enum OsOut {
    /// Send a driver-protocol operation to the local NIC.
    Nic(DriverOp),
    /// Wake a thread (endpoint event or residency transition).
    Wake(Tid),
    /// Schedule an OS event after a delay.
    After(SimDuration, OsEvent),
}

/// Deferred OS events.
#[derive(Clone, Debug)]
pub enum OsEvent {
    /// Remap daemon wakes up and processes its queue.
    DaemonStep,
    /// Swap-in of an endpoint finished.
    PageInDone {
        /// The endpoint.
        ep: EpId,
    },
}

/// Result of a write fault (application touched a non-resident endpoint).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Endpoint is resident; no fault at all.
    Resident,
    /// Fault taken; remap scheduled; the thread may continue writing into
    /// the host image (on-host r/w state).
    Proceed,
    /// Fault taken; the thread must block until the endpoint is resident
    /// (ablation mode, or the image is in transition on the SBUS).
    MustBlock,
}

struct EpRecord {
    state: EpState,
    /// Host-side image; `None` while the NIC holds it (Loading/NicRw/
    /// Unloading).
    image: Option<Box<EndpointImage>>,
    last_activity: SimTime,
    load_seq: u64,
    remap_requested_at: Option<SimTime>,
    /// Endpoint is being migrated off this host: evicted from the NI and
    /// held host-resident (remaps suppressed, so arrivals nack and senders
    /// fail over) until the control plane lifts the hold with
    /// [`SegmentDriver::end_migrate_hold`] for the lame-duck drain.
    migrating: bool,
}

/// The per-node endpoint segment driver.
pub struct SegmentDriver {
    cfg: OsConfig,
    frames_total: u32,
    nic_occupied: u32,
    eps: HashMap<EpId, EpRecord>,
    next_ep: u32,
    daemon_q: VecDeque<EpId>,
    daemon_queued: HashSet<EpId>,
    daemon_busy: bool,
    /// Target endpoint waiting for a victim's unload to finish.
    pending_after_unload: Option<EpId>,
    clock: u64,
    load_seq: u64,
    rng: SimRng,
    stats: OsStats,
    /// Host index for audit/trace records (set by the composing world).
    host_idx: u32,
    /// Cross-layer invariant auditor (hooks are no-ops when detached).
    auditor: Option<AuditHandle>,
    /// Shared causal trace ring (records are no-ops when detached).
    trace: Option<TraceHandle>,
    /// Unified telemetry (hooks are no-ops when detached).
    tel: Option<OsTelemetry>,
    /// Latest simulated time seen by any timed entry point; stands in for
    /// `now` on untimed calls like [`SegmentDriver::pageout`].
    now_hint: SimTime,
}

impl SegmentDriver {
    /// Driver for a node whose NIC has `frames_total` endpoint frames.
    pub fn new(cfg: OsConfig, frames_total: u32, seed: u64) -> Self {
        SegmentDriver {
            cfg,
            frames_total,
            nic_occupied: 0,
            eps: HashMap::new(),
            next_ep: 0,
            daemon_q: VecDeque::new(),
            daemon_queued: HashSet::new(),
            daemon_busy: false,
            pending_after_unload: None,
            clock: 0,
            load_seq: 0,
            rng: SimRng::seed_from_u64(seed),
            stats: OsStats::default(),
            host_idx: 0,
            auditor: None,
            trace: None,
            tel: None,
            now_hint: SimTime::ZERO,
        }
    }

    /// Attach the cluster-wide invariant auditor and shared trace ring;
    /// residency transitions are mirrored into the auditor and the
    /// load/unload/pageout paths record causal trace entries. `host` is
    /// this node's index in the composing world.
    pub fn attach_instrumentation(&mut self, host: u32, auditor: AuditHandle, trace: TraceHandle) {
        self.host_idx = host;
        self.auditor = Some(auditor);
        self.trace = Some(trace);
    }

    /// Attach the unified telemetry registry; residency transitions
    /// become spans on the `os.seg` track and faults become markers.
    /// `host` is this node's index in the composing world.
    pub fn attach_telemetry(&mut self, host: u32, tel: TelemetryHandle) {
        self.host_idx = host;
        self.tel = Some(OsTelemetry::new(host, tel));
    }

    /// Re-point existing telemetry wiring at another registry (used when a
    /// host migrates between the main world and a shard), preserving any
    /// open residency spans. No-op while telemetry is detached.
    pub fn rebind_telemetry(&mut self, tel: TelemetryHandle) {
        if let Some(t) = &mut self.tel {
            t.tel = tel;
        }
    }

    fn audit(&self, f: impl FnOnce(&mut Auditor)) {
        if let Some(a) = &self.auditor {
            f(&mut a.borrow_mut());
        }
    }

    fn trace_with(&self, at: SimTime, tag: &'static str, detail: impl FnOnce() -> String) {
        if let Some(t) = &self.trace {
            t.borrow_mut().record_with(at, self.host_idx, tag, detail);
        }
    }

    fn audit_phase(&self, at: SimTime, ep: EpId, to: EpPhase) {
        let h = self.host_idx;
        self.audit(|a| a.os_transition(at, h, ep.0, to));
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> &OsStats {
        &self.stats
    }

    /// Current Lamport clock.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Depth of the remap daemon's queue.
    pub fn remap_queue_depth(&self) -> usize {
        self.daemon_q.len()
    }

    fn tick(&mut self, seen: u64) -> u64 {
        self.clock = self.clock.max(seen) + 1;
        self.clock
    }

    // ------------------------------------------------------------ lifecycle

    /// Allocate an endpoint ("segment creation is equivalent to allocating
    /// an endpoint and initializing its message queues"). Registers it with
    /// the NIC; it starts non-resident in the on-host r/o state.
    pub fn create_endpoint(
        &mut self,
        now: SimTime,
        key: ProtectionKey,
        out: &mut Vec<OsOut>,
    ) -> EpId {
        self.now_hint = self.now_hint.max(now);
        let ep = EpId(self.next_ep);
        self.next_ep += 1;
        self.eps.insert(
            ep,
            EpRecord {
                state: EpState::HostRo,
                image: Some(Box::new(EndpointImage::new(key))),
                last_activity: now,
                load_seq: 0,
                remap_requested_at: None,
                migrating: false,
            },
        );
        let clock = self.tick(0);
        out.push(OsOut::Nic(DriverOp::Register { ep, clock }));
        let h = self.host_idx;
        self.audit(|a| a.os_created(now, h, ep.0));
        ep
    }

    /// Allocate an endpoint under a caller-chosen id (control-plane band:
    /// the coordinator assigns ids from its own replicated counter so a
    /// migrated endpoint keeps a cluster-unique identity). Panics if the id
    /// is already in use; does not advance the driver's own id counter.
    pub fn create_endpoint_with_id(
        &mut self,
        now: SimTime,
        ep: EpId,
        key: ProtectionKey,
        out: &mut Vec<OsOut>,
    ) {
        self.now_hint = self.now_hint.max(now);
        assert!(!self.eps.contains_key(&ep), "endpoint id {ep} already exists on host");
        self.eps.insert(
            ep,
            EpRecord {
                state: EpState::HostRo,
                image: Some(Box::new(EndpointImage::new(key))),
                last_activity: now,
                load_seq: 0,
                remap_requested_at: None,
                migrating: false,
            },
        );
        let clock = self.tick(0);
        out.push(OsOut::Nic(DriverOp::Register { ep, clock }));
        let h = self.host_idx;
        self.audit(|a| a.os_created(now, h, ep.0));
    }

    /// Begin migrating an endpoint off this host: evict it from the NI and
    /// hold it **host-resident** (`HostRw`) — remap requests are suppressed
    /// while the flag is set, so new arrivals nack `NotResident` and senders
    /// fail over to the new residence, but the owning thread keeps polling
    /// the host image and queueing replies into it. Work accepted before the
    /// drain began is served out, not destroyed. Idempotent; safe in every
    /// residency state (in-transition endpoints are parked on host by their
    /// completion handlers).
    pub fn begin_migrate_out(&mut self, now: SimTime, ep: EpId, out: &mut Vec<OsOut>) {
        self.now_hint = self.now_hint.max(now);
        let Some(rec) = self.eps.get_mut(&ep) else { return };
        if rec.migrating {
            return;
        }
        rec.migrating = true;
        rec.remap_requested_at = None;
        if let Some(t) = &mut self.tel {
            t.load_end(now, ep);
            t.instant(now, "migrate_out", format!("ep={}", ep.0));
        }
        match rec.state {
            EpState::HostRo | EpState::HostRw => {
                // Stay on host, writable: the service drains in place.
                rec.state = EpState::HostRw;
                self.trace_with(now, "os.migrate", || format!("{ep} held on host (migrating)"));
            }
            EpState::NicRw => {
                rec.state = EpState::Unloading;
                let clock = self.tick(0);
                out.push(OsOut::Nic(DriverOp::Unload { ep, clock }));
                self.audit_phase(now, ep, EpPhase::Unloading);
                self.trace_with(now, "os.unload", || format!("{ep} unloading (migrating)"));
                if let Some(t) = &mut self.tel {
                    t.unload_begin(now, ep, "migrating".to_string());
                }
            }
            // Loading/Unloading/PagingIn: the completion handler sees the
            // flag and parks the endpoint on host. Disk/Freeing: nothing.
            _ => {}
        }
    }

    /// Lift the migration hold (the protocol's `Finish` phase reached this
    /// host): the remap pipeline works again, and if the held image still
    /// carries queued sends or unpolled receives the endpoint re-enters the
    /// remap queue so its residual work flows — the lame-duck drain. The
    /// caller tears the endpoint down only once
    /// [`SegmentDriver::drained`] (and the NIC) report it dry.
    pub fn end_migrate_hold(&mut self, now: SimTime, ep: EpId, out: &mut Vec<OsOut>) {
        self.now_hint = self.now_hint.max(now);
        let Some(rec) = self.eps.get_mut(&ep) else { return };
        if !rec.migrating {
            return;
        }
        rec.migrating = false;
        self.trace_with(now, "os.migrate", || format!("{ep} hold lifted (lame-duck drain)"));
        self.nudge_drain(now, ep, out);
    }

    /// Re-enter the remap queue if a host-held image still carries work.
    /// Idempotent (the daemon queue deduplicates); the migration teardown
    /// calls this on every retire poll so a drain stalled by an unlucky
    /// eviction race cannot wedge.
    pub fn nudge_drain(&mut self, now: SimTime, ep: EpId, out: &mut Vec<OsOut>) {
        let needs = self.eps.get(&ep).is_some_and(|rec| {
            matches!(rec.state, EpState::HostRo | EpState::HostRw | EpState::Disk)
                && rec.image.as_ref().is_some_and(|i| i.has_send_work() || i.has_received())
        });
        if needs {
            self.enqueue_remap(now, ep, out);
        }
    }

    /// Whether a migrated-away endpoint has drained on the OS side: no
    /// in-transition residency state, and the host-held image (if any)
    /// carries neither queued sends nor unpolled receives. A resident
    /// endpoint's frame queues are the NIC's to answer; a missing endpoint
    /// is vacuously drained.
    pub fn drained(&self, ep: EpId) -> bool {
        match self.eps.get(&ep) {
            None => true,
            Some(rec) => match rec.state {
                EpState::Loading
                | EpState::Unloading
                | EpState::PagingIn
                | EpState::Freeing => false,
                _ => rec
                    .image
                    .as_ref()
                    .is_none_or(|i| !i.has_send_work() && !i.has_received()),
            },
        }
    }

    /// Finish a migration: the endpoint now lives elsewhere, so its local
    /// incarnation is destroyed (robust in every residency state, like
    /// [`SegmentDriver::free_endpoint`]). Any sends still queued in the
    /// held image are resolved as aborted in the audit ledger — the normal
    /// teardown waits for the lame-duck drain first, so this only discards
    /// traffic when the drain bound expired.
    pub fn complete_migrate_out(&mut self, now: SimTime, ep: EpId, out: &mut Vec<OsOut>) {
        if let Some(rec) = self.eps.get_mut(&ep) {
            rec.migrating = false;
        }
        self.free_endpoint(now, ep, out);
    }

    /// Destroy an endpoint (process termination frees its segments, §4.2).
    /// If resident, the NIC quiesces and unloads it first; the image is
    /// discarded when it comes back.
    pub fn free_endpoint(&mut self, now: SimTime, ep: EpId, out: &mut Vec<OsOut>) {
        self.now_hint = self.now_hint.max(now);
        let Some(rec) = self.eps.get_mut(&ep) else { return };
        match rec.state {
            EpState::NicRw => {
                rec.state = EpState::Freeing;
                let clock = self.tick(0);
                out.push(OsOut::Nic(DriverOp::Unload { ep, clock }));
                // Unregister happens when the unload completes.
                self.audit_phase(now, ep, EpPhase::Unloading);
                self.trace_with(now, "os.unload", || format!("{ep} unloading (freed)"));
                if let Some(t) = &mut self.tel {
                    t.unload_begin(now, ep, "freed".to_string());
                }
            }
            EpState::Loading | EpState::Unloading => {
                // In transition: mark; the completion handler finishes it.
                rec.state = EpState::Freeing;
            }
            _ => {
                let rec = self.eps.remove(&ep).expect("checked above");
                self.abort_queued_sends(now, rec.image.as_deref());
                let clock = self.tick(0);
                out.push(OsOut::Nic(DriverOp::Unregister { ep, clock }));
                let h = self.host_idx;
                self.audit(|a| a.os_destroyed(now, h, ep.0));
                self.trace_with(now, "os.free", || format!("{ep} freed while parked"));
            }
        }
    }

    /// Resolve the fate of sends still queued in a discarded image:
    /// teardown aborts them so the exactly-once ledger closes (mirroring
    /// the NIC's drop of a parked retry whose endpoint vanished).
    fn abort_queued_sends(&mut self, now: SimTime, image: Option<&EndpointImage>) {
        let Some(image) = image else { return };
        let uids: Vec<u64> = image.send_q.iter().map(|p| p.uid).collect();
        let h = self.host_idx;
        for uid in uids {
            self.audit(|a| a.on_send_aborted(now, h, uid));
        }
    }

    /// Whether the endpoint exists (not freed).
    pub fn exists(&self, ep: EpId) -> bool {
        self.eps.contains_key(&ep)
    }

    /// Current residency state.
    pub fn state(&self, ep: EpId) -> Option<&EpState> {
        self.eps.get(&ep).map(|r| &r.state)
    }

    /// Host image access (only while the host holds it).
    pub fn host_image_mut(&mut self, ep: EpId) -> Option<&mut EndpointImage> {
        self.eps.get_mut(&ep).and_then(|r| r.image.as_deref_mut())
    }

    /// Immutable host image access.
    pub fn host_image(&self, ep: EpId) -> Option<&EndpointImage> {
        self.eps.get(&ep).and_then(|r| r.image.as_deref())
    }

    // ---------------------------------------------------------------- faults

    /// Application wrote into the endpoint (posting a send). Classifies the
    /// access per the four-state protocol and schedules remaps as needed.
    pub fn touch_write(&mut self, now: SimTime, ep: EpId, out: &mut Vec<OsOut>) -> WriteOutcome {
        self.now_hint = self.now_hint.max(now);
        let Some(rec) = self.eps.get_mut(&ep) else { return WriteOutcome::MustBlock };
        rec.last_activity = now;
        match rec.state {
            EpState::NicRw => WriteOutcome::Resident,
            EpState::HostRw => WriteOutcome::Proceed, // already writable + queued
            EpState::HostRo => {
                self.stats.write_faults.inc();
                if let Some(t) = &mut self.tel {
                    t.instant(now, "write_fault", format!("ep={}", ep.0));
                }
                let rec = self.eps.get_mut(&ep).unwrap();
                rec.state = EpState::HostRw;
                self.enqueue_remap(now, ep, out);
                if self.cfg.fast_write_fault {
                    WriteOutcome::Proceed
                } else {
                    WriteOutcome::MustBlock
                }
            }
            EpState::Disk => {
                self.stats.write_faults.inc();
                if let Some(t) = &mut self.tel {
                    t.instant(now, "write_fault", format!("ep={} (paged out)", ep.0));
                }
                // Swap-in is always synchronous for the faulting thread.
                self.enqueue_remap(now, ep, out);
                WriteOutcome::MustBlock
            }
            EpState::PagingIn | EpState::Loading | EpState::Unloading => WriteOutcome::MustBlock,
            EpState::Freeing => WriteOutcome::MustBlock,
        }
    }

    /// Proxy fault: the NIC reported message arrival for a non-resident
    /// endpoint (§4.2 — "the segment driver spawns a kernel thread which
    /// performs proxy operations on behalf of the NI").
    pub fn proxy_fault(&mut self, now: SimTime, ep: EpId, out: &mut Vec<OsOut>) {
        self.now_hint = self.now_hint.max(now);
        let Some(rec) = self.eps.get_mut(&ep) else { return };
        rec.last_activity = now;
        match rec.state {
            EpState::HostRo | EpState::HostRw | EpState::Disk => {
                self.stats.proxy_faults.inc();
                if let Some(t) = &mut self.tel {
                    t.instant(now, "proxy_fault", format!("ep={}", ep.0));
                }
                if self.eps[&ep].state == EpState::HostRo {
                    self.eps.get_mut(&ep).unwrap().state = EpState::HostRw;
                }
                self.enqueue_remap(now, ep, out);
            }
            _ => {} // already resident or in transition
        }
    }

    fn enqueue_remap(&mut self, now: SimTime, ep: EpId, out: &mut Vec<OsOut>) {
        // A migrating endpoint is held off the NI: remaps would reload it on
        // the source and break the handoff to its new residence.
        if self.eps.get(&ep).is_some_and(|r| r.migrating) {
            return;
        }
        if !self.daemon_queued.insert(ep) {
            return;
        }
        if let Some(rec) = self.eps.get_mut(&ep) {
            if rec.remap_requested_at.is_none() {
                rec.remap_requested_at = Some(now);
                if let Some(t) = &mut self.tel {
                    // The full remap episode: request → resident.
                    t.load_begin(now, ep, format!("ep={}", ep.0));
                }
            }
        }
        self.daemon_q.push_back(ep);
        if !self.daemon_busy {
            self.daemon_busy = true;
            out.push(OsOut::After(self.cfg.daemon_op_cost, OsEvent::DaemonStep));
        }
    }

    // ------------------------------------------------------------- daemon

    /// One pass of the background remap thread.
    pub fn on_daemon_step(&mut self, now: SimTime, out: &mut Vec<OsOut>) {
        self.now_hint = self.now_hint.max(now);
        // Find the next actionable target.
        let target = loop {
            let Some(ep) = self.daemon_q.pop_front() else {
                self.daemon_busy = false;
                return;
            };
            if self.eps.get(&ep).is_some_and(|r| r.migrating) {
                self.daemon_queued.remove(&ep);
                continue;
            }
            match self.eps.get(&ep).map(|r| &r.state) {
                Some(EpState::HostRo) | Some(EpState::HostRw) => break ep,
                Some(EpState::Disk) => {
                    // Swap in first, then the daemon resumes with it.
                    self.eps.get_mut(&ep).unwrap().state = EpState::PagingIn;
                    out.push(OsOut::After(self.cfg.disk_delay, OsEvent::PageInDone { ep }));
                    self.audit_phase(now, ep, EpPhase::PagingIn);
                    self.trace_with(now, "os.pagein", || format!("{ep} swap-in started"));
                    if let Some(t) = &mut self.tel {
                        t.pagein_begin(now, ep);
                    }
                    return; // daemon stays busy, resumes on PageInDone
                }
                // Freed, already resident, or in transition: skip.
                _ => {
                    self.daemon_queued.remove(&ep);
                    continue;
                }
            }
        };
        if self.nic_occupied < self.frames_total {
            self.issue_load(now, target, out);
        } else {
            // All frames busy: evict a victim first. Candidate order is
            // sorted so the random draw is a function of the seed alone
            // (HashMap iteration order varies across process runs).
            let mut candidates: Vec<(EpId, SimTime, u64)> = self
                .eps
                .iter()
                .filter(|(e, r)| r.state == EpState::NicRw && **e != target)
                .map(|(e, r)| (*e, r.last_activity, r.load_seq))
                .collect();
            candidates.sort_unstable_by_key(|c| c.0);
            let Some(victim) = self.cfg.policy.choose(&mut self.rng, &candidates) else {
                // Nothing evictable (all frames in transition — possible
                // only transiently); retry shortly.
                self.daemon_queued.remove(&target);
                self.daemon_q.push_front(target);
                self.daemon_queued.insert(target);
                out.push(OsOut::After(self.cfg.daemon_op_cost, OsEvent::DaemonStep));
                return;
            };
            self.eps.get_mut(&victim).unwrap().state = EpState::Unloading;
            self.audit_phase(now, victim, EpPhase::Unloading);
            self.trace_with(now, "os.unload", || {
                format!("{victim} evicted to make room for {target}")
            });
            if let Some(t) = &mut self.tel {
                t.unload_begin(now, victim, format!("evicted for ep={}", target.0));
            }
            self.pending_after_unload = Some(target);
            // Re-queue marker removed when the load is finally issued.
            self.daemon_q.push_front(target);
            let clock = self.tick(0);
            out.push(OsOut::Nic(DriverOp::Unload { ep: victim, clock }));
        }
    }

    /// Swap-in finished; endpoint proceeds to the load pipeline.
    pub fn on_page_in_done(&mut self, now: SimTime, ep: EpId, out: &mut Vec<OsOut>) {
        self.now_hint = self.now_hint.max(now);
        self.stats.page_ins.inc();
        let mut swapped_in = false;
        let mut held = false;
        if let Some(rec) = self.eps.get_mut(&ep) {
            if rec.state == EpState::PagingIn {
                rec.state = EpState::HostRw;
                if rec.migrating {
                    // Migration started mid-swap-in: hold it on host so the
                    // owning thread can drain it, but stay out of the remap
                    // pipeline (the new residence takes over the NI frame).
                    held = true;
                } else {
                    swapped_in = true;
                    // Wake any thread that blocked for the swap-in; it still
                    // waits for residency if it asked for that.
                }
            }
        }
        if swapped_in || held {
            self.audit_phase(now, ep, EpPhase::Host);
        }
        if swapped_in {
            self.trace_with(now, "os.pagein", || format!("{ep} swap-in done"));
        }
        if held {
            self.trace_with(now, "os.pagein", || format!("{ep} swapped in, held (migrating)"));
        }
        if let Some(t) = &mut self.tel {
            t.pagein_end(now, ep);
        }
        if held {
            // Do not re-enter the remap pipeline; just let the daemon drain.
            if !self.daemon_q.is_empty() {
                out.push(OsOut::After(self.cfg.daemon_op_cost, OsEvent::DaemonStep));
            } else {
                self.daemon_busy = false;
            }
            return;
        }
        // Back of the pipeline: daemon continues with this endpoint first.
        self.daemon_q.push_front(ep);
        self.daemon_queued.insert(ep);
        let _ = now;
        out.push(OsOut::After(self.cfg.daemon_op_cost, OsEvent::DaemonStep));
    }

    fn issue_load(&mut self, now: SimTime, ep: EpId, out: &mut Vec<OsOut>) {
        let rec = self.eps.get_mut(&ep).expect("load target exists");
        debug_assert!(matches!(rec.state, EpState::HostRo | EpState::HostRw));
        let image = rec.image.take().expect("host holds the image");
        rec.state = EpState::Loading;
        self.load_seq += 1;
        rec.load_seq = self.load_seq;
        rec.last_activity = now;
        self.nic_occupied += 1;
        self.daemon_queued.remove(&ep);
        let clock = self.tick(0);
        out.push(OsOut::Nic(DriverOp::Load { ep, image, clock }));
        self.audit_phase(now, ep, EpPhase::Loading);
        self.trace_with(now, "os.load", || {
            format!("{ep} load issued ({}/{} frames)", self.nic_occupied, self.frames_total)
        });
        // The daemon waits for Loaded before taking the next request: remap
        // traffic is serialized through the single SBUS engine anyway.
    }

    // ----------------------------------------------------------- NIC msgs

    /// Handle a driver-protocol message from the NIC. `waiters_*` callbacks
    /// are resolved by the caller (scheduler queries).
    pub fn on_nic_msg(&mut self, now: SimTime, msg: DriverMsg, out: &mut Vec<OsOut>) {
        self.now_hint = self.now_hint.max(now);
        match msg {
            DriverMsg::Loaded { ep, clock } => {
                self.tick(clock);
                self.stats.loads.inc();
                if let Some(t) = &mut self.tel {
                    t.load_end(now, ep);
                }
                let mut loaded_phase = None;
                if let Some(rec) = self.eps.get_mut(&ep) {
                    if let Some(t0) = rec.remap_requested_at.take() {
                        self.stats.remap_latency_us.record(now.since(t0).as_micros_f64());
                    }
                    match rec.state {
                        EpState::Freeing => {
                            // Freed while loading: evict it again right away.
                            rec.state = EpState::Freeing;
                            let clock = self.tick(0);
                            out.push(OsOut::Nic(DriverOp::Unload { ep, clock }));
                            loaded_phase = Some(EpPhase::Unloading);
                        }
                        _ if rec.migrating => {
                            // Migration started mid-load: evict again; the
                            // Unloaded handler parks it on disk.
                            rec.state = EpState::Unloading;
                            let clock = self.tick(0);
                            out.push(OsOut::Nic(DriverOp::Unload { ep, clock }));
                            loaded_phase = Some(EpPhase::Unloading);
                        }
                        _ => {
                            rec.state = EpState::NicRw;
                            rec.last_activity = now;
                            loaded_phase = Some(EpPhase::Resident);
                        }
                    }
                }
                if let Some(phase) = loaded_phase {
                    self.audit_phase(now, ep, phase);
                    self.trace_with(now, "os.load", || match phase {
                        EpPhase::Unloading => format!("{ep} loaded but freed; unloading"),
                        _ => format!("{ep} resident"),
                    });
                }
                // Continue the daemon pipeline.
                if !self.daemon_q.is_empty() {
                    out.push(OsOut::After(self.cfg.daemon_op_cost, OsEvent::DaemonStep));
                } else {
                    self.daemon_busy = false;
                }
            }
            DriverMsg::Unloaded { ep, image, clock } => {
                self.tick(clock);
                self.stats.unloads.inc();
                if let Some(t) = &mut self.tel {
                    t.unload_end(now, ep);
                }
                self.nic_occupied = self.nic_occupied.saturating_sub(1);
                let mut freed = false;
                let mut freed_image = None;
                let mut nonempty = false;
                let mut parked = false;
                let mut migrated = false;
                if let Some(rec) = self.eps.get_mut(&ep) {
                    if rec.state == EpState::Freeing {
                        freed = true;
                        freed_image = Some(image);
                    } else if rec.migrating {
                        // Migration handoff: hold the image on host writable
                        // (the owning thread drains it in place) and do NOT
                        // re-enter the remap queue even with queued sends —
                        // the new residence takes over the NI frame.
                        rec.state = EpState::HostRw;
                        rec.image = Some(image);
                        migrated = true;
                    } else {
                        nonempty = image.has_send_work();
                        rec.state = EpState::HostRo;
                        rec.image = Some(image);
                        parked = true;
                    }
                }
                if parked || migrated {
                    self.audit_phase(now, ep, EpPhase::Host);
                }
                if parked {
                    self.trace_with(now, "os.unload", || {
                        format!("{ep} parked on host (queued sends: {nonempty})")
                    });
                }
                if migrated {
                    self.trace_with(now, "os.unload", || {
                        format!("{ep} unloaded, held on host (migrating)")
                    });
                }
                if nonempty {
                    // §4.2: "Eventually, the kernel makes the non-empty
                    // endpoint resident so communication can occur." An
                    // endpoint evicted with queued sends re-enters the
                    // remap queue (at the back — FIFO keeps the thrash
                    // fair); otherwise its unsent messages would deadlock
                    // once its peer ran out of credits.
                    self.enqueue_remap(now, ep, out);
                }
                if freed {
                    self.abort_queued_sends(now, freed_image.as_deref());
                    self.eps.remove(&ep);
                    let clock = self.tick(0);
                    out.push(OsOut::Nic(DriverOp::Unregister { ep, clock }));
                    let h = self.host_idx;
                    self.audit(|a| a.os_destroyed(now, h, ep.0));
                    self.trace_with(now, "os.free", || format!("{ep} unloaded and freed"));
                }
                // If a target was waiting for this frame, load it now.
                if let Some(target) = self.pending_after_unload.take() {
                    // It sits at the front of the queue; the daemon step
                    // will pick it up.
                    debug_assert_eq!(self.daemon_q.front(), Some(&target));
                    out.push(OsOut::After(self.cfg.daemon_op_cost, OsEvent::DaemonStep));
                } else if !self.daemon_q.is_empty() {
                    out.push(OsOut::After(self.cfg.daemon_op_cost, OsEvent::DaemonStep));
                } else {
                    self.daemon_busy = false;
                }
            }
            DriverMsg::NeedResident { ep, clock } => {
                self.tick(clock);
                self.proxy_fault(now, ep, out);
            }
            DriverMsg::Event { ep, clock } => {
                self.tick(clock);
                // Thread wakeups are resolved by the composing world (it
                // owns the scheduler); nothing to do here.
                let _ = ep;
            }
        }
    }

    /// Record that a remap of `ep` completed for latency accounting *and*
    /// return the threads to wake — used by the composing world after a
    /// `Loaded` message (the scheduler knows who blocked).
    pub fn note_residency_wakes(&mut self, n: u64) {
        self.stats.residency_wakes.add(n);
    }

    /// Record event wakeups (composing world).
    pub fn note_event_wakes(&mut self, n: u64) {
        self.stats.event_wakes.add(n);
    }

    // ------------------------------------------------------------- pageout

    /// Simulate memory pressure: move a parked endpoint to the swap area.
    /// Returns true if the pageout happened (only HostRo endpoints are
    /// eligible — they are "like any other cacheable memory page").
    pub fn pageout(&mut self, ep: EpId) -> bool {
        match self.eps.get_mut(&ep) {
            Some(rec) if rec.state == EpState::HostRo => {
                rec.state = EpState::Disk;
                self.stats.page_outs.inc();
                let at = self.now_hint;
                self.audit_phase(at, ep, EpPhase::Disk);
                self.trace_with(at, "os.pageout", || format!("{ep} paged out to swap"));
                true
            }
            _ => false,
        }
    }

    /// Page reclamation under memory pressure (§4.2: "Page reclamation
    /// mechanisms may move non-resident endpoints to secondary storage
    /// should they be the least recently used pages during periods of
    /// acute memory deficits"): page out the least-recently-active parked
    /// endpoint. Returns the victim, if any was eligible.
    pub fn pageout_lru(&mut self) -> Option<EpId> {
        let victim = self
            .eps
            .iter()
            .filter(|(_, r)| r.state == EpState::HostRo)
            .min_by_key(|(e, r)| (r.last_activity, **e))
            .map(|(e, _)| *e)?;
        self.pageout(victim);
        Some(victim)
    }

    /// Number of endpoints currently in each interesting state:
    /// `(resident, host, disk, transitioning)`.
    pub fn census(&self) -> (usize, usize, usize, usize) {
        let mut resident = 0;
        let mut host = 0;
        let mut disk = 0;
        let mut trans = 0;
        for r in self.eps.values() {
            match r.state {
                EpState::NicRw => resident += 1,
                EpState::HostRo | EpState::HostRw => host += 1,
                EpState::Disk => disk += 1,
                _ => trans += 1,
            }
        }
        (resident, host, disk, trans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver(frames: u32) -> SegmentDriver {
        SegmentDriver::new(OsConfig::default(), frames, 99)
    }

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn create_registers_and_starts_host_ro() {
        let mut d = driver(8);
        let mut out = vec![];
        let ep = d.create_endpoint(t(0), ProtectionKey(5), &mut out);
        assert_eq!(d.state(ep), Some(&EpState::HostRo));
        assert!(matches!(out[0], OsOut::Nic(DriverOp::Register { .. })));
        assert!(d.host_image(ep).is_some());
    }

    #[test]
    fn write_fault_fast_path_proceeds_and_queues_remap() {
        let mut d = driver(8);
        let mut out = vec![];
        let ep = d.create_endpoint(t(0), ProtectionKey(5), &mut out);
        out.clear();
        let o = d.touch_write(t(1), ep, &mut out);
        assert_eq!(o, WriteOutcome::Proceed);
        assert_eq!(d.state(ep), Some(&EpState::HostRw));
        assert!(matches!(out[0], OsOut::After(_, OsEvent::DaemonStep)));
        // Second write: no new fault, no new daemon kick.
        out.clear();
        assert_eq!(d.touch_write(t(2), ep, &mut out), WriteOutcome::Proceed);
        assert!(out.is_empty());
        assert_eq!(d.stats().write_faults.get(), 1);
    }

    #[test]
    fn ablation_mode_blocks_on_write_fault() {
        let cfg = OsConfig { fast_write_fault: false, ..Default::default() };
        let mut d = SegmentDriver::new(cfg, 8, 1);
        let mut out = vec![];
        let ep = d.create_endpoint(t(0), ProtectionKey(5), &mut out);
        out.clear();
        assert_eq!(d.touch_write(t(1), ep, &mut out), WriteOutcome::MustBlock);
        assert_eq!(d.state(ep), Some(&EpState::HostRw));
    }

    #[test]
    fn daemon_loads_into_free_frame() {
        let mut d = driver(8);
        let mut out = vec![];
        let ep = d.create_endpoint(t(0), ProtectionKey(5), &mut out);
        out.clear();
        d.touch_write(t(1), ep, &mut out);
        out.clear();
        d.on_daemon_step(t(2), &mut out);
        assert_eq!(d.state(ep), Some(&EpState::Loading));
        assert!(matches!(out[0], OsOut::Nic(DriverOp::Load { .. })));
        // Loaded completes the transition.
        out.clear();
        d.on_nic_msg(
            t(300),
            DriverMsg::Loaded { ep, clock: 1 },
            &mut out,
        );
        assert_eq!(d.state(ep), Some(&EpState::NicRw));
        assert_eq!(d.stats().loads.get(), 1);
        assert!(d.stats().remap_latency_us.count() == 1);
    }

    #[test]
    fn daemon_evicts_when_frames_full() {
        let mut d = driver(1);
        let mut out = vec![];
        let a = d.create_endpoint(t(0), ProtectionKey(1), &mut out);
        let b = d.create_endpoint(t(0), ProtectionKey(2), &mut out);
        out.clear();
        // Load a.
        d.touch_write(t(1), a, &mut out);
        out.clear();
        d.on_daemon_step(t(2), &mut out);
        d.on_nic_msg(t(300), DriverMsg::Loaded { ep: a, clock: 1 }, &mut out);
        out.clear();
        // Now b needs the only frame: a must be evicted.
        d.touch_write(t(400), b, &mut out);
        out.clear();
        d.on_daemon_step(t(401), &mut out);
        assert_eq!(d.state(a), Some(&EpState::Unloading));
        assert!(matches!(out[0], OsOut::Nic(DriverOp::Unload { .. })));
        out.clear();
        d.on_nic_msg(
            t(700),
            DriverMsg::Unloaded { ep: a, image: Box::new(EndpointImage::new(ProtectionKey(1))), clock: 2 },
            &mut out,
        );
        assert_eq!(d.state(a), Some(&EpState::HostRo));
        // Daemon continues and loads b.
        out.clear();
        d.on_daemon_step(t(701), &mut out);
        assert_eq!(d.state(b), Some(&EpState::Loading));
        d.on_nic_msg(t(1000), DriverMsg::Loaded { ep: b, clock: 3 }, &mut out);
        assert_eq!(d.state(b), Some(&EpState::NicRw));
        let (resident, host, _, _) = d.census();
        assert_eq!((resident, host), (1, 1));
    }

    #[test]
    fn need_resident_is_a_proxy_fault() {
        let mut d = driver(8);
        let mut out = vec![];
        let ep = d.create_endpoint(t(0), ProtectionKey(1), &mut out);
        out.clear();
        d.on_nic_msg(t(10), DriverMsg::NeedResident { ep, clock: 4 }, &mut out);
        assert_eq!(d.stats().proxy_faults.get(), 1);
        assert_eq!(d.state(ep), Some(&EpState::HostRw));
        assert!(matches!(out[0], OsOut::After(_, OsEvent::DaemonStep)));
        assert!(d.clock() > 4, "Lamport clock must absorb the NIC's clock");
    }

    #[test]
    fn pageout_and_pagein_cycle() {
        let mut d = driver(8);
        let mut out = vec![];
        let ep = d.create_endpoint(t(0), ProtectionKey(1), &mut out);
        assert!(d.pageout(ep));
        assert_eq!(d.state(ep), Some(&EpState::Disk));
        assert!(!d.pageout(ep), "double pageout refused");
        out.clear();
        // Write fault on a paged-out endpoint blocks (swap-in).
        assert_eq!(d.touch_write(t(5), ep, &mut out), WriteOutcome::MustBlock);
        out.clear();
        d.on_daemon_step(t(6), &mut out);
        assert_eq!(d.state(ep), Some(&EpState::PagingIn));
        assert!(matches!(out[0], OsOut::After(_, OsEvent::PageInDone { .. })));
        out.clear();
        d.on_page_in_done(t(12_000), ep, &mut out);
        assert_eq!(d.state(ep), Some(&EpState::HostRw));
        assert_eq!(d.stats().page_ins.get(), 1);
        // Daemon then loads it.
        out.clear();
        d.on_daemon_step(t(12_001), &mut out);
        assert_eq!(d.state(ep), Some(&EpState::Loading));
    }

    #[test]
    fn free_non_resident_unregisters_immediately() {
        let mut d = driver(8);
        let mut out = vec![];
        let ep = d.create_endpoint(t(0), ProtectionKey(1), &mut out);
        out.clear();
        d.free_endpoint(t(1), ep, &mut out);
        assert!(!d.exists(ep));
        assert!(matches!(out[0], OsOut::Nic(DriverOp::Unregister { .. })));
    }

    #[test]
    fn free_resident_synchronizes_with_nic() {
        let mut d = driver(8);
        let mut out = vec![];
        let ep = d.create_endpoint(t(0), ProtectionKey(1), &mut out);
        d.touch_write(t(1), ep, &mut out);
        out.clear();
        d.on_daemon_step(t(2), &mut out);
        d.on_nic_msg(t(300), DriverMsg::Loaded { ep, clock: 1 }, &mut out);
        out.clear();
        d.free_endpoint(t(400), ep, &mut out);
        assert_eq!(d.state(ep), Some(&EpState::Freeing));
        assert!(matches!(out[0], OsOut::Nic(DriverOp::Unload { .. })));
        out.clear();
        d.on_nic_msg(
            t(700),
            DriverMsg::Unloaded { ep, image: Box::new(EndpointImage::new(ProtectionKey(1))), clock: 2 },
            &mut out,
        );
        assert!(!d.exists(ep));
        assert!(
            out.iter().any(|o| matches!(o, OsOut::Nic(DriverOp::Unregister { .. }))),
            "freed endpoint must be unregistered after the unload"
        );
    }

    #[test]
    fn lru_pageout_picks_stalest_parked_endpoint() {
        let mut d = driver(8);
        let mut out = vec![];
        let a = d.create_endpoint(t(0), ProtectionKey(1), &mut out);
        let b = d.create_endpoint(t(0), ProtectionKey(2), &mut out);
        let c = d.create_endpoint(t(0), ProtectionKey(3), &mut out);
        // Touch b and c later; a is the stalest.
        d.touch_write(t(100), b, &mut out);
        d.touch_write(t(200), c, &mut out);
        // b and c are HostRw (queued) — not eligible; a (HostRo) is.
        assert_eq!(d.pageout_lru(), Some(a));
        assert_eq!(d.state(a), Some(&EpState::Disk));
        // Nothing else is HostRo now.
        assert_eq!(d.pageout_lru(), None);
    }

    #[test]
    fn migrate_out_holds_endpoint_on_host_until_completed() {
        let mut d = driver(8);
        let mut out = vec![];
        let ep = d.create_endpoint(t(0), ProtectionKey(1), &mut out);
        // Resident endpoint: migration quiesces through the NIC first.
        d.touch_write(t(1), ep, &mut out);
        out.clear();
        d.on_daemon_step(t(2), &mut out);
        d.on_nic_msg(t(300), DriverMsg::Loaded { ep, clock: 1 }, &mut out);
        out.clear();
        d.begin_migrate_out(t(400), ep, &mut out);
        assert_eq!(d.state(ep), Some(&EpState::Unloading));
        assert!(matches!(out[0], OsOut::Nic(DriverOp::Unload { .. })));
        out.clear();
        d.on_nic_msg(
            t(700),
            DriverMsg::Unloaded {
                ep,
                image: Box::new(EndpointImage::new(ProtectionKey(1))),
                clock: 2,
            },
            &mut out,
        );
        assert_eq!(
            d.state(ep),
            Some(&EpState::HostRw),
            "unload holds the image on host so the owner can drain it"
        );
        // Remap requests (arrivals) are suppressed while migrating, but the
        // owning thread can still write the host image (queueing replies).
        d.proxy_fault(t(800), ep, &mut out);
        assert_eq!(d.touch_write(t(801), ep, &mut out), WriteOutcome::Proceed);
        assert_eq!(d.remap_queue_depth(), 0, "migrating endpoint never re-enters the remap queue");
        assert_eq!(d.state(ep), Some(&EpState::HostRw));
        // Completion destroys the local incarnation.
        out.clear();
        d.complete_migrate_out(t(900), ep, &mut out);
        assert!(!d.exists(ep));
        assert!(matches!(out[0], OsOut::Nic(DriverOp::Unregister { .. })));
    }

    #[test]
    fn migrate_out_of_parked_endpoint_is_immediate() {
        let mut d = driver(8);
        let mut out = vec![];
        let ep = d.create_endpoint(t(0), ProtectionKey(1), &mut out);
        out.clear();
        d.begin_migrate_out(t(1), ep, &mut out);
        assert_eq!(d.state(ep), Some(&EpState::HostRw));
        assert!(out.is_empty(), "parked endpoint needs no NIC round-trip");
        // Idempotent.
        d.begin_migrate_out(t(2), ep, &mut out);
        assert_eq!(d.state(ep), Some(&EpState::HostRw));
        // Dry image: the OS side reports it drained right away.
        assert!(d.drained(ep));
        // Lifting the hold on a dry endpoint schedules no remap.
        d.end_migrate_hold(t(3), ep, &mut out);
        assert_eq!(d.remap_queue_depth(), 0);
    }

    #[test]
    fn lame_duck_drain_reloads_endpoint_with_residual_work() {
        let mut d = driver(8);
        let mut out = vec![];
        let ep = d.create_endpoint(t(0), ProtectionKey(1), &mut out);
        out.clear();
        d.begin_migrate_out(t(1), ep, &mut out);
        // A request was accepted before the drain began: it sits unpolled
        // in the held image, so the endpoint is not drained.
        let msg = vnet_nic::UserMsg {
            uid: 7,
            is_request: true,
            handler: 0,
            args: [0; 4],
            payload_bytes: 0,
            src_ep: vnet_nic::GlobalEp::new(vnet_net::HostId(1), EpId(0)),
            reply_key: ProtectionKey(1),
            corr: 0,
        };
        d.host_image_mut(ep).unwrap().recv_req.push_back(vnet_nic::DeliveredMsg {
            msg: std::sync::Arc::new(msg),
            undeliverable: false,
            deposited_at: t(1),
        });
        assert!(!d.drained(ep));
        // Lifting the hold re-enters the remap queue so the residual work
        // flows; the drain nudge is idempotent.
        d.end_migrate_hold(t(2), ep, &mut out);
        assert_eq!(d.remap_queue_depth(), 1);
        d.nudge_drain(t(3), ep, &mut out);
        assert_eq!(d.remap_queue_depth(), 1);
    }

    #[test]
    fn caller_assigned_ids_live_beside_sequential_ones() {
        let mut d = driver(8);
        let mut out = vec![];
        let a = d.create_endpoint(t(0), ProtectionKey(1), &mut out);
        d.create_endpoint_with_id(t(1), EpId(0x8000_0000), ProtectionKey(2), &mut out);
        let b = d.create_endpoint(t(2), ProtectionKey(3), &mut out);
        assert_eq!((a, b), (EpId(0), EpId(1)), "driver counter unaffected");
        assert_eq!(d.state(EpId(0x8000_0000)), Some(&EpState::HostRo));
    }

    #[test]
    fn remap_requests_deduplicate() {
        let mut d = driver(8);
        let mut out = vec![];
        let ep = d.create_endpoint(t(0), ProtectionKey(1), &mut out);
        out.clear();
        d.touch_write(t(1), ep, &mut out);
        d.proxy_fault(t(2), ep, &mut out);
        d.proxy_fault(t(3), ep, &mut out);
        assert_eq!(d.remap_queue_depth(), 1, "one queue entry per endpoint");
    }
}
