//! OS-side instrumentation: fault and remap counters used to report the
//! §6.4.1 numbers ("the operating system sustains approximately 200-300
//! endpoint re-mappings per second").
//!
//! `OsStats` is enumerated generically through
//! [`vnet_sim::telemetry::MetricSet`]: read a named counter with
//! [`MetricSet::counter_value`] and walk everything with
//! [`MetricSet::visit_metrics`]. Only the remap-latency sampler keeps a
//! first-class accessor (distribution analysis needs the raw samples).

use vnet_sim::stats::{Counter, Sampler};
use vnet_sim::telemetry::{MetricSet, MetricValue, MetricVisitor, Summary};

/// Per-node segment-driver counters.
///
/// Iterate the metrics via [`MetricSet::visit_metrics`] (short names
/// match the accessor names below, e.g. `loads`), or look one up with
/// [`MetricSet::counter_value`].
#[derive(Clone, Debug, Default)]
pub struct OsStats {
    /// Write faults taken on non-resident endpoints.
    pub(crate) write_faults: Counter,
    /// Proxy faults taken on behalf of the NIC (message arrival for a
    /// non-resident endpoint).
    pub(crate) proxy_faults: Counter,
    /// Endpoint loads completed (each is one half of a "re-mapping").
    pub(crate) loads: Counter,
    /// Endpoint unloads completed (evictions).
    pub(crate) unloads: Counter,
    /// Page-ins from the swap area.
    pub(crate) page_ins: Counter,
    /// Pageouts to the swap area.
    pub(crate) page_outs: Counter,
    /// Threads woken by endpoint events.
    pub(crate) event_wakes: Counter,
    /// Threads woken by residency transitions.
    pub(crate) residency_wakes: Counter,
    /// End-to-end remap latency samples (request → loaded), µs.
    pub(crate) remap_latency_us: Sampler,
}

impl OsStats {
    /// Remaps per second of simulated time (loads are the unit the paper
    /// counts).
    pub fn remaps_per_sec(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            0.0
        } else {
            self.loads.get() as f64 / elapsed_secs
        }
    }

    /// The raw remap-latency sampler (µs). Kept as a first-class accessor
    /// because distribution analysis needs the individual samples.
    pub fn remap_latency_us(&self) -> Sampler {
        self.remap_latency_us.clone()
    }
}

impl MetricSet for OsStats {
    fn visit_metrics(&self, v: &mut dyn MetricVisitor) {
        v.metric("write_faults", MetricValue::Counter(self.write_faults.get()));
        v.metric("proxy_faults", MetricValue::Counter(self.proxy_faults.get()));
        v.metric("loads", MetricValue::Counter(self.loads.get()));
        v.metric("unloads", MetricValue::Counter(self.unloads.get()));
        v.metric("page_ins", MetricValue::Counter(self.page_ins.get()));
        v.metric("page_outs", MetricValue::Counter(self.page_outs.get()));
        v.metric("event_wakes", MetricValue::Counter(self.event_wakes.get()));
        v.metric("residency_wakes", MetricValue::Counter(self.residency_wakes.get()));
        v.metric("remap_latency_us", MetricValue::Summary(Summary::from_sampler(&self.remap_latency_us)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remap_rate() {
        let mut s = OsStats::default();
        s.loads.add(250);
        assert!((s.remaps_per_sec(1.0) - 250.0).abs() < 1e-9);
        assert_eq!(s.remaps_per_sec(0.0), 0.0);
        assert_eq!(s.counter_value("loads"), 250);
    }

    #[test]
    fn metric_set_enumerates() {
        let mut s = OsStats::default();
        s.write_faults.inc();
        s.remap_latency_us.record(3000.0);
        assert_eq!(s.counter_value("write_faults"), 1);
        assert_eq!(s.summary_value("remap_latency_us").count, 1);
        assert!(s.metric("no_such_metric").is_none());
    }
}
