//! OS-side instrumentation: fault and remap counters used to report the
//! §6.4.1 numbers ("the operating system sustains approximately 200-300
//! endpoint re-mappings per second").

use vnet_sim::stats::{Counter, Sampler};

/// Per-node segment-driver counters.
#[derive(Clone, Debug, Default)]
pub struct OsStats {
    /// Write faults taken on non-resident endpoints.
    pub write_faults: Counter,
    /// Proxy faults taken on behalf of the NIC (message arrival for a
    /// non-resident endpoint).
    pub proxy_faults: Counter,
    /// Endpoint loads completed (each is one half of a "re-mapping").
    pub loads: Counter,
    /// Endpoint unloads completed (evictions).
    pub unloads: Counter,
    /// Page-ins from the swap area.
    pub page_ins: Counter,
    /// Pageouts to the swap area.
    pub page_outs: Counter,
    /// Threads woken by endpoint events.
    pub event_wakes: Counter,
    /// Threads woken by residency transitions.
    pub residency_wakes: Counter,
    /// End-to-end remap latency samples (request → loaded), µs.
    pub remap_latency_us: Sampler,
}

impl OsStats {
    /// Remaps per second of simulated time (loads are the unit the paper
    /// counts).
    pub fn remaps_per_sec(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            0.0
        } else {
            self.loads.get() as f64 / elapsed_secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remap_rate() {
        let mut s = OsStats::default();
        s.loads.add(250);
        assert!((s.remaps_per_sec(1.0) - 250.0).abs() < 1e-9);
        assert_eq!(s.remaps_per_sec(0.0), 0.0);
    }
}
