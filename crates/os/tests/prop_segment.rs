//! Property tests for the endpoint segment driver: under arbitrary fault
//! sequences — with a faithful mock NIC answering the driver protocol —
//! the four-state machine never overcommits frames and every requested
//! endpoint eventually becomes resident.

use proptest::prelude::*;
use std::collections::VecDeque;
use vnet_nic::{DriverMsg, DriverOp, EndpointImage, EpId, ProtectionKey};
use vnet_os::{EpState, OsConfig, OsEvent, OsOut, SegmentDriver};
use vnet_sim::{SimDuration, SimTime};

/// A mock NIC + event queue that drives the segment driver's effects to
/// completion, mimicking the real pipeline's causality.
struct MockPipeline {
    now: SimTime,
    /// (due, event)
    timers: VecDeque<(SimTime, OsEvent)>,
    /// Pending NIC completions (due, message).
    nic: VecDeque<(SimTime, DriverMsg)>,
    loaded: std::collections::HashSet<EpId>,
    frames: u32,
}

impl MockPipeline {
    fn new(frames: u32) -> Self {
        MockPipeline {
            now: SimTime::ZERO,
            timers: VecDeque::new(),
            nic: VecDeque::new(),
            loaded: Default::default(),
            frames,
        }
    }

    fn absorb(&mut self, outs: Vec<OsOut>) {
        for o in outs {
            match o {
                OsOut::After(d, ev) => self.timers.push_back((self.now + d, ev)),
                OsOut::Wake(_) => {}
                OsOut::Nic(op) => match op {
                    DriverOp::Load { ep, clock, .. } => {
                        self.loaded.insert(ep);
                        assert!(
                            self.loaded.len() as u32 <= self.frames,
                            "NIC frames overcommitted: {} > {}",
                            self.loaded.len(),
                            self.frames
                        );
                        self.nic.push_back((
                            self.now + SimDuration::from_micros(150),
                            DriverMsg::Loaded { ep, clock: clock + 1 },
                        ));
                    }
                    DriverOp::Unload { ep, clock } => {
                        assert!(self.loaded.remove(&ep), "unload of non-loaded {ep}");
                        self.nic.push_back((
                            self.now + SimDuration::from_micros(200),
                            DriverMsg::Unloaded {
                                ep,
                                image: Box::new(EndpointImage::new(ProtectionKey::OPEN)),
                                clock: clock + 1,
                            },
                        ));
                    }
                    DriverOp::Register { .. }
                    | DriverOp::Unregister { .. }
                    | DriverOp::SetMask { .. } => {}
                },
            }
        }
    }

    /// Deliver the earliest pending event; returns false when quiescent.
    fn step(&mut self, d: &mut SegmentDriver) -> bool {
        let t_timer = self.timers.front().map(|&(t, _)| t);
        let t_nic = self.nic.front().map(|&(t, _)| t);
        match (t_timer, t_nic) {
            (None, None) => false,
            (a, b) => {
                let take_timer = match (a, b) {
                    (Some(x), Some(y)) => x <= y,
                    (Some(_), None) => true,
                    _ => false,
                };
                let mut outs = Vec::new();
                if take_timer {
                    let (t, ev) = self.timers.pop_front().unwrap();
                    self.now = t;
                    match ev {
                        OsEvent::DaemonStep => d.on_daemon_step(t, &mut outs),
                        OsEvent::PageInDone { ep } => d.on_page_in_done(t, ep, &mut outs),
                    }
                } else {
                    let (t, msg) = self.nic.pop_front().unwrap();
                    self.now = t;
                    d.on_nic_msg(t, msg, &mut outs);
                }
                self.absorb(outs);
                true
            }
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum FaultOp {
    Write(usize),
    Proxy(usize),
    Pageout(usize),
}

fn fault_op(n: usize) -> impl Strategy<Value = FaultOp> {
    prop_oneof![
        (0..n).prop_map(FaultOp::Write),
        (0..n).prop_map(FaultOp::Proxy),
        (0..n).prop_map(FaultOp::Pageout),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any interleaving of write faults, proxy faults, and pageouts over
    /// more endpoints than frames drives every touched endpoint resident
    /// (or parked) without ever overcommitting the NIC, and the driver
    /// reaches quiescence.
    #[test]
    fn segment_driver_never_overcommits(
        frames in 1u32..6,
        n_eps in 1usize..12,
        ops in prop::collection::vec(fault_op(12), 1..60),
    ) {
        let mut d = SegmentDriver::new(OsConfig::default(), frames, 7);
        let mut pipe = MockPipeline::new(frames);
        let mut outs = Vec::new();
        let eps: Vec<EpId> =
            (0..n_eps).map(|_| d.create_endpoint(SimTime::ZERO, ProtectionKey(1), &mut outs)).collect();
        pipe.absorb(std::mem::take(&mut outs));

        for op in ops {
            let mut outs = Vec::new();
            match op {
                FaultOp::Write(i) if i < n_eps => {
                    let _ = d.touch_write(pipe.now, eps[i], &mut outs);
                }
                FaultOp::Proxy(i) if i < n_eps => {
                    d.proxy_fault(pipe.now, eps[i], &mut outs);
                }
                FaultOp::Pageout(i) if i < n_eps => {
                    let _ = d.pageout(eps[i]);
                }
                _ => {}
            }
            pipe.absorb(outs);
            // Interleave a little pipeline progress.
            pipe.step(&mut d);
        }
        // Drain to quiescence (bounded: the pipeline always terminates).
        let mut steps = 0;
        while pipe.step(&mut d) {
            steps += 1;
            prop_assert!(steps < 100_000, "remap pipeline diverged");
        }
        // Invariants at rest: occupancy within frames; no endpoint stuck in
        // a transition state; every endpoint accounted for.
        let (resident, host, disk, trans) = d.census();
        prop_assert!(resident as u32 <= frames);
        prop_assert_eq!(trans, 0, "no endpoint may be stuck mid-transition");
        prop_assert_eq!(resident + host + disk, n_eps);
        prop_assert_eq!(d.remap_queue_depth(), 0);
    }
}
