//! Property tests for the endpoint segment driver: under randomized fault
//! sequences — with a faithful mock NIC answering the driver protocol —
//! the four-state machine never overcommits frames and every requested
//! endpoint eventually becomes resident.
//!
//! Cases are generated from [`SimRng`] seeds rather than an external
//! property-testing crate, so the suite builds offline.

use std::collections::VecDeque;
use vnet_nic::{DriverMsg, DriverOp, EndpointImage, EpId, ProtectionKey};
use vnet_os::{OsConfig, OsEvent, OsOut, SegmentDriver};
use vnet_sim::{SimDuration, SimRng, SimTime};

/// A mock NIC + event queue that drives the segment driver's effects to
/// completion, mimicking the real pipeline's causality.
struct MockPipeline {
    now: SimTime,
    /// (due, event)
    timers: VecDeque<(SimTime, OsEvent)>,
    /// Pending NIC completions (due, message).
    nic: VecDeque<(SimTime, DriverMsg)>,
    loaded: std::collections::HashSet<EpId>,
    frames: u32,
}

impl MockPipeline {
    fn new(frames: u32) -> Self {
        MockPipeline {
            now: SimTime::ZERO,
            timers: VecDeque::new(),
            nic: VecDeque::new(),
            loaded: Default::default(),
            frames,
        }
    }

    fn absorb(&mut self, outs: Vec<OsOut>) {
        for o in outs {
            match o {
                OsOut::After(d, ev) => self.timers.push_back((self.now + d, ev)),
                OsOut::Wake(_) => {}
                OsOut::Nic(op) => match op {
                    DriverOp::Load { ep, clock, .. } => {
                        self.loaded.insert(ep);
                        assert!(
                            self.loaded.len() as u32 <= self.frames,
                            "NIC frames overcommitted: {} > {}",
                            self.loaded.len(),
                            self.frames
                        );
                        self.nic.push_back((
                            self.now + SimDuration::from_micros(150),
                            DriverMsg::Loaded { ep, clock: clock + 1 },
                        ));
                    }
                    DriverOp::Unload { ep, clock } => {
                        assert!(self.loaded.remove(&ep), "unload of non-loaded {ep}");
                        self.nic.push_back((
                            self.now + SimDuration::from_micros(200),
                            DriverMsg::Unloaded {
                                ep,
                                image: Box::new(EndpointImage::new(ProtectionKey::OPEN)),
                                clock: clock + 1,
                            },
                        ));
                    }
                    DriverOp::Register { .. }
                    | DriverOp::Unregister { .. }
                    | DriverOp::SetMask { .. } => {}
                },
            }
        }
    }

    /// Deliver the earliest pending event; returns false when quiescent.
    fn step(&mut self, d: &mut SegmentDriver) -> bool {
        let t_timer = self.timers.front().map(|&(t, _)| t);
        let t_nic = self.nic.front().map(|&(t, _)| t);
        match (t_timer, t_nic) {
            (None, None) => false,
            (a, b) => {
                let take_timer = match (a, b) {
                    (Some(x), Some(y)) => x <= y,
                    (Some(_), None) => true,
                    _ => false,
                };
                let mut outs = Vec::new();
                if take_timer {
                    let (t, ev) = self.timers.pop_front().unwrap();
                    self.now = t;
                    match ev {
                        OsEvent::DaemonStep => d.on_daemon_step(t, &mut outs),
                        OsEvent::PageInDone { ep } => d.on_page_in_done(t, ep, &mut outs),
                    }
                } else {
                    let (t, msg) = self.nic.pop_front().unwrap();
                    self.now = t;
                    d.on_nic_msg(t, msg, &mut outs);
                }
                self.absorb(outs);
                true
            }
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum FaultOp {
    Write(usize),
    Proxy(usize),
    Pageout(usize),
}

fn random_fault(rng: &mut SimRng, n: usize) -> FaultOp {
    match rng.below(3) {
        0 => FaultOp::Write(rng.index(n)),
        1 => FaultOp::Proxy(rng.index(n)),
        _ => FaultOp::Pageout(rng.index(n)),
    }
}

/// Any interleaving of write faults, proxy faults, and pageouts over
/// more endpoints than frames drives every touched endpoint resident
/// (or parked) without ever overcommitting the NIC, and the driver
/// reaches quiescence.
#[test]
fn segment_driver_never_overcommits() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(0x5E9 + case);
        let frames = 1 + rng.below(5) as u32;
        let n_eps = 1 + rng.index(11);
        let n_ops = 1 + rng.index(59);

        let mut d = SegmentDriver::new(OsConfig::default(), frames, 7);
        let mut pipe = MockPipeline::new(frames);
        let mut outs = Vec::new();
        let eps: Vec<EpId> = (0..n_eps)
            .map(|_| d.create_endpoint(SimTime::ZERO, ProtectionKey(1), &mut outs))
            .collect();
        pipe.absorb(std::mem::take(&mut outs));

        for _ in 0..n_ops {
            let op = random_fault(&mut rng, 12);
            let mut outs = Vec::new();
            match op {
                FaultOp::Write(i) if i < n_eps => {
                    let _ = d.touch_write(pipe.now, eps[i], &mut outs);
                }
                FaultOp::Proxy(i) if i < n_eps => {
                    d.proxy_fault(pipe.now, eps[i], &mut outs);
                }
                FaultOp::Pageout(i) if i < n_eps => {
                    let _ = d.pageout(eps[i]);
                }
                _ => {}
            }
            pipe.absorb(outs);
            // Interleave a little pipeline progress.
            pipe.step(&mut d);
        }
        // Drain to quiescence (bounded: the pipeline always terminates).
        let mut steps = 0;
        while pipe.step(&mut d) {
            steps += 1;
            assert!(steps < 100_000, "case {case}: remap pipeline diverged");
        }
        // Invariants at rest: occupancy within frames; no endpoint stuck in
        // a transition state; every endpoint accounted for.
        let (resident, host, disk, trans) = d.census();
        assert!(resident as u32 <= frames, "case {case}");
        assert_eq!(trans, 0, "case {case}: no endpoint may be stuck mid-transition");
        assert_eq!(resident + host + disk, n_eps, "case {case}");
        assert_eq!(d.remap_queue_depth(), 0, "case {case}");
    }
}
