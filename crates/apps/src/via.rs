//! Resource-scaling comparison with the Virtual Interface Architecture
//! (§7: "A parallel program on n nodes requires n² total VI's for complete
//! connectivity, rather than a single endpoint. Resource provisioning is
//! also done on a connection basis rather than pooling resources across a
//! set.").
//!
//! The model follows the VIA 1.0 specification's conservative memory
//! management: every VI is a connection with its own send/receive work
//! queues whose descriptors and buffers must be *registered and pinned*
//! before communicating, and the NI caches VI state in on-board memory
//! with no paging story. Virtual networks pool all of that per endpoint
//! and page endpoint frames on demand.

/// Per-connection constants, from the VIA reference model and the paper's
/// NOW hardware.
#[derive(Clone, Debug)]
pub struct ViaModel {
    /// Descriptors per work queue (send and receive each).
    pub queue_depth: u32,
    /// Bytes per descriptor (VIA: 64-byte aligned descriptors).
    pub descriptor_bytes: u32,
    /// Pre-posted receive buffer bytes per descriptor (small-message class).
    pub buffer_bytes: u32,
    /// NI on-board state per VI (queue pointers, sequence state, doorbell).
    pub ni_state_bytes: u32,
    /// NI on-board memory available for connection state.
    pub ni_memory_bytes: u64,
}

impl Default for ViaModel {
    fn default() -> Self {
        ViaModel {
            queue_depth: 32,
            descriptor_bytes: 64,
            buffer_bytes: 256,
            ni_state_bytes: 512,
            ni_memory_bytes: 1 << 20, // the LANai's 1 MB
        }
    }
}

/// Resource demand of one fully-connected parallel job.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceDemand {
    /// Communication objects across the whole job (VIs or endpoints).
    pub objects_total: u64,
    /// Communication objects per process.
    pub objects_per_process: u64,
    /// Pinned host memory per process, bytes.
    pub pinned_per_process: u64,
    /// NI memory demanded per node, bytes.
    pub ni_memory_per_node: u64,
    /// Whether the demand fits the NI without overcommit handling.
    pub fits_ni: bool,
}

impl ViaModel {
    /// Demand for an `n`-process job with full connectivity under VIA
    /// (one connection per peer pair endpoint).
    pub fn via_demand(&self, n: u64) -> ResourceDemand {
        let per_proc = n.saturating_sub(1);
        let per_vi_pinned = 2 * self.queue_depth as u64 * self.descriptor_bytes as u64
            + self.queue_depth as u64 * self.buffer_bytes as u64;
        let ni = per_proc * self.ni_state_bytes as u64;
        ResourceDemand {
            objects_total: n * per_proc,
            objects_per_process: per_proc,
            pinned_per_process: per_proc * per_vi_pinned,
            ni_memory_per_node: ni,
            fits_ni: ni <= self.ni_memory_bytes,
        }
    }

    /// Demand under virtual networks: one endpoint per process, resources
    /// pooled; the NI needs one 8 KB frame *when the endpoint is resident*
    /// and pages on demand otherwise.
    pub fn vn_demand(&self, n: u64, frame_bytes: u64) -> ResourceDemand {
        ResourceDemand {
            objects_total: n,
            objects_per_process: 1,
            pinned_per_process: frame_bytes, // the endpoint page itself
            ni_memory_per_node: frame_bytes, // one frame while resident
            fits_ni: true,                   // paging handles any overcommit
        }
    }

    /// Largest fully-connected job whose per-node VI state still fits the
    /// NI memory without overcommit.
    pub fn via_max_job(&self) -> u64 {
        self.ni_memory_bytes / self.ni_state_bytes as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn via_scales_quadratically_vn_linearly() {
        let m = ViaModel::default();
        let v10 = m.via_demand(10);
        let v100 = m.via_demand(100);
        assert_eq!(v10.objects_total, 90);
        assert_eq!(v100.objects_total, 9_900, "n^2 scaling");
        let e100 = m.vn_demand(100, 8192);
        assert_eq!(e100.objects_total, 100, "linear scaling");
        assert_eq!(e100.objects_per_process, 1);
    }

    #[test]
    fn via_pinning_grows_with_job() {
        let m = ViaModel::default();
        let d = m.via_demand(100);
        // 99 VIs x (2*32*64 + 32*256) = 99 x 12288 bytes.
        assert_eq!(d.pinned_per_process, 99 * 12_288);
        assert!(d.pinned_per_process > m.vn_demand(100, 8192).pinned_per_process * 100);
    }

    #[test]
    fn via_hits_the_ni_wall() {
        let m = ViaModel::default();
        assert!(m.via_demand(100).fits_ni);
        let wall = m.via_max_job();
        assert!(!m.via_demand(wall * 2).fits_ni, "beyond the wall must not fit");
        assert!(m.vn_demand(wall * 2, 8192).fits_ni, "VN pages instead of failing");
    }
}
