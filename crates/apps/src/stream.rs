//! Ordered byte streams over Active Messages — the role the paper's
//! Figure 1 gives to "Sockets … TCP/IP Protocol Stack" layered on
//! kernel-level Active Messages (and SHRIMP's stream sockets, §7).
//!
//! A stream chops a byte flow into MTU-sized segments, stamps each with a
//! stream sequence number, and reassembles in order at the receiver. The
//! virtual-network transport already provides exactly-once delivery, but
//! *not* total order across logical channels — the stream layer's
//! reordering buffer is what turns endpoint messages into a socket.

use std::collections::BTreeMap;
use vnet_core::prelude::*;

/// Handler index used by stream segments (applications multiplexing other
/// traffic on the same endpoint should dispatch on it).
pub const STREAM_HANDLER: u16 = 0x5EA;

/// Sending half of a byte stream to one translation-table destination.
#[derive(Debug)]
pub struct StreamTx {
    ep: EpId,
    dst_idx: usize,
    next_seq: u64,
    /// Total payload bytes accepted.
    pub sent_bytes: u64,
    mtu: u32,
}

impl StreamTx {
    /// Stream from `ep` to translation entry `dst_idx`.
    pub fn new(ep: EpId, dst_idx: usize) -> Self {
        StreamTx { ep, dst_idx, next_seq: 0, sent_bytes: 0, mtu: 8192 }
    }

    /// Try to enqueue up to `bytes` more of the flow; returns how many
    /// bytes were accepted (0 when the credit window or send queue is
    /// full — call again on a later burst). `Err` only for hard faults.
    pub fn push(&mut self, sys: &mut Sys<'_>, bytes: u64) -> Result<u64, SendError> {
        let mut accepted = 0;
        while accepted < bytes {
            let seg = (bytes - accepted).min(self.mtu as u64) as u32;
            match sys.request(self.ep, self.dst_idx, STREAM_HANDLER, [self.next_seq, 0, 0, 0], seg)
            {
                Ok(_) => {
                    self.next_seq += 1;
                    self.sent_bytes += seg as u64;
                    accepted += seg as u64;
                }
                Err(SendError::NoCredit) | Err(SendError::QueueFull) => break,
                Err(e) => return Err(e),
            }
        }
        Ok(accepted)
    }

    /// Segments emitted so far.
    pub fn segments(&self) -> u64 {
        self.next_seq
    }
}

/// Receiving half: reassembles segments into an ordered byte count.
#[derive(Debug, Default)]
pub struct StreamRx {
    next_seq: u64,
    /// Out-of-order segments parked until the gap fills.
    parked: BTreeMap<u64, u32>,
    /// Bytes delivered in order.
    pub ordered_bytes: u64,
    /// Largest reordering-buffer depth observed.
    pub max_parked: usize,
}

impl StreamRx {
    /// Fresh receiver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one arriving stream segment (already matched on
    /// [`STREAM_HANDLER`]); the caller replies to it as usual for credit
    /// recovery. Returns the number of bytes that became deliverable.
    pub fn accept(&mut self, m: &DeliveredMsg) -> u64 {
        debug_assert_eq!(m.msg.handler, STREAM_HANDLER);
        let seq = m.msg.args[0];
        if seq < self.next_seq {
            return 0; // duplicate of already-delivered data (impossible
                      // under the exactly-once transport, but harmless)
        }
        self.parked.insert(seq, m.msg.payload_bytes);
        self.max_parked = self.max_parked.max(self.parked.len());
        let mut delivered = 0;
        while let Some(&bytes) = self.parked.get(&self.next_seq) {
            self.parked.remove(&self.next_seq);
            self.next_seq += 1;
            self.ordered_bytes += bytes as u64;
            delivered += bytes as u64;
        }
        delivered
    }

    /// Whether any segments are waiting on a gap.
    pub fn has_gaps(&self) -> bool {
        !self.parked.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_core::{Cluster, ClusterConfig};
    use vnet_sim::SimDuration as D;

    struct Sender {
        tx: StreamTx,
        total: u64,
    }
    impl ThreadBody for Sender {
        fn run(&mut self, sys: &mut Sys<'_>) -> Step {
            // Recover credits.
            while sys.poll(self.tx.ep, QueueSel::Reply).is_some() {}
            if self.tx.sent_bytes < self.total {
                let want = self.total - self.tx.sent_bytes;
                self.tx.push(sys, want).expect("stream push");
                return Step::Yield;
            }
            if sys.outstanding(self.tx.ep) > 0 {
                return Step::WaitEvent(self.tx.ep);
            }
            Step::Exit
        }
    }

    struct Receiver {
        ep: EpId,
        rx: StreamRx,
        expect: u64,
    }
    impl ThreadBody for Receiver {
        fn run(&mut self, sys: &mut Sys<'_>) -> Step {
            while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
                self.rx.accept(&m);
                sys.reply(self.ep, &m, 0, [m.msg.args[0], 0, 0, 0], 0).expect("stream ack");
            }
            if self.rx.ordered_bytes >= self.expect {
                return Step::Exit;
            }
            Step::WaitEvent(self.ep)
        }
    }

    fn run_stream(total: u64, drop_prob: f64) -> (u64, usize) {
        let mut cfg = ClusterConfig::now(2);
        cfg.drop_prob = drop_prob;
        let mut c = Cluster::new(cfg);
        let a = c.create_endpoint(HostId(0));
        let b = c.create_endpoint(HostId(1));
        c.build_virtual_network(&[a, b]);
        c.spawn_thread(
            HostId(0),
            Box::new(Sender { tx: StreamTx::new(a.ep, 1), total }),
        );
        let rt = c.spawn_thread(
            HostId(1),
            Box::new(Receiver { ep: b.ep, rx: StreamRx::new(), expect: total }),
        );
        c.run_for(D::from_secs(60));
        let r: &Receiver = c.body(HostId(1), rt).unwrap();
        assert!(!r.rx.has_gaps(), "stream ended with holes");
        (r.rx.ordered_bytes, r.rx.max_parked)
    }

    #[test]
    fn megabyte_arrives_in_order() {
        let (bytes, _) = run_stream(1 << 20, 0.0);
        assert_eq!(bytes, 1 << 20);
    }

    #[test]
    fn reordering_buffer_absorbs_multipath() {
        // Multiple logical channels reorder segments; the buffer must see
        // parked segments yet deliver every byte in order.
        let (bytes, max_parked) = run_stream(512 * 1024, 0.0);
        assert_eq!(bytes, 512 * 1024);
        // With 4 channels some reordering is overwhelmingly likely.
        assert!(max_parked >= 1, "expected some out-of-order arrival");
        assert!(max_parked <= 64, "reordering bounded by the credit window");
    }

    #[test]
    fn lossy_fabric_still_yields_ordered_stream() {
        let (bytes, _) = run_stream(256 * 1024, 0.05);
        assert_eq!(bytes, 256 * 1024, "drops recovered below the stream layer");
    }

    #[test]
    fn rx_ignores_stale_duplicates() {
        use vnet_nic::{DeliveredMsg, GlobalEp, ProtectionKey, UserMsg};
        use vnet_sim::SimTime;
        let mk = |seq: u64, bytes: u32| DeliveredMsg {
            msg: std::sync::Arc::new(UserMsg {
                uid: seq,
                is_request: true,
                handler: STREAM_HANDLER,
                args: [seq, 0, 0, 0],
                payload_bytes: bytes,
                src_ep: GlobalEp::new(HostId(0), EpId(0)),
                reply_key: ProtectionKey::OPEN,
                corr: 0,
            }),
            undeliverable: false,
            deposited_at: SimTime::ZERO,
        };
        let mut rx = StreamRx::new();
        assert_eq!(rx.accept(&mk(1, 100)), 0); // gap: seq 0 missing
        assert!(rx.has_gaps());
        assert_eq!(rx.accept(&mk(0, 50)), 150); // fills and drains
        assert_eq!(rx.accept(&mk(0, 50)), 0); // stale duplicate
        assert_eq!(rx.ordered_bytes, 150);
    }
}
