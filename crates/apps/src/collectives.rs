//! Collective-communication schedule builders for [`crate::bsp`] programs.
//!
//! Each builder appends the supersteps one rank contributes to a standard
//! collective. Builders are *pure*: calling the same builder for every
//! rank of a job yields globally consistent schedules (every send has a
//! matching expected receive in the same step) — a property the tests
//! check exhaustively and the NPB/Linpack skeletons rely on.

use crate::bsp::{patterns, SuperStep};
use vnet_sim::SimDuration;

/// Split a logical transfer of `bytes` to `dst` into MTU-sized messages,
/// appending to `out`; returns the message count.
pub fn chunked(dst: usize, bytes: u64, mtu: u64, out: &mut Vec<(usize, u32)>) -> u32 {
    if bytes == 0 {
        return 0;
    }
    let n = bytes.div_ceil(mtu);
    for i in 0..n {
        let sz = if i == n - 1 { bytes - (n - 1) * mtu } else { mtu };
        out.push((dst, sz as u32));
    }
    n as u32
}

/// Append the recursive-doubling allreduce rounds (8-byte contributions):
/// `⌈log2 p⌉` supersteps of pairwise exchange.
pub fn allreduce(sched: &mut Vec<SuperStep>, rank: usize, p: usize) {
    for round in 0..patterns::log2_ceil(p) {
        let mut sends = Vec::new();
        let mut recv = 0;
        if let Some(partner) = patterns::doubling_partner(rank, p, round) {
            sends.push((partner, 8u32));
            recv = 1;
        }
        sched.push(SuperStep { compute: SimDuration::ZERO, sends, recv_count: recv });
    }
}

/// Append a binomial-tree broadcast of `bytes` from `root`:
/// `⌈log2 p⌉` supersteps; in round `r`, ranks holding the data relay it to
/// their partner `2^r` away (relative to the root).
pub fn broadcast(
    sched: &mut Vec<SuperStep>,
    rank: usize,
    p: usize,
    root: usize,
    bytes: u64,
    mtu: u64,
) {
    let rounds = patterns::log2_ceil(p);
    let rel = (rank + p - root) % p;
    for round in 0..rounds {
        let half = 1usize << round;
        let mut sends = Vec::new();
        let mut recv = 0;
        if rel < half && rel + half < p {
            let dst = (root + rel + half) % p;
            chunked(dst, bytes, mtu, &mut sends);
        } else if rel >= half && rel < 2 * half {
            recv = bytes.div_ceil(mtu).max(1) as u32 * u32::from(bytes > 0);
            if bytes == 0 {
                recv = 0;
            }
        }
        sched.push(SuperStep { compute: SimDuration::ZERO, sends, recv_count: recv });
    }
}

/// Append one all-to-all personalized exchange: every rank sends
/// `per_pair` bytes to every other rank in a single superstep.
pub fn alltoall(sched: &mut Vec<SuperStep>, rank: usize, p: usize, per_pair: u64, mtu: u64) {
    let mut sends = Vec::new();
    let mut recv = 0;
    for d in 0..p {
        if d != rank {
            recv += chunked(d, per_pair, mtu, &mut sends);
        }
    }
    sched.push(SuperStep { compute: SimDuration::ZERO, sends, recv_count: recv });
}

/// Append a dissemination barrier: `⌈log2 p⌉` rounds; in round `r`, rank
/// sends to `(rank + 2^r) mod p` and hears from `(rank - 2^r) mod p`.
pub fn barrier(sched: &mut Vec<SuperStep>, rank: usize, p: usize) {
    if p < 2 {
        return;
    }
    for round in 0..patterns::log2_ceil(p) {
        let step = 1usize << round;
        let to = (rank + step) % p;
        sched.push(SuperStep {
            compute: SimDuration::ZERO,
            sends: vec![(to, 8)],
            recv_count: 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every collective must balance sends and expected receives per step.
    fn check_balanced(build: impl Fn(usize, usize) -> Vec<SuperStep>, p: usize, what: &str) {
        let scheds: Vec<_> = (0..p).map(|r| build(r, p)).collect();
        let steps = scheds.iter().map(|s| s.len()).max().unwrap_or(0);
        assert!(scheds.iter().all(|s| s.len() == steps), "{what} P={p}: ragged schedules");
        for s in 0..steps {
            let sends: u32 = scheds.iter().map(|sc| sc[s].sends.len() as u32).sum();
            let recvs: u32 = scheds.iter().map(|sc| sc[s].recv_count).sum();
            assert_eq!(sends, recvs, "{what} P={p} step {s}");
            // Per-destination balance: what is sent to r equals what r expects
            // cannot be checked per-step in general (a rank's recv_count is
            // aggregate), but destinations must at least be valid.
            for sc in &scheds {
                for &(d, b) in &sc[s].sends {
                    assert!(d < p, "{what}: bad destination");
                    assert!(b > 0, "{what}: zero-byte message");
                }
            }
        }
    }

    #[test]
    fn allreduce_balanced_all_sizes() {
        for p in 1..=17 {
            check_balanced(
                |r, p| {
                    let mut s = vec![];
                    allreduce(&mut s, r, p);
                    s
                },
                p,
                "allreduce",
            );
        }
    }

    #[test]
    fn broadcast_balanced_all_roots() {
        for p in 1..=9 {
            for root in 0..p {
                check_balanced(
                    |r, p| {
                        let mut s = vec![];
                        broadcast(&mut s, r, p, root, 20_000, 8192);
                        s
                    },
                    p,
                    "broadcast",
                );
            }
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        // Track data possession through the rounds.
        for p in 2..=13 {
            for root in 0..p {
                let scheds: Vec<Vec<SuperStep>> = (0..p)
                    .map(|r| {
                        let mut s = vec![];
                        broadcast(&mut s, r, p, root, 8192, 8192);
                        s
                    })
                    .collect();
                let mut has = vec![false; p];
                has[root] = true;
                let steps = scheds[0].len();
                for s in 0..steps {
                    let mut now_has = has.clone();
                    for (r, sc) in scheds.iter().enumerate() {
                        for &(d, _) in &sc[s].sends {
                            assert!(has[r], "rank {r} relays data it does not have (P={p})");
                            now_has[d] = true;
                        }
                    }
                    has = now_has;
                }
                assert!(has.iter().all(|&h| h), "broadcast incomplete P={p} root={root}");
            }
        }
    }

    #[test]
    fn alltoall_balanced() {
        for p in 2..=9 {
            check_balanced(
                |r, p| {
                    let mut s = vec![];
                    alltoall(&mut s, r, p, 10_000, 8192);
                    s
                },
                p,
                "alltoall",
            );
        }
    }

    #[test]
    fn barrier_balanced() {
        for p in 2..=17 {
            check_balanced(
                |r, p| {
                    let mut s = vec![];
                    barrier(&mut s, r, p);
                    s
                },
                p,
                "barrier",
            );
        }
    }

    #[test]
    fn chunking() {
        let mut v = vec![];
        assert_eq!(chunked(1, 0, 8192, &mut v), 0);
        assert_eq!(chunked(1, 8192, 8192, &mut v), 1);
        assert_eq!(chunked(1, 8193, 8192, &mut v), 2);
        assert_eq!(v.iter().map(|&(_, b)| b as u64).sum::<u64>(), 8192 + 8193);
    }
}
