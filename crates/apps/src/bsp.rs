//! A superstep (BSP-style) parallel programming layer on Active Messages.
//!
//! This is the role MPICH-on-AM plays in the paper: parallel programs are
//! expressed as a sequence of *supersteps* — local compute followed by a
//! message exchange — and the [`BspRunner`] turns each rank into a
//! [`ThreadBody`] that drives the exchange through the endpoint API with
//! credit-aware sends and spin-block waiting (the spin-then-block receive
//! is the mechanism behind the implicit co-scheduling of §6.3).

use std::collections::HashMap;
use vnet_core::prelude::*;
use vnet_sim::SimTime;

/// One superstep of a rank: compute, then exchange.
#[derive(Clone, Debug, Default)]
pub struct SuperStep {
    /// Local computation before communicating.
    pub compute: SimDuration,
    /// Messages to send: `(destination rank, payload bytes)`. Destination
    /// ranks index the virtual network built over the job's endpoints.
    pub sends: Vec<(usize, u32)>,
    /// Number of messages this rank must receive in this step (determined
    /// by the communication pattern).
    pub recv_count: u32,
}

/// A parallel application: yields one superstep at a time per rank.
pub trait BspApp: Send + 'static {
    /// The superstep `step` for `rank` of `nranks`, or `None` when the
    /// program is finished.
    fn step(&mut self, rank: usize, nranks: usize, step: u64) -> Option<SuperStep>;
}

/// Per-rank timing gathered by the runner.
#[derive(Clone, Debug, Default)]
pub struct BspStats {
    /// First scheduling of the rank.
    pub started: Option<SimTime>,
    /// Completion time (all supersteps done).
    pub finished: Option<SimTime>,
    /// Total compute time requested.
    pub compute: SimDuration,
    /// CPU time spent in communication primitives (sends, polls, replies)
    /// — the "time spent in communication" §6.3 reports as nearly constant
    /// under time-sharing.
    pub comm_cpu: SimDuration,
    /// Supersteps completed.
    pub steps: u64,
    /// Data messages sent.
    pub msgs_sent: u64,
    /// Undeliverable returns observed (0 on a healthy cluster).
    pub bounces: u64,
}

impl BspStats {
    /// Wall time from start to finish.
    pub fn elapsed(&self) -> Option<SimDuration> {
        Some(self.finished? - self.started?)
    }

    /// Wall time not spent computing: communication + waiting + scheduling.
    pub fn comm_time(&self) -> Option<SimDuration> {
        Some(self.elapsed()? - self.compute)
    }
}

enum Phase {
    /// Need the next superstep from the app.
    Fetch,
    /// Compute has been issued; when the runner resumes, it is done.
    Computing,
    /// Exchanging messages.
    Exchange,
    /// All supersteps complete.
    Done,
}

/// Drives one rank of a [`BspApp`] over an endpoint.
pub struct BspRunner<A: BspApp> {
    /// The application (public for post-run result extraction).
    pub app: A,
    /// Timing results.
    pub stats: BspStats,
    ep: EpId,
    rank: usize,
    nranks: usize,
    phase: Phase,
    step_idx: u64,
    cur: SuperStep,
    send_pos: usize,
    recv_counts: HashMap<u64, u32>,
    pending_replies: Vec<DeliveredMsg>,
    idle_polls: u32,
    /// Consecutive empty polls before blocking on the event mask
    /// (spin-block; ~2 RTTs of spinning is the implicit co-scheduling
    /// sweet spot).
    spin_polls: u32,
    /// Diagnostic: the most recent send refusal.
    pub last_send_err: Option<(u64, &'static str)>,
    /// The last send attempt failed for NI queue space (not credits):
    /// no arrival will signal the drain, so the rank must spin, not sleep.
    queue_blocked: bool,
}

impl<A: BspApp> BspRunner<A> {
    /// Runner for `rank` of `nranks` over endpoint `ep`.
    pub fn new(app: A, ep: EpId, rank: usize, nranks: usize) -> Self {
        BspRunner {
            app,
            stats: BspStats::default(),
            ep,
            rank,
            nranks,
            phase: Phase::Fetch,
            step_idx: 0,
            cur: SuperStep::default(),
            send_pos: 0,
            recv_counts: HashMap::new(),
            pending_replies: Vec::new(),
            idle_polls: 0,
            spin_polls: 12,
            last_send_err: None,
            queue_blocked: false,
        }
    }

    /// Override the spin-block threshold (0 = block immediately).
    pub fn with_spin_polls(mut self, n: u32) -> Self {
        self.spin_polls = n;
        self
    }

    /// Whether the rank has completed all supersteps.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    /// Diagnostic: replies stashed under backpressure.
    pub fn pending_reply_count(&self) -> usize {
        self.pending_replies.len()
    }

    /// Diagnostic: progress within the current superstep:
    /// `(step index, sends issued, sends total, receives counted)`.
    pub fn progress(&self) -> (u64, usize, usize, u32) {
        (
            self.step_idx,
            self.send_pos,
            self.cur.sends.len(),
            self.recv_counts.get(&self.step_idx).copied().unwrap_or(0),
        )
    }

    fn drain(&mut self, sys: &mut Sys<'_>) {
        // Re-issue replies that hit send-queue backpressure earlier; a
        // dropped reply would leak the peer's credit forever.
        while let Some(m) = self.pending_replies.pop() {
            if sys.reply(self.ep, &m, 0, [m.msg.args[0], 0, 0, 0], 0).is_err() {
                self.pending_replies.push(m);
                break;
            }
        }
        // Requests from peers: count per step tag and reply (the reply is
        // the exchange acknowledgment that recovers the sender's credit).
        while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
            if m.undeliverable {
                self.stats.bounces += 1;
                continue;
            }
            *self.recv_counts.entry(m.msg.args[0]).or_insert(0) += 1;
            if sys.reply(self.ep, &m, 0, [m.msg.args[0], 0, 0, 0], 0).is_err() {
                self.pending_replies.push(m);
            }
        }
        // Replies: recover credits (handled inside poll) and spot bounces.
        while let Some(m) = sys.poll(self.ep, QueueSel::Reply) {
            if m.undeliverable {
                self.stats.bounces += 1;
            }
        }
    }
}

impl<A: BspApp> ThreadBody for BspRunner<A> {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        if self.stats.started.is_none() {
            self.stats.started = Some(sys.now());
        }
        let step = self.run_inner(sys);
        // Everything a burst charges to the CPU besides Compute steps is
        // communication-primitive time.
        self.stats.comm_cpu += sys.elapsed();
        step
    }
}

impl<A: BspApp> BspRunner<A> {
    fn run_inner(&mut self, sys: &mut Sys<'_>) -> Step {
        loop {
            match self.phase {
                Phase::Done => return Step::Exit,
                Phase::Fetch => {
                    match self.app.step(self.rank, self.nranks, self.step_idx) {
                        None => {
                            self.phase = Phase::Done;
                            self.stats.finished = Some(sys.now());
                            return Step::Exit;
                        }
                        Some(s) => {
                            self.send_pos = 0;
                            let compute = s.compute;
                            self.cur = s;
                            self.phase = Phase::Computing;
                            if compute > SimDuration::ZERO {
                                self.stats.compute += compute;
                                return Step::Compute(compute);
                            }
                        }
                    }
                }
                Phase::Computing => {
                    // Compute finished (or was zero).
                    self.phase = Phase::Exchange;
                }
                Phase::Exchange => {
                    // Service peers before and after sending: replies keep
                    // the cluster's credits flowing.
                    self.drain(sys);
                    while self.send_pos < self.cur.sends.len() {
                        let (dst, bytes) = self.cur.sends[self.send_pos];
                        match sys.request(self.ep, dst, 0, [self.step_idx, 0, 0, 0], bytes) {
                            Ok(_) => {
                                self.send_pos += 1;
                                self.stats.msgs_sent += 1;
                                self.queue_blocked = false;
                            }
                            Err(SendError::NoCredit) => {
                                self.last_send_err = Some((self.step_idx, "NoCredit"));
                                break;
                            }
                            Err(SendError::QuotaExceeded) => {
                                self.last_send_err = Some((self.step_idx, "QuotaExceeded"));
                                break;
                            }
                            Err(SendError::QueueFull) => {
                                self.last_send_err = Some((self.step_idx, "QueueFull"));
                                self.queue_blocked = true;
                                break;
                            }
                            Err(SendError::WouldBlock) => {
                                self.last_send_err = Some((self.step_idx, "WouldBlock"));
                                return Step::WaitResident(self.ep);
                            }
                            Err(SendError::BadIndex) | Err(SendError::TooLarge) => {
                                panic!(
                                    "rank {}: bad superstep send to {dst} (missing translation or oversized message)",
                                    self.rank
                                )
                            }
                        }
                    }
                    self.drain(sys);
                    let got = self.recv_counts.get(&self.step_idx).copied().unwrap_or(0);
                    let all_sent =
                        self.send_pos == self.cur.sends.len() && self.pending_replies.is_empty();
                    if all_sent && got >= self.cur.recv_count && sys.outstanding(self.ep) == 0 {
                        self.recv_counts.remove(&self.step_idx);
                        self.step_idx += 1;
                        self.stats.steps += 1;
                        self.idle_polls = 0;
                        self.phase = Phase::Fetch;
                        continue;
                    }
                    // Not ready: spin a little, then block on the event
                    // mask (§3.3 / §6.3 spin-block). Never block while
                    // holding backpressured replies or while sends are
                    // stalled on NI queue *space* — neither condition is
                    // signalled by an arrival, so sleeping would deadlock
                    // (a credit stall, by contrast, ends with a reply).
                    self.idle_polls += 1;
                    if self.idle_polls <= self.spin_polls
                        || !self.pending_replies.is_empty()
                        || self.queue_blocked
                    {
                        return Step::Yield;
                    }
                    self.idle_polls = 0;
                    return Step::WaitEvent(self.ep);
                }
            }
        }
    }
}

/// Build a `nranks`-rank job: endpoints on hosts `hosts[0..nranks]`, an
/// all-pairs virtual network, and one [`BspRunner`] thread per rank.
/// Returns the `(host, tid, endpoint)` of every rank.
pub fn launch_job<A, F>(
    cluster: &mut Cluster,
    hosts: &[HostId],
    mut make_app: F,
) -> Vec<(HostId, Tid, GlobalEp)>
where
    A: BspApp,
    F: FnMut(usize) -> A,
{
    let eps: Vec<GlobalEp> = hosts.iter().map(|&h| cluster.create_endpoint(h)).collect();
    cluster.build_virtual_network(&eps);
    hosts
        .iter()
        .enumerate()
        .map(|(rank, &h)| {
            let runner = BspRunner::new(make_app(rank), eps[rank].ep, rank, hosts.len());
            let tid = cluster.spawn_thread(h, Box::new(runner));
            (h, tid, eps[rank])
        })
        .collect()
}

/// Convenience patterns used by several workloads.
pub mod patterns {
    /// Ring neighbours: `(left, right)` of `rank` in `n`.
    pub fn ring(rank: usize, n: usize) -> (usize, usize) {
        ((rank + n - 1) % n, (rank + 1) % n)
    }

    /// Recursive-doubling partner at `round` (None when out of range).
    pub fn doubling_partner(rank: usize, n: usize, round: u32) -> Option<usize> {
        let p = rank ^ (1 << round);
        (p < n).then_some(p)
    }

    /// Rounds needed for a power-of-two dissemination over `n` ranks.
    pub fn log2_ceil(n: usize) -> u32 {
        (usize::BITS - n.saturating_sub(1).leading_zeros()).min(31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_core::{Cluster, ClusterConfig};

    /// All ranks exchange with both ring neighbours for `steps` steps.
    struct RingApp {
        steps: u64,
        bytes: u32,
        compute: SimDuration,
    }

    impl BspApp for RingApp {
        fn step(&mut self, rank: usize, n: usize, step: u64) -> Option<SuperStep> {
            if step >= self.steps {
                return None;
            }
            let (l, r) = patterns::ring(rank, n);
            Some(SuperStep {
                compute: self.compute,
                sends: vec![(l, self.bytes), (r, self.bytes)],
                recv_count: 2,
            })
        }
    }

    fn run_ring(n: u32, steps: u64, bytes: u32) -> Vec<BspStats> {
        let mut c = Cluster::new(ClusterConfig::now(n));
        let hosts: Vec<HostId> = (0..n).map(HostId).collect();
        let ranks = launch_job(&mut c, &hosts, |_| RingApp {
            steps,
            bytes,
            compute: SimDuration::from_micros(50),
        });
        c.run_for(SimDuration::from_secs(10));
        ranks
            .iter()
            .map(|&(h, tid, _)| {
                c.body::<BspRunner<RingApp>>(h, tid).expect("runner").stats.clone()
            })
            .collect()
    }

    #[test]
    fn ring_exchange_completes_on_four_nodes() {
        let stats = run_ring(4, 5, 0);
        for s in &stats {
            assert_eq!(s.steps, 5, "every rank completes every superstep");
            assert_eq!(s.msgs_sent, 10);
            assert_eq!(s.bounces, 0);
            assert!(s.finished.is_some());
            let comm = s.comm_time().unwrap();
            assert!(comm > SimDuration::ZERO);
        }
    }

    #[test]
    fn ring_exchange_with_bulk_payloads() {
        let stats = run_ring(3, 3, 8192);
        for s in &stats {
            assert_eq!(s.steps, 3);
            assert_eq!(s.bounces, 0);
        }
    }

    #[test]
    fn compute_time_is_accounted() {
        let stats = run_ring(2, 4, 0);
        for s in &stats {
            assert_eq!(s.compute, SimDuration::from_micros(200));
            assert!(s.elapsed().unwrap() >= s.compute);
        }
    }

    #[test]
    fn patterns_helpers() {
        assert_eq!(patterns::ring(0, 4), (3, 1));
        assert_eq!(patterns::doubling_partner(0, 4, 0), Some(1));
        assert_eq!(patterns::doubling_partner(0, 4, 1), Some(2));
        assert_eq!(patterns::doubling_partner(2, 3, 0), None); // 2^1=3 >= 3? 2 xor 1 = 3
        assert_eq!(patterns::log2_ceil(1), 0);
        assert_eq!(patterns::log2_ceil(4), 2);
        assert_eq!(patterns::log2_ceil(5), 3);
        assert_eq!(patterns::log2_ceil(36), 6);
    }
}
