//! Workloads over virtual networks.
//!
//! Everything the paper's evaluation (§6) runs, rebuilt on the `vnet-core`
//! public API:
//!
//! * [`logp`] — the LogP microbenchmark of Figure 3 (o_s, o_r, L, g for
//!   virtual-network Active Messages vs the GAM baseline).
//! * [`bandwidth`] — the bulk-transfer sweep of Figure 4 plus the
//!   round-trip-time linear fit of §6.1.
//! * [`bsp`] — a superstep-style parallel programming layer on Active
//!   Messages (the stand-in for the paper's MPICH port): credit-aware
//!   sends, spin-block waiting (implicit co-scheduling), per-rank timing.
//! * [`npb`] — NAS Parallel Benchmark communication skeletons (Figure 5)
//!   with analytic SP-2 / Origin 2000 machine models for the comparison
//!   curves.
//! * [`linpack`] — the blocked-LU Linpack skeleton behind the §6.2
//!   Top-500 entry.
//! * [`clientserver`] — the §6.4 contention workloads of Figures 6 and 7
//!   (OneVN / single-threaded / multi-threaded servers × 8 / 96 frames).
//! * [`timeshare`] — the §6.3 time-shared parallel application workloads.
//! * [`collectives`] — schedule builders for broadcast, allreduce,
//!   all-to-all, and barriers, shared by the NPB and Linpack skeletons.
//! * [`stream`], [`rpc`], [`onesided`], [`split_c`] — the layered services
//!   of the paper's Figure 1 (sockets, SunRPC) and its Split-C user
//!   community, all over the unmodified endpoint API.
//! * [`via`] — the §7 Virtual Interface Architecture resource model.

#![warn(missing_docs)]

pub mod bandwidth;
pub mod bsp;
pub mod clientserver;
pub mod collectives;
pub mod linpack;
pub mod logp;
pub mod npb;
pub mod onesided;
pub mod rpc;
pub mod split_c;
pub mod stream;
pub mod timeshare;
pub mod via;
