//! A Split-C-style global address space over one-sided operations.
//!
//! The paper's user community ran "the Split-C language originally
//! developed for the CM-5" (§2) over Active Messages. This module
//! provides its core abstraction: a **global array** of words distributed
//! block-cyclically across the memory servers of a job, with split-phase
//! `get`/`put` on global indices — a thin address-translation layer over
//! [`crate::onesided`].

use crate::onesided::{MemoryServer, OneSided};
use vnet_core::prelude::*;
use vnet_core::Cluster;

/// Layout of a global array: `words_total` elements distributed over
/// `ranks` memory servers in `block` -sized chunks, round robin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlobalArray {
    /// Total elements.
    pub words_total: u64,
    /// Owning ranks (translation indices 0..ranks on the accessor's
    /// endpoint must point at the servers, in order).
    pub ranks: usize,
    /// Elements per block.
    pub block: u64,
}

impl GlobalArray {
    /// A block-cyclic layout.
    pub fn new(words_total: u64, ranks: usize, block: u64) -> Self {
        assert!(ranks > 0 && block > 0);
        GlobalArray { words_total, ranks, block }
    }

    /// Words each rank must provision to hold its share.
    pub fn words_per_rank(&self) -> u64 {
        let blocks = self.words_total.div_ceil(self.block);
        let blocks_per_rank = blocks.div_ceil(self.ranks as u64);
        blocks_per_rank * self.block
    }

    /// Translate a global index to `(owner rank, local word address)`.
    pub fn locate(&self, index: u64) -> (usize, u64) {
        assert!(index < self.words_total, "index {index} out of bounds");
        let block_no = index / self.block;
        let owner = (block_no % self.ranks as u64) as usize;
        let local_block = block_no / self.ranks as u64;
        (owner, local_block * self.block + index % self.block)
    }
}

/// Accessor state: a [`OneSided`] tracker plus the array layout.
pub struct GlobalArrayClient {
    /// Layout being addressed.
    pub layout: GlobalArray,
    /// Underlying split-phase operation tracker.
    pub ops: OneSided,
}

impl GlobalArrayClient {
    /// Client over `layout`.
    pub fn new(layout: GlobalArray) -> Self {
        GlobalArrayClient { layout, ops: OneSided::new() }
    }

    /// Split-phase `a[index] = value`.
    pub fn put(
        &mut self,
        sys: &mut Sys<'_>,
        ep: EpId,
        index: u64,
        value: u64,
    ) -> Result<(), SendError> {
        let (owner, addr) = self.layout.locate(index);
        self.ops.put(sys, ep, owner, addr, value)
    }

    /// Split-phase read of `a[index]` (single word).
    pub fn get(&mut self, sys: &mut Sys<'_>, ep: EpId, index: u64) -> Result<(), SendError> {
        let (owner, addr) = self.layout.locate(index);
        self.ops.get(sys, ep, owner, addr, 1)
    }

    /// Harvest completions; see [`OneSided::harvest`].
    pub fn harvest(&mut self, sys: &mut Sys<'_>, ep: EpId) -> usize {
        self.ops.harvest(sys, ep)
    }

    /// `sync()` condition: every issued operation completed.
    pub fn quiescent(&self) -> bool {
        self.ops.outstanding() == 0
    }
}

/// Provision memory servers for `layout` on the given hosts and wire an
/// accessor endpoint's translation table at `[0..ranks)`. Returns the
/// accessor endpoint.
pub fn provision(
    cluster: &mut Cluster,
    layout: GlobalArray,
    server_hosts: &[HostId],
    accessor_host: HostId,
) -> GlobalEp {
    assert_eq!(server_hosts.len(), layout.ranks);
    let accessor = cluster.create_endpoint(accessor_host);
    for (i, &h) in server_hosts.iter().enumerate() {
        let se = cluster.create_endpoint(h);
        cluster.connect(accessor, i, se);
        cluster.spawn_thread(
            h,
            Box::new(MemoryServer::new(se.ep, layout.words_per_rank() as usize)),
        );
    }
    accessor
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_core::ClusterConfig;
    use vnet_sim::SimDuration as D;

    #[test]
    fn layout_translation_round_trips() {
        let a = GlobalArray::new(1000, 4, 16);
        // Every index maps to a unique (owner, addr) pair within bounds.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            let (owner, addr) = a.locate(i);
            assert!(owner < 4);
            assert!(addr < a.words_per_rank(), "addr {addr} for index {i}");
            assert!(seen.insert((owner, addr)), "collision at index {i}");
        }
        // Block-cyclic: consecutive blocks go to consecutive ranks.
        assert_eq!(a.locate(0).0, 0);
        assert_eq!(a.locate(16).0, 1);
        assert_eq!(a.locate(32).0, 2);
        assert_eq!(a.locate(48).0, 3);
        assert_eq!(a.locate(64).0, 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_rejected() {
        GlobalArray::new(10, 2, 4).locate(10);
    }

    /// Writes a permutation into a distributed array, reads it back.
    struct Permuter {
        ep: EpId,
        cl: GlobalArrayClient,
        n: u64,
        issued: u64,
        phase: u8,
        pub verified: u64,
    }

    impl ThreadBody for Permuter {
        fn run(&mut self, sys: &mut Sys<'_>) -> Step {
            self.cl.harvest(sys, self.ep);
            match self.phase {
                0 => {
                    while self.issued < self.n {
                        let i = self.issued;
                        let v = (i * 7 + 3) % self.n; // a permutation-ish value
                        match self.cl.put(sys, self.ep, i, v) {
                            Ok(()) => self.issued += 1,
                            Err(SendError::NoCredit) | Err(SendError::QueueFull) => break,
                            Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                            Err(e) => panic!("{e:?}"),
                        }
                    }
                    if self.issued == self.n && self.cl.quiescent() {
                        self.phase = 1;
                        self.issued = 0;
                    }
                    Step::Yield
                }
                1 => {
                    while self.issued < self.n {
                        match self.cl.get(sys, self.ep, self.issued) {
                            Ok(()) => self.issued += 1,
                            Err(SendError::NoCredit) | Err(SendError::QueueFull) => break,
                            Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                            Err(e) => panic!("{e:?}"),
                        }
                    }
                    if self.issued == self.n && self.cl.quiescent() {
                        for g in &self.cl.ops.completed_gets {
                            // Reconstruct the global index from the local
                            // address is layout-specific; instead verify the
                            // value set: every completed read returned some
                            // v = (i*7+3) % n for a unique slot.
                            assert!(g.first_word < self.n);
                            self.verified += 1;
                        }
                        self.phase = 2;
                        return Step::Exit;
                    }
                    Step::Yield
                }
                _ => Step::Exit,
            }
        }
    }

    #[test]
    fn distributed_array_write_read() {
        let mut c = Cluster::new(ClusterConfig::now(5));
        let layout = GlobalArray::new(256, 4, 8);
        let hosts: Vec<HostId> = (1..5).map(HostId).collect();
        let acc = provision(&mut c, layout, &hosts, HostId(0));
        let t = c.spawn_thread(
            HostId(0),
            Box::new(Permuter {
                ep: acc.ep,
                cl: GlobalArrayClient::new(layout),
                n: 256,
                issued: 0,
                phase: 0,
                verified: 0,
            }),
        );
        c.run_for(D::from_secs(10));
        let p: &Permuter = c.body(HostId(0), t).unwrap();
        assert_eq!(p.verified, 256, "all 256 global reads completed");
    }
}
