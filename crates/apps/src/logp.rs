//! The LogP microbenchmark of Figure 3.
//!
//! Measures the four LogP parameters for small (16-byte) messages using
//! the stall/burst technique of Culler et al. ("LogP Performance
//! Assessment of Fast Network Interfaces"):
//!
//! * **o_s** — send overhead: CPU time consumed by issuing one request.
//! * **o_r** — receive overhead: CPU time consumed by draining one message.
//! * **RTT** — request/reply round-trip time; **L** = RTT/2 − o_s − o_r.
//! * **g** — the steady-state gap: issue a long credit-windowed burst of
//!   requests (replies flowing back) and divide the elapsed time by the
//!   message count; the rate-limiting pipeline stage sets the result.

use vnet_core::prelude::*;
use vnet_sim::stats::Sampler;
use vnet_sim::SimTime;

/// Measured LogP parameters, microseconds.
#[derive(Clone, Debug)]
pub struct LogPResult {
    /// Send overhead.
    pub os_us: f64,
    /// Receive overhead.
    pub or_us: f64,
    /// Latency (RTT/2 − o_s − o_r).
    pub l_us: f64,
    /// Gap per message in steady state.
    pub g_us: f64,
    /// Raw round-trip time.
    pub rtt_us: f64,
}

impl LogPResult {
    /// One-way time o_s + L + o_r.
    pub fn one_way_us(&self) -> f64 {
        self.os_us + self.l_us + self.or_us
    }
}

/// Echo server: replies to every request, forever. Polls continuously —
/// microbenchmark peers are dedicated processes, and "polling is more
/// efficient in parallel applications that communicate intensely" (§3.3).
pub struct EchoServer {
    /// Endpoint to serve.
    pub ep: EpId,
    /// Requests served.
    pub served: u64,
}

impl ThreadBody for EchoServer {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
            // A full send queue cannot occur here: one client holds at most
            // 32 outstanding requests against a 64-deep send queue.
            sys.reply(self.ep, &m, m.msg.handler, m.msg.args, 0).expect("echo reply");
            self.served += 1;
        }
        Step::Yield
    }
}

/// Client driving the LogP measurement phases.
pub struct LogPClient {
    ep: EpId,
    /// Ping-pong round trips to measure.
    pub pingpongs: u32,
    /// Messages in the gap burst.
    pub burst: u32,
    phase: u8,
    iter: u32,
    sent_at: SimTime,
    burst_started: Option<SimTime>,
    burst_done: u32,
    /// RTT samples (µs).
    pub rtt: Sampler,
    /// o_s samples (µs).
    pub os: Sampler,
    /// o_r samples (µs).
    pub or: Sampler,
    /// Gap measurement (µs/message), available after the run.
    pub gap_us: Option<f64>,
}

impl LogPClient {
    /// Client on `ep` with default iteration counts.
    pub fn new(ep: EpId) -> Self {
        LogPClient {
            ep,
            pingpongs: 200,
            burst: 2_000,
            phase: 0,
            iter: 0,
            sent_at: SimTime::ZERO,
            burst_started: None,
            burst_done: 0,
            rtt: Sampler::default(),
            os: Sampler::default(),
            or: Sampler::default(),
            gap_us: None,
        }
    }

    /// Whether all phases completed.
    pub fn is_done(&self) -> bool {
        self.phase >= 2
    }
}

impl ThreadBody for LogPClient {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        match self.phase {
            // Phase 0: ping-pong. One outstanding request at a time; o_s
            // and o_r measured from the CPU time of the issue and drain.
            0 => {
                if sys.outstanding(self.ep) == 0 {
                    if self.iter >= self.pingpongs {
                        self.phase = 1;
                        self.iter = 0;
                        return Step::Yield;
                    }
                    let before = sys.elapsed();
                    sys.request(self.ep, 1, 0, [0; 4], 0).expect("pingpong send");
                    self.os.record((sys.elapsed() - before).as_micros_f64());
                    self.sent_at = sys.now() + before;
                    self.iter += 1;
                    return Step::Yield;
                }
                let before = sys.elapsed();
                if sys.poll(self.ep, QueueSel::Reply).is_some() {
                    let after = sys.elapsed();
                    // o_r: the full cost of draining the reply.
                    self.or.record((after - before).as_micros_f64());
                    // RTT spans PIO start to drain completion (the LogP
                    // round trip is 2(o_s + L + o_r)).
                    let rtt = (sys.now() + after) - self.sent_at;
                    self.rtt.record(rtt.as_micros_f64());
                }
                Step::Yield
            }
            // Phase 1: gap burst. Keep the credit window full until
            // `burst` messages have completed; g = elapsed / completed.
            1 => {
                if self.burst_started.is_none() {
                    self.burst_started = Some(sys.now());
                }
                loop {
                    match sys.request(self.ep, 1, 0, [0; 4], 0) {
                        Ok(_) => self.iter += 1,
                        Err(SendError::NoCredit) | Err(SendError::QueueFull) => break,
                        Err(e) => panic!("gap burst send failed: {e:?}"),
                    }
                    if self.iter >= self.burst {
                        break;
                    }
                }
                while sys.poll(self.ep, QueueSel::Reply).is_some() {
                    self.burst_done += 1;
                }
                if self.burst_done >= self.burst {
                    let elapsed = sys.now() - self.burst_started.unwrap();
                    self.gap_us = Some(elapsed.as_micros_f64() / self.burst_done as f64);
                    self.phase = 2;
                    return Step::Exit;
                }
                Step::Yield
            }
            _ => Step::Exit,
        }
    }
}

/// Run the LogP characterization on a fresh two-host cluster.
pub fn run_logp(cfg: ClusterConfig) -> LogPResult {
    let mut c = Cluster::new(cfg);
    let a = c.create_endpoint(HostId(0));
    let b = c.create_endpoint(HostId(1));
    c.build_virtual_network(&[a, b]);
    // Warm both endpoints so the measurement sees the steady state (§6.1
    // microbenchmarks run stand-alone with resident endpoints).
    c.make_resident(a);
    c.make_resident(b);
    c.spawn_thread(HostId(1), Box::new(EchoServer { ep: b.ep, served: 0 }));
    let t = c.spawn_thread(HostId(0), Box::new(LogPClient::new(a.ep)));
    c.run_for(SimDuration::from_secs(10));
    let client: &LogPClient = c.body(HostId(0), t).expect("client body");
    assert!(client.is_done(), "LogP phases must complete");
    let mut rtt = client.rtt.clone();
    let mut os = client.os.clone();
    let mut or = client.or.clone();
    let rtt_us = rtt.median();
    let os_us = os.median();
    let or_us = or.median();
    LogPResult {
        os_us,
        or_us,
        l_us: rtt_us / 2.0 - os_us - or_us,
        g_us: client.gap_us.expect("gap measured"),
        rtt_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_core::ClusterConfig;

    #[test]
    fn vn_logp_matches_calibration() {
        let r = run_logp(ClusterConfig::now(2));
        // Calibration targets from DESIGN.md §4 (tolerances are generous:
        // these are emergent, not table lookups).
        assert!((2.0..3.5).contains(&r.os_us), "o_s = {}", r.os_us);
        assert!((2.5..4.5).contains(&r.or_us), "o_r = {}", r.or_us);
        assert!((10.0..16.0).contains(&r.g_us), "g = {}", r.g_us);
        assert!((25.0..38.0).contains(&r.rtt_us), "RTT = {}", r.rtt_us);
        assert!(r.l_us > 0.0, "L = {}", r.l_us);
    }

    #[test]
    fn gam_logp_matches_calibration() {
        let r = run_logp(ClusterConfig::gam(2));
        assert!((1.2..2.5).contains(&r.os_us), "o_s = {}", r.os_us);
        assert!((4.5..8.0).contains(&r.g_us), "g = {}", r.g_us);
        assert!((19.0..30.0).contains(&r.rtt_us), "RTT = {}", r.rtt_us);
    }

    #[test]
    fn virtualization_ratios_match_paper() {
        let vn = run_logp(ClusterConfig::now(2));
        let gam = run_logp(ClusterConfig::gam(2));
        let rtt_ratio = vn.rtt_us / gam.rtt_us;
        let gap_ratio = vn.g_us / gam.g_us;
        // Paper §6.1: round trip +23%, gap x2.21, total overhead equal.
        assert!((1.1..1.45).contains(&rtt_ratio), "rtt ratio {rtt_ratio}");
        assert!((1.8..2.7).contains(&gap_ratio), "gap ratio {gap_ratio}");
        let ov_vn = vn.os_us + vn.or_us;
        let ov_gam = gam.os_us + gam.or_us;
        assert!(
            (ov_vn - ov_gam).abs() / ov_gam < 0.15,
            "total overhead should match: {ov_vn} vs {ov_gam}"
        );
    }
}
