//! One-sided put/get over Active Messages — the Split-C style of remote
//! access the paper's user community ran ("the Split-C language originally
//! developed for the CM-5", §2), and the memory-based model of the SHRIMP
//! and Memory Channel systems discussed in §7, realized as AM
//! request/reply pairs.
//!
//! The target side runs a [`MemoryServer`]: a word-addressable region
//! whose handlers implement `GET(addr, words)` (bulk reply) and
//! `PUT(addr, value)` / bulk put (payload write + ack). The initiator uses
//! [`OneSided`] to issue operations and harvest completions.

use std::collections::HashMap;
use vnet_core::prelude::*;

/// Handler: read `args[1]` words at word address `args[0]`.
pub const OP_GET: u16 = 0x6E7;
/// Handler: write word `args[1]` at word address `args[0]` (plus any bulk
/// payload at `args[0]`).
pub const OP_PUT: u16 = 0x9D7;

/// Exported memory region served by one endpoint.
pub struct MemoryServer {
    ep: EpId,
    /// The exported words.
    pub memory: Vec<u64>,
    /// Gets served.
    pub gets: u64,
    /// Puts applied.
    pub puts: u64,
    pending: Vec<DeliveredMsg>,
}

impl MemoryServer {
    /// Serve `words` zeroed words from `ep`.
    pub fn new(ep: EpId, words: usize) -> Self {
        MemoryServer { ep, memory: vec![0; words], gets: 0, puts: 0, pending: Vec::new() }
    }

    fn serve(&mut self, sys: &mut Sys<'_>, m: DeliveredMsg) {
        let addr = m.msg.args[0] as usize;
        let result = match m.msg.handler {
            OP_GET => {
                let words = m.msg.args[1] as usize;
                let end = (addr + words).min(self.memory.len());
                // Reply carries the first word inline and the rest as bulk
                // payload (sizes are modeled; the inline word is real data).
                let first = self.memory.get(addr).copied().unwrap_or(0);
                let bulk = (end.saturating_sub(addr) * 8) as u32;
                sys.reply(self.ep, &m, OP_GET, [addr as u64, first, bulk as u64, 0], bulk)
            }
            OP_PUT => {
                if let Some(slot) = self.memory.get_mut(addr) {
                    *slot = m.msg.args[1];
                }
                sys.reply(self.ep, &m, OP_PUT, [addr as u64, 0, 0, 0], 0)
            }
            other => panic!("memory server got handler {other}"),
        };
        match result {
            Ok(_) => {
                if m.msg.handler == OP_GET {
                    self.gets += 1;
                } else {
                    self.puts += 1;
                }
            }
            Err(_) => self.pending.push(m),
        }
    }
}

impl ThreadBody for MemoryServer {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while let Some(m) = self.pending.pop() {
            let before = self.pending.len();
            self.serve(sys, m);
            if self.pending.len() > before {
                return Step::Yield;
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
            self.serve(sys, m);
        }
        if self.pending.is_empty() {
            Step::WaitEvent(self.ep)
        } else {
            Step::Yield
        }
    }
}

/// A completed get.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GetResult {
    /// Word address read.
    pub addr: u64,
    /// First word of the data.
    pub first_word: u64,
    /// Bytes transferred.
    pub bytes: u32,
}

/// Initiator-side bookkeeping for split-phase one-sided operations.
#[derive(Debug, Default)]
pub struct OneSided {
    outstanding_gets: HashMap<u64, u64>, // uid -> addr
    outstanding_puts: HashMap<u64, u64>,
    /// Completed gets, in completion order.
    pub completed_gets: Vec<GetResult>,
    /// Puts acknowledged.
    pub acked_puts: u64,
}

impl OneSided {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issue `get(addr, words)` to translation `idx` (split-phase: returns
    /// immediately; harvest with [`OneSided::harvest`]).
    pub fn get(
        &mut self,
        sys: &mut Sys<'_>,
        ep: EpId,
        idx: usize,
        addr: u64,
        words: u32,
    ) -> Result<(), SendError> {
        let uid = sys.request(ep, idx, OP_GET, [addr, words as u64, 0, 0], 0)?;
        self.outstanding_gets.insert(uid, addr);
        Ok(())
    }

    /// Issue `put(addr, value)`.
    pub fn put(
        &mut self,
        sys: &mut Sys<'_>,
        ep: EpId,
        idx: usize,
        addr: u64,
        value: u64,
    ) -> Result<(), SendError> {
        let uid = sys.request(ep, idx, OP_PUT, [addr, value, 0, 0], 0)?;
        self.outstanding_puts.insert(uid, addr);
        Ok(())
    }

    /// Drain replies from `ep`, recording completions. Returns how many
    /// operations completed in this pass.
    pub fn harvest(&mut self, sys: &mut Sys<'_>, ep: EpId) -> usize {
        let mut n = 0;
        while let Some(m) = sys.poll(ep, QueueSel::Reply) {
            assert!(!m.undeliverable, "one-sided op bounced");
            match m.msg.handler {
                OP_GET => {
                    self.outstanding_gets.remove(&m.msg.corr);
                    self.completed_gets.push(GetResult {
                        addr: m.msg.args[0],
                        first_word: m.msg.args[1],
                        bytes: m.msg.payload_bytes,
                    });
                }
                OP_PUT => {
                    self.outstanding_puts.remove(&m.msg.corr);
                    self.acked_puts += 1;
                }
                _ => unreachable!("unexpected completion"),
            }
            n += 1;
        }
        n
    }

    /// Operations still in flight.
    pub fn outstanding(&self) -> usize {
        self.outstanding_gets.len() + self.outstanding_puts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_core::{Cluster, ClusterConfig};
    use vnet_sim::SimDuration as D;

    /// Writes fib values then reads them back.
    struct FibClient {
        ep: EpId,
        ops: OneSided,
        phase: u8,
        issued: u64,
        n: u64,
        pub verified: u64,
    }

    impl ThreadBody for FibClient {
        fn run(&mut self, sys: &mut Sys<'_>) -> Step {
            self.ops.harvest(sys, self.ep);
            match self.phase {
                0 => {
                    while self.issued < self.n {
                        let v = fib(self.issued);
                        match self.ops.put(sys, self.ep, 0, self.issued, v) {
                            Ok(()) => self.issued += 1,
                            Err(SendError::NoCredit) | Err(SendError::QueueFull) => break,
                            Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                            Err(e) => panic!("{e:?}"),
                        }
                    }
                    if self.ops.acked_puts == self.n {
                        self.phase = 1;
                        self.issued = 0;
                    }
                    Step::Yield
                }
                1 => {
                    while self.issued < self.n {
                        match self.ops.get(sys, self.ep, 0, self.issued, 4) {
                            Ok(()) => self.issued += 1,
                            Err(SendError::NoCredit) | Err(SendError::QueueFull) => break,
                            Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                            Err(e) => panic!("{e:?}"),
                        }
                    }
                    if self.ops.completed_gets.len() as u64 == self.n {
                        for g in &self.ops.completed_gets {
                            assert_eq!(g.first_word, fib(g.addr), "remote read mismatch");
                            assert_eq!(g.bytes, 32);
                            self.verified += 1;
                        }
                        self.phase = 2;
                        return Step::Exit;
                    }
                    Step::Yield
                }
                _ => Step::Exit,
            }
        }
    }

    fn fib(n: u64) -> u64 {
        let (mut a, mut b) = (0u64, 1u64);
        for _ in 0..n {
            let c = a + b;
            a = b;
            b = c;
        }
        a
    }

    #[test]
    fn put_then_get_round_trip() {
        let mut c = Cluster::new(ClusterConfig::now(2));
        let a = c.create_endpoint(HostId(0));
        let b = c.create_endpoint(HostId(1));
        c.connect(a, 0, b);
        c.spawn_thread(HostId(1), Box::new(MemoryServer::new(b.ep, 256)));
        let t = c.spawn_thread(
            HostId(0),
            Box::new(FibClient { ep: a.ep, ops: OneSided::new(), phase: 0, issued: 0, n: 64, verified: 0 }),
        );
        c.run_for(D::from_secs(5));
        let cl: &FibClient = c.body(HostId(0), t).unwrap();
        assert_eq!(cl.verified, 64, "every remote word read back correctly");
        assert_eq!(cl.ops.outstanding(), 0);
    }

    #[test]
    fn gets_move_real_data_and_modeled_bulk() {
        // A get of 512 words returns a 4 KB modeled payload plus the first
        // word inline — checks both the data and the size accounting.
        struct BigGet {
            ep: EpId,
            ops: OneSided,
            started: bool,
            pub ok: bool,
        }
        impl ThreadBody for BigGet {
            fn run(&mut self, sys: &mut Sys<'_>) -> Step {
                if !self.started {
                    self.started = true;
                    self.ops.get(sys, self.ep, 0, 0, 512).expect("get");
                    return Step::Yield;
                }
                self.ops.harvest(sys, self.ep);
                if let Some(g) = self.ops.completed_gets.first() {
                    assert_eq!(g.bytes, 4096);
                    self.ok = true;
                    return Step::Exit;
                }
                Step::WaitEvent(self.ep)
            }
        }
        let mut c = Cluster::new(ClusterConfig::now(2));
        let a = c.create_endpoint(HostId(0));
        let b = c.create_endpoint(HostId(1));
        c.connect(a, 0, b);
        c.spawn_thread(HostId(1), Box::new(MemoryServer::new(b.ep, 1024)));
        let t = c.spawn_thread(
            HostId(0),
            Box::new(BigGet { ep: a.ep, ops: OneSided::new(), started: false, ok: false }),
        );
        c.run_for(D::from_secs(2));
        assert!(c.body::<BigGet>(HostId(0), t).unwrap().ok);
    }
}
