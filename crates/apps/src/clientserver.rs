//! The §6.4 contention workloads (Figures 6 and 7).
//!
//! One server node, `n` client nodes, each client streaming requests as
//! fast as its 32-credit window allows. Five configurations:
//!
//! * **OneVN** — every client sends to one shared server endpoint.
//! * **ST-8 / ST-96** — one server endpoint per client, all polled by a
//!   single server thread, with 8 or 96 NI endpoint frames.
//! * **MT-8 / MT-96** — one server endpoint per client, one server thread
//!   per endpoint sleeping on its event mask.
//!
//! More than 8 clients overcommit the 8-frame interface and activate the
//! §4 virtualization machinery on the fly — exactly the paper's "page
//! thrash test".

use std::collections::HashMap;
use vnet_core::prelude::*;
use vnet_sim::stats::Sampler;
use vnet_sim::SimTime;

/// Server structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CsMode {
    /// One shared server endpoint, single-threaded server.
    OneVn,
    /// Per-client server endpoints, single-threaded (polling) server.
    St,
    /// Per-client server endpoints, thread-per-endpoint server.
    Mt,
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct CsConfig {
    /// Number of client nodes.
    pub clients: u32,
    /// Server structure.
    pub mode: CsMode,
    /// NI endpoint frames on every node (8 or 96).
    pub frames: u32,
    /// Request payload size: 0 for Figure 6, 8192 for Figure 7.
    pub bytes: u32,
    /// Warm-up before counters reset.
    pub warmup: SimDuration,
    /// Measured steady-state interval (the paper uses 20 s).
    pub measure: SimDuration,
    /// Cluster seed.
    pub seed: u64,
    /// Enable the §8 adaptive-RTO extension on every NIC.
    pub adaptive_rto: bool,
    /// Enable the §8 ack-coalescing extension (30 µs window).
    pub ack_coalesce: bool,
    /// Attach telemetry hooks (metric registry + span log) to every
    /// component; export via [`vnet_core::Cluster::telemetry`].
    pub telemetry: bool,
    /// Per-frame drop probability on the fabric (0.0 = lossless). Lossy
    /// runs exercise the retransmission/unbind machinery so their span
    /// logs carry complete recovery episodes.
    pub drop_prob: f64,
}

impl CsConfig {
    /// Figure-6-style config (small messages).
    pub fn small(clients: u32, mode: CsMode, frames: u32) -> Self {
        CsConfig {
            clients,
            mode,
            frames,
            bytes: 0,
            warmup: SimDuration::from_millis(500),
            measure: SimDuration::from_secs(5),
            seed: 0xC5,
            adaptive_rto: false,
            ack_coalesce: false,
            telemetry: false,
            drop_prob: 0.0,
        }
    }

    /// Figure-7-style config (8 KB messages).
    pub fn bulk(clients: u32, mode: CsMode, frames: u32) -> Self {
        CsConfig { bytes: 8192, ..Self::small(clients, mode, frames) }
    }
}

/// Measured outcome.
#[derive(Clone, Debug)]
pub struct CsResult {
    /// Completed requests per second, per client, over the measure window.
    pub per_client: Vec<f64>,
    /// Sum of the above.
    pub aggregate: f64,
    /// Aggregate payload bandwidth, MB/s (bulk runs).
    pub aggregate_mb_s: f64,
    /// Server-node endpoint remaps per second during the window.
    pub remaps_per_sec: f64,
    /// Client-observed round-trip samples (µs), pooled.
    pub rtt_us: Sampler,
    /// NotResident NACKs received by clients during the window.
    pub nacks_not_resident: u64,
    /// RecvQueueFull NACKs received by clients during the window.
    pub nacks_queue_full: u64,
    /// Data-frame retransmissions across all NICs during the window.
    pub retransmits: u64,
    /// Total frames that crossed fabric links during the window (relative
    /// wire-occupancy metric; each hop counts).
    pub wire_frames: u64,
}

/// Client: saturate the credit window, poll replies, time round trips.
pub struct CsClient {
    ep: EpId,
    bytes: u32,
    /// Completed (replied) requests.
    pub completed: u64,
    /// Undeliverable returns (should stay 0).
    pub bounced: u64,
    /// RTT samples, µs.
    pub rtt: Sampler,
    inflight: HashMap<u64, SimTime>,
}

impl CsClient {
    /// Client over `ep` sending `bytes`-byte requests to translation 0.
    pub fn new(ep: EpId, bytes: u32) -> Self {
        CsClient {
            ep,
            bytes,
            completed: 0,
            bounced: 0,
            rtt: Sampler::default(),
            inflight: HashMap::new(),
        }
    }
}

impl ThreadBody for CsClient {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        let can_send;
        loop {
            match sys.request(self.ep, 0, 0, [0; 4], self.bytes) {
                Ok(uid) => {
                    self.inflight.insert(uid, sys.now());
                }
                Err(SendError::NoCredit)
                | Err(SendError::QueueFull)
                | Err(SendError::QuotaExceeded) => {
                    can_send = false;
                    break;
                }
                // (the Ok arm above loops; exit paths assign can_send)
                Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                Err(SendError::BadIndex) | Err(SendError::TooLarge) => {
                    panic!("client misconfigured (translation or size)")
                }
            }
        }
        let mut drained = false;
        while let Some(m) = sys.poll(self.ep, QueueSel::Reply) {
            drained = true;
            if m.undeliverable {
                self.bounced += 1;
                self.inflight.remove(&m.msg.uid);
            } else {
                self.completed += 1;
                if let Some(t0) = self.inflight.remove(&m.msg.corr) {
                    self.rtt.record((sys.now() - t0).as_micros_f64());
                }
            }
        }
        // With a full window and nothing drained, no client action is
        // possible until a reply arrives: sleep on the event mask. While
        // credits remain, keep the pipeline full by polling.
        if !can_send && !drained {
            Step::WaitEvent(self.ep)
        } else {
            Step::Yield
        }
    }
}

/// Single-threaded server: polls every endpoint round-robin and replies.
/// With many resident endpoints this pays the uncached-poll tax of §6.4.
pub struct StServer {
    eps: Vec<EpId>,
    /// Requests served.
    pub served: u64,
    pending: Vec<(EpId, DeliveredMsg)>,
}

impl StServer {
    /// Server over the given endpoints.
    pub fn new(eps: Vec<EpId>) -> Self {
        StServer { eps, served: 0, pending: Vec::new() }
    }

    fn try_reply(sys: &mut Sys<'_>, ep: EpId, m: &DeliveredMsg) -> Result<(), Step> {
        match sys.reply(ep, m, 0, [m.msg.uid, 0, 0, 0], 0) {
            Ok(_) => Ok(()),
            Err(SendError::WouldBlock) => Err(Step::WaitResident(ep)),
            Err(_) => Err(Step::Yield), // queue full: retry next burst
        }
    }
}

impl ThreadBody for StServer {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        // Retry replies that could not be posted earlier.
        while let Some((ep, m)) = self.pending.pop() {
            match Self::try_reply(sys, ep, &m) {
                Ok(()) => self.served += 1,
                Err(step) => {
                    self.pending.push((ep, m));
                    return step;
                }
            }
        }
        for i in 0..self.eps.len() {
            let ep = self.eps[i];
            while let Some(m) = sys.poll(ep, QueueSel::Request) {
                match Self::try_reply(sys, ep, &m) {
                    Ok(()) => self.served += 1,
                    Err(step) => {
                        self.pending.push((ep, m));
                        return step;
                    }
                }
            }
        }
        // Single thread: poll forever (the paper's ST server has no way to
        // sleep on many endpoints at once).
        Step::Yield
    }
}

/// Multi-threaded server: one such thread per endpoint, sleeping on the
/// event mask while idle (§3.3). "Threads with empty endpoints remain
/// asleep until messages arrive."
pub struct MtServerThread {
    ep: EpId,
    /// Requests served by this thread.
    pub served: u64,
    pending: Option<DeliveredMsg>,
}

impl MtServerThread {
    /// Thread serving one endpoint.
    pub fn new(ep: EpId) -> Self {
        MtServerThread { ep, served: 0, pending: None }
    }
}

impl ThreadBody for MtServerThread {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        if let Some(m) = self.pending.take() {
            match sys.reply(self.ep, &m, 0, [m.msg.uid, 0, 0, 0], 0) {
                Ok(_) => self.served += 1,
                Err(SendError::WouldBlock) => {
                    self.pending = Some(m);
                    return Step::WaitResident(self.ep);
                }
                Err(_) => {
                    self.pending = Some(m);
                    return Step::Yield;
                }
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
            match sys.reply(self.ep, &m, 0, [m.msg.uid, 0, 0, 0], 0) {
                Ok(_) => self.served += 1,
                Err(SendError::WouldBlock) => {
                    self.pending = Some(m);
                    return Step::WaitResident(self.ep);
                }
                Err(_) => {
                    self.pending = Some(m);
                    return Step::Yield;
                }
            }
        }
        Step::WaitEvent(self.ep)
    }
}

/// Run one client/server configuration end to end.
pub fn run_client_server(cs: &CsConfig) -> CsResult {
    run_client_server_cluster(cs).0
}

/// Like [`run_client_server`] but also hands back the finished cluster,
/// so callers can export telemetry artifacts (snapshot, Perfetto trace)
/// from the very run that produced the numbers.
pub fn run_client_server_cluster(cs: &CsConfig) -> (CsResult, Cluster) {
    let n = cs.clients;
    let mut cfg = ClusterConfig::now(n + 1)
        .with_frames(cs.frames)
        .with_seed(cs.seed)
        .with_telemetry(cs.telemetry);
    cfg.nic.frames = cs.frames;
    cfg.nic.adaptive_rto = cs.adaptive_rto;
    cfg.drop_prob = cs.drop_prob;
    if cs.ack_coalesce {
        cfg.nic.ack_coalesce = Some(SimDuration::from_micros(30));
    }
    let mut c = Cluster::new(cfg);
    let server_host = HostId(0);

    // Endpoints.
    let server_eps: Vec<GlobalEp> = match cs.mode {
        CsMode::OneVn => vec![c.create_endpoint(server_host)],
        CsMode::St | CsMode::Mt => {
            (0..n).map(|_| c.create_endpoint(server_host)).collect()
        }
    };
    let client_eps: Vec<GlobalEp> =
        (0..n).map(|i| c.create_endpoint(HostId(i + 1))).collect();
    for (i, &ce) in client_eps.iter().enumerate() {
        let se = match cs.mode {
            CsMode::OneVn => server_eps[0],
            _ => server_eps[i],
        };
        c.connect(ce, 0, se);
    }

    // Server threads.
    let mut server_tids = Vec::new();
    match cs.mode {
        CsMode::OneVn | CsMode::St => {
            let eps = server_eps.iter().map(|e| e.ep).collect();
            server_tids.push(c.spawn_thread(server_host, Box::new(StServer::new(eps))));
        }
        CsMode::Mt => {
            for e in &server_eps {
                server_tids
                    .push(c.spawn_thread(server_host, Box::new(MtServerThread::new(e.ep))));
            }
        }
    }
    // Client threads.
    let client_tids: Vec<(HostId, Tid)> = client_eps
        .iter()
        .enumerate()
        .map(|(i, &ce)| {
            let h = HostId(i as u32 + 1);
            (h, c.spawn_thread(h, Box::new(CsClient::new(ce.ep, cs.bytes))))
        })
        .collect();

    // Warm up, snapshot, measure.
    c.run_for(cs.warmup);
    let snap: Vec<u64> = client_tids
        .iter()
        .map(|&(h, t)| c.body::<CsClient>(h, t).unwrap().completed)
        .collect();
    let tel0 = c.telemetry().snapshot();

    c.run_for(cs.measure);

    let secs = cs.measure.as_secs_f64();
    let mut per_client = Vec::new();
    let mut rtt_pool = Sampler::default();
    for (i, &(h, t)) in client_tids.iter().enumerate() {
        let body = c.body::<CsClient>(h, t).unwrap();
        per_client.push((body.completed - snap[i]) as f64 / secs);
        let mut s = body.rtt.clone();
        // Pool a subsample to keep result sizes bounded.
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            if s.count() > 0 {
                rtt_pool.record(s.quantile(q));
            }
        }
    }
    let aggregate: f64 = per_client.iter().sum();
    // What happened during the measurement window, via the unified
    // telemetry snapshot delta (counters subtract; `net.packets` is the
    // fabric-wide frame total).
    let delta = c.telemetry().delta_since(&tel0);
    let nic_sum =
        |m: &str| -> u64 { (0..=n).map(|h| delta.counter(&format!("host{h}.nic.{m}"))).sum() };

    let result = CsResult {
        aggregate,
        aggregate_mb_s: aggregate * cs.bytes as f64 / 1e6,
        per_client,
        remaps_per_sec: delta.counter(&format!("host{}.os.loads", server_host.0)) as f64 / secs,
        rtt_us: rtt_pool,
        nacks_not_resident: nic_sum("nacks_rx_not_resident"),
        nacks_queue_full: nic_sum("nacks_rx_queue_full"),
        retransmits: nic_sum("retransmits"),
        wire_frames: delta.counter("net.packets"),
    };
    (result, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mut cs: CsConfig) -> CsResult {
        cs.warmup = SimDuration::from_millis(300);
        cs.measure = SimDuration::from_millis(1500);
        run_client_server(&cs)
    }

    #[test]
    fn one_vn_single_client_near_peak() {
        let r = quick(CsConfig::small(1, CsMode::OneVn, 8));
        // One client against a 78K msg/s server: client-bound at roughly
        // window/RTT but still tens of thousands per second.
        assert!(r.aggregate > 30_000.0, "aggregate {}", r.aggregate);
        assert_eq!(r.remaps_per_sec, 0.0, "no remapping with one endpoint");
    }

    #[test]
    fn one_vn_scales_to_server_limit_with_fair_shares() {
        let r = quick(CsConfig::small(4, CsMode::OneVn, 8));
        assert!(r.aggregate > 50_000.0, "aggregate {}", r.aggregate);
        let max = r.per_client.iter().cloned().fold(0.0, f64::max);
        let min = r.per_client.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min > 0.25 * max, "unfair shares: {:?}", r.per_client);
    }

    #[test]
    fn st_overcommit_remaps_but_survives() {
        // 10 clients > 8 frames: the thrash regime.
        let r = quick(CsConfig::small(10, CsMode::St, 8));
        assert!(r.remaps_per_sec > 50.0, "remaps/s {}", r.remaps_per_sec);
        assert!(r.nacks_not_resident > 0, "must see NotResident NACKs");
        assert!(
            r.aggregate > 10_000.0,
            "graceful degradation, not collapse: {}",
            r.aggregate
        );
        // Every client still makes progress (fair service over time).
        for (i, &p) in r.per_client.iter().enumerate() {
            assert!(p > 100.0, "client {i} starved: {p}");
        }
    }

    #[test]
    fn mt_overcommit_is_resilient() {
        let r = quick(CsConfig::small(10, CsMode::Mt, 8));
        assert!(r.aggregate > 10_000.0, "MT aggregate {}", r.aggregate);
        assert!(r.remaps_per_sec > 50.0);
    }

    #[test]
    fn frames_96_avoid_remapping() {
        let r = quick(CsConfig::small(10, CsMode::St, 96));
        assert_eq!(r.remaps_per_sec, 0.0, "96 frames fit 10 endpoints");
        assert_eq!(r.nacks_not_resident, 0);
    }

    #[test]
    fn bulk_single_client_bandwidth() {
        let r = quick(CsConfig::bulk(1, CsMode::OneVn, 8));
        assert!(
            (15.0..46.8).contains(&r.aggregate_mb_s),
            "bulk MB/s {}",
            r.aggregate_mb_s
        );
    }
}
