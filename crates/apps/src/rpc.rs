//! A SunRPC-style remote procedure call layer over Active Messages —
//! Figure 1's "SunRPC" box, rebuilt on endpoints.
//!
//! Services export numbered procedures on an endpoint registered in the
//! name service; clients issue calls through a [`RpcClient`] that tracks
//! outstanding calls, matches completions, and (because the transport is
//! exactly-once) never needs the duplicate-request cache classic RPC
//! servers carry.
//!
//! The call ABI on the wire: `handler` = procedure number,
//! `args[0..3]` = three argument words (`args[3]` carries the RPC serial),
//! payload = bulk argument bytes. The reply mirrors it.

use std::collections::HashMap;
use vnet_core::prelude::*;

/// A procedure implementation: `(args, payload_bytes) -> (results,
/// reply_payload_bytes)`.
pub type Procedure = Box<dyn FnMut([u64; 3], u32) -> ([u64; 3], u32) + Send>;

/// An RPC service: a dispatch table of procedures on one endpoint.
pub struct RpcService {
    ep: EpId,
    procedures: HashMap<u16, Procedure>,
    /// Calls served, per procedure.
    pub served: HashMap<u16, u64>,
    pending: Vec<DeliveredMsg>,
}

impl RpcService {
    /// Empty service on `ep`.
    pub fn new(ep: EpId) -> Self {
        RpcService { ep, procedures: HashMap::new(), served: HashMap::new(), pending: Vec::new() }
    }

    /// Register procedure `proc_num`. Builder-style.
    pub fn with_procedure(mut self, proc_num: u16, f: Procedure) -> Self {
        self.procedures.insert(proc_num, f);
        self
    }

    fn dispatch(&mut self, sys: &mut Sys<'_>, m: DeliveredMsg) {
        let proc_num = m.msg.handler;
        let args = [m.msg.args[0], m.msg.args[1], m.msg.args[2]];
        let (res, bytes) = match self.procedures.get_mut(&proc_num) {
            Some(f) => f(args, m.msg.payload_bytes),
            // Unknown procedure: RPC error convention — echo with the
            // error marker in results[0].
            None => ([u64::MAX, 0, 0], 0),
        };
        let reply = [res[0], res[1], res[2], m.msg.args[3]];
        match sys.reply(self.ep, &m, proc_num, reply, bytes) {
            Ok(_) => *self.served.entry(proc_num).or_insert(0) += 1,
            Err(_) => self.pending.push(m),
        }
    }
}

impl ThreadBody for RpcService {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while let Some(m) = self.pending.pop() {
            let before = self.pending.len();
            self.dispatch(sys, m);
            if self.pending.len() > before {
                return Step::Yield; // backpressured; retry next burst
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
            self.dispatch(sys, m);
        }
        if self.pending.is_empty() {
            Step::WaitEvent(self.ep)
        } else {
            Step::Yield
        }
    }
}

/// A completed call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RpcCompletion {
    /// Caller-assigned serial number.
    pub serial: u64,
    /// Procedure called.
    pub proc_num: u16,
    /// Three result words.
    pub results: [u64; 3],
    /// Reply payload size.
    pub payload_bytes: u32,
    /// True when the call came back undeliverable (service endpoint gone).
    pub failed: bool,
}

/// Client-side call tracking for one endpoint + destination.
#[derive(Default)]
pub struct RpcClient {
    next_serial: u64,
    outstanding: HashMap<u64, u16>, // serial -> proc
    /// Completions in arrival order (drain with `take_completions`).
    pub completions: Vec<RpcCompletion>,
}

impl RpcClient {
    /// Fresh client state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issue `proc_num(args)` to translation `idx`; returns the call
    /// serial. Split-phase: harvest completions later.
    pub fn call(
        &mut self,
        sys: &mut Sys<'_>,
        ep: EpId,
        idx: usize,
        proc_num: u16,
        args: [u64; 3],
        payload_bytes: u32,
    ) -> Result<u64, SendError> {
        let serial = self.next_serial;
        sys.request(ep, idx, proc_num, [args[0], args[1], args[2], serial], payload_bytes)?;
        self.next_serial += 1;
        self.outstanding.insert(serial, proc_num);
        Ok(serial)
    }

    /// Drain replies from `ep`, matching them to outstanding calls.
    /// Returns completions harvested in this pass.
    pub fn harvest(&mut self, sys: &mut Sys<'_>, ep: EpId) -> usize {
        let mut n = 0;
        while let Some(m) = sys.poll(ep, QueueSel::Reply) {
            let serial = m.msg.args[3];
            let proc_num = self.outstanding.remove(&serial).unwrap_or(m.msg.handler);
            self.completions.push(RpcCompletion {
                serial,
                proc_num,
                results: [m.msg.args[0], m.msg.args[1], m.msg.args[2]],
                payload_bytes: m.msg.payload_bytes,
                failed: m.undeliverable,
            });
            n += 1;
        }
        n
    }

    /// Calls still in flight.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Take all harvested completions.
    pub fn take_completions(&mut self) -> Vec<RpcCompletion> {
        std::mem::take(&mut self.completions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_core::{Cluster, ClusterConfig};
    use vnet_sim::SimDuration as D;

    const PROC_ADD: u16 = 1;
    const PROC_FIB: u16 = 2;
    const PROC_BLOB: u16 = 3;

    struct Caller {
        ep: EpId,
        rpc: RpcClient,
        issued: u32,
        n: u32,
        pub adds_ok: u32,
        pub fibs_ok: u32,
        pub blobs_ok: u32,
        pub errors: u32,
    }

    impl ThreadBody for Caller {
        fn run(&mut self, sys: &mut Sys<'_>) -> Step {
            self.rpc.harvest(sys, self.ep);
            for c in self.rpc.take_completions() {
                assert!(!c.failed);
                match c.proc_num {
                    PROC_ADD => {
                        assert_eq!(c.results[0], c.serial + 100);
                        self.adds_ok += 1;
                    }
                    PROC_FIB => {
                        assert_eq!(c.results[0], 55, "fib(10)");
                        self.fibs_ok += 1;
                    }
                    PROC_BLOB => {
                        assert_eq!(c.payload_bytes, 4096);
                        self.blobs_ok += 1;
                    }
                    0xDEAD => {
                        assert_eq!(c.results[0], u64::MAX, "unknown proc marker");
                        self.errors += 1;
                    }
                    _ => unreachable!(),
                }
            }
            while self.issued < self.n {
                let serial = self.issued as u64;
                let r = match self.issued % 4 {
                    0 => self.rpc.call(sys, self.ep, 0, PROC_ADD, [serial + 100, 0, 0], 0),
                    1 => self.rpc.call(sys, self.ep, 0, PROC_FIB, [10, 0, 0], 0),
                    2 => self.rpc.call(sys, self.ep, 0, PROC_BLOB, [4096, 0, 0], 0),
                    _ => self.rpc.call(sys, self.ep, 0, 0xDEAD, [0, 0, 0], 0),
                };
                match r {
                    Ok(_) => self.issued += 1,
                    Err(SendError::NoCredit) | Err(SendError::QueueFull) => break,
                    Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                    Err(e) => panic!("{e:?}"),
                }
            }
            if self.adds_ok + self.fibs_ok + self.blobs_ok + self.errors == self.n {
                Step::Exit
            } else {
                Step::WaitEvent(self.ep)
            }
        }
    }

    #[test]
    fn mixed_procedure_calls_complete() {
        let mut c = Cluster::new(ClusterConfig::now(2));
        let cl = c.create_endpoint(HostId(0));
        let sv = c.create_endpoint(HostId(1));
        c.register_name("svc/math", sv);
        assert!(c.connect_by_name(cl, 0, "svc/math"));
        let service = RpcService::new(sv.ep)
            .with_procedure(PROC_ADD, Box::new(|a, _| ([a[0], 0, 0], 0)))
            .with_procedure(
                PROC_FIB,
                Box::new(|a, _| {
                    let (mut x, mut y) = (0u64, 1u64);
                    for _ in 0..a[0] {
                        let z = x + y;
                        x = y;
                        y = z;
                    }
                    ([x, 0, 0], 0)
                }),
            )
            .with_procedure(PROC_BLOB, Box::new(|a, _| ([a[0], 0, 0], a[0] as u32)));
        c.spawn_thread(HostId(1), Box::new(service));
        let t = c.spawn_thread(
            HostId(0),
            Box::new(Caller {
                ep: cl.ep,
                rpc: RpcClient::new(),
                issued: 0,
                n: 80,
                adds_ok: 0,
                fibs_ok: 0,
                blobs_ok: 0,
                errors: 0,
            }),
        );
        c.run_for(D::from_secs(5));
        let caller: &Caller = c.body(HostId(0), t).unwrap();
        assert_eq!(caller.adds_ok, 20);
        assert_eq!(caller.fibs_ok, 20);
        assert_eq!(caller.blobs_ok, 20);
        assert_eq!(caller.errors, 20, "unknown procedures answered with the error marker");
        assert_eq!(caller.rpc.outstanding(), 0);
    }

    #[test]
    fn rpc_survives_a_lossy_fabric() {
        let mut cfg = ClusterConfig::now(2);
        cfg.drop_prob = 0.05;
        let mut c = Cluster::new(cfg);
        let cl = c.create_endpoint(HostId(0));
        let sv = c.create_endpoint(HostId(1));
        c.connect(cl, 0, sv);
        let service =
            RpcService::new(sv.ep).with_procedure(PROC_ADD, Box::new(|a, _| ([a[0] * 2, 0, 0], 0)));
        c.spawn_thread(HostId(1), Box::new(service));
        struct Simple {
            ep: EpId,
            rpc: RpcClient,
            issued: u32,
            pub done: u32,
        }
        impl ThreadBody for Simple {
            fn run(&mut self, sys: &mut Sys<'_>) -> Step {
                self.rpc.harvest(sys, self.ep);
                for c in self.rpc.take_completions() {
                    assert_eq!(c.results[0], (c.results[0] / 2) * 2);
                    self.done += 1;
                }
                while self.issued < 50 {
                    match self.rpc.call(sys, self.ep, 0, PROC_ADD, [7, 0, 0], 0) {
                        Ok(_) => self.issued += 1,
                        Err(SendError::NoCredit) | Err(SendError::QueueFull) => break,
                        Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                        Err(e) => panic!("{e:?}"),
                    }
                }
                if self.done == 50 {
                    Step::Exit
                } else {
                    Step::WaitEvent(self.ep)
                }
            }
        }
        let t = c.spawn_thread(
            HostId(0),
            Box::new(Simple { ep: cl.ep, rpc: RpcClient::new(), issued: 0, done: 0 }),
        );
        c.run_for(D::from_secs(20));
        assert_eq!(c.body::<Simple>(HostId(0), t).unwrap().done, 50);
    }
}
