//! Blocked-LU Linpack skeleton (§6.2).
//!
//! The paper's cluster "sustained 10.14 GF on the massively-parallel
//! Linpack benchmark, making it the first cluster on the Top-500 list".
//! This module reproduces the *communication structure* of HPL's
//! right-looking blocked LU on a 2-D block-cyclic q×q process grid
//! (q = √p): per panel, the owning process column factors it
//! cooperatively, each column member row-broadcasts its panel slice to
//! its process row, the pivot process row column-broadcasts the U block,
//! and every process updates its share of the trailing matrix with
//! DGEMM-rate compute. The 2-D distribution is what makes the
//! communication volume independent of p — the reason ScaLAPACK scales.
//!
//! Delivered GFLOPS depend on the problem size `n`; the harness reports
//! the measured value for the simulated `n` and the DGEMM-bound
//! asymptote for comparison with the paper's entry.

use crate::bsp::{launch_job, BspApp, BspRunner, SuperStep};
use crate::collectives;
use vnet_core::prelude::*;
use vnet_core::{Cluster, ClusterConfig};

/// Linpack run parameters.
#[derive(Clone, Debug)]
pub struct LinpackConfig {
    /// Matrix dimension.
    pub n: u64,
    /// Panel (block) width.
    pub nb: u64,
    /// Processes.
    pub p: usize,
    /// Per-node DGEMM rate, MFLOPS (UltraSPARC-1: ~250 of a 333 peak).
    pub dgemm_mflops: f64,
    /// Per-node panel-factorization rate, MFLOPS (latency-bound, lower).
    pub panel_mflops: f64,
}

impl LinpackConfig {
    /// A cluster-scale configuration sized to keep the simulation light
    /// while preserving the panel/broadcast/update structure.
    pub fn cluster(p: usize) -> Self {
        LinpackConfig { n: 8192, nb: 256, p, dgemm_mflops: 250.0, panel_mflops: 90.0 }
    }
}

/// One rank's schedule for the blocked LU.
pub struct LinpackApp {
    schedule: Vec<SuperStep>,
}

impl LinpackApp {
    /// Build the schedule for `rank`.
    pub fn new(cfg: &LinpackConfig, rank: usize) -> Self {
        LinpackApp { schedule: build_schedule(cfg, rank) }
    }
}

impl BspApp for LinpackApp {
    fn step(&mut self, _rank: usize, _n: usize, step: u64) -> Option<SuperStep> {
        self.schedule.get(step as usize).cloned()
    }
}



fn build_schedule(cfg: &LinpackConfig, rank: usize) -> Vec<SuperStep> {
    let p = cfg.p;
    let q = (p as f64).sqrt() as usize;
    assert_eq!(q * q, p, "the 2-D grid needs a perfect-square process count");
    let (my_row, my_col) = (rank / q, rank % q);
    let panels = cfg.n / cfg.nb;
    let mut sched = Vec::new();
    let grid = |r: usize, c: usize| r * q + c;
    for k in 0..panels {
        let owner_col = (k as usize) % q;
        let pivot_row = (k as usize) % q;
        let rows = cfg.n - k * cfg.nb; // trailing dimension
        // 1. Cooperative panel factorization within the owning process
        //    column: each member factors its rows/q share.
        let pf_flops = rows as f64 / q as f64 * (cfg.nb * cfg.nb) as f64;
        sched.push(SuperStep {
            compute: if my_col == owner_col {
                SimDuration::from_micros_f64(pf_flops / cfg.panel_mflops)
            } else {
                SimDuration::ZERO
            },
            sends: vec![],
            recv_count: 0,
        });
        // 2. Row broadcast of L panel slices: each (i, owner_col) sends its
        //    (rows/q x nb) slice to the rest of its process row.
        let slice_bytes = (rows / q as u64).max(1) * cfg.nb * 8;
        let slice_msgs = slice_bytes.div_ceil(8192) as u32;
        {
            let mut sends = Vec::new();
            let mut recv = 0;
            if my_col == owner_col {
                for c in 0..q {
                    if c != owner_col {
                        collectives::chunked(grid(my_row, c), slice_bytes, 8192, &mut sends);
                    }
                }
            } else {
                recv = slice_msgs;
            }
            sched.push(SuperStep { compute: SimDuration::ZERO, sends, recv_count: recv });
        }
        // 3. Column broadcast of U block slices: each (pivot_row, j) sends
        //    its (nb x cols/q) slice down its process column.
        {
            let mut sends = Vec::new();
            let mut recv = 0;
            if my_row == pivot_row {
                for r in 0..q {
                    if r != pivot_row {
                        collectives::chunked(grid(r, my_col), slice_bytes, 8192, &mut sends);
                    }
                }
            } else {
                recv = slice_msgs;
            }
            sched.push(SuperStep { compute: SimDuration::ZERO, sends, recv_count: recv });
        }
        // 4. Trailing update: 2 * nb * rows^2 flops spread over the grid.
        let upd_flops = 2.0 * cfg.nb as f64 * (rows as f64) * (rows as f64) / p as f64;
        sched.push(SuperStep {
            compute: SimDuration::from_micros_f64(upd_flops / cfg.dgemm_mflops),
            sends: vec![],
            recv_count: 0,
        });
    }
    sched
}

/// Result of a Linpack run.
#[derive(Clone, Debug)]
pub struct LinpackResult {
    /// Measured wall time, seconds.
    pub seconds: f64,
    /// Delivered GFLOPS = (2/3 n³ + 2n²) / time.
    pub gflops: f64,
    /// DGEMM-bound asymptote for this node count, GFLOPS.
    pub peak_gflops: f64,
    /// Parallel efficiency vs the asymptote.
    pub efficiency: f64,
}

/// Run the Linpack skeleton over the simulated cluster.
pub fn run_linpack(cfg: &LinpackConfig, seed: u64) -> LinpackResult {
    let mut c = Cluster::new(ClusterConfig::now(cfg.p as u32).with_seed(seed));
    let hosts: Vec<HostId> = (0..cfg.p as u32).map(HostId).collect();
    let ranks = launch_job(&mut c, &hosts, |r| LinpackApp::new(cfg, r));
    c.run_for(SimDuration::from_secs(100_000));
    let mut finish = SimTime::ZERO;
    for &(h, t, _) in &ranks {
        let st = &c.body::<BspRunner<LinpackApp>>(h, t).expect("runner").stats;
        finish = finish.max(st.finished.expect("linpack rank finished"));
    }
    let seconds = finish.as_secs_f64();
    let n = cfg.n as f64;
    let flops = 2.0 / 3.0 * n * n * n + 2.0 * n * n;
    let gflops = flops / seconds / 1e9;
    let peak = cfg.p as f64 * cfg.dgemm_mflops / 1e3;
    LinpackResult { seconds, gflops, peak_gflops: peak, efficiency: gflops / peak }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_schedule_is_consistent() {
        for p in [4usize, 9, 16] {
            let cfg =
                LinpackConfig { n: 2048, nb: 256, p, dgemm_mflops: 250.0, panel_mflops: 90.0 };
            let scheds: Vec<_> = (0..cfg.p).map(|r| build_schedule(&cfg, r)).collect();
            let steps = scheds[0].len();
            assert!(scheds.iter().all(|s| s.len() == steps));
            for s in 0..steps {
                let sends: u32 = scheds.iter().map(|sc| sc[s].sends.len() as u32).sum();
                let recvs: u32 = scheds.iter().map(|sc| sc[s].recv_count).sum();
                assert_eq!(sends, recvs, "P={p} step {s}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "perfect-square")]
    fn non_square_grid_rejected() {
        let cfg = LinpackConfig { n: 1024, nb: 256, p: 6, dgemm_mflops: 250.0, panel_mflops: 90.0 };
        let _ = build_schedule(&cfg, 0);
    }

    #[test]
    fn four_node_linpack_efficiency() {
        let r = run_linpack(&LinpackConfig { n: 4096, nb: 256, p: 4, ..LinpackConfig::cluster(4) }, 1);
        assert!(r.gflops > 0.3, "gflops {}", r.gflops);
        assert!(r.efficiency > 0.4 && r.efficiency <= 1.0, "eff {}", r.efficiency);
    }

    #[test]
    fn more_nodes_more_gflops() {
        let r4 = run_linpack(&LinpackConfig { n: 4096, nb: 256, p: 4, ..LinpackConfig::cluster(4) }, 1);
        let r16 =
            run_linpack(&LinpackConfig { n: 4096, nb: 256, p: 16, ..LinpackConfig::cluster(16) }, 1);
        assert!(r16.gflops > r4.gflops * 1.8, "{} vs {}", r16.gflops, r4.gflops);
    }
}
