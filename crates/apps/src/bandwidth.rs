//! The bulk-transfer microbenchmarks of Figure 4 and the §6.1 round-trip
//! fit.
//!
//! * **Bandwidth sweep** — windowed stream of `n`-byte messages for
//!   n = 128 … 8192; delivered MB/s per size, plus N½ (the size achieving
//!   half of peak).
//! * **RTT sweep** — ping-pong per size; least-squares fit
//!   `RTT(n) = slope·n + intercept` (the paper: 0.1112·n + 61.02 µs,
//!   R² = 0.99).

use crate::logp::EchoServer;
use vnet_core::prelude::*;
use vnet_sim::stats::linear_fit;
use vnet_sim::SimTime;

/// One point of the bandwidth sweep.
#[derive(Clone, Debug)]
pub struct BwPoint {
    /// Message payload size in bytes.
    pub bytes: u32,
    /// Delivered payload bandwidth, MB/s.
    pub mb_s: f64,
    /// Median round-trip time for this size, µs.
    pub rtt_us: f64,
}

/// Full Figure-4 result.
#[derive(Clone, Debug)]
pub struct BandwidthResult {
    /// Sweep points, ascending size.
    pub points: Vec<BwPoint>,
    /// Half-power message size N½ (bytes), linearly interpolated.
    pub n_half: f64,
    /// RTT fit `(slope µs/byte, intercept µs, r²)` over n ≥ 128.
    pub rtt_fit: (f64, f64, f64),
}

/// Streaming sender: keeps `window` requests outstanding until `count`
/// complete, then records the elapsed time.
pub struct StreamSender {
    ep: EpId,
    bytes: u32,
    count: u32,
    window: u32,
    sent: u32,
    done: u32,
    started: Option<SimTime>,
    /// Set when the stream completes: elapsed µs.
    pub elapsed_us: Option<f64>,
}

impl StreamSender {
    /// Stream `count` messages of `bytes` with the given window.
    pub fn new(ep: EpId, bytes: u32, count: u32, window: u32) -> Self {
        StreamSender {
            ep,
            bytes,
            count,
            window,
            sent: 0,
            done: 0,
            started: None,
            elapsed_us: None,
        }
    }
}

impl ThreadBody for StreamSender {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        if self.started.is_none() {
            self.started = Some(sys.now());
        }
        while self.sent < self.count && self.sent - self.done < self.window {
            match sys.request(self.ep, 1, 0, [0; 4], self.bytes) {
                Ok(_) => self.sent += 1,
                Err(SendError::NoCredit) | Err(SendError::QueueFull) => break,
                Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                Err(e) => panic!("stream send failed: {e:?}"),
            }
        }
        while sys.poll(self.ep, QueueSel::Reply).is_some() {
            self.done += 1;
        }
        if self.done >= self.count {
            self.elapsed_us = Some((sys.now() - self.started.unwrap()).as_micros_f64());
            return Step::Exit;
        }
        Step::Yield
    }
}

/// Ping-pong sender measuring RTT for one size.
pub struct PingPonger {
    ep: EpId,
    bytes: u32,
    rounds: u32,
    iter: u32,
    sent_at: SimTime,
    /// Median RTT after completion, µs.
    pub rtts: vnet_sim::stats::Sampler,
}

impl PingPonger {
    /// `rounds` round trips of `bytes`-byte requests (replies are small,
    /// so the one-way data path is exercised once per round).
    pub fn new(ep: EpId, bytes: u32, rounds: u32) -> Self {
        PingPonger {
            ep,
            bytes,
            rounds,
            iter: 0,
            sent_at: SimTime::ZERO,
            rtts: vnet_sim::stats::Sampler::default(),
        }
    }
}

impl ThreadBody for PingPonger {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        if sys.outstanding(self.ep) == 0 {
            if self.iter >= self.rounds {
                return Step::Exit;
            }
            sys.request(self.ep, 1, 0, [0; 4], self.bytes).expect("pingpong send");
            self.sent_at = sys.now();
            self.iter += 1;
            return Step::Yield;
        }
        if sys.poll(self.ep, QueueSel::Reply).is_some() {
            self.rtts.record((sys.now() - self.sent_at).as_micros_f64());
        }
        Step::Yield
    }
}

/// Echo that replies with the same payload size (for symmetric RTT, like
/// the paper's n-byte round trips).
pub struct EchoSameSize {
    /// Endpoint to serve.
    pub ep: EpId,
}

impl ThreadBody for EchoSameSize {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
            let _ = sys.reply(self.ep, &m, 0, [0; 4], m.msg.payload_bytes);
        }
        Step::Yield
    }
}

fn one_size(cfg: &ClusterConfig, bytes: u32, count: u32) -> (f64, f64) {
    // Bandwidth leg.
    let mut c = Cluster::new(cfg.clone());
    let a = c.create_endpoint(HostId(0));
    let b = c.create_endpoint(HostId(1));
    c.build_virtual_network(&[a, b]);
    c.make_resident(a);
    c.make_resident(b);
    c.spawn_thread(HostId(1), Box::new(EchoServer { ep: b.ep, served: 0 }));
    let t = c.spawn_thread(HostId(0), Box::new(StreamSender::new(a.ep, bytes, count, 8)));
    c.run_for(SimDuration::from_secs(30));
    let s: &StreamSender = c.body(HostId(0), t).expect("sender");
    let elapsed_us = s.elapsed_us.expect("stream completes");
    let mb_s = (bytes as f64 * count as f64) / elapsed_us;

    // RTT leg: symmetric n-byte round trips.
    let mut c = Cluster::new(cfg.clone());
    let a = c.create_endpoint(HostId(0));
    let b = c.create_endpoint(HostId(1));
    c.build_virtual_network(&[a, b]);
    c.make_resident(a);
    c.make_resident(b);
    c.spawn_thread(HostId(1), Box::new(EchoSameSize { ep: b.ep }));
    let t = c.spawn_thread(HostId(0), Box::new(PingPonger::new(a.ep, bytes, 50)));
    c.run_for(SimDuration::from_secs(10));
    let p: &PingPonger = c.body(HostId(0), t).expect("pingponger");
    let mut rtts = p.rtts.clone();
    (mb_s, rtts.median())
}

/// Run the Figure-4 sweep over the standard sizes.
pub fn run_bandwidth(cfg: &ClusterConfig) -> BandwidthResult {
    let sizes = [128u32, 256, 512, 1024, 2048, 4096, 8192];
    let mut points = Vec::new();
    for &bytes in &sizes {
        // Fewer messages for big sizes keeps runtime flat.
        let count = (2_000_000 / bytes.max(256)).clamp(60, 2_000);
        let (mb_s, rtt_us) = one_size(cfg, bytes, count);
        points.push(BwPoint { bytes, mb_s, rtt_us });
    }
    let peak = points.iter().map(|p| p.mb_s).fold(0.0, f64::max);
    let half = peak / 2.0;
    // Interpolate N1/2 on the rising edge.
    let mut n_half = points[0].bytes as f64;
    for w in points.windows(2) {
        if w[0].mb_s < half && w[1].mb_s >= half {
            let f = (half - w[0].mb_s) / (w[1].mb_s - w[0].mb_s);
            n_half = w[0].bytes as f64 + f * (w[1].bytes - w[0].bytes) as f64;
            break;
        }
    }
    let pts: Vec<(f64, f64)> =
        points.iter().map(|p| (p.bytes as f64, p.rtt_us)).collect();
    let rtt_fit = linear_fit(&pts);
    BandwidthResult { points, n_half, rtt_fit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_core::ClusterConfig;

    #[test]
    fn eight_k_bandwidth_near_sbus_limit() {
        let (mb_s, rtt) = one_size(&ClusterConfig::now(2), 8192, 100);
        // Paper: 43.9 MB/s delivered, 46.8 MB/s hardware ceiling.
        assert!((40.0..46.8).contains(&mb_s), "8KB bandwidth {mb_s:.1} MB/s");
        assert!(rtt > 300.0, "8KB round trip is sub-millisecond but far from small: {rtt}");
    }

    #[test]
    fn gam_delivers_less_at_8k() {
        let (vn, _) = one_size(&ClusterConfig::now(2), 8192, 100);
        let (gam, _) = one_size(&ClusterConfig::gam(2), 8192, 100);
        // Paper: 43.9 vs 38 MB/s — the first-generation interface did not
        // pipeline the store-and-forward staging.
        assert!(gam < vn, "GAM {gam:.1} must trail VN {vn:.1}");
        assert!((30.0..42.0).contains(&gam), "GAM 8KB bandwidth {gam:.1}");
    }

    #[test]
    fn sweep_shape_and_fit() {
        let r = run_bandwidth(&ClusterConfig::now(2));
        // Monotone non-decreasing bandwidth with size.
        for w in r.points.windows(2) {
            assert!(w[1].mb_s >= w[0].mb_s * 0.95, "bandwidth dips: {:?}", r.points);
        }
        // N1/2 in the few-hundred-bytes region (paper: 540 B).
        assert!((200.0..1100.0).contains(&r.n_half), "N1/2 = {}", r.n_half);
        let (slope, intercept, r2) = r.rtt_fit;
        assert!(r2 > 0.98, "fit r2 = {r2}");
        assert!((0.05..0.16).contains(&slope), "slope = {slope} us/B");
        assert!((20.0..80.0).contains(&intercept), "intercept = {intercept} us");
    }
}
