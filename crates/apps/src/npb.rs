//! NAS Parallel Benchmark (NPB 2.2, Class A) communication skeletons —
//! Figure 5.
//!
//! Each kernel is reduced to its *communication skeleton*: the real
//! per-iteration message pattern (neighbour halos, transposes, reductions)
//! with message sizes derived from the Class A problem dimensions, plus a
//! per-process compute model (serial time divided by P, with a mild cache
//! bonus for constant-problem-size scaling — the paper: "improved cache
//! performance compensates for increased communication").
//!
//! The NOW curves run over the full simulated stack; the IBM SP-2 and SGI
//! Origin 2000 comparison curves use an analytic BSP model with machine
//! parameters (per-message cost, bandwidth, CPU factor) — see DESIGN.md's
//! substitution table.

use crate::bsp::{launch_job, patterns, BspApp, BspRunner, SuperStep};
use crate::collectives;
use vnet_core::prelude::*;
use vnet_core::{Cluster, ClusterConfig};

/// The eight NPB 2.2 kernels/pseudo-apps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Block-tridiagonal pseudo-app: 3D structured halos, medium messages.
    Bt,
    /// Scalar-pentadiagonal pseudo-app: like BT, more frequent exchanges.
    Sp,
    /// LU factorization: wavefront pipeline of small messages.
    Lu,
    /// Multigrid: halo exchanges over V-cycle levels + tiny reductions.
    Mg,
    /// 3D FFT: all-to-all transposes (bisection-bandwidth bound).
    Ft,
    /// Integer sort: all-to-all bucket exchange each iteration.
    Is,
    /// Conjugate gradient: partner exchanges + dot-product reductions.
    Cg,
    /// Embarrassingly parallel: compute, one final reduction.
    Ep,
}

impl Kernel {
    /// All kernels in the paper's plot order.
    pub const ALL: [Kernel; 8] =
        [Kernel::Bt, Kernel::Sp, Kernel::Lu, Kernel::Mg, Kernel::Ft, Kernel::Is, Kernel::Cg, Kernel::Ep];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Bt => "BT",
            Kernel::Sp => "SP",
            Kernel::Lu => "LU",
            Kernel::Mg => "MG",
            Kernel::Ft => "FT",
            Kernel::Is => "IS",
            Kernel::Cg => "CG",
            Kernel::Ep => "EP",
        }
    }

    /// Serial compute time per iteration (µs) on a 167 MHz UltraSPARC,
    /// Class A (approximate mid-90s numbers; shape matters, not absolutes).
    fn serial_iter_us(self) -> f64 {
        match self {
            Kernel::Bt => 12_000_000.0,
            Kernel::Sp => 4_500_000.0,
            Kernel::Lu => 5_000_000.0,
            Kernel::Mg => 14_000_000.0,
            Kernel::Ft => 28_000_000.0,
            Kernel::Is => 2_200_000.0,
            Kernel::Cg => 4_000_000.0,
            Kernel::Ep => 230_000_000.0,
        }
    }

    /// Iterations simulated (a handful preserves the steady-state ratio).
    fn iters(self) -> u64 {
        match self {
            Kernel::Ep => 1,
            Kernel::Mg | Kernel::Ft => 3,
            _ => 4,
        }
    }
}

/// Split `bytes` into MTU-sized messages to `dst`.
fn chunked(dst: usize, bytes: u64, out: &mut Vec<(usize, u32)>) -> u32 {
    collectives::chunked(dst, bytes, 8192, out)
}

/// An NPB rank's precomputed superstep schedule.
pub struct NpbApp {
    schedule: Vec<SuperStep>,
}

impl NpbApp {
    /// Build the schedule for `rank` of `p` running `kernel`.
    pub fn new(kernel: Kernel, rank: usize, p: usize) -> Self {
        NpbApp { schedule: build_schedule(kernel, rank, p) }
    }
}

impl BspApp for NpbApp {
    fn step(&mut self, _rank: usize, _n: usize, step: u64) -> Option<SuperStep> {
        self.schedule.get(step as usize).cloned()
    }
}

/// Per-process compute time for one iteration on `p` processors, with a
/// mild constant-problem-size cache bonus.
fn compute_us(kernel: Kernel, p: usize) -> f64 {
    let cache_bonus = 1.0 / (1.0 + 0.07 * (1.0 - 1.0 / p as f64));
    kernel.serial_iter_us() / p as f64 * cache_bonus
}

/// Reduction rounds (recursive doubling) appended as supersteps.
fn push_allreduce(sched: &mut Vec<SuperStep>, rank: usize, p: usize) {
    collectives::allreduce(sched, rank, p);
}

fn build_schedule(kernel: Kernel, rank: usize, p: usize) -> Vec<SuperStep> {
    let mut sched = Vec::new();
    if p == 1 {
        // Serial: pure compute.
        let total = kernel.serial_iter_us() * kernel.iters() as f64;
        sched.push(SuperStep {
            compute: SimDuration::from_micros_f64(total),
            sends: vec![],
            recv_count: 0,
        });
        return sched;
    }
    let comp = SimDuration::from_micros_f64(compute_us(kernel, p));
    let (l, r) = patterns::ring(rank, p);
    for _ in 0..kernel.iters() {
        match kernel {
            Kernel::Bt | Kernel::Sp => {
                // 3D structured halos ≈ 6 faces; model as 2 ring neighbours
                // x 3 sweeps with face bytes ~ (64^2 x 5 vars x 8B) / P^(2/3).
                let face = (64.0 * 64.0 * 5.0 * 8.0 / (p as f64).powf(2.0 / 3.0)) as u64;
                let sweeps = if kernel == Kernel::Bt { 3 } else { 6 };
                for _ in 0..sweeps {
                    let mut sends = Vec::new();
                    let mut recv = 0;
                    recv += chunked(l, face, &mut sends);
                    recv += chunked(r, face, &mut sends);
                    sched.push(SuperStep {
                        compute: comp / sweeps,
                        sends,
                        recv_count: recv,
                    });
                }
            }
            Kernel::Lu => {
                // Wavefront pipeline: frequent small neighbour messages.
                let stages = 8;
                for _ in 0..stages {
                    let mut sends = Vec::new();
                    let mut recv = 0;
                    recv += chunked(r, 4096, &mut sends);
                    recv += chunked(l, 4096, &mut sends);
                    sched.push(SuperStep { compute: comp / stages, sends, recv_count: recv });
                }
            }
            Kernel::Mg => {
                // V-cycle: halo exchange per level, sizes halving. Class A
                // MG is a 256^3 grid: top-level faces are 256^2 doubles.
                let levels = 6;
                for lev in 0..levels {
                    let bytes = ((256u64 * 256 * 8) >> lev).max(64) / (p as u64).isqrt().max(1);
                    let mut sends = Vec::new();
                    let mut recv = 0;
                    recv += chunked(l, bytes, &mut sends);
                    recv += chunked(r, bytes, &mut sends);
                    sched.push(SuperStep { compute: comp / levels, sends, recv_count: recv });
                }
                push_allreduce(&mut sched, rank, p);
            }
            Kernel::Ft => {
                // Two all-to-all transposes per iteration. Class A FT is a
                // 256x256x128 complex grid: ~134 MB cross the bisection per
                // transpose, spread over P^2 pairs.
                let per_pair = (256u64 * 256 * 128 * 16) / (p as u64 * p as u64);
                for _ in 0..2 {
                    let mut sends = Vec::new();
                    let mut recv = 0;
                    for d in 0..p {
                        if d != rank {
                            recv += chunked(d, per_pair, &mut sends);
                        }
                    }
                    sched.push(SuperStep { compute: comp / 2, sends, recv_count: recv });
                }
            }
            Kernel::Is => {
                // Bucket all-to-all: 2^23 keys x 4B over P^2 pairs.
                let per_pair = (1u64 << 23) * 4 / (p as u64 * p as u64);
                let mut sends = Vec::new();
                let mut recv = 0;
                for d in 0..p {
                    if d != rank {
                        recv += chunked(d, per_pair, &mut sends);
                    }
                }
                sched.push(SuperStep { compute: comp, sends, recv_count: recv });
                push_allreduce(&mut sched, rank, p);
            }
            Kernel::Cg => {
                // Partner exchange (rows/cols) + 3 dot-product reductions.
                // Class A CG: n = 14000 double vector slices.
                let bytes = (14_000u64 * 8) / (p as u64).isqrt().max(1);
                let partner = rank ^ 1;
                let mut sends = Vec::new();
                let mut recv = 0;
                if partner < p {
                    recv += chunked(partner, bytes, &mut sends);
                }
                sched.push(SuperStep { compute: comp, sends, recv_count: recv });
                for _ in 0..3 {
                    push_allreduce(&mut sched, rank, p);
                }
            }
            Kernel::Ep => {
                sched.push(SuperStep { compute: comp, sends: vec![], recv_count: 0 });
            }
        }
    }
    if matches!(kernel, Kernel::Ep) {
        push_allreduce(&mut sched, rank, p);
    }
    sched
}

/// Run `kernel` on `p` simulated NOW nodes; returns the makespan (µs).
pub fn run_now(kernel: Kernel, p: usize, seed: u64) -> f64 {
    let mut c = Cluster::new(ClusterConfig::now(p as u32).with_seed(seed));
    let hosts: Vec<HostId> = (0..p as u32).map(HostId).collect();
    let ranks = launch_job(&mut c, &hosts, |r| NpbApp::new(kernel, r, p));
    // Long ceiling; EP at P=1 computes ~230 s.
    c.run_for(SimDuration::from_secs(3_000));
    let mut finish = SimTime::ZERO;
    for &(h, t, _) in &ranks {
        let st = &c.body::<BspRunner<NpbApp>>(h, t).expect("runner").stats;
        finish = finish.max(st.finished.unwrap_or_else(|| {
            panic!(
                "{} rank on {h} did not finish (P={p}, seed={seed}, steps={}, sent={})",
                kernel.name(),
                st.steps,
                st.msgs_sent
            )
        }));
    }
    finish.as_micros_f64()
}

/// Analytic machine model for the comparison curves.
#[derive(Clone, Debug)]
pub struct MachineModel {
    /// Display name.
    pub name: &'static str,
    /// CPU time factor relative to the NOW node (lower = faster).
    pub cpu_factor: f64,
    /// Per-message cost, µs (MPI send+recv software path).
    pub per_msg_us: f64,
    /// Per-byte cost, µs (1 / bandwidth).
    pub per_byte_us: f64,
    /// Per-superstep synchronization latency, µs.
    pub latency_us: f64,
}

impl MachineModel {
    /// IBM SP-2: heavyweight MPI (~40 µs/msg), ~35 MB/s per link.
    pub fn sp2() -> Self {
        MachineModel {
            name: "SP-2",
            cpu_factor: 1.05,
            per_msg_us: 40.0,
            per_byte_us: 1.0 / 35.0,
            latency_us: 40.0,
        }
    }

    /// SGI Origin 2000: CC-NUMA — fast CPU, very cheap communication.
    pub fn origin2000() -> Self {
        MachineModel {
            name: "Origin 2000",
            cpu_factor: 0.5,
            per_msg_us: 3.0,
            per_byte_us: 1.0 / 300.0,
            latency_us: 2.0,
        }
    }
}

/// Analytic BSP execution time (µs) of `kernel` on `p` nodes of `m`.
pub fn run_analytic(kernel: Kernel, p: usize, m: &MachineModel) -> f64 {
    // Drive the same per-rank schedules; the BSP time of a superstep is
    // max over ranks of (compute + send and receive costs) + latency.
    let scheds: Vec<Vec<SuperStep>> =
        (0..p).map(|r| build_schedule(kernel, r, p)).collect();
    let steps = scheds.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut total = 0.0;
    for s in 0..steps {
        // Receive volume per rank: what everyone else sends to it.
        let mut recv_bytes = vec![0u64; p];
        let mut recv_msgs = vec![0u64; p];
        for sc in &scheds {
            if let Some(st) = sc.get(s) {
                for &(d, b) in &st.sends {
                    recv_bytes[d] += b as u64;
                    recv_msgs[d] += 1;
                }
            }
        }
        let mut worst = 0.0f64;
        for (r, rank_sched) in scheds.iter().enumerate() {
            let Some(st) = rank_sched.get(s) else { continue };
            let bytes: u64 = st.sends.iter().map(|&(_, b)| b as u64).sum();
            let t = st.compute.as_micros_f64() * m.cpu_factor
                + (st.sends.len() as f64 + recv_msgs[r] as f64) * m.per_msg_us
                + (bytes + recv_bytes[r]) as f64 * m.per_byte_us;
            worst = worst.max(t);
        }
        total += worst + m.latency_us;
    }
    total
}

/// One Figure-5 series: speedups of `kernel` at the given processor counts.
pub fn speedup_series(
    kernel: Kernel,
    procs: &[usize],
    machine: Option<&MachineModel>,
    seed: u64,
) -> Vec<(usize, f64)> {
    let t1 = match machine {
        None => run_now(kernel, 1, seed),
        Some(m) => run_analytic(kernel, 1, m),
    };
    procs
        .iter()
        .map(|&p| {
            let tp = match machine {
                None => run_now(kernel, p, seed + p as u64),
                Some(m) => run_analytic(kernel, p, m),
            };
            (p, t1 / tp)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_consistent_across_ranks() {
        // Total sends == total expected receives, per kernel and P.
        for &k in &Kernel::ALL {
            for &p in &[2usize, 4, 8] {
                let scheds: Vec<_> = (0..p).map(|r| build_schedule(k, r, p)).collect();
                let steps = scheds.iter().map(|s| s.len()).max().unwrap();
                assert!(
                    scheds.iter().all(|s| s.len() == steps),
                    "{} P={p}: rank schedules differ in length",
                    k.name()
                );
                for s in 0..steps {
                    let sends: u32 =
                        scheds.iter().map(|sc| sc[s].sends.len() as u32).sum();
                    let recvs: u32 = scheds.iter().map(|sc| sc[s].recv_count).sum();
                    assert_eq!(
                        sends,
                        recvs,
                        "{} P={p} step {s}: sends {sends} != recvs {recvs}",
                        k.name()
                    );
                    // And each send's destination expects it: destinations
                    // must be valid ranks.
                    for sc in &scheds {
                        for &(d, _) in &sc[s].sends {
                            assert!(d < p);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ep_scales_nearly_linearly_on_now() {
        let t1 = run_now(Kernel::Ep, 1, 3);
        let t4 = run_now(Kernel::Ep, 4, 3);
        let s = t1 / t4;
        assert!((3.3..4.5).contains(&s), "EP speedup at 4 procs: {s:.2}");
    }

    #[test]
    fn cg_speeds_up_on_now() {
        let t1 = run_now(Kernel::Cg, 1, 3);
        let t4 = run_now(Kernel::Cg, 4, 3);
        let s = t1 / t4;
        assert!(s > 2.2, "CG speedup at 4 procs: {s:.2}");
    }

    #[test]
    fn analytic_sp2_trails_analytic_origin() {
        for &k in &[Kernel::Mg, Kernel::Ft, Kernel::Cg] {
            let sp2 = run_analytic(k, 16, &MachineModel::sp2());
            let sp2_1 = run_analytic(k, 1, &MachineModel::sp2());
            let ori = run_analytic(k, 16, &MachineModel::origin2000());
            let ori_1 = run_analytic(k, 1, &MachineModel::origin2000());
            assert!(
                sp2_1 / sp2 < ori_1 / ori,
                "{}: SP-2 speedup should trail Origin",
                k.name()
            );
        }
    }

    #[test]
    fn ft_moves_class_a_volume() {
        // Each FT transpose moves the whole 256x256x128 complex grid
        // (134.2 MB) across ranks: per rank per transpose = total/p.
        for &p in &[4usize, 8] {
            let sched = build_schedule(Kernel::Ft, 0, p);
            let total: u64 = 256 * 256 * 128 * 16;
            // Transpose steps are the ones with (p-1)-destination fanout.
            let mut transposes = 0;
            for st in &sched {
                let dsts: std::collections::HashSet<usize> =
                    st.sends.iter().map(|&(d, _)| d).collect();
                if dsts.len() == p - 1 {
                    let bytes: u64 = st.sends.iter().map(|&(_, b)| b as u64).sum();
                    let expect = total / p as u64 / p as u64 * (p as u64 - 1);
                    let tol = expect / 50 + 8192;
                    assert!(
                        bytes.abs_diff(expect) <= tol,
                        "P={p}: transpose bytes {bytes} vs {expect}"
                    );
                    transposes += 1;
                }
            }
            assert_eq!(transposes, 2 * Kernel::Ft.iters(), "P={p}");
        }
    }

    #[test]
    fn ep_is_almost_communication_free() {
        let sched = build_schedule(Kernel::Ep, 3, 8);
        let total_msgs: usize = sched.iter().map(|s| s.sends.len()).sum();
        assert!(total_msgs <= 3, "EP sends only the final reduction: {total_msgs}");
        let compute: f64 = sched.iter().map(|s| s.compute.as_micros_f64()).sum();
        assert!(compute > 1e6, "EP is compute-dominated");
    }

    #[test]
    fn compute_shrinks_with_p() {
        for &k in &Kernel::ALL {
            let c2 = compute_us(k, 2);
            let c8 = compute_us(k, 8);
            assert!(c8 < c2 / 3.5, "{}: {c2} -> {c8}", k.name());
        }
    }

    #[test]
    fn chunking_respects_mtu() {
        let mut v = Vec::new();
        let n = chunked(3, 20_000, &mut v);
        assert_eq!(n, 3);
        assert_eq!(v.iter().map(|&(_, b)| b as u64).sum::<u64>(), 20_000);
        assert!(v.iter().all(|&(d, b)| d == 3 && b <= 8192));
        let mut v = Vec::new();
        assert_eq!(chunked(0, 0, &mut v), 0);
        assert!(v.is_empty());
    }
}
