//! The §6.3 time-shared parallel application workloads.
//!
//! Multiple parallel programs, each with one process per node, time-share a
//! partition of the cluster. No gang scheduler exists: coordination comes
//! from *implicit co-scheduling* — the spin-block receive in
//! [`crate::bsp::BspRunner`] keeps a process running while its peers are
//! responsive and yields the CPU when they are not.
//!
//! The paper's result: the execution time of multiple time-shared Split-C
//! applications on 16 nodes is within ~15% of running them in sequence,
//! the time spent in communication stays nearly constant, and with load
//! imbalance time-sharing *improves* throughput by up to 20%.

use crate::bsp::{launch_job, BspApp, BspRunner, SuperStep};
use vnet_core::prelude::*;
use vnet_core::{Cluster, ClusterConfig};

/// A synthetic communication-intensive parallel program: per superstep,
/// compute then exchange with both ring neighbours.
pub struct SyntheticApp {
    /// Supersteps to run.
    pub steps: u64,
    /// Mean compute per superstep.
    pub compute: SimDuration,
    /// Message size per neighbour exchange.
    pub bytes: u32,
    /// Per-rank deterministic imbalance: rank r computes
    /// `compute × (1 + imbalance × f(r, step))`, f ∈ [-1, 1].
    pub imbalance: f64,
}

impl BspApp for SyntheticApp {
    fn step(&mut self, rank: usize, n: usize, step: u64) -> Option<SuperStep> {
        if step >= self.steps {
            return None;
        }
        let (l, r) = crate::bsp::patterns::ring(rank, n);
        // Deterministic pseudo-imbalance, phase-shifted per rank so the
        // slow rank rotates (the interesting case for time-sharing).
        let f = (((rank as u64 + step) % n as u64) as f64 / (n.max(2) - 1) as f64) * 2.0 - 1.0;
        let compute = self.compute.mul_f64(1.0 + self.imbalance * f);
        Some(SuperStep {
            compute,
            sends: vec![(l, self.bytes), (r, self.bytes)],
            recv_count: 2,
        })
    }
}

/// Result of a time-sharing experiment.
#[derive(Clone, Debug)]
pub struct TimeshareResult {
    /// Makespan running all apps concurrently (time-shared).
    pub concurrent: SimDuration,
    /// Sum of solo makespans (running them in sequence).
    pub sequential: SimDuration,
    /// Per-app mean CPU time in communication primitives, solo runs.
    pub solo_comm: Vec<SimDuration>,
    /// Per-app mean CPU time in communication primitives, concurrent run.
    pub shared_comm: Vec<SimDuration>,
}

impl TimeshareResult {
    /// concurrent / sequential: ≤ 1.15 reproduces the paper's "within 15%".
    pub fn slowdown(&self) -> f64 {
        self.concurrent.as_secs_f64() / self.sequential.as_secs_f64()
    }
}

fn collect_stats<A: BspApp>(
    c: &Cluster,
    ranks: &[(HostId, Tid, GlobalEp)],
) -> (SimDuration, SimDuration) {
    let mut finish = SimDuration::ZERO;
    let mut comm = SimDuration::ZERO;
    let mut k = 0u32;
    for &(h, t, _) in ranks {
        let st = &c.body::<BspRunner<A>>(h, t).expect("runner done").stats;
        let f = st.finished.unwrap_or_else(|| panic!("rank on {h} unfinished"));
        finish = finish.max(f - SimTime::ZERO);
        comm += st.comm_cpu;
        k += 1;
    }
    (finish, comm / u64::from(k.max(1)))
}

/// Run `napps` copies of `app` on `nodes` nodes: once each solo, then all
/// concurrently time-shared.
pub fn run_timeshare(
    nodes: u32,
    napps: usize,
    make_app: impl Fn(usize) -> SyntheticApp,
    seed: u64,
) -> TimeshareResult {
    let hosts: Vec<HostId> = (0..nodes).map(HostId).collect();

    // Solo runs.
    let mut sequential = SimDuration::ZERO;
    let mut solo_comm = Vec::new();
    for a in 0..napps {
        let mut c = Cluster::new(ClusterConfig::now(nodes).with_seed(seed + a as u64));
        let app = make_app(a);
        let ranks = launch_job(&mut c, &hosts, |_| SyntheticApp { ..copy(&app) });
        c.run_for(SimDuration::from_secs(600));
        let (makespan, comm) = collect_stats::<SyntheticApp>(&c, &ranks);
        sequential += makespan;
        solo_comm.push(comm);
    }

    // Concurrent run: all apps share the nodes.
    let mut c = Cluster::new(ClusterConfig::now(nodes).with_seed(seed ^ 0xBEEF));
    let mut all_ranks = Vec::new();
    for a in 0..napps {
        let app = make_app(a);
        let ranks = launch_job(&mut c, &hosts, |_| SyntheticApp { ..copy(&app) });
        all_ranks.push(ranks);
    }
    c.run_for(SimDuration::from_secs(1200));
    let mut concurrent = SimDuration::ZERO;
    let mut shared_comm = Vec::new();
    for ranks in &all_ranks {
        let (makespan, comm) = collect_stats::<SyntheticApp>(&c, ranks);
        concurrent = concurrent.max(makespan);
        shared_comm.push(comm);
    }
    TimeshareResult { concurrent, sequential, solo_comm, shared_comm }
}

fn copy(a: &SyntheticApp) -> SyntheticApp {
    SyntheticApp { steps: a.steps, compute: a.compute, bytes: a.bytes, imbalance: a.imbalance }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_balanced_apps_within_paper_bound() {
        let r = run_timeshare(
            4,
            2,
            |_| SyntheticApp {
                steps: 40,
                compute: SimDuration::from_micros(800),
                bytes: 512,
                imbalance: 0.0,
            },
            11,
        );
        let s = r.slowdown();
        // Paper: within 15% of running in sequence. Allow a little head
        // room for the smaller scale of the test configuration.
        assert!(s < 1.25, "time-shared slowdown {s:.3}");
        assert!(s > 0.6, "cannot beat sequence this much when balanced: {s:.3}");
    }

    #[test]
    fn imbalance_lets_timesharing_win() {
        let balanced = run_timeshare(
            4,
            2,
            |_| SyntheticApp {
                steps: 30,
                compute: SimDuration::from_micros(1500),
                bytes: 256,
                imbalance: 0.0,
            },
            5,
        )
        .slowdown();
        let imbalanced = run_timeshare(
            4,
            2,
            |_| SyntheticApp {
                steps: 30,
                compute: SimDuration::from_micros(1500),
                bytes: 256,
                imbalance: 0.8,
            },
            5,
        )
        .slowdown();
        // With rotating imbalance, one app's idle phases absorb the
        // other's compute: the concurrent schedule beats the sequence
        // relative to the balanced case.
        assert!(
            imbalanced < balanced + 0.05,
            "imbalance should help time-sharing: {imbalanced:.3} vs {balanced:.3}"
        );
    }

    #[test]
    fn communication_time_stays_bounded() {
        let r = run_timeshare(
            4,
            2,
            |_| SyntheticApp {
                steps: 40,
                compute: SimDuration::from_micros(800),
                bytes: 512,
                imbalance: 0.0,
            },
            11,
        );
        // "The time spent in communication remains nearly constant":
        // CPU time in communication primitives under time-sharing stays
        // within a modest factor of the solo runs (extra polls happen while
        // peers are descheduled, but spin-block bounds them).
        for (solo, shared) in r.solo_comm.iter().zip(&r.shared_comm) {
            let ratio = shared.as_secs_f64() / solo.as_secs_f64();
            assert!(ratio < 2.0, "comm inflated {ratio:.2}x under time-sharing");
            // Shared runs can spend *less* CPU in comm: a descheduled rank
            // finds its messages already queued when it runs again, so it
            // burns fewer empty spin polls than an actively-waiting solo
            // rank.
            assert!(ratio > 0.25, "comm deflated {ratio:.2}x under time-sharing");
        }
    }
}
