//! Protocol-level integration tests for the NIC transport (§5.1–§5.3):
//! exactly-once delivery under faults, NACK semantics, quiescent unload,
//! channel unbinding, hot-swap recovery, and firmware throughput.

use vnet_net::{Fabric, FaultPlan, LinkId, NetConfig, Topology, TopologySpec};
use vnet_nic::testkit::{request, Harness};
use vnet_nic::{
    DriverMsg, DriverOp, EndpointImage, EpId, NicConfig, PollOutcome, ProtectionKey, QueueSel,
};
use vnet_sim::telemetry::MetricSet;
use vnet_sim::SimDuration;

const KEY: ProtectionKey = ProtectionKey(42);

fn two_hosts() -> Harness {
    let mut h = Harness::crossbar(2, NicConfig::virtual_network());
    h.bring_up(0, EpId(0), ProtectionKey(1));
    h.bring_up(1, EpId(0), KEY);
    h
}

fn drain_requests(h: &mut Harness, host: usize, ep: EpId) -> Vec<u64> {
    let mut got = vec![];
    loop {
        match h.poll(host, ep, QueueSel::Request) {
            PollOutcome::Msg(m) => got.push(m.msg.uid),
            PollOutcome::Empty => break,
            PollOutcome::NotResident => break,
        }
        // Keep the pipeline moving: polls free queue slots, which matters
        // for overrun tests.
        h.run_for(SimDuration::from_micros(5));
    }
    got
}

#[test]
fn burst_within_queue_depth_delivered_in_order() {
    let mut h = two_hosts();
    for _ in 0..32 {
        h.post(0, EpId(0), request(1, 0, KEY, 0));
    }
    h.settle();
    let got = drain_requests(&mut h, 1, EpId(0));
    assert_eq!(got.len(), 32);
    let mut sorted = got.clone();
    sorted.sort_unstable();
    assert_eq!(got, sorted, "single-endpoint stream must stay FIFO");
    assert_eq!(h.world.nics[1].stats().counter_value("nacks_tx"), 0);
}

#[test]
fn overrun_draws_queue_full_nacks_then_recovers() {
    let mut h = two_hosts();
    // 64 sends into a 32-deep request queue with no draining: the excess
    // draws RecvQueueFull NACKs and retries.
    for _ in 0..64 {
        h.post(0, EpId(0), request(1, 0, KEY, 0));
    }
    // Let the first burst land and the NACK storm develop.
    h.run_for(SimDuration::from_millis(2));
    assert!(
        h.world.nics[0].stats().counter_value("nacks_rx_queue_full") > 0,
        "expected RecvQueueFull NACKs"
    );
    // Drain while the NIC keeps retrying; everything arrives exactly once.
    let mut got = vec![];
    for _ in 0..200 {
        if let PollOutcome::Msg(m) = h.poll(1, EpId(0), QueueSel::Request) {
            got.push(m.msg.uid);
        }
        h.run_for(SimDuration::from_micros(200));
        if got.len() == 64 {
            break;
        }
    }
    assert_eq!(got.len(), 64, "all messages must eventually deliver");
    let unique: std::collections::HashSet<_> = got.iter().collect();
    assert_eq!(unique.len(), 64, "exactly-once violated");
}

#[test]
fn exactly_once_under_random_drops() {
    let topo = Topology::build(TopologySpec::Crossbar { hosts: 2 });
    let fabric = Fabric::new(NetConfig::default(), topo, FaultPlan::with_errors(11, 0.10, 0.05));
    let mut h = Harness::with_fabric(2, NicConfig::virtual_network(), fabric);
    h.bring_up(0, EpId(0), ProtectionKey(1));
    h.bring_up(1, EpId(0), KEY);
    let n = 100;
    let mut posted = 0;
    let mut got = vec![];
    while posted < n || got.len() < n {
        if posted < n {
            // Stay inside the send queue depth.
            for _ in 0..8.min(n - posted) {
                h.post(0, EpId(0), request(1, 0, KEY, 0));
                posted += 1;
            }
        }
        for _ in 0..64 {
            if let PollOutcome::Msg(m) = h.poll(1, EpId(0), QueueSel::Request) {
                assert!(!m.undeliverable);
                got.push(m.msg.uid);
            }
            h.run_for(SimDuration::from_micros(300));
        }
        if h.now().as_secs_f64() > 30.0 {
            break;
        }
    }
    assert_eq!(got.len(), n, "all messages deliver despite 10% drop / 5% corrupt");
    let unique: std::collections::HashSet<_> = got.iter().collect();
    assert_eq!(unique.len(), n, "no duplicates despite retransmission");
    assert!(h.world.nics[0].stats().counter_value("retransmits") > 0, "drops must force retransmission");
    assert!(h.world.nics[1].stats().counter_value("crc_drops") > 0, "corruption must be seen and dropped");
}

#[test]
fn bad_key_returns_to_sender() {
    let mut h = two_hosts();
    h.post(0, EpId(0), request(1, 0, ProtectionKey(666), 0));
    h.settle();
    // Nothing delivered at the destination.
    assert!(matches!(h.poll(1, EpId(0), QueueSel::Request), PollOutcome::Empty));
    // The sender's reply queue got the message back, marked undeliverable.
    match h.poll(0, EpId(0), QueueSel::Reply) {
        PollOutcome::Msg(m) => assert!(m.undeliverable),
        other => panic!("expected undeliverable return, got {other:?}"),
    }
    assert_eq!(h.world.nics[0].stats().counter_value("nacks_rx_bad_key"), 1);
    assert_eq!(h.world.nics[0].stats().counter_value("returned_to_sender"), 1);
}

#[test]
fn unknown_endpoint_returns_to_sender() {
    let mut h = two_hosts();
    h.post(0, EpId(0), request(1, 9, KEY, 0));
    h.settle();
    match h.poll(0, EpId(0), QueueSel::Reply) {
        PollOutcome::Msg(m) => assert!(m.undeliverable),
        other => panic!("expected undeliverable return, got {other:?}"),
    }
    assert_eq!(h.world.nics[0].stats().counter_value("nacks_rx_no_endpoint"), 1);
}

#[test]
fn non_resident_destination_nacks_and_requests_residency() {
    let mut h = two_hosts();
    // Register (but do not load) a second endpoint on host 1.
    h.driver(1, DriverOp::Register { ep: EpId(1), clock: 0 });
    h.settle();
    h.post(0, EpId(0), request(1, 1, KEY, 0));
    h.run_for(SimDuration::from_micros(500));
    assert!(h.world.nics[0].stats().counter_value("nacks_rx_not_resident") >= 1);
    assert!(
        h.world.driver_mail[1]
            .iter()
            .any(|m| matches!(m, DriverMsg::NeedResident { ep: EpId(1), .. })),
        "receiver NI must ask its driver to make the endpoint resident"
    );
    // The driver obliges; the pending retry then delivers.
    h.driver(
        1,
        DriverOp::Load { ep: EpId(1), image: Box::new(EndpointImage::new(KEY)), clock: 1 },
    );
    h.settle();
    match h.poll(1, EpId(1), QueueSel::Request) {
        PollOutcome::Msg(m) => assert!(!m.undeliverable),
        other => panic!("expected delivery after load, got {other:?}"),
    }
}

#[test]
fn quiescent_unload_preserves_queued_sends() {
    let mut h = two_hosts();
    // Saturate: park many sends, then immediately unload the endpoint.
    for _ in 0..16 {
        h.post(0, EpId(0), request(1, 0, KEY, 0));
    }
    h.driver(0, DriverOp::Unload { ep: EpId(0), clock: 5 });
    h.settle();
    // Unloaded must eventually arrive with an image carrying the unsent
    // descriptors (some messages may have left before the drain began).
    let img = h.world.driver_mail[0]
        .iter()
        .find_map(|m| match m {
            DriverMsg::Unloaded { ep: EpId(0), image, .. } => Some(image.clone()),
            _ => None,
        })
        .expect("unload must complete");
    let sent_before_drain = drain_requests(&mut h, 1, EpId(0)).len();
    assert_eq!(
        sent_before_drain + img.send_q.len(),
        16,
        "every message is either delivered or preserved in the image"
    );
    // Reload: the preserved messages flow.
    h.driver(0, DriverOp::Load { ep: EpId(0), image: img, clock: 6 });
    h.settle();
    let rest = drain_requests(&mut h, 1, EpId(0)).len();
    assert_eq!(sent_before_drain + rest, 16);
}

#[test]
fn bulk_transfer_delivers_payload() {
    let mut h = two_hosts();
    h.post(0, EpId(0), request(1, 0, KEY, 8192));
    h.settle();
    match h.poll(1, EpId(0), QueueSel::Request) {
        PollOutcome::Msg(m) => assert_eq!(m.msg.payload_bytes, 8192),
        other => panic!("expected bulk delivery, got {other:?}"),
    }
    // Both DMA engines moved the payload (plus nothing else here).
    assert!(h.world.nics[0].dma().bytes() >= 8192);
    assert!(h.world.nics[1].dma().bytes() >= 8192);
}

#[test]
fn bulk_stream_approaches_sbus_write_limit() {
    let mut h = two_hosts();
    let n = 50u32;
    // Windowed transfer (the paper's bandwidth microbenchmark shape): keep
    // at most 8 requests outstanding so the 32-deep receive queue never
    // overruns, and drain promptly.
    let window = 8u32;
    let mut delivered = 0;
    let mut posted = 0;
    let t0 = h.now();
    while delivered < n {
        while posted < n && posted - delivered < window {
            assert!(h.try_post(0, EpId(0), request(1, 0, KEY, 8192)));
            posted += 1;
        }
        h.run_for(SimDuration::from_micros(25));
        while let PollOutcome::Msg(_) = h.poll(1, EpId(0), QueueSel::Request) {
            delivered += 1;
        }
        if h.now().as_secs_f64() > 5.0 {
            panic!("bulk stream stalled: {delivered}/{n}");
        }
    }
    let secs = (h.now() - t0).as_secs_f64();
    let mbps = (n as u64 * 8192) as f64 / 1e6 / secs;
    // The paper: 43.9 MB/s delivered against a 46.8 MB/s SBUS write limit.
    assert!(mbps > 38.0 && mbps < 46.8, "delivered {mbps:.1} MB/s");
}

#[test]
fn small_message_gap_matches_calibration() {
    let mut h = two_hosts();
    let n = 400;
    let mut delivered = 0;
    let mut posted = 0;
    let t0 = h.now();
    while delivered < n {
        while posted < n {
            if !h.try_post(0, EpId(0), request(1, 0, KEY, 0)) {
                break;
            }
            posted += 1;
        }
        h.run_for(SimDuration::from_micros(100));
        while let PollOutcome::Msg(_) = h.poll(1, EpId(0), QueueSel::Request) {
            delivered += 1;
        }
        if h.now().as_secs_f64() > 5.0 {
            panic!("stream stalled: {delivered}/{n}");
        }
    }
    let per_msg_us = (h.now() - t0).as_micros_f64() / n as f64;
    // One-way stream without replies: the sender pays send+ack, the
    // receiver recv; the rate-limiting stage is send+ack = 8.4 us.
    assert!(
        per_msg_us > 7.5 && per_msg_us < 10.5,
        "per-message time {per_msg_us:.2} us out of range"
    );
}

#[test]
fn dead_link_unbinds_then_returns_to_sender() {
    let mut h = two_hosts();
    // Kill every path from host 0 (its injection link).
    h.world.fabric.faults_mut().link_down(LinkId(0));
    h.post(0, EpId(0), request(1, 0, KEY, 0));
    h.settle();
    let s = h.world.nics[0].stats();
    assert!(s.counter_value("unbinds") >= 1, "persistent loss must unbind the channel");
    assert_eq!(s.counter_value("returned_to_sender"), 1, "and finally return to sender");
    match h.poll(0, EpId(0), QueueSel::Reply) {
        PollOutcome::Msg(m) => assert!(m.undeliverable),
        other => panic!("expected undeliverable return, got {other:?}"),
    }
}

#[test]
fn hot_swap_recovery_within_retry_budget() {
    let mut h = two_hosts();
    h.world.fabric.faults_mut().link_down(LinkId(0));
    h.post(0, EpId(0), request(1, 0, KEY, 0));
    // Bring the link back while retries are still in budget.
    h.run_for(SimDuration::from_millis(30));
    h.world.fabric.faults_mut().link_up(LinkId(0));
    h.settle();
    match h.poll(1, EpId(0), QueueSel::Request) {
        PollOutcome::Msg(m) => assert!(!m.undeliverable, "message survives the hot swap"),
        other => panic!("expected delivery after link restore, got {other:?}"),
    }
    assert_eq!(h.world.nics[0].stats().counter_value("returned_to_sender"), 0);
}

#[test]
fn gam_mode_drops_on_overrun() {
    let mut h = Harness::crossbar(2, NicConfig::gam());
    h.bring_up(0, EpId(0), ProtectionKey::OPEN);
    h.bring_up(1, EpId(0), ProtectionKey::OPEN);
    for _ in 0..40 {
        h.post(0, EpId(0), request(1, 0, ProtectionKey::OPEN, 0));
    }
    h.settle();
    let got = drain_requests(&mut h, 1, EpId(0));
    assert_eq!(got.len(), 32, "GAM delivers only what fits the queue");
    assert_eq!(h.world.nics[1].stats().counter_value("gam_overruns"), 8);
    assert_eq!(h.world.nics[0].stats().counter_value("retransmits"), 0, "GAM never retransmits");
}

#[test]
fn wrr_shares_firmware_between_endpoints() {
    // Host 0 hosts two endpoints, each streaming to a different peer.
    let mut h = Harness::crossbar(3, NicConfig::virtual_network());
    h.bring_up(0, EpId(0), ProtectionKey(1));
    h.bring_up(0, EpId(1), ProtectionKey(2));
    h.bring_up(1, EpId(0), KEY);
    h.bring_up(2, EpId(0), KEY);
    let n = 64;
    for _ in 0..n {
        h.post(0, EpId(0), request(1, 0, KEY, 0));
        h.post(0, EpId(1), request(2, 0, KEY, 0));
    }
    // Run long enough for roughly half of the traffic to complete; both
    // destinations should have progressed comparably (WRR fairness).
    h.run_for(SimDuration::from_micros(600));
    let d1 = drain_requests(&mut h, 1, EpId(0)).len() as i64;
    let d2 = drain_requests(&mut h, 2, EpId(0)).len() as i64;
    assert!(d1 > 0 && d2 > 0);
    assert!((d1 - d2).abs() <= 8, "unfair service: {d1} vs {d2}");
}

#[test]
fn timestamps_give_rtt_samples() {
    let mut h = two_hosts();
    for _ in 0..10 {
        h.post(0, EpId(0), request(1, 0, KEY, 0));
        h.settle();
    }
    let stats = h.world.nics[0].stats();
    assert_eq!(stats.rtt_us().count(), 10, "each ack reflects a timestamp");
}

#[test]
fn bulk_exactly_once_under_drops() {
    // The staging path has its own duplicate hazard: a retransmitted copy
    // arriving while the first is still staging through the SBUS must not
    // deposit twice.
    let topo = Topology::build(TopologySpec::Crossbar { hosts: 2 });
    let fabric = Fabric::new(NetConfig::default(), topo, FaultPlan::with_errors(5, 0.15, 0.0));
    let mut h = Harness::with_fabric(2, NicConfig::virtual_network(), fabric);
    h.bring_up(0, EpId(0), ProtectionKey(1));
    h.bring_up(1, EpId(0), KEY);
    let n = 30;
    let mut posted = 0u32;
    let mut got = vec![];
    while got.len() < n {
        while posted < n as u32 && posted as usize - got.len() < 6 {
            if !h.try_post(0, EpId(0), request(1, 0, KEY, 8192)) {
                break;
            }
            posted += 1;
        }
        h.run_for(SimDuration::from_micros(100));
        while let PollOutcome::Msg(m) = h.poll(1, EpId(0), QueueSel::Request) {
            got.push(m.msg.uid);
        }
        if h.now().as_secs_f64() > 30.0 {
            break;
        }
    }
    assert_eq!(got.len(), n, "every bulk message delivers");
    let unique: std::collections::HashSet<_> = got.iter().collect();
    assert_eq!(unique.len(), n, "bulk exactly-once violated");
}
