//! Tests for the §8 "future work" transport extensions: adaptive
//! retransmission timeouts and coalesced (piggybacked) acknowledgments.

use vnet_net::LinkId;
use vnet_nic::testkit::{request, Harness};
use vnet_nic::{EpId, NicConfig, PollOutcome, ProtectionKey, QueueSel};
use vnet_sim::telemetry::MetricSet;
use vnet_sim::SimDuration;

const KEY: ProtectionKey = ProtectionKey(42);

fn run_incast_sized(cfg: NicConfig, senders: u32, msgs_each: u32, bytes: u32) -> Harness {
    let mut h = Harness::crossbar(senders + 1, cfg);
    for s in 0..senders {
        h.bring_up(s as usize, EpId(0), ProtectionKey(1));
    }
    h.bring_up(senders as usize, EpId(0), KEY);
    let mut posted = vec![0u32; senders as usize];
    let mut delivered = 0;
    while delivered < senders * msgs_each {
        for (s, p) in posted.iter_mut().enumerate() {
            while *p < msgs_each {
                if !h.try_post(s, EpId(0), request(senders, 0, KEY, bytes)) {
                    break;
                }
                *p += 1;
            }
        }
        h.run_for(SimDuration::from_micros(500));
        while let PollOutcome::Msg(_) = h.poll(senders as usize, EpId(0), QueueSel::Request) {
            delivered += 1;
        }
        assert!(h.now().as_secs_f64() < 30.0, "incast stalled at {delivered}");
    }
    h.settle();
    h
}

fn run_incast(cfg: NicConfig, senders: u32, msgs_each: u32) -> Harness {
    run_incast_sized(cfg, senders, msgs_each, 0)
}

#[test]
fn adaptive_rto_cuts_spurious_retransmissions() {
    // Bulk incast against an NI with a deep staging pipeline (16 buffers):
    // queued 8 KB deposits make ack latency exceed the fixed timeout and
    // its size slack, so the fixed-RTO firmware retransmits spuriously;
    // the adaptive estimator learns the congested round trip. (The default
    // 4-buffer staging keeps ack latency under the fixed slack, which is
    // itself the self-regulation the paper's NACK path provides.)
    let mut base = NicConfig::virtual_network();
    base.recv_staging_bufs = 16;
    let fixed = run_incast_sized(base.clone(), 6, 40, 8192);
    let mut cfg = base;
    cfg.adaptive_rto = true;
    let adaptive = run_incast_sized(cfg, 6, 40, 8192);
    let retx_fixed: u64 =
        (0..6).map(|s| fixed.world.nics[s].stats().counter_value("retransmits")).sum();
    let retx_adaptive: u64 =
        (0..6).map(|s| adaptive.world.nics[s].stats().counter_value("retransmits")).sum();
    assert!(
        retx_fixed > 20,
        "workload must congest the fixed-RTO firmware: {retx_fixed}"
    );
    assert!(
        retx_adaptive * 2 < retx_fixed,
        "adaptive RTO should at least halve spurious retransmissions: {retx_adaptive} vs {retx_fixed}"
    );
}

#[test]
fn adaptive_rto_preserves_exactly_once() {
    let mut cfg = NicConfig::virtual_network();
    cfg.adaptive_rto = true;
    let h = run_incast(cfg, 4, 100);
    // run_incast already asserts full delivery; verify no duplicates
    // slipped through the dedup window either.
    let receiver = h.world.nics[4].stats();
    assert_eq!(receiver.counter_value("deposits"), 400);
}

#[test]
fn coalesced_acks_reduce_ack_frames() {
    let plain = run_incast(NicConfig::virtual_network(), 1, 300);
    let mut cfg = NicConfig::virtual_network();
    cfg.ack_coalesce = Some(SimDuration::from_micros(30));
    let coal = run_incast(cfg, 1, 300);
    // Count frames on the receiver's injection link (link id = receiver
    // index on a crossbar): acks + batches flow back to the sender.
    let plain_frames = plain.world.fabric.link_stats(LinkId(1)).packets;
    let coal_frames = coal.world.fabric.link_stats(LinkId(1)).packets;
    assert!(
        coal_frames * 2 < plain_frames,
        "coalescing should at least halve reverse-path frames: {coal_frames} vs {plain_frames}"
    );
}

#[test]
fn coalesced_acks_preserve_delivery_and_credits() {
    let mut cfg = NicConfig::virtual_network();
    cfg.ack_coalesce = Some(SimDuration::from_micros(30));
    let h = run_incast(cfg, 3, 150);
    for s in 0..3 {
        let st = h.world.nics[s].stats();
        // Every data frame eventually completed (acks recovered through
        // batches; channel accounting must balance).
        assert_eq!(st.counter_value("returned_to_sender"), 0);
    }
    assert_eq!(h.world.nics[3].stats().counter_value("deposits"), 450);
}

#[test]
fn lone_ack_flushes_within_window() {
    // A single message must still be acknowledged promptly: the window
    // timer flushes a buffer of one.
    let mut cfg = NicConfig::virtual_network();
    cfg.ack_coalesce = Some(SimDuration::from_micros(50));
    let mut h = Harness::crossbar(2, cfg);
    h.bring_up(0, EpId(0), ProtectionKey(1));
    h.bring_up(1, EpId(0), KEY);
    h.post(0, EpId(0), request(1, 0, KEY, 0));
    h.settle();
    assert_eq!(h.world.nics[0].stats().counter_value("acks_rx"), 1);
    assert_eq!(h.world.nics[0].stats().counter_value("retransmits"), 0, "flush beat the RTO");
}

#[test]
fn adaptive_rto_learns_congested_rtt() {
    let mut cfg = NicConfig::virtual_network();
    cfg.adaptive_rto = true;
    let h = run_incast(cfg, 6, 100);
    // The estimator must have samples for the receiver peer and the
    // resulting RTT distribution should include congested samples well
    // above the uncontended round trip.
    let mut rtt = h.world.nics[0].stats().rtt_us();
    assert!(rtt.count() > 10);
    assert!(rtt.quantile(0.9) > 20.0, "congested RTTs: p90={}", rtt.quantile(0.9));
}
