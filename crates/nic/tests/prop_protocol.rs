//! Property tests for the NIC protocol machinery: stop-and-wait channel
//! invariants under arbitrary operation sequences, WRR non-starvation, and
//! end-to-end exactly-once delivery under randomized loss.

use proptest::prelude::*;
use vnet_net::{Fabric, FaultPlan, HostId, NetConfig, Topology, TopologySpec};
use vnet_nic::channel::{ChannelState, InFlight};
use vnet_nic::sched::WrrScheduler;
use vnet_nic::testkit::{request, Harness};
use vnet_nic::{
    EpId, Frame, FrameKind, GlobalEp, NicConfig, PollOutcome, ProtectionKey, QueueSel, UserMsg,
};
use vnet_sim::{SimDuration, SimTime};

fn inflight(uid: u64) -> InFlight {
    InFlight {
        uid,
        src_ep: EpId(0),
        frame: Frame {
            kind: FrameKind::Data(UserMsg {
                uid,
                is_request: true,
                handler: 0,
                args: [0; 4],
                payload_bytes: 0,
                src_ep: GlobalEp::new(HostId(0), EpId(0)),
                reply_key: ProtectionKey::OPEN,
                corr: 0,
            }),
            dst_ep: EpId(0),
            key: ProtectionKey::OPEN,
            chan: 0,
            seq: 0,
            ack_uid: 0,
            timestamp: 0,
        },
        bytes: 48,
        last_tx: SimTime::ZERO,
        retx: 0,
        gen: 0,
    }
}

#[derive(Clone, Copy, Debug)]
enum ChanOp {
    Bind(u64),
    Ack(u64),
    Retransmit,
    Unbind,
}

fn chan_op() -> impl Strategy<Value = ChanOp> {
    prop_oneof![
        (0u64..8).prop_map(ChanOp::Bind),
        (0u64..8).prop_map(ChanOp::Ack),
        Just(ChanOp::Retransmit),
        Just(ChanOp::Unbind),
    ]
}

proptest! {
    /// Arbitrary legal op sequences keep the stop-and-wait invariants:
    /// sequence numbers strictly increase per binding, the generation
    /// counter is monotone, and at most one frame is in flight.
    #[test]
    fn channel_state_machine(ops in prop::collection::vec(chan_op(), 0..200)) {
        let rto = SimDuration::from_micros(100);
        let rto_max = SimDuration::from_millis(8);
        let mut c = ChannelState::new(rto);
        let mut last_seq: Option<u64> = None;
        let mut last_gen = 0u64;
        for op in ops {
            match op {
                ChanOp::Bind(uid) => {
                    if c.is_free() {
                        let seq = c.bind(inflight(uid));
                        if let Some(prev) = last_seq {
                            prop_assert!(seq > prev, "sequence must increase");
                        }
                        last_seq = Some(seq);
                    }
                }
                ChanOp::Ack(uid) => {
                    let was_busy = c.in_flight.is_some();
                    let done = c.complete(uid, rto);
                    if done.is_some() {
                        prop_assert!(was_busy);
                        prop_assert_eq!(done.unwrap().uid, uid);
                        prop_assert_eq!(c.rto, rto, "ack resets backoff");
                    }
                }
                ChanOp::Retransmit => {
                    if c.in_flight.is_some() {
                        c.on_retransmit(rto_max);
                        prop_assert!(c.rto <= rto_max, "backoff is capped");
                    }
                }
                ChanOp::Unbind => {
                    let _ = c.unbind(rto);
                    prop_assert!(c.in_flight.is_none());
                }
            }
            prop_assert!(c.gen >= last_gen, "generation must be monotone");
            last_gen = c.gen;
        }
    }

    /// WRR never starves a frame with persistent work: over any work
    /// pattern, every busy frame is selected within (frames x budget)
    /// selections.
    #[test]
    fn wrr_no_starvation(busy in prop::collection::vec(any::<bool>(), 2..32)) {
        prop_assume!(busy.iter().any(|&b| b));
        let n = busy.len();
        let mut s = WrrScheduler::with_bounds(n, 4, SimDuration::from_secs(1));
        let mut hits = vec![0u32; n];
        for _ in 0..n as u32 * 4 * 3 {
            if let Some(i) = s.select(SimTime::ZERO, |i| busy[i]) {
                s.served();
                hits[i] += 1;
            }
        }
        for (i, &b) in busy.iter().enumerate() {
            if b {
                prop_assert!(hits[i] > 0, "frame {} starved: {:?}", i, hits);
            } else {
                prop_assert_eq!(hits[i], 0, "idle frame {} serviced", i);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// End-to-end exactly-once: arbitrary loss/corruption rates and message
    /// counts deliver every message exactly once.
    #[test]
    fn exactly_once_under_arbitrary_loss(
        seed in any::<u64>(),
        drop in 0.0f64..0.25,
        corrupt in 0.0f64..0.15,
        n in 5usize..40,
    ) {
        let topo = Topology::build(TopologySpec::Crossbar { hosts: 2 });
        let fabric =
            Fabric::new(NetConfig::default(), topo, FaultPlan::with_errors(seed, drop, corrupt));
        let mut h = Harness::with_fabric(2, NicConfig::virtual_network(), fabric);
        let key = ProtectionKey(9);
        h.bring_up(0, EpId(0), ProtectionKey(1));
        h.bring_up(1, EpId(0), key);
        let mut posted = 0usize;
        let mut got = Vec::new();
        while got.len() < n {
            while posted < n && posted - got.len() < 8 {
                if !h.try_post(0, EpId(0), request(1, 0, key, 0)) {
                    break;
                }
                posted += 1;
            }
            h.run_for(SimDuration::from_micros(400));
            while let PollOutcome::Msg(m) = h.poll(1, EpId(0), QueueSel::Request) {
                got.push(m.msg.uid);
            }
            if h.now().as_secs_f64() > 60.0 {
                break;
            }
        }
        prop_assert_eq!(got.len(), n, "all messages deliver (drop={} corrupt={})", drop, corrupt);
        let unique: std::collections::HashSet<_> = got.iter().collect();
        prop_assert_eq!(unique.len(), n, "duplicate delivery detected");
    }
}
