//! Property tests for the NIC protocol machinery: stop-and-wait channel
//! invariants under randomized operation sequences, WRR non-starvation, and
//! end-to-end exactly-once delivery under randomized loss.
//!
//! Cases are generated from [`SimRng`] seeds rather than an external
//! property-testing crate, so the suite builds offline.

use vnet_net::{Fabric, FaultPlan, HostId, NetConfig, Topology, TopologySpec};
use vnet_nic::channel::{ChannelState, InFlight};
use vnet_nic::sched::WrrScheduler;
use vnet_nic::testkit::{request, Harness};
use vnet_nic::{
    EpId, Frame, FrameKind, GlobalEp, NicConfig, PollOutcome, ProtectionKey, QueueSel, UserMsg,
};
use vnet_sim::{SimDuration, SimRng, SimTime};

fn inflight(uid: u64) -> InFlight {
    InFlight {
        uid,
        src_ep: EpId(0),
        frame: Frame {
            kind: FrameKind::Data(std::sync::Arc::new(UserMsg {
                uid,
                is_request: true,
                handler: 0,
                args: [0; 4],
                payload_bytes: 0,
                src_ep: GlobalEp::new(HostId(0), EpId(0)),
                reply_key: ProtectionKey::OPEN,
                corr: 0,
            })),
            dst_ep: EpId(0),
            key: ProtectionKey::OPEN,
            chan: 0,
            seq: 0,
            ack_uid: 0,
            timestamp: 0,
        },
        bytes: 48,
        last_tx: SimTime::ZERO,
        retx: 0,
        gen: 0,
    }
}

#[derive(Clone, Copy, Debug)]
enum ChanOp {
    Bind(u64),
    Ack(u64),
    Retransmit,
    Unbind,
}

fn random_op(rng: &mut SimRng) -> ChanOp {
    match rng.below(4) {
        0 => ChanOp::Bind(rng.below(8)),
        1 => ChanOp::Ack(rng.below(8)),
        2 => ChanOp::Retransmit,
        _ => ChanOp::Unbind,
    }
}

/// Randomized legal op sequences keep the stop-and-wait invariants:
/// sequence numbers strictly increase per binding, the generation
/// counter is monotone, and at most one frame is in flight.
#[test]
fn channel_state_machine() {
    for case in 0..256u64 {
        let mut rng = SimRng::seed_from_u64(0xC4A7 + case);
        let n_ops = rng.index(200);
        let rto = SimDuration::from_micros(100);
        let rto_max = SimDuration::from_millis(8);
        let mut c = ChannelState::new(rto);
        let mut last_seq: Option<u64> = None;
        let mut last_gen = 0u64;
        for _ in 0..n_ops {
            let op = random_op(&mut rng);
            match op {
                ChanOp::Bind(uid) => {
                    if c.is_free() {
                        let seq = c.bind(inflight(uid));
                        if let Some(prev) = last_seq {
                            assert!(seq > prev, "case {case}: sequence must increase");
                        }
                        last_seq = Some(seq);
                    }
                }
                ChanOp::Ack(uid) => {
                    let was_busy = c.in_flight.is_some();
                    let done = c.complete(uid, rto);
                    if let Some(done) = done {
                        assert!(was_busy, "case {case}");
                        assert_eq!(done.uid, uid, "case {case}");
                        assert_eq!(c.rto, rto, "case {case}: ack resets backoff");
                    }
                }
                ChanOp::Retransmit => {
                    if c.in_flight.is_some() {
                        c.on_retransmit(rto_max);
                        assert!(c.rto <= rto_max, "case {case}: backoff is capped");
                    }
                }
                ChanOp::Unbind => {
                    let _ = c.unbind(rto);
                    assert!(c.in_flight.is_none(), "case {case}");
                }
            }
            assert!(c.gen >= last_gen, "case {case}: generation must be monotone");
            last_gen = c.gen;
        }
    }
}

/// WRR never starves a frame with persistent work: over any work
/// pattern, every busy frame is selected within (frames x budget)
/// selections.
#[test]
fn wrr_no_starvation() {
    for case in 0..256u64 {
        let mut rng = SimRng::seed_from_u64(0x3A2 + case);
        let n = 2 + rng.index(30);
        let busy: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        if !busy.iter().any(|&b| b) {
            continue;
        }
        let mut s = WrrScheduler::with_bounds(n, 4, SimDuration::from_secs(1));
        let mut hits = vec![0u32; n];
        for _ in 0..n as u32 * 4 * 3 {
            if let Some(i) = s.select(SimTime::ZERO, |i| busy[i]) {
                s.served();
                hits[i] += 1;
            }
        }
        for (i, &b) in busy.iter().enumerate() {
            if b {
                assert!(hits[i] > 0, "case {case}: frame {i} starved: {hits:?}");
            } else {
                assert_eq!(hits[i], 0, "case {case}: idle frame {i} serviced");
            }
        }
    }
}

/// End-to-end exactly-once: randomized loss/corruption rates and message
/// counts deliver every message exactly once.
#[test]
fn exactly_once_under_arbitrary_loss() {
    for case in 0..8u64 {
        let mut rng = SimRng::seed_from_u64(0x10E5 + case);
        let seed = rng.below(u64::MAX);
        let drop = rng.unit() * 0.25;
        let corrupt = rng.unit() * 0.15;
        let n = 5 + rng.index(35);

        let topo = Topology::build(TopologySpec::Crossbar { hosts: 2 });
        let fabric =
            Fabric::new(NetConfig::default(), topo, FaultPlan::with_errors(seed, drop, corrupt));
        let mut h = Harness::with_fabric(2, NicConfig::virtual_network(), fabric);
        let key = ProtectionKey(9);
        h.bring_up(0, EpId(0), ProtectionKey(1));
        h.bring_up(1, EpId(0), key);
        let mut posted = 0usize;
        let mut got = Vec::new();
        while got.len() < n {
            while posted < n && posted - got.len() < 8 {
                if !h.try_post(0, EpId(0), request(1, 0, key, 0)) {
                    break;
                }
                posted += 1;
            }
            h.run_for(SimDuration::from_micros(400));
            while let PollOutcome::Msg(m) = h.poll(1, EpId(0), QueueSel::Request) {
                got.push(m.msg.uid);
            }
            if h.now().as_secs_f64() > 60.0 {
                break;
            }
        }
        assert_eq!(got.len(), n, "case {case}: all messages deliver (drop={drop} corrupt={corrupt})");
        let unique: std::collections::HashSet<_> = got.iter().collect();
        assert_eq!(unique.len(), n, "case {case}: duplicate delivery detected");
    }
}
