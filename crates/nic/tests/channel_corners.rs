//! Channel-protocol corner cases (§5.1): sequence resynchronization after
//! a forced unbind, and reserved-channel release when a staged bulk DMA is
//! aborted by endpoint teardown.

use vnet_sim::telemetry::MetricSet;
use vnet_nic::channel::{ChannelState, InFlight, RxChannel, SeqClass};
use vnet_nic::testkit::{request, Harness};
use vnet_nic::{
    DriverOp, EpId, Frame, FrameKind, GlobalEp, NicConfig, PollOutcome, ProtectionKey, QueueSel,
    UserMsg,
};
use vnet_net::{Fabric, FaultPlan, HostId, NetConfig, Topology, TopologySpec};
use vnet_sim::{SimDuration, SimTime};

const RTO: SimDuration = SimDuration::from_micros(100);
const RTO_MAX: SimDuration = SimDuration::from_millis(8);

fn inflight(uid: u64) -> InFlight {
    let msg = UserMsg {
        uid,
        is_request: true,
        handler: 0,
        args: [0; 4],
        payload_bytes: 0,
        src_ep: GlobalEp::new(HostId(0), EpId(0)),
        reply_key: ProtectionKey::OPEN,
        corr: 0,
    };
    InFlight {
        uid,
        src_ep: EpId(0),
        frame: Frame {
            kind: FrameKind::Data(std::sync::Arc::new(msg)),
            dst_ep: EpId(0),
            key: ProtectionKey::OPEN,
            chan: 0,
            seq: 0,
            ack_uid: 0,
            timestamp: 0,
        },
        bytes: 48,
        last_tx: SimTime::ZERO,
        retx: 0,
        gen: 0,
    }
}

/// The §5.1 unbind/reacquire cycle consumes sequence numbers the receiver
/// never sees; the receiver must adopt the gap (`Resync`) instead of
/// wedging, and in-order flow must resume afterwards.
#[test]
fn rx_resyncs_after_sender_unbind() {
    let mut tx = ChannelState::new(RTO);
    let mut rx = RxChannel::default();

    // uid 1 binds at seq 0, every copy is lost, and after the retransmit
    // budget the NI unbinds it so the channel can serve other traffic.
    let s0 = tx.bind(inflight(1));
    assert_eq!(s0, 0);
    for _ in 0..3 {
        tx.on_retransmit(RTO_MAX);
    }
    let evicted = tx.unbind(RTO).expect("uid 1 was bound");
    assert_eq!(evicted.uid, 1);
    assert!(tx.is_free());

    // uid 2 takes the channel at seq 1. The receiver — who never saw
    // seq 0 — must resynchronize, not drop the frame as out of order.
    let s1 = tx.bind(inflight(2));
    assert_eq!(s1, 1);
    assert_eq!(rx.accept(s1), SeqClass::Resync);

    // uid 1 reacquires after uid 2 completes; plain in-order flow resumes.
    assert!(tx.complete(2, RTO).is_some());
    let s2 = tx.bind(inflight(1));
    assert_eq!(s2, 2);
    assert_eq!(rx.accept(s2), SeqClass::InOrder);
    // A late duplicate of uid 2's frame is still recognized as such.
    assert_eq!(rx.accept(s1), SeqClass::Duplicate);
}

/// End-to-end over a lossy fabric: unbind cycles happen (the retransmit
/// budget is 1), yet every message is delivered exactly once — the
/// receiver-side resync plus uid dedup absorb the churn.
#[test]
fn lossy_link_with_unbinds_delivers_exactly_once() {
    let mut cfg = NicConfig::virtual_network();
    cfg.max_retx_before_unbind = 1; // unbind aggressively
    cfg.channels_per_peer = 2;
    let fabric = Fabric::new(
        NetConfig::default(),
        Topology::build(TopologySpec::Crossbar { hosts: 2 }),
        FaultPlan::with_errors(42, 0.4, 0.0),
    );
    let mut h = Harness::with_fabric(2, cfg, fabric);
    let key = ProtectionKey(9);
    h.bring_up(0, EpId(0), ProtectionKey(1));
    h.bring_up(1, EpId(0), key);

    const N: u64 = 12;
    for _ in 0..N {
        h.post(0, EpId(0), request(1, 0, key, 0));
        h.run_for(SimDuration::from_micros(50));
    }
    h.settle();

    let mut delivered = 0u64;
    while let PollOutcome::Msg(m) = h.poll(1, EpId(0), QueueSel::Request) {
        assert!(!m.undeliverable);
        delivered += 1;
    }
    assert_eq!(delivered, N, "every message exactly once despite 40% loss");
    assert!(
        h.world.nics[0].stats().counter_value("unbinds") > 0,
        "the aggressive retransmit budget must have forced unbind cycles"
    );
    assert_eq!(h.world.nics[0].busy_channel_count(), 0, "all channels drained");
}

/// Unregistering an endpoint while one of its bulk sends is still staging
/// over the SBUS must release the reserved channel; the late DMA
/// completion is a no-op and the lane is immediately reusable by another
/// endpoint.
#[test]
fn unregister_mid_staging_releases_reserved_channel() {
    let mut cfg = NicConfig::virtual_network();
    cfg.channels_per_peer = 1; // a leaked reservation would wedge the lane
    let mut h = Harness::crossbar(2, cfg);
    let key = ProtectionKey(9);
    h.bring_up(0, EpId(0), ProtectionKey(1));
    h.bring_up(0, EpId(1), ProtectionKey(2));
    h.bring_up(1, EpId(0), key);

    // Bulk payload (over pio_threshold) → the firmware reserves the only
    // channel to host 1 and starts an SBUS DMA (~130 µs for 8 KB).
    h.post(0, EpId(0), request(1, 0, key, 8 * 1024));
    h.run_for(SimDuration::from_micros(40));
    assert_eq!(h.world.nics[0].staging_count(), 1, "bulk send must be mid-staging");
    assert_eq!(h.world.nics[0].busy_channel_count(), 1, "channel reserved during DMA");

    // Teardown races the DMA: the reservation must not leak. The driver op
    // goes through the firmware inbox, so give it a few microseconds of
    // processing time — still well short of the ~130 µs DMA completion.
    h.driver(0, DriverOp::Unregister { ep: EpId(0), clock: 1 });
    h.run_for(SimDuration::from_micros(30));
    assert_eq!(h.world.nics[0].staging_count(), 0, "staging entry aborted");
    assert_eq!(h.world.nics[0].busy_channel_count(), 0, "reservation released");

    // The lane is reusable right away: a send from the surviving endpoint
    // goes through even though the aborted DMA completion is still queued.
    h.post(0, EpId(1), request(1, 0, key, 0));
    h.settle();
    match h.poll(1, EpId(0), QueueSel::Request) {
        PollOutcome::Msg(m) => assert!(!m.undeliverable),
        other => panic!("expected delivery on the reused channel, got {other:?}"),
    }
    assert_eq!(h.world.nics[0].busy_channel_count(), 0);
}
