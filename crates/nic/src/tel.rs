//! Pre-resolved telemetry wiring for one NIC.
//!
//! The firmware holds an `Option<NicTelemetry>`; when detached (the
//! default) every hook is a `None` check and the hot path pays nothing —
//! the same gating discipline as the invariant auditor. When attached,
//! counters are pre-resolved [`CounterHandle`]s (one `Cell` bump per
//! event, no registry lookup, no `RefCell` borrow) and protocol episodes
//! become spans on per-layer Perfetto tracks:
//!
//! * `nic.chan` — retransmission episodes (first retransmit → ack or
//!   unbind) and park/backoff episodes (transient NACK or post-unbind
//!   wait → rebind or bounce), both async spans keyed so overlapping
//!   episodes render on one track.
//! * `nic.dma` — SBUS DMA transfers (send staging, receive staging,
//!   endpoint load/unload). The engine is serial and deterministic, so
//!   the completion time is known at start and the whole span is
//!   recorded immediately.
//! * `nic.fw` — instantaneous markers: NACKs sent/received (with
//!   reason), unbinds, bounced messages.

use crate::channel::ChannelKey;
use std::collections::HashMap;
use vnet_sim::telemetry::{CounterHandle, SpanDetail, SpanId, TelemetryHandle};
use vnet_sim::SimTime;

/// Perfetto track for channel retransmit/backoff episodes.
pub const TRACK_CHAN: &str = "nic.chan";
/// Perfetto track for SBUS DMA transfers.
pub const TRACK_DMA: &str = "nic.dma";
/// Perfetto track for instantaneous firmware markers.
pub const TRACK_FW: &str = "nic.fw";

/// Pre-resolved per-NIC counter handles, materialized on first touch.
pub(crate) struct NicCounters {
    /// Frames injected into the fabric (data, acks, everything).
    pub(crate) frames_tx: CounterHandle,
    /// Frames handed up from the fabric (before CRC check).
    pub(crate) frames_rx: CounterHandle,
    /// Bytes moved by the SBUS DMA engine.
    pub(crate) dma_bytes: CounterHandle,
}

impl NicCounters {
    fn resolve(host: u32, tel: &TelemetryHandle) -> Self {
        let mut t = tel.borrow_mut();
        NicCounters {
            frames_tx: t.counter(&format!("host{host}.nic.frames_tx")),
            frames_rx: t.counter(&format!("host{host}.nic.frames_rx")),
            dma_bytes: t.counter(&format!("host{host}.nic.dma_bytes")),
        }
    }
}

/// Telemetry state owned by one NIC (see module docs).
pub(crate) struct NicTelemetry {
    tel: TelemetryHandle,
    host: u32,
    /// Counter handles, registered lazily: a fleet-scale cluster attaches
    /// telemetry to thousands of hosts, most of which never move a frame,
    /// and eager registration would allocate three `host{N}.*` name
    /// strings per host at build time. `None` until the first counter
    /// bump.
    counters: Option<NicCounters>,
    /// Open retransmission-episode span per channel; begun at the first
    /// retransmit of a binding, ended on completion or unbind.
    retx_spans: HashMap<ChannelKey, SpanId>,
    /// Open park/backoff span per message uid (transient-NACK backoff or
    /// post-unbind wait), ended when the message rebinds or bounces.
    park_spans: HashMap<u64, SpanId>,
}

impl NicTelemetry {
    pub(crate) fn new(host: u32, tel: TelemetryHandle) -> Self {
        NicTelemetry {
            tel,
            host,
            counters: None,
            retx_spans: HashMap::new(),
            park_spans: HashMap::new(),
        }
    }

    /// The counter handles, registering them on first touch.
    pub(crate) fn counters(&mut self) -> &NicCounters {
        if self.counters.is_none() {
            self.counters = Some(NicCounters::resolve(self.host, &self.tel));
        }
        self.counters.as_ref().expect("just resolved")
    }

    /// Point this wiring at a different registry (a shard's at split, the
    /// main one at absorb), re-resolving any touched counter handles by
    /// name (so `adopt_values` carries their counts across the boundary)
    /// and keeping the open-span maps so episodes spanning a shard
    /// boundary still close with their original ids. Untouched counters
    /// stay lazy — an idle host pays nothing at every split.
    pub(crate) fn rebind(&mut self, tel: TelemetryHandle) {
        if self.counters.is_some() {
            self.counters = Some(NicCounters::resolve(self.host, &tel));
        }
        self.tel = tel;
    }

    /// Record a whole DMA transfer span (`at` → `done`). This is the one
    /// per-message span hook, so the detail is the allocation-free
    /// [`SpanDetail::Bytes`], not a formatted string.
    pub(crate) fn dma_span(&mut self, at: SimTime, done: SimTime, name: &'static str, bytes: u32) {
        self.counters().dma_bytes.add(bytes as u64);
        let mut t = self.tel.borrow_mut();
        let id = t.span_begin(at, self.host, TRACK_DMA, name, SpanDetail::Bytes(bytes));
        t.span_end(done, id);
    }

    /// A channel entered a retransmission episode (idempotent per binding).
    pub(crate) fn retx_begin(&mut self, at: SimTime, key: ChannelKey, uid: u64) {
        if !self.retx_spans.contains_key(&key) {
            let id = self.tel.borrow_mut().span_begin(
                at,
                self.host,
                TRACK_CHAN,
                "retx_episode",
                format!("uid={uid:#x} peer={} lane={}", key.peer.0, key.idx),
            );
            self.retx_spans.insert(key, id);
        }
    }

    /// Close the channel's retransmission episode, if one is open.
    pub(crate) fn retx_end(&mut self, at: SimTime, key: &ChannelKey) {
        if let Some(id) = self.retx_spans.remove(key) {
            self.tel.borrow_mut().span_end(at, id);
        }
    }

    /// A message was parked (NACK backoff or post-unbind wait).
    pub(crate) fn park_begin(&mut self, at: SimTime, uid: u64, name: &'static str, detail: String) {
        let id = self.tel.borrow_mut().span_begin(at, self.host, TRACK_CHAN, name, detail);
        if let Some(stale) = self.park_spans.insert(uid, id) {
            // A uid can only be parked once; close a stale span defensively.
            self.tel.borrow_mut().span_end(at, stale);
        }
    }

    /// The parked message rebound to a channel or bounced.
    pub(crate) fn park_end(&mut self, at: SimTime, uid: u64) {
        if let Some(id) = self.park_spans.remove(&uid) {
            self.tel.borrow_mut().span_end(at, id);
        }
    }

    /// Instantaneous firmware marker on the `nic.fw` track.
    pub(crate) fn instant(&mut self, at: SimTime, name: &'static str, detail: String) {
        self.tel.borrow_mut().instant(at, self.host, TRACK_FW, name, detail);
    }
}
