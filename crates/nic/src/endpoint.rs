//! Endpoint state as it moves between NI frames and host memory.
//!
//! An endpoint's substance — its send queue, receive queues, protection
//! key, event mask — is the [`EndpointImage`]. When resident, the image
//! lives in an NI endpoint frame (this crate holds it); when non-resident
//! it is "like any other cacheable memory page" and the OS holds it. Loads
//! and unloads move the image wholesale (8 KB over the SBUS).

use crate::ids::{GlobalEp, ProtectionKey};
use crate::msg::{DeliveredMsg, UserMsg};
use std::collections::VecDeque;
use std::sync::Arc;
use vnet_sim::SimTime;

/// A send descriptor waiting in an endpoint's send queue (or parked there
/// again after a transient NACK or a channel unbind).
#[derive(Clone, Debug)]
pub struct PendingSend {
    /// Message uid (assigned at post time).
    pub uid: u64,
    /// Destination endpoint.
    pub dst: GlobalEp,
    /// Protection key for the destination.
    pub key: ProtectionKey,
    /// The message (shared with any wire frame currently carrying it).
    pub msg: Arc<UserMsg>,
    /// Earliest time the NI may (re)transmit it — backoff after transient
    /// NACKs and channel unbinds.
    pub not_before: SimTime,
    /// Consecutive transient NACKs drawn (drives the retry backoff).
    pub nacks: u32,
    /// Channel unbind cycles experienced (drives return-to-sender).
    pub unbind_cycles: u32,
}

/// The migratable endpoint state.
#[derive(Clone, Debug)]
pub struct EndpointImage {
    /// Protection key arriving messages must present.
    pub key: ProtectionKey,
    /// Whether message arrival should raise a driver event (§3.3 event
    /// masks; set when threads block on the endpoint).
    pub notify_on_arrival: bool,
    /// Send descriptors (bounded by `send_queue_depth`).
    pub send_q: VecDeque<PendingSend>,
    /// Received requests awaiting the application (bounded, 32).
    pub recv_req: VecDeque<DeliveredMsg>,
    /// Received replies + returned-undeliverable messages (bounded, 32).
    pub recv_rep: VecDeque<DeliveredMsg>,
}

impl EndpointImage {
    /// Fresh image with the given protection key.
    pub fn new(key: ProtectionKey) -> Self {
        EndpointImage {
            key,
            notify_on_arrival: false,
            send_q: VecDeque::new(),
            recv_req: VecDeque::new(),
            recv_rep: VecDeque::new(),
        }
    }

    /// Whether any receive queue holds a message.
    pub fn has_received(&self) -> bool {
        !self.recv_req.is_empty() || !self.recv_rep.is_empty()
    }

    /// Whether there is anything to transmit.
    pub fn has_send_work(&self) -> bool {
        !self.send_q.is_empty()
    }

    /// Whether the head of the send queue is eligible at `now` (its
    /// `not_before` backoff has expired).
    pub fn head_eligible(&self, now: SimTime) -> bool {
        self.send_q.front().map(|p| p.not_before <= now).unwrap_or(false)
    }

    /// Earliest `not_before` of the queue head, if any (for wakeup timers).
    pub fn head_not_before(&self) -> Option<SimTime> {
        self.send_q.front().map(|p| p.not_before)
    }
}

/// State of one NI endpoint frame slot.
#[derive(Clone, Debug)]
pub enum FrameSlot {
    /// Unoccupied.
    Free,
    /// Reserved for `ep` while its image streams in over the SBUS; not yet
    /// serviceable (arrivals still draw NotResident NACKs).
    Loading {
        /// The endpoint index being bound here.
        ep: crate::ids::EpId,
        /// The incoming state (conceptually in transit on the SBUS).
        image: Box<EndpointImage>,
        /// Driver clock of the load request (echoed in the reply).
        clock: u64,
    },
    /// Hosting a resident, serviceable endpoint.
    Active {
        /// The endpoint index bound here.
        ep: crate::ids::EpId,
        /// The endpoint's state.
        image: Box<EndpointImage>,
    },
    /// Being quiesced for unload (§5.3): no new transmissions; in-flight
    /// messages continue retransmitting until acknowledged.
    Draining {
        /// The endpoint index bound here.
        ep: crate::ids::EpId,
        /// The endpoint's state.
        image: Box<EndpointImage>,
        /// Driver clock of the unload request (echoed in the reply).
        clock: u64,
    },
}

impl FrameSlot {
    /// The endpoint bound to this slot in any phase (loading, active, or
    /// draining).
    pub fn occupant(&self) -> Option<crate::ids::EpId> {
        match self {
            FrameSlot::Free => None,
            FrameSlot::Loading { ep, .. }
            | FrameSlot::Active { ep, .. }
            | FrameSlot::Draining { ep, .. } => Some(*ep),
        }
    }

    /// Image access regardless of slot phase.
    pub fn image(&self) -> Option<&EndpointImage> {
        match self {
            FrameSlot::Free => None,
            FrameSlot::Loading { image, .. }
            | FrameSlot::Active { image, .. }
            | FrameSlot::Draining { image, .. } => Some(image),
        }
    }

    /// Mutable image access regardless of slot phase.
    pub fn image_mut(&mut self) -> Option<&mut EndpointImage> {
        match self {
            FrameSlot::Free => None,
            FrameSlot::Loading { image, .. }
            | FrameSlot::Active { image, .. }
            | FrameSlot::Draining { image, .. } => Some(image),
        }
    }

    /// Whether the slot accepts new work (sends, deposits).
    pub fn is_active(&self) -> bool {
        matches!(self, FrameSlot::Active { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EpId;
    use vnet_net::HostId;

    fn ps(uid: u64, not_before: SimTime) -> PendingSend {
        PendingSend {
            uid,
            dst: GlobalEp::new(HostId(1), EpId(0)),
            key: ProtectionKey::OPEN,
            msg: Arc::new(UserMsg {
                uid,
                is_request: true,
                handler: 0,
                args: [0; 4],
                payload_bytes: 0,
                src_ep: GlobalEp::new(HostId(0), EpId(0)),
                reply_key: ProtectionKey::OPEN,
                corr: 0,
            }),
            not_before,
            nacks: 0,
            unbind_cycles: 0,
        }
    }

    #[test]
    fn fresh_image_is_idle() {
        let img = EndpointImage::new(ProtectionKey(9));
        assert!(!img.has_received());
        assert!(!img.has_send_work());
        assert!(!img.head_eligible(SimTime::ZERO));
        assert_eq!(img.head_not_before(), None);
    }

    #[test]
    fn head_eligibility_follows_not_before() {
        let mut img = EndpointImage::new(ProtectionKey::OPEN);
        img.send_q.push_back(ps(1, SimTime::from_nanos(100)));
        assert!(img.has_send_work());
        assert!(!img.head_eligible(SimTime::from_nanos(99)));
        assert!(img.head_eligible(SimTime::from_nanos(100)));
        assert_eq!(img.head_not_before(), Some(SimTime::from_nanos(100)));
    }

    #[test]
    fn slot_phases() {
        let mut slot = FrameSlot::Active {
            ep: EpId(4),
            image: Box::new(EndpointImage::new(ProtectionKey::OPEN)),
        };
        assert!(slot.is_active());
        assert_eq!(slot.occupant(), Some(EpId(4)));
        assert!(slot.image().is_some());
        assert!(slot.image_mut().is_some());
        slot = FrameSlot::Free;
        assert!(!slot.is_active());
        assert_eq!(slot.occupant(), None);
        assert!(slot.image().is_none());
    }
}
