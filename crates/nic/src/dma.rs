//! The SBUS DMA engine.
//!
//! The LANai 4.3 has "a single DMA engine for SBUS transfers" (§2): bulk
//! sends (host→NI), bulk receives (NI→host), and endpoint frame
//! loads/unloads all contend for it. The SBUS is asymmetric (§6.1): writing
//! host memory tops out at 46.8 MB/s — the bottleneck that caps delivered
//! bandwidth at 43.9 MB/s — while reading host memory is faster.
//!
//! The engine is a serial reservation server, like a fabric link: an
//! operation started at `now` begins when the engine frees and lasts
//! `startup + bytes/rate`.

use vnet_sim::{SimDuration, SimTime};

/// Transfer direction, which selects the rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmaDirection {
    /// NI reads host memory (bulk send staging, endpoint frame load).
    ReadHost,
    /// NI writes host memory (bulk receive delivery, endpoint frame unload).
    WriteHost,
}

/// The shared SBUS DMA engine.
#[derive(Clone, Debug)]
pub struct DmaEngine {
    read_mb_s: f64,
    write_mb_s: f64,
    startup: SimDuration,
    busy_until: SimTime,
    ops: u64,
    bytes: u64,
    busy_ns: u64,
}

impl DmaEngine {
    /// Engine with the measured NOW SBUS parameters: 62 MB/s reading host
    /// memory, 46.8 MB/s writing it, ~2 µs per-operation startup.
    pub fn now_sbus() -> Self {
        DmaEngine::new(62.0, 46.8, SimDuration::from_micros(2))
    }

    /// Engine with explicit rates (MB/s) and per-op startup cost.
    pub fn new(read_mb_s: f64, write_mb_s: f64, startup: SimDuration) -> Self {
        assert!(read_mb_s > 0.0 && write_mb_s > 0.0);
        DmaEngine {
            read_mb_s,
            write_mb_s,
            startup,
            busy_until: SimTime::ZERO,
            ops: 0,
            bytes: 0,
            busy_ns: 0,
        }
    }

    /// Peak rate for a direction, MB/s.
    pub fn rate(&self, dir: DmaDirection) -> f64 {
        match dir {
            DmaDirection::ReadHost => self.read_mb_s,
            DmaDirection::WriteHost => self.write_mb_s,
        }
    }

    /// Reserve the engine for a transfer of `bytes` in direction `dir`
    /// starting no earlier than `now`. Returns the delay from `now` until
    /// the transfer completes.
    pub fn start(&mut self, now: SimTime, dir: DmaDirection, bytes: u32) -> SimDuration {
        self.start_with_overhead(now, dir, bytes, SimDuration::ZERO)
    }

    /// Like [`DmaEngine::start`] but with `extra` serial occupancy added to
    /// the reservation — used by the GAM baseline, whose single-buffered
    /// staging cannot overlap the wire-to-SRAM copy with the SBUS transfer
    /// (the store-and-forward penalty of §6.1).
    pub fn start_with_overhead(
        &mut self,
        now: SimTime,
        dir: DmaDirection,
        bytes: u32,
        extra: SimDuration,
    ) -> SimDuration {
        let dur = extra + self.startup + SimDuration::for_bytes(bytes as u64, self.rate(dir));
        let begin = now.max(self.busy_until);
        self.busy_until = begin + dur;
        self.ops += 1;
        self.bytes += bytes as u64;
        self.busy_ns += dur.as_nanos();
        self.busy_until - now
    }

    /// When the engine next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Operations issued.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Fraction of `[0, now]` the engine was busy.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.as_nanos() == 0 {
            0.0
        } else {
            self.busy_ns as f64 / now.as_nanos() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_rate_limits_8k_transfers() {
        let mut e = DmaEngine::now_sbus();
        let d = e.start(SimTime::ZERO, DmaDirection::WriteHost, 8192);
        // 2us startup + 8192B / 46.8MB/s = 2 + 175.04 us.
        assert!((d.as_micros_f64() - 177.04).abs() < 0.1, "{d}");
    }

    #[test]
    fn asymmetric_rates() {
        let mut e = DmaEngine::now_sbus();
        let r = e.start(SimTime::ZERO, DmaDirection::ReadHost, 8192);
        let mut e2 = DmaEngine::now_sbus();
        let w = e2.start(SimTime::ZERO, DmaDirection::WriteHost, 8192);
        assert!(r < w, "reads faster than writes: {r} vs {w}");
    }

    #[test]
    fn serializes_concurrent_ops() {
        let mut e = DmaEngine::new(100.0, 100.0, SimDuration::ZERO);
        let d1 = e.start(SimTime::ZERO, DmaDirection::ReadHost, 1000); // 10us
        let d2 = e.start(SimTime::ZERO, DmaDirection::WriteHost, 1000);
        assert_eq!(d1.as_nanos(), 10_000);
        assert_eq!(d2.as_nanos(), 20_000, "second op queues behind the first");
        assert_eq!(e.ops(), 2);
        assert_eq!(e.bytes(), 2000);
    }

    #[test]
    fn idle_gaps_do_not_accumulate() {
        let mut e = DmaEngine::new(100.0, 100.0, SimDuration::ZERO);
        e.start(SimTime::ZERO, DmaDirection::ReadHost, 1000);
        let later = SimTime::from_nanos(1_000_000);
        let d = e.start(later, DmaDirection::ReadHost, 1000);
        assert_eq!(d.as_nanos(), 10_000);
        assert!((e.utilization(SimTime::from_nanos(1_010_000)) - 0.0198).abs() < 0.001);
    }
}
