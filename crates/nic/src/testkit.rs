//! A minimal world wiring NICs to a fabric, for protocol-level tests.
//!
//! This harness has **no operating system**: driver messages are captured
//! in per-host mailboxes and tests respond by issuing [`DriverOp`]s
//! directly. The full OS behaviour lives in `vnet-os`; the production
//! composition lives in `vnet-core`.

use crate::ids::{EpId, ProtectionKey};
use crate::msg::{DriverMsg, DriverOp, Frame, PollOutcome, QueueSel, SendRequest};
use crate::nic::{Nic, NicEvent, NicOut};
use crate::config::NicConfig;
use crate::endpoint::EndpointImage;
use vnet_net::{Fabric, FaultPlan, HostId, InjectOutcome, NetConfig, Topology, TopologySpec};
use vnet_sim::{Ctx, Engine, SimDuration, SimTime, SimWorld};

/// Events of the test world.
#[derive(Debug)]
pub enum TkEvent {
    /// NIC-internal event for host `0`'s index.
    Nic(usize, NicEvent),
    /// Frame delivery to a host.
    Deliver {
        /// Receiving host index.
        host: usize,
        /// Sending host.
        src: HostId,
        /// The frame.
        frame: Frame,
        /// CRC failure flag.
        corrupt: bool,
    },
}

/// NICs + fabric + captured driver mailboxes.
pub struct TkWorld {
    /// The network.
    pub fabric: Fabric,
    /// One NIC per host.
    pub nics: Vec<Nic>,
    /// Captured driver messages, per host.
    pub driver_mail: Vec<Vec<DriverMsg>>,
}

impl TkWorld {
    /// Apply a NIC's effects, scheduling follow-ups through `ctx`.
    pub fn apply(&mut self, host: usize, outs: Vec<NicOut>, ctx: &mut Ctx<'_, TkEvent>) {
        for o in outs {
            match o {
                NicOut::After(d, ev) => {
                    ctx.schedule(d, TkEvent::Nic(host, ev));
                }
                NicOut::Inject(pkt) => match self.fabric.inject(ctx.now(), pkt) {
                    InjectOutcome::Delivered { delay, corrupt, pkt } => {
                        ctx.schedule(
                            delay,
                            TkEvent::Deliver {
                                host: pkt.dst.idx(),
                                src: pkt.src,
                                frame: pkt.payload,
                                corrupt,
                            },
                        );
                    }
                    InjectOutcome::Dropped { .. } => {}
                },
                NicOut::Driver(m) => self.driver_mail[host].push(m),
            }
        }
    }
}

impl SimWorld for TkWorld {
    type Event = TkEvent;

    fn handle(&mut self, ev: TkEvent, ctx: &mut Ctx<'_, TkEvent>) {
        let mut outs = Vec::new();
        match ev {
            TkEvent::Nic(h, ev) => {
                self.nics[h].on_event(ctx.now(), ev, &mut outs);
                self.apply(h, outs, ctx);
            }
            TkEvent::Deliver { host, src, frame, corrupt } => {
                self.nics[host].on_packet(ctx.now(), src, frame, corrupt, &mut outs);
                self.apply(host, outs, ctx);
            }
        }
    }
}

/// Engine + world + helpers.
pub struct Harness {
    /// The event engine.
    pub engine: Engine<TkWorld>,
    /// The world.
    pub world: TkWorld,
}

impl Harness {
    /// `n` hosts on a crossbar with per-host NIC config from `cfg`.
    pub fn crossbar(n: u32, cfg: NicConfig) -> Self {
        Self::with_fabric(
            n,
            cfg,
            Fabric::new(
                NetConfig::default(),
                Topology::build(TopologySpec::Crossbar { hosts: n }),
                FaultPlan::none(7),
            ),
        )
    }

    /// Build over an explicit fabric.
    pub fn with_fabric(n: u32, cfg: NicConfig, fabric: Fabric) -> Self {
        let nics =
            (0..n).map(|i| Nic::new(HostId(i), cfg.clone(), 0xC0FFEE + i as u64)).collect();
        Harness {
            engine: Engine::new(),
            world: TkWorld { fabric, nics, driver_mail: vec![Vec::new(); n as usize] },
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Register + load endpoint `ep` on `host` with `key`, then settle.
    pub fn bring_up(&mut self, host: usize, ep: EpId, key: ProtectionKey) {
        let clock = 0;
        self.driver(host, DriverOp::Register { ep, clock });
        self.driver(
            host,
            DriverOp::Load { ep, image: Box::new(EndpointImage::new(key)), clock },
        );
        self.settle();
    }

    /// Issue a driver op at the current time.
    pub fn driver(&mut self, host: usize, op: DriverOp) {
        let mut outs = Vec::new();
        let now = self.engine.now();
        self.world.nics[host].driver_request(now, op, &mut outs);
        self.drain(host, outs);
    }

    /// Post a send at the current time (panics on post errors).
    pub fn post(&mut self, host: usize, ep: EpId, req: SendRequest) -> u64 {
        let mut outs = Vec::new();
        let now = self.engine.now();
        let uid = self.world.nics[host].post_send(now, ep, req, &mut outs).expect("post failed");
        self.drain(host, outs);
        uid
    }

    /// Post a send, returning false instead of panicking when the endpoint
    /// is not resident or its send queue is full. Effects are applied.
    pub fn try_post(&mut self, host: usize, ep: EpId, req: SendRequest) -> bool {
        let mut outs = Vec::new();
        let now = self.engine.now();
        let ok = self.world.nics[host].post_send(now, ep, req, &mut outs).is_ok();
        self.drain(host, outs);
        ok
    }

    /// Poll a receive queue at the current time.
    pub fn poll(&mut self, host: usize, ep: EpId, q: QueueSel) -> PollOutcome {
        let now = self.engine.now();
        self.world.nics[host].poll_recv(now, ep, q)
    }

    fn drain(&mut self, host: usize, outs: Vec<NicOut>) {
        // Effects issued outside a handler are applied through the engine's
        // scheduling interface directly.
        for o in outs {
            match o {
                NicOut::After(d, ev) => {
                    self.engine.schedule(d, TkEvent::Nic(host, ev));
                }
                NicOut::Inject(pkt) => {
                    match self.world.fabric.inject(self.engine.now(), pkt) {
                        InjectOutcome::Delivered { delay, corrupt, pkt } => {
                            self.engine.schedule(
                                delay,
                                TkEvent::Deliver {
                                    host: pkt.dst.idx(),
                                    src: pkt.src,
                                    frame: pkt.payload,
                                    corrupt,
                                },
                            );
                        }
                        InjectOutcome::Dropped { .. } => {}
                    }
                }
                NicOut::Driver(m) => self.world.driver_mail[host].push(m),
            }
        }
    }

    /// Run until the event queue drains (every retransmission settled).
    pub fn settle(&mut self) {
        self.engine.run(&mut self.world);
    }

    /// Run for `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.engine.now() + d;
        self.engine.run_until(&mut self.world, deadline);
    }
}

/// Build a request send (test convenience).
pub fn request(dst_host: u32, dst_ep: u32, key: ProtectionKey, bytes: u32) -> SendRequest {
    use crate::ids::GlobalEp;
    use crate::msg::UserMsg;
    SendRequest {
        dst: GlobalEp::new(HostId(dst_host), EpId(dst_ep)),
        key,
        msg: UserMsg {
            uid: 0,
            is_request: true,
            handler: 7,
            args: [1, 2, 3, 4],
            payload_bytes: bytes,
            src_ep: GlobalEp::new(HostId(0), EpId(0)),
            reply_key: ProtectionKey::OPEN,
            corr: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Basic smoke test: the harness builds and settles with no traffic.
    #[test]
    fn empty_harness_settles() {
        let mut h = Harness::crossbar(2, NicConfig::virtual_network());
        h.settle();
        assert_eq!(h.engine.events_processed(), 0);
    }

    #[test]
    fn bring_up_makes_resident() {
        let mut h = Harness::crossbar(2, NicConfig::virtual_network());
        h.bring_up(0, EpId(0), ProtectionKey(1));
        assert!(h.world.nics[0].is_resident(EpId(0)));
        // Driver got the Loaded confirmation.
        assert!(matches!(h.world.driver_mail[0][0], DriverMsg::Loaded { ep: EpId(0), .. }));
    }

    use super::request as req;

    #[test]
    fn small_message_delivered_and_acked() {
        let mut h = Harness::crossbar(2, NicConfig::virtual_network());
        let key = ProtectionKey(9);
        h.bring_up(0, EpId(0), ProtectionKey(1));
        h.bring_up(1, EpId(0), key);
        h.post(0, EpId(0), req(1, 0, key, 0));
        h.settle();
        match h.poll(1, EpId(0), QueueSel::Request) {
            PollOutcome::Msg(m) => {
                assert!(!m.undeliverable);
                assert_eq!(m.msg.handler, 7);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        assert_eq!(h.world.nics[0].stats().acks_rx.get(), 1);
        assert_eq!(h.world.nics[0].stats().retransmits.get(), 0);
    }
}
