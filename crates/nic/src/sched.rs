//! The weighted round-robin endpoint service discipline (§5.2).
//!
//! "The algorithm cycles through resident endpoints and loiters on those
//! with packets awaiting transmission. While packets remain to send, the
//! interface processes at most 64 … messages for at most 4 ms … before
//! servicing other endpoints."
//!
//! The scheduler tracks only the *cursor* and the loiter budget; the NIC
//! asks it which frame to serve next given a per-frame "has eligible work"
//! oracle.

use vnet_sim::{SimDuration, SimTime};

/// WRR scheduler state over `n` frame slots.
#[derive(Clone, Debug)]
pub struct WrrScheduler {
    cursor: usize,
    n: usize,
    loiter_msgs: u32,
    loiter_started: SimTime,
    max_loiter_msgs: u32,
    max_loiter_time: SimDuration,
}

impl WrrScheduler {
    /// Scheduler over `n` slots with the paper's loiter bounds.
    pub fn new(n: usize) -> Self {
        WrrScheduler {
            cursor: 0,
            n,
            loiter_msgs: 0,
            loiter_started: SimTime::ZERO,
            max_loiter_msgs: 64,
            max_loiter_time: SimDuration::from_millis(4),
        }
    }

    /// Scheduler with explicit loiter bounds (ablation studies).
    pub fn with_bounds(n: usize, max_msgs: u32, max_time: SimDuration) -> Self {
        WrrScheduler { max_loiter_msgs: max_msgs, max_loiter_time: max_time, ..Self::new(n) }
    }

    /// Current cursor position (the frame being loitered on).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Select the next frame to serve. `has_work(i)` reports whether frame
    /// `i` has an eligible send descriptor. Returns `None` when no frame
    /// has work.
    ///
    /// Loitering: if the cursor frame has work and neither loiter bound is
    /// exceeded, it is selected again; otherwise the cursor advances
    /// round-robin to the next frame with work.
    pub fn select(&mut self, now: SimTime, mut has_work: impl FnMut(usize) -> bool) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        let budget_ok = self.loiter_msgs < self.max_loiter_msgs
            && now.since(self.loiter_started) < self.max_loiter_time;
        if budget_ok && has_work(self.cursor) {
            return Some(self.cursor);
        }
        // Advance: scan the ring starting after the cursor.
        for step in 1..=self.n {
            let i = (self.cursor + step) % self.n;
            if has_work(i) {
                self.cursor = i;
                self.loiter_msgs = 0;
                self.loiter_started = now;
                return Some(i);
            }
        }
        // Nothing anywhere else; allow the cursor frame past its budget
        // only by resetting the budget (it is the sole claimant).
        if has_work(self.cursor) {
            self.loiter_msgs = 0;
            self.loiter_started = now;
            return Some(self.cursor);
        }
        None
    }

    /// Record that one message was served from the selected frame.
    pub fn served(&mut self) {
        self.loiter_msgs += 1;
    }

    /// Resize (frame count is fixed per NIC, but the testkit reuses this).
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.cursor = 0;
        self.loiter_msgs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loiters_on_busy_frame_within_budget() {
        let mut s = WrrScheduler::new(4);
        let work = [true, true, false, false];
        let t = SimTime::ZERO;
        for _ in 0..10 {
            assert_eq!(s.select(t, |i| work[i]), Some(0));
            s.served();
        }
    }

    #[test]
    fn message_budget_forces_rotation() {
        let mut s = WrrScheduler::with_bounds(3, 4, SimDuration::from_secs(1));
        let work = [true, true, true];
        let t = SimTime::ZERO;
        let mut served = vec![];
        for _ in 0..12 {
            let i = s.select(t, |i| work[i]).unwrap();
            s.served();
            served.push(i);
        }
        assert_eq!(served, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn time_budget_forces_rotation() {
        let mut s = WrrScheduler::with_bounds(2, 1000, SimDuration::from_millis(4));
        assert_eq!(s.select(SimTime::ZERO, |_| true), Some(0));
        s.served();
        // Still within 4 ms: loiter.
        let t1 = SimTime::ZERO + SimDuration::from_millis(3);
        assert_eq!(s.select(t1, |_| true), Some(0));
        s.served();
        // Past 4 ms: rotate.
        let t2 = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(s.select(t2, |_| true), Some(1));
    }

    #[test]
    fn skips_idle_frames() {
        let mut s = WrrScheduler::new(5);
        let work = [false, false, true, false, true];
        let t = SimTime::ZERO;
        assert_eq!(s.select(t, |i| work[i]), Some(2));
        // Exhaust the budget artificially to force rotation.
        for _ in 0..64 {
            s.served();
        }
        assert_eq!(s.select(t, |i| work[i]), Some(4));
    }

    #[test]
    fn sole_busy_frame_keeps_service_past_budget() {
        let mut s = WrrScheduler::with_bounds(3, 2, SimDuration::from_secs(10));
        let work = [false, true, false];
        let t = SimTime::ZERO;
        for _ in 0..10 {
            assert_eq!(s.select(t, |i| work[i]), Some(1));
            s.served();
        }
    }

    #[test]
    fn empty_and_zero_cases() {
        let mut s = WrrScheduler::new(0);
        assert_eq!(s.select(SimTime::ZERO, |_| true), None);
        let mut s = WrrScheduler::new(3);
        assert_eq!(s.select(SimTime::ZERO, |_| false), None);
    }

    #[test]
    fn fairness_two_streams_alternate_budgets() {
        // Two always-busy frames must each get exactly the budget per turn.
        let mut s = WrrScheduler::with_bounds(2, 64, SimDuration::from_secs(1));
        let t = SimTime::ZERO;
        let mut counts = [0u32; 2];
        for _ in 0..64 * 6 {
            let i = s.select(t, |_| true).unwrap();
            s.served();
            counts[i] += 1;
        }
        assert_eq!(counts[0], counts[1]);
    }
}
