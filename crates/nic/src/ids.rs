//! Identifiers shared across the NIC/OS boundary.

use std::fmt;
use vnet_net::HostId;

/// Per-host endpoint index. Dense, allocated by the OS endpoint driver.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EpId(pub u32);

impl EpId {
    /// Index form, for table lookups.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

impl fmt::Display for EpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// A globally unique endpoint address: `(host, endpoint)`.
///
/// This is the *resolved* form of the paper's opaque endpoint names — what a
/// translation-table entry points at after rendezvous.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalEp {
    /// Hosting workstation.
    pub host: HostId,
    /// Endpoint index on that host.
    pub ep: EpId,
}

impl GlobalEp {
    /// Convenience constructor.
    pub fn new(host: HostId, ep: EpId) -> Self {
        GlobalEp { host, ep }
    }
}

impl fmt::Debug for GlobalEp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.ep)
    }
}

impl fmt::Display for GlobalEp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.ep)
    }
}

/// Protection key (§3.1). The NI stamps every outgoing message with the key
/// from the sender's translation table and the receiving NI verifies it
/// against the destination endpoint's key before depositing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct ProtectionKey(pub u64);

impl ProtectionKey {
    /// The "no protection" key used by system endpoints and the GAM
    /// baseline (which predates the protection model).
    pub const OPEN: ProtectionKey = ProtectionKey(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        let g = GlobalEp::new(HostId(3), EpId(7));
        assert_eq!(format!("{g}"), "h3:ep7");
        assert_eq!(format!("{g:?}"), "h3:ep7");
        assert_eq!(EpId(2).idx(), 2);
    }

    #[test]
    fn keys_compare() {
        assert_eq!(ProtectionKey::OPEN, ProtectionKey(0));
        assert_ne!(ProtectionKey(1), ProtectionKey(2));
    }
}
