//! Logical flow-control channels (§5.1).
//!
//! A channel is one lane of the lightweight stop-and-wait protocol between
//! a pair of interfaces: at most one unacknowledged data frame outstanding,
//! sequence-numbered, statically bound to a network route (the fabric maps
//! the channel index to a spine, giving multipath). Multiple channels per
//! peer mask transmission and acknowledgment latency.
//!
//! Channels are *shared physical resources*: a message may not squat on one
//! forever. After [`max_retx_before_unbind`] consecutive retransmissions
//! the NI unbinds the message (returning it to its endpoint's queue for a
//! later reacquire) so the channel can serve other traffic.
//!
//! Sequence state is self-synchronizing: a receiver that sees a sequence
//! number from the future (peer rebooted or message epoch advanced) adopts
//! it rather than wedging.
//!
//! [`max_retx_before_unbind`]: crate::config::NicConfig::max_retx_before_unbind

use crate::ids::EpId;
use crate::msg::Frame;
use vnet_net::HostId;
use vnet_sim::{SimDuration, SimTime};

/// Identifies one channel: the peer host and the lane index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ChannelKey {
    /// Remote interface.
    pub peer: HostId,
    /// Lane index in `0..channels_per_peer`.
    pub idx: u8,
}

/// A frame bound to a channel awaiting acknowledgment.
#[derive(Clone, Debug)]
pub struct InFlight {
    /// Message uid (matches `ack_uid` on the returning ack).
    pub uid: u64,
    /// Originating endpoint (for quiescence accounting).
    pub src_ep: EpId,
    /// The frame, kept in NI memory for retransmission.
    pub frame: Frame,
    /// Wire payload bytes (for re-injection).
    pub bytes: u32,
    /// When the most recent copy was transmitted.
    pub last_tx: SimTime,
    /// Consecutive retransmissions of this binding.
    pub retx: u32,
    /// Timer generation; stale timer events are ignored.
    pub gen: u64,
}

/// Sender-side state of one channel.
#[derive(Clone, Debug)]
pub struct ChannelState {
    /// Next sequence number to assign.
    pub next_seq: u64,
    /// Reserved by a bulk send whose payload is still staging through the
    /// SBUS; the bind happens when the DMA completes.
    pub reserved: bool,
    /// The outstanding frame, if any (stop-and-wait: at most one).
    pub in_flight: Option<InFlight>,
    /// Current retransmission timeout (doubles per retransmission, jittered
    /// by the caller, reset on successful acknowledgment).
    pub rto: SimDuration,
    /// Monotone timer generation counter.
    pub gen: u64,
}

impl ChannelState {
    /// Fresh channel with the given base timeout.
    pub fn new(rto_base: SimDuration) -> Self {
        ChannelState { next_seq: 0, reserved: false, in_flight: None, rto: rto_base, gen: 0 }
    }

    /// Whether a new message can bind to (or reserve) this channel.
    pub fn is_free(&self) -> bool {
        self.in_flight.is_none() && !self.reserved
    }

    /// Bind a frame: assign the next sequence number and occupy the channel
    /// (clearing any staging reservation). Returns the assigned sequence.
    /// Panics if another message is already bound.
    pub fn bind(&mut self, mut inf: InFlight) -> u64 {
        assert!(self.in_flight.is_none(), "stop-and-wait violated");
        self.reserved = false;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.gen += 1;
        inf.gen = self.gen;
        inf.frame.seq = seq;
        self.in_flight = Some(inf);
        seq
    }

    /// Complete the outstanding frame if `ack_uid` matches; returns it.
    /// A stale ack (uid mismatch — e.g. the ack of an unbound message's
    /// earlier copy) returns `None` and leaves the channel untouched.
    pub fn complete(&mut self, ack_uid: u64, rto_base: SimDuration) -> Option<InFlight> {
        match &self.in_flight {
            Some(inf) if inf.uid == ack_uid => {
                self.rto = rto_base;
                self.gen += 1; // invalidate the pending timer
                self.in_flight.take()
            }
            _ => None,
        }
    }

    /// Record a retransmission: bump counters and back off the timeout
    /// (caller applies jitter and the cap). Returns the new retx count.
    pub fn on_retransmit(&mut self, rto_max: SimDuration) -> u32 {
        let inf = self.in_flight.as_mut().expect("retransmit with nothing in flight");
        inf.retx += 1;
        self.gen += 1;
        inf.gen = self.gen;
        self.rto = self.rto.saturating_mul(2).min(rto_max);
        inf.retx
    }

    /// Forcibly unbind the outstanding frame (channel reuse, §5.1).
    /// Returns the evicted in-flight record.
    pub fn unbind(&mut self, rto_base: SimDuration) -> Option<InFlight> {
        self.rto = rto_base;
        self.gen += 1;
        self.in_flight.take()
    }
}

/// Receiver-side per-channel sequence tracking.
#[derive(Clone, Debug, Default)]
pub struct RxChannel {
    /// Next expected sequence number.
    pub expected: u64,
}

impl RxChannel {
    /// Classify an arriving data frame's sequence number.
    /// Self-synchronizing: future sequences are adopted (§5.1 — channels
    /// "automatically re-initialize sequencing state").
    pub fn accept(&mut self, seq: u64) -> SeqClass {
        use std::cmp::Ordering::*;
        match seq.cmp(&self.expected) {
            Equal => {
                self.expected = seq + 1;
                SeqClass::InOrder
            }
            Less => SeqClass::Duplicate,
            Greater => {
                self.expected = seq + 1;
                SeqClass::Resync
            }
        }
    }
}

/// How a sequence number relates to the receiver's expectation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeqClass {
    /// The expected next frame.
    InOrder,
    /// A retransmission of something already seen on this channel.
    Duplicate,
    /// Sender state is ahead (reboot/unbind churn); state adopted.
    Resync,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{GlobalEp, ProtectionKey};
    use crate::msg::{FrameKind, UserMsg};

    fn inflight(uid: u64) -> InFlight {
        let msg = UserMsg {
            uid,
            is_request: true,
            handler: 0,
            args: [0; 4],
            payload_bytes: 0,
            src_ep: GlobalEp::new(HostId(0), EpId(0)),
            reply_key: ProtectionKey::OPEN,
            corr: 0,
        };
        InFlight {
            uid,
            src_ep: EpId(0),
            frame: Frame {
                kind: FrameKind::Data(std::sync::Arc::new(msg)),
                dst_ep: EpId(0),
                key: ProtectionKey::OPEN,
                chan: 0,
                seq: 0,
                ack_uid: 0,
                timestamp: 0,
            },
            bytes: 48,
            last_tx: SimTime::ZERO,
            retx: 0,
            gen: 0,
        }
    }

    const RTO: SimDuration = SimDuration::from_micros(100);
    const RTO_MAX: SimDuration = SimDuration::from_millis(8);

    #[test]
    fn bind_assigns_monotone_seqs() {
        let mut c = ChannelState::new(RTO);
        let s0 = c.bind(inflight(1));
        assert_eq!(s0, 0);
        assert!(!c.is_free());
        assert!(c.complete(1, RTO).is_some());
        let s1 = c.bind(inflight(2));
        assert_eq!(s1, 1);
    }

    #[test]
    #[should_panic(expected = "stop-and-wait violated")]
    fn double_bind_panics() {
        let mut c = ChannelState::new(RTO);
        c.bind(inflight(1));
        c.bind(inflight(2));
    }

    #[test]
    fn stale_ack_ignored() {
        let mut c = ChannelState::new(RTO);
        c.bind(inflight(5));
        assert!(c.complete(99, RTO).is_none());
        assert!(!c.is_free());
        assert!(c.complete(5, RTO).is_some());
        assert!(c.is_free());
    }

    #[test]
    fn retransmit_backs_off_and_caps() {
        let mut c = ChannelState::new(RTO);
        c.bind(inflight(1));
        for i in 1..=10 {
            let n = c.on_retransmit(RTO_MAX);
            assert_eq!(n, i);
        }
        assert_eq!(c.rto, RTO_MAX);
        // Ack resets the backoff.
        c.complete(1, RTO);
        assert_eq!(c.rto, RTO);
    }

    #[test]
    fn unbind_frees_channel() {
        let mut c = ChannelState::new(RTO);
        c.bind(inflight(1));
        let gen_before = c.gen;
        let evicted = c.unbind(RTO).unwrap();
        assert_eq!(evicted.uid, 1);
        assert!(c.is_free());
        assert!(c.gen > gen_before, "pending timer must be invalidated");
    }

    #[test]
    fn rx_in_order_and_duplicates() {
        let mut rx = RxChannel::default();
        assert_eq!(rx.accept(0), SeqClass::InOrder);
        assert_eq!(rx.accept(1), SeqClass::InOrder);
        assert_eq!(rx.accept(1), SeqClass::Duplicate);
        assert_eq!(rx.accept(0), SeqClass::Duplicate);
        assert_eq!(rx.accept(2), SeqClass::InOrder);
    }

    #[test]
    fn rx_resyncs_on_future_seq() {
        let mut rx = RxChannel::default();
        assert_eq!(rx.accept(41), SeqClass::Resync);
        assert_eq!(rx.accept(42), SeqClass::InOrder);
    }
}
