//! Message and frame types crossing the user/NIC, NIC/NIC, and NIC/driver
//! boundaries.

use crate::endpoint::EndpointImage;
use crate::ids::{EpId, GlobalEp, ProtectionKey};
use std::sync::Arc;
use vnet_sim::SimTime;

/// An Active Message as the user level sees it: a split-phase remote
/// procedure call (§3). Payload bytes are modeled by size only; `args`
/// carries the handler's word arguments (enough for every workload in the
/// paper's evaluation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UserMsg {
    /// Host-unique message id, assigned by the sending NIC. End-to-end
    /// duplicate suppression keys on `(src.host, uid)`.
    pub uid: u64,
    /// Request (consumes a credit, expects a reply) vs reply.
    pub is_request: bool,
    /// Handler index at the destination endpoint.
    pub handler: u16,
    /// Word arguments delivered to the handler.
    pub args: [u64; 4],
    /// Bulk payload size in bytes (0 for short messages). Bulk payloads are
    /// staged through NI memory by DMA on both sides.
    pub payload_bytes: u32,
    /// Originating endpoint; replies are addressed here.
    pub src_ep: GlobalEp,
    /// Key granting reply access to `src_ep`.
    pub reply_key: ProtectionKey,
    /// Correlation id: replies carry the uid of the request they answer
    /// (0 for requests). The user-level library uses it to recover credits.
    pub corr: u64,
}

impl UserMsg {
    /// Wire size of the message body: descriptor words + bulk payload.
    pub fn wire_bytes(&self) -> u32 {
        48 + self.payload_bytes // 48B descriptor: handler, args, addressing
    }

    /// Whether the payload must be staged by DMA (anything beyond what the
    /// host writes into the frame with programmed I/O).
    pub fn is_bulk(&self, pio_threshold: u32) -> bool {
        self.payload_bytes > pio_threshold
    }
}

/// Why a receiving NI refused a message (§5.1: "negative acknowledgments
/// encode why messages could not be delivered").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NackReason {
    /// Destination endpoint exists but is not resident; the receiver asks
    /// its driver to make it resident and the sender retries later.
    NotResident,
    /// Destination endpoint's receive queue is full; retry later.
    RecvQueueFull,
    /// Protection key mismatch; the message returns to its sender.
    BadKey,
    /// No endpoint with that index exists; the message returns to sender.
    NoSuchEndpoint,
}

impl NackReason {
    /// NACKs that are transient: the sender should retry rather than return
    /// the message to the application.
    pub fn is_transient(self) -> bool {
        matches!(self, NackReason::NotResident | NackReason::RecvQueueFull)
    }
}

/// Frame kinds on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// User data (a [`UserMsg`]). Reference-counted so retransmission,
    /// deposit, and staged-DMA paths clone a pointer, not the body. The
    /// count is atomic (`Arc`) and the body is frozen at injection — no
    /// interior mutability — so a wire frame crossing a shard boundary in
    /// the parallel executor moves a pointer, never a copy of the bytes.
    Data(Arc<UserMsg>),
    /// Positive acknowledgment: the message was deposited.
    Ack,
    /// Negative acknowledgment with reason.
    Nack(NackReason),
    /// Several positive acknowledgments coalesced into one frame — the
    /// paper's §8 "piggybacking acknowledgments to reduce network
    /// occupancy", available behind [`NicConfig::ack_coalesce`].
    ///
    /// [`NicConfig::ack_coalesce`]: crate::config::NicConfig::ack_coalesce
    AckBatch(Vec<AckEntry>),
}

/// One acknowledgment within an [`FrameKind::AckBatch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AckEntry {
    /// Logical channel of the acknowledged data frame.
    pub chan: u8,
    /// Its sequence number.
    pub seq: u64,
    /// Its uid.
    pub uid: u64,
    /// Reflected sender timestamp.
    pub timestamp: u32,
}

/// The NIC-to-NIC wire frame (the fabric's packet payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// What this frame is.
    pub kind: FrameKind,
    /// Destination endpoint index on the receiving host (for data frames).
    pub dst_ep: EpId,
    /// Protection key stamped by the sending NI (§3.1).
    pub key: ProtectionKey,
    /// Logical channel index within the host pair.
    pub chan: u8,
    /// Stop-and-wait sequence number on that channel.
    pub seq: u64,
    /// For acks/nacks: the uid of the data frame being acknowledged.
    pub ack_uid: u64,
    /// 32-bit timestamp stamped by the sender and reflected by the receiver
    /// (§5.1); units of microseconds, wrapping.
    pub timestamp: u32,
}

/// A message as handed to the user on poll, plus delivery metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeliveredMsg {
    /// The message (shared with the wire frame that carried it — the
    /// deposit clones a reference, never the body, even when the frame
    /// crossed a shard boundary).
    pub msg: Arc<UserMsg>,
    /// True when this is the sender's own message coming back — the
    /// "return to sender" error model of §3.2. The undeliverable handler
    /// runs instead of the addressed handler.
    pub undeliverable: bool,
    /// When the NIC deposited it into the endpoint queue.
    pub deposited_at: SimTime,
}

/// Which receive queue to poll.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueSel {
    /// Request receive queue (32 deep).
    Request,
    /// Reply receive queue (32 deep); undeliverable returns land here too.
    Reply,
}

/// A send posted by the host into a resident endpoint.
#[derive(Clone, Debug)]
pub struct SendRequest {
    /// Destination endpoint.
    pub dst: GlobalEp,
    /// Key from the sender's translation table for that destination.
    pub key: ProtectionKey,
    /// The message (uid field is assigned by the NIC).
    pub msg: UserMsg,
}

/// Why a host-side post failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PostError {
    /// The endpoint is not resident — the caller must take the write-fault
    /// path through the OS (§4.2).
    NotResident,
    /// The endpoint's 64-entry send queue is full; the caller must back off.
    SendQueueFull,
}

/// Result of polling a receive queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PollOutcome {
    /// A message was dequeued.
    Msg(DeliveredMsg),
    /// Queue empty.
    Empty,
    /// The endpoint is not resident; its queues live in the host image and
    /// must be polled through the OS instead.
    NotResident,
}

/// Requests from the endpoint segment driver to the NIC (§4.3). Each carries
/// the driver's Lamport clock so the two agents can order concurrent
/// operations.
#[derive(Clone, Debug)]
pub enum DriverOp {
    /// Bind `ep` to a free frame, installing its host image (message queues
    /// and state travel with it). The NIC answers [`DriverMsg::Loaded`].
    Load {
        /// Endpoint to make resident.
        ep: EpId,
        /// The endpoint's state, previously held in host memory.
        image: Box<EndpointImage>,
        /// Driver Lamport clock at issue time.
        clock: u64,
    },
    /// Unbind `ep` from its frame. The NIC quiesces in-flight messages
    /// first (§5.3) and answers [`DriverMsg::Unloaded`] with the image.
    Unload {
        /// Endpoint to evict.
        ep: EpId,
        /// Driver Lamport clock at issue time.
        clock: u64,
    },
    /// Update the event mask of a resident endpoint.
    SetMask {
        /// Target endpoint.
        ep: EpId,
        /// Whether message arrival should raise [`DriverMsg::Event`].
        notify_on_arrival: bool,
        /// Driver Lamport clock at issue time.
        clock: u64,
    },
    /// Tell the NIC that endpoint `ep` exists on this host (it may be
    /// non-resident). Arrivals for unregistered endpoints draw
    /// [`NackReason::NoSuchEndpoint`]; for registered but non-resident ones,
    /// [`NackReason::NotResident`] plus a [`DriverMsg::NeedResident`].
    Register {
        /// The new endpoint.
        ep: EpId,
        /// Driver Lamport clock at issue time.
        clock: u64,
    },
    /// Endpoint `ep` has been freed (process exit, §4.2); forget it.
    Unregister {
        /// The departing endpoint.
        ep: EpId,
        /// Driver Lamport clock at issue time.
        clock: u64,
    },
}

/// Messages from the NIC to the endpoint segment driver (§4.3).
#[derive(Clone, Debug)]
pub enum DriverMsg {
    /// `ep` is now resident and serviceable.
    Loaded {
        /// The endpoint.
        ep: EpId,
        /// NIC Lamport clock.
        clock: u64,
    },
    /// `ep` has been quiesced and unloaded; `image` holds its state.
    Unloaded {
        /// The endpoint.
        ep: EpId,
        /// State to park in host memory.
        image: Box<EndpointImage>,
        /// NIC Lamport clock.
        clock: u64,
    },
    /// A message arrived for a non-resident endpoint (the NIC NACKed it);
    /// please make `ep` resident (§4.2 "activation of a non-resident
    /// endpoint in response to message arrival").
    NeedResident {
        /// The endpoint that needs a frame.
        ep: EpId,
        /// NIC Lamport clock.
        clock: u64,
    },
    /// An endpoint state transition matching its event mask occurred
    /// (message arrival into an empty queue); wake waiting threads.
    Event {
        /// The endpoint.
        ep: EpId,
        /// NIC Lamport clock.
        clock: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_net::HostId;

    fn msg(bytes: u32) -> UserMsg {
        UserMsg {
            uid: 0,
            is_request: true,
            handler: 1,
            args: [0; 4],
            payload_bytes: bytes,
            src_ep: GlobalEp::new(HostId(0), EpId(0)),
            reply_key: ProtectionKey::OPEN,
            corr: 0,
        }
    }

    #[test]
    fn wire_bytes_scale_with_payload() {
        assert_eq!(msg(0).wire_bytes(), 48);
        assert_eq!(msg(8192).wire_bytes(), 8240);
    }

    #[test]
    fn bulk_threshold() {
        assert!(!msg(16).is_bulk(64));
        assert!(!msg(64).is_bulk(64));
        assert!(msg(65).is_bulk(64));
    }

    #[test]
    fn nack_transience() {
        assert!(NackReason::NotResident.is_transient());
        assert!(NackReason::RecvQueueFull.is_transient());
        assert!(!NackReason::BadKey.is_transient());
        assert!(!NackReason::NoSuchEndpoint.is_transient());
    }
}
