//! The NIC firmware state machine.
//!
//! The firmware is a single serial processor. Work arrives from three
//! directions — the network (frames), the host (posted sends, driver
//! operations), and its own timers (retransmission, DMA completion) — and
//! every item costs processor time from [`crate::config::FwCosts`]. The
//! dispatch loop drains an inbox FIFO (arrivals, completions, driver ops)
//! and otherwise serves send descriptors under the weighted round-robin
//! discipline of [`crate::sched`].
//!
//! All interaction with the outside world is via [`NicOut`] effects; the
//! composing world maps them onto the global event graph.

use crate::channel::{ChannelKey, ChannelState, InFlight, RxChannel, SeqClass};
use crate::config::{NicConfig, NicMode};
use crate::dma::{DmaDirection, DmaEngine};
use crate::endpoint::{FrameSlot, PendingSend};
use crate::ids::{EpId, GlobalEp};
use crate::msg::{
    AckEntry, DeliveredMsg, DriverMsg, DriverOp, Frame, FrameKind, NackReason, PollOutcome,
    PostError, QueueSel, SendRequest, UserMsg,
};
use crate::sched::WrrScheduler;
use crate::stats::NicStats;
use crate::tel::NicTelemetry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use vnet_net::{HostId, LinkId, Packet, RouteOracle};
use vnet_sim::{AuditHandle, Auditor, SimDuration, SimRng, SimTime, TelemetryHandle, TraceHandle};

/// Events delivered to a NIC by the simulation engine.
#[derive(Clone, Debug)]
pub enum NicEvent {
    /// Firmware dispatch step (generation-guarded; stale steps are no-ops).
    FwStep {
        /// Generation stamp; must match the NIC's current value.
        gen: u64,
    },
    /// Retransmission timer for a channel.
    Retx {
        /// The channel.
        key: ChannelKey,
        /// In-flight generation at arming time; stale timers are ignored.
        gen: u64,
    },
    /// An SBUS DMA transfer finished.
    DmaDone(DmaTag),
    /// Emit a packet whose firmware processing just completed (effects of
    /// a firmware step take effect at the step's end, not its start).
    EmitPkt(Box<Packet<Frame>>),
    /// Emit a driver message whose firmware processing just completed.
    EmitDriver(DriverMsg),
    /// Deposit a small message whose receive processing just completed,
    /// then emit the (n)ack.
    DepositSmall {
        /// Sending host (ack destination).
        src: HostId,
        /// The data frame.
        frame: Box<Frame>,
    },
    /// Flush the coalesced-ack buffer for a peer (§8 piggybacked acks).
    FlushAcks {
        /// Peer whose buffer to flush.
        peer: HostId,
        /// Buffer generation at arming time; stale flushes are ignored.
        gen: u64,
    },
}

/// What a completed DMA was doing.
#[derive(Clone, Debug)]
pub enum DmaTag {
    /// Bulk send staging (host → NI) finished for message `uid`.
    SendStaged {
        /// The staged message.
        uid: u64,
    },
    /// Bulk receive delivery (NI → host) finished for message `uid`.
    RecvStaged {
        /// The staged message.
        uid: u64,
    },
    /// Endpoint frame load (host → NI) finished.
    LoadDone {
        /// The endpoint.
        ep: EpId,
    },
    /// Endpoint frame unload (NI → host) finished.
    UnloadDone {
        /// The endpoint.
        ep: EpId,
    },
}

/// Effects emitted by the NIC for the composing world to apply.
#[derive(Debug)]
pub enum NicOut {
    /// Schedule `ev` for this same NIC after `delay`.
    After(SimDuration, NicEvent),
    /// Inject a packet into the fabric.
    Inject(Packet<Frame>),
    /// Deliver a message to the local endpoint segment driver.
    Driver(DriverMsg),
}

/// Internal firmware work items (inbox entries).
#[derive(Debug)]
enum FwWork {
    Rx { src: HostId, frame: Frame },
    Retx(ChannelKey),
    Dma(DmaTag),
    Driver(DriverOp),
}

struct StagedSend {
    ps: PendingSend,
    chan: ChannelKey,
    src_ep: EpId,
}

struct StagedRecv {
    src: HostId,
    frame: Frame,
}

/// Bounded set of recently delivered message uids (exactly-once filter).
#[derive(Default)]
struct DedupWindow {
    set: HashSet<u64>,
    order: VecDeque<u64>,
}

impl DedupWindow {
    fn contains(&self, uid: u64) -> bool {
        self.set.contains(&uid)
    }

    fn insert(&mut self, uid: u64, cap: usize) {
        if self.set.insert(uid) {
            self.order.push_back(uid);
            while self.order.len() > cap {
                let old = self.order.pop_front().unwrap();
                self.set.remove(&old);
            }
        }
    }
}

/// One network interface.
pub struct Nic {
    host: HostId,
    cfg: NicConfig,
    frames: Vec<FrameSlot>,
    ep_frame: HashMap<EpId, usize>,
    registered: HashSet<EpId>,
    tx: HashMap<ChannelKey, ChannelState>,
    rx: HashMap<ChannelKey, RxChannel>,
    dedup: DedupWindow,
    dma: DmaEngine,
    sched: WrrScheduler,
    inbox: VecDeque<FwWork>,
    staging_out: HashMap<u64, StagedSend>,
    staging_in: HashMap<u64, StagedRecv>,
    /// Retry metadata for channel-bound messages:
    /// `(transient nacks, unbind cycles, destination, key)`.
    pending_meta: HashMap<u64, (u32, u32, GlobalEp, crate::ids::ProtectionKey)>,
    in_flight_per_ep: HashMap<EpId, u32>,
    unload_dma_started: HashSet<EpId>,
    need_resident_pending: HashSet<EpId>,
    pending_returns: HashMap<EpId, VecDeque<DeliveredMsg>>,
    fw_busy_until: SimTime,
    fw_step_gen: u64,
    fw_scheduled_at: SimTime,
    clock: u64,
    uid_counter: u64,
    chan_rr: HashMap<HostId, u8>,
    /// Per-peer smoothed RTT estimate (µs) and variance, from reflected
    /// timestamps (adaptive retransmission scheduling, §8).
    peer_rtt: HashMap<HostId, (f64, f64)>,
    /// Coalesced positive acks awaiting flush, per peer.
    ack_buf: HashMap<HostId, Vec<AckEntry>>,
    /// Flush-timer generation per peer.
    ack_flush_gen: HashMap<HostId, u64>,
    rng: SimRng,
    stats: NicStats,
    /// Reusable output buffer for one firmware step (capacity retained
    /// across steps; the event loop allocates nothing in steady state).
    scratch_step: Vec<NicOut>,
    /// Reusable output buffer for immediate ack emission (disjoint from
    /// `scratch_step`: acks are built while a step is in progress).
    scratch_ack: Vec<NicOut>,
    /// Cross-layer invariant auditor (hooks are no-ops when detached).
    auditor: Option<AuditHandle>,
    /// Shared causal trace ring (records are no-ops when detached).
    trace: Option<TraceHandle>,
    /// Unified telemetry (hooks are no-ops when detached).
    tel: Option<NicTelemetry>,
    /// Scheduled-fault route oracle (campaign failover planning); `None`
    /// outside fault campaigns. Shared plain data, safe across shard moves.
    oracle: Option<Arc<RouteOracle>>,
    /// Scratch route buffer for oracle queries.
    oracle_buf: Vec<LinkId>,
    /// Messages in a retransmission episode: uid → first timer-expiry
    /// time. Sampled into `recovery_us` when the ack finally lands.
    troubled: HashMap<u64, SimTime>,
}

impl Nic {
    /// A NIC for `host` with deterministic randomness derived from `seed`.
    pub fn new(host: HostId, cfg: NicConfig, seed: u64) -> Self {
        let frames = (0..cfg.frames).map(|_| FrameSlot::Free).collect::<Vec<_>>();
        let sched = WrrScheduler::new(frames.len());
        Nic {
            host,
            dma: DmaEngine::now_sbus(),
            frames,
            ep_frame: HashMap::new(),
            registered: HashSet::new(),
            tx: HashMap::new(),
            rx: HashMap::new(),
            dedup: DedupWindow::default(),
            sched,
            inbox: VecDeque::new(),
            staging_out: HashMap::new(),
            staging_in: HashMap::new(),
            pending_meta: HashMap::new(),
            in_flight_per_ep: HashMap::new(),
            unload_dma_started: HashSet::new(),
            need_resident_pending: HashSet::new(),
            pending_returns: HashMap::new(),
            fw_busy_until: SimTime::ZERO,
            fw_step_gen: 0,
            fw_scheduled_at: SimTime::MAX,
            clock: 0,
            uid_counter: 0,
            chan_rr: HashMap::new(),
            peer_rtt: HashMap::new(),
            ack_buf: HashMap::new(),
            ack_flush_gen: HashMap::new(),
            rng: SimRng::seed_from_u64(seed).derive(host.0 as u64),
            stats: NicStats::default(),
            scratch_step: Vec::new(),
            scratch_ack: Vec::new(),
            auditor: None,
            trace: None,
            tel: None,
            oracle: None,
            oracle_buf: Vec::new(),
            troubled: HashMap::new(),
            cfg,
        }
    }

    /// Attach the cluster-wide invariant auditor; protocol hooks (post,
    /// bind, retransmit, unbind, deliver, bounce) become live.
    pub fn attach_auditor(&mut self, auditor: AuditHandle) {
        self.auditor = Some(auditor);
    }

    /// Attach the shared trace ring; retransmit/unbind/abort paths record
    /// causal entries into it (no-ops while the ring is disabled).
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Attach the unified telemetry registry; per-NIC metrics are
    /// registered under `host{N}.nic.*` and protocol episodes
    /// (retransmit, backoff, unbind, DMA transfers) become spans on the
    /// `nic.chan` / `nic.dma` / `nic.fw` tracks.
    pub fn attach_telemetry(&mut self, tel: TelemetryHandle) {
        self.tel = Some(NicTelemetry::new(self.host.0, tel));
    }

    /// Re-point existing telemetry wiring at another registry (used when a
    /// host migrates between the main world and a shard), preserving any
    /// open retransmit/park spans. No-op while telemetry is detached.
    pub fn rebind_telemetry(&mut self, tel: TelemetryHandle) {
        if let Some(t) = &mut self.tel {
            t.rebind(tel);
        }
    }

    /// Attach the fault campaign's route oracle. Scheduled down windows
    /// become visible to the send path: channel allocation prefers routes
    /// that are up, and a bound message whose route goes down fails over
    /// to an alternate channel (§5.1 multipath used for §3.2 hot-swap).
    pub fn attach_route_oracle(&mut self, oracle: Arc<RouteOracle>) {
        self.oracle = Some(oracle);
    }

    /// Whether failover planning is active (an oracle with at least one
    /// scheduled down window is attached).
    fn oracle_active(&self) -> bool {
        self.oracle.as_ref().is_some_and(|o| o.has_windows())
    }

    /// Whether the route that channel `idx` to `peer` maps onto is free
    /// of scheduled-down links at `now`. Vacuously true without an
    /// active oracle — the no-campaign fast path stays byte-identical.
    fn route_is_up(&mut self, now: SimTime, peer: HostId, idx: u8) -> bool {
        match self.oracle.clone() {
            Some(o) if o.has_windows() => {
                o.route_up(self.host, peer, idx, now, &mut self.oracle_buf)
            }
            _ => true,
        }
    }

    fn audit(&self, f: impl FnOnce(&mut Auditor)) {
        if let Some(a) = &self.auditor {
            f(&mut a.borrow_mut());
        }
    }

    fn trace_with(&self, at: SimTime, tag: &'static str, detail: impl FnOnce() -> String) {
        if let Some(t) = &self.trace {
            t.borrow_mut().record_with(at, self.host.0, tag, detail);
        }
    }

    /// This NIC's host.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Current Lamport clock.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The shared SBUS DMA engine (instrumentation).
    pub fn dma(&self) -> &DmaEngine {
        &self.dma
    }

    fn tick_clock(&mut self, seen: u64) -> u64 {
        self.clock = self.clock.max(seen) + 1;
        self.clock
    }

    fn next_uid(&mut self) -> u64 {
        self.uid_counter += 1;
        ((self.host.0 as u64) << 40) | self.uid_counter
    }

    /// Host PIO read of the message-id allocator, used by the OS library
    /// when writing send descriptors into a *non-resident* endpoint's host
    /// image (those descriptors bypass [`Nic::post_send`]).
    pub fn alloc_uid(&mut self) -> u64 {
        self.next_uid()
    }

    fn ts32(now: SimTime) -> u32 {
        (now.as_nanos() / 1_000) as u32
    }

    /// Retransmission timeout for a frame of `bytes` payload: the channel's
    /// backoff state plus slack for the wire + SBUS staging time of a bulk
    /// payload (a fixed timeout sized for short messages would fire before
    /// an 8 KB message's ack can possibly return). With
    /// [`NicConfig::adaptive_rto`], the base comes from the peer's
    /// SRTT + 4·RTTVAR estimate instead (plus any accumulated backoff).
    ///
    /// [`NicConfig::adaptive_rto`]: crate::config::NicConfig::adaptive_rto
    fn rto_for(&self, peer: HostId, ch_rto: SimDuration, bytes: u32) -> SimDuration {
        // Slack sized for a congested staging path (~10 MB/s effective):
        // several queued 8 KB deposits ahead of ours on the receiver's
        // SBUS engine must not fire the timer.
        let size_slack = SimDuration::for_bytes(bytes as u64 * 2, 10.0);
        if self.cfg.adaptive_rto {
            if let Some(&(srtt, rttvar)) = self.peer_rtt.get(&peer) {
                // Floor at the fixed base: the estimator only ever
                // lengthens the timer (under congestion), never undercuts
                // the minimum safe granularity.
                let est = SimDuration::from_micros_f64(srtt + 4.0 * rttvar)
                    .max(self.cfg.rto_base);
                // Carry the exponential backoff excess accumulated on the
                // channel (resets on successful acknowledgment).
                let backoff_excess = ch_rto - self.cfg.rto_base;
                return est + backoff_excess + size_slack;
            }
        }
        ch_rto + size_slack
    }

    /// Fold an RTT sample (µs) into the peer's estimator (Jacobson/Karels).
    fn observe_rtt(&mut self, peer: HostId, sample_us: f64) {
        match self.peer_rtt.get_mut(&peer) {
            None => {
                self.peer_rtt.insert(peer, (sample_us, sample_us / 2.0));
            }
            Some((srtt, rttvar)) => {
                let err = (sample_us - *srtt).abs();
                *rttvar = 0.75 * *rttvar + 0.25 * err;
                *srtt = 0.875 * *srtt + 0.125 * sample_us;
            }
        }
    }

    /// Hand a packet to the fabric — or loop it back through the local
    /// firmware when both endpoints share a host (processes on one node
    /// communicating through a virtual network never touch the wire).
    fn emit(&mut self, pkt: Packet<Frame>, out: &mut Vec<NicOut>) {
        if let Some(t) = &mut self.tel {
            t.counters().frames_tx.inc();
        }
        if pkt.dst == self.host {
            self.inbox.push_back(FwWork::Rx { src: self.host, frame: pkt.payload });
            // Always called from inside firmware processing; the
            // end-of-step kick keeps the loop running.
        } else {
            out.push(NicOut::Inject(pkt));
        }
    }

    // ---------------------------------------------------------------- host API

    /// Whether `ep` is resident and serviceable.
    pub fn is_resident(&self, ep: EpId) -> bool {
        self.ep_frame.get(&ep).map(|&i| self.frames[i].is_active()).unwrap_or(false)
    }

    /// Host PIO write of a send descriptor into a resident endpoint (§4.1:
    /// "applications also have fine-grained access to them with programmed
    /// I/O"). Returns the assigned message uid.
    pub fn post_send(
        &mut self,
        now: SimTime,
        ep: EpId,
        req: SendRequest,
        out: &mut Vec<NicOut>,
    ) -> Result<u64, PostError> {
        self.post_send_at(now, now, ep, req, out)
    }

    /// Like [`Nic::post_send`], but the descriptor becomes transmittable at
    /// `ready_at` — the moment the host's PIO writes complete. The slot is
    /// reserved immediately; the firmware will not pick the descriptor up
    /// early.
    pub fn post_send_at(
        &mut self,
        now: SimTime,
        ready_at: SimTime,
        ep: EpId,
        req: SendRequest,
        out: &mut Vec<NicOut>,
    ) -> Result<u64, PostError> {
        let Some(&fi) = self.ep_frame.get(&ep) else { return Err(PostError::NotResident) };
        if !self.frames[fi].is_active() {
            return Err(PostError::NotResident);
        }
        let depth = self.cfg.send_queue_depth;
        let image = self.frames[fi].image_mut().expect("active slot has image");
        if image.send_q.len() >= depth {
            return Err(PostError::SendQueueFull);
        }
        let uid = self.next_uid();
        let mut msg = req.msg;
        msg.uid = uid;
        let image = self.frames[fi].image_mut().expect("active slot has image");
        image.send_q.push_back(PendingSend {
            uid,
            dst: req.dst,
            key: req.key,
            msg: Arc::new(msg),
            not_before: ready_at.max(now),
            nacks: 0,
            unbind_cycles: 0,
        });
        let h = self.host.0;
        self.audit(|a| a.on_posted(now, h, uid));
        self.kick(now, out);
        Ok(uid)
    }

    /// Host PIO poll of a resident endpoint's receive queue.
    pub fn poll_recv(&mut self, _now: SimTime, ep: EpId, q: QueueSel) -> PollOutcome {
        let Some(&fi) = self.ep_frame.get(&ep) else { return PollOutcome::NotResident };
        if !self.frames[fi].is_active() {
            return PollOutcome::NotResident;
        }
        let image = self.frames[fi].image_mut().expect("active slot has image");
        let got = match q {
            QueueSel::Request => image.recv_req.pop_front(),
            QueueSel::Reply => image.recv_rep.pop_front(),
        };
        if got.is_some() {
            self.flush_pending_returns(ep);
        }
        match got {
            Some(m) => PollOutcome::Msg(m),
            None => PollOutcome::Empty,
        }
    }

    /// Depths of the (request, reply) receive queues of a resident endpoint.
    pub fn recv_depths(&self, ep: EpId) -> Option<(usize, usize)> {
        let &fi = self.ep_frame.get(&ep)?;
        let image = self.frames[fi].image()?;
        Some((image.recv_req.len(), image.recv_rep.len()))
    }

    /// Whether the NIC holds no unfinished work for `ep`: no unacked
    /// in-flight sends, no undeliverable returns waiting to flush, and —
    /// when the endpoint occupies a frame — empty frame queues. The control
    /// plane's migration teardown polls this to decide when a lame-duck
    /// source incarnation has fully drained and can be destroyed.
    pub fn is_quiet(&self, ep: EpId) -> bool {
        if self.in_flight_per_ep.contains_key(&ep) || self.pending_returns.contains_key(&ep) {
            return false;
        }
        match self.ep_frame.get(&ep) {
            Some(&fi) => self.frames[fi]
                .image()
                .is_none_or(|i| !i.has_send_work() && !i.has_received()),
            None => true,
        }
    }

    /// Host PIO update of a resident endpoint's event mask. Returns false
    /// if the endpoint is not resident (caller updates the host image).
    pub fn set_event_mask_direct(&mut self, ep: EpId, notify: bool) -> bool {
        if let Some(&fi) = self.ep_frame.get(&ep) {
            if self.frames[fi].is_active() {
                self.frames[fi].image_mut().unwrap().notify_on_arrival = notify;
                return true;
            }
        }
        false
    }

    // ------------------------------------------------------------- driver API

    /// Enqueue a driver-protocol operation (§4.3). The NIC interleaves its
    /// processing with user traffic.
    pub fn driver_request(&mut self, now: SimTime, op: DriverOp, out: &mut Vec<NicOut>) {
        self.inbox.push_back(FwWork::Driver(op));
        self.kick(now, out);
    }

    // ------------------------------------------------------------ network API

    /// A packet arrived from the fabric. `corrupt` marks CRC failures
    /// (dropped here, recovered by sender timeout).
    pub fn on_packet(
        &mut self,
        now: SimTime,
        src: HostId,
        frame: Frame,
        corrupt: bool,
        out: &mut Vec<NicOut>,
    ) {
        if let Some(t) = &mut self.tel {
            t.counters().frames_rx.inc();
        }
        if corrupt {
            self.stats.crc_drops.inc();
            return;
        }
        self.inbox.push_back(FwWork::Rx { src, frame });
        self.kick(now, out);
    }

    /// Engine-scheduled event dispatch.
    pub fn on_event(&mut self, now: SimTime, ev: NicEvent, out: &mut Vec<NicOut>) {
        match ev {
            NicEvent::FwStep { gen } => {
                if gen != self.fw_step_gen {
                    return; // superseded
                }
                self.fw_scheduled_at = SimTime::MAX;
                self.fw_step(now, out);
            }
            NicEvent::Retx { key, gen } => {
                // Validate against current in-flight generation; stale
                // timers (acked or rearmed) are ignored.
                let live = self
                    .tx
                    .get(&key)
                    .and_then(|c| c.in_flight.as_ref())
                    .map(|inf| inf.gen == gen)
                    .unwrap_or(false);
                if live {
                    self.inbox.push_back(FwWork::Retx(key));
                    self.kick(now, out);
                } else {
                    let h = self.host.0;
                    self.audit(|a| a.on_stale_timer(now, h));
                }
            }
            NicEvent::DmaDone(tag) => {
                self.inbox.push_back(FwWork::Dma(tag));
                self.kick(now, out);
            }
            NicEvent::EmitPkt(pkt) => {
                // Loopback packets re-enter the local firmware.
                if pkt.dst == self.host {
                    self.inbox.push_back(FwWork::Rx { src: self.host, frame: pkt.payload });
                    self.kick(now, out);
                } else {
                    out.push(NicOut::Inject(*pkt));
                }
            }
            NicEvent::EmitDriver(msg) => out.push(NicOut::Driver(msg)),
            NicEvent::DepositSmall { src, frame } => {
                self.finish_small_deposit(now, src, *frame, out);
            }
            NicEvent::FlushAcks { peer, gen } => {
                if self.ack_flush_gen.get(&peer) == Some(&gen) {
                    self.flush_acks(peer, out);
                }
            }
        }
    }

    /// Emit the coalesced-ack buffer for `peer` as one batch frame.
    fn flush_acks(&mut self, peer: HostId, out: &mut Vec<NicOut>) {
        let Some(entries) = self.ack_buf.remove(&peer) else { return };
        if entries.is_empty() {
            return;
        }
        *self.ack_flush_gen.entry(peer).or_insert(0) += 1; // invalidate timer
        let bytes = entries.len() as u32 * 12;
        let frame = Frame {
            kind: FrameKind::AckBatch(entries),
            dst_ep: EpId(0),
            key: crate::ids::ProtectionKey::OPEN,
            chan: 0,
            seq: 0,
            ack_uid: 0,
            timestamp: 0,
        };
        out.push(NicOut::Inject(Packet {
            src: self.host,
            dst: peer,
            channel: 0,
            bytes,
            payload: frame,
        }));
    }

    /// Complete a small-message receive at the end of its processing time:
    /// re-check duplicates, deposit, and emit the (n)ack.
    fn finish_small_deposit(
        &mut self,
        now: SimTime,
        src: HostId,
        frame: Frame,
        out: &mut Vec<NicOut>,
    ) {
        let msg = match &frame.kind {
            FrameKind::Data(m) => m.clone(),
            _ => unreachable!("deposits are data frames"),
        };
        if self.cfg.mode == NicMode::Gam {
            if self.deposit(now, frame.dst_ep, msg, false, out).is_err() {
                self.stats.gam_overruns.inc();
            }
            return;
        }
        if self.dedup.contains(msg.uid) {
            self.stats.duplicates.inc();
            let h = self.host.0;
            self.audit(|a| a.on_duplicate_filtered(now, h, msg.uid));
            self.emit_ack_now(now, src, &frame, None, out);
            return;
        }
        match self.deposit(now, frame.dst_ep, msg.clone(), false, out) {
            Ok(()) => {
                self.dedup.insert(msg.uid, self.cfg.dedup_window);
                self.emit_ack_now(now, src, &frame, None, out);
            }
            Err(reason) => {
                self.stats.nacks_tx.inc();
                if let Some(t) = &mut self.tel {
                    t.instant(now, "nack_tx", format!("{reason:?} ep={} uid={:#x}", frame.dst_ep.0, msg.uid));
                }
                self.emit_ack_now(now, src, &frame, Some(reason), out);
                if reason == NackReason::NotResident {
                    self.request_residency(frame.dst_ep, out);
                }
            }
        }
    }

    /// Build and emit an ack immediately (we are already at the completion
    /// instant of the receive processing).
    fn emit_ack_now(
        &mut self,
        now: SimTime,
        to: HostId,
        data_frame: &Frame,
        nack: Option<NackReason>,
        out: &mut Vec<NicOut>,
    ) {
        let mut tmp = std::mem::take(&mut self.scratch_ack);
        self.send_ack(now, to, data_frame, nack, &mut tmp);
        for o in tmp.drain(..) {
            match o {
                NicOut::Inject(p) if p.dst == self.host => {
                    self.inbox.push_back(FwWork::Rx { src: self.host, frame: p.payload });
                    self.kick(now, out);
                }
                other => out.push(other),
            }
        }
        self.scratch_ack = tmp;
    }

    // -------------------------------------------------------- firmware loop

    /// Ensure a dispatch step is scheduled no later than the firmware's
    /// ready time.
    fn kick(&mut self, now: SimTime, out: &mut Vec<NicOut>) {
        let ready = now.max(self.fw_busy_until);
        if self.fw_scheduled_at <= ready {
            return;
        }
        self.fw_step_gen += 1;
        self.fw_scheduled_at = ready;
        out.push(NicOut::After(ready - now, NicEvent::FwStep { gen: self.fw_step_gen }));
    }

    /// Shift a firmware step's outward effects to the step's completion:
    /// packets leave and driver messages land after the processing time,
    /// and follow-up timers are measured from completion.
    fn defer(cost: SimDuration, tmp: &mut Vec<NicOut>, out: &mut Vec<NicOut>) {
        for o in tmp.drain(..) {
            match o {
                NicOut::Inject(p) => {
                    out.push(NicOut::After(cost, NicEvent::EmitPkt(Box::new(p))));
                }
                NicOut::Driver(m) => out.push(NicOut::After(cost, NicEvent::EmitDriver(m))),
                NicOut::After(d, ev) => out.push(NicOut::After(d + cost, ev)),
            }
        }
    }

    fn fw_step(&mut self, now: SimTime, out: &mut Vec<NicOut>) {
        if now < self.fw_busy_until {
            // The step fired inside the busy window (can happen when work
            // created mid-step re-armed the loop); re-arm at readiness.
            self.kick(now, out);
            return;
        }
        if let Some(work) = self.inbox.pop_front() {
            let mut tmp = std::mem::take(&mut self.scratch_step);
            let cost = match work {
                FwWork::Rx { src, frame } => self.process_rx(now, src, frame, &mut tmp),
                FwWork::Retx(key) => self.process_retx(now, key, &mut tmp),
                FwWork::Dma(tag) => self.process_dma_done(now, tag, &mut tmp),
                FwWork::Driver(op) => self.process_driver(now, op, &mut tmp),
            };
            self.fw_busy_until = now + cost;
            Self::defer(cost, &mut tmp, out);
            self.scratch_step = tmp;
            self.kick(now, out);
            return;
        }
        // Send-side service under WRR.
        let frames = &self.frames;
        let tx = &self.tx;
        let cpp = self.cfg.channels_per_peer;
        let gam = self.cfg.mode == NicMode::Gam;
        let pick = self.sched.select(now, |i| {
            let FrameSlot::Active { image, .. } = &frames[i] else { return false };
            if !image.head_eligible(now) {
                return false;
            }
            if gam {
                return true; // no channels in GAM mode
            }
            let dst = image.send_q.front().unwrap().dst.host;
            (0..cpp).any(|idx| {
                tx.get(&ChannelKey { peer: dst, idx }).map(|c| c.is_free()).unwrap_or(true)
            })
        });
        if let Some(fi) = pick {
            self.sched.served();
            let mut tmp = std::mem::take(&mut self.scratch_step);
            let cost = self.process_send(now, fi, &mut tmp);
            self.fw_busy_until = now + cost;
            Self::defer(cost, &mut tmp, out);
            self.scratch_step = tmp;
            self.kick(now, out);
            return;
        }
        // Idle: arm a wakeup for the earliest backoff expiry, if any.
        let mut next: Option<SimTime> = None;
        for slot in &self.frames {
            if let FrameSlot::Active { image, .. } = slot {
                if let Some(t) = image.head_not_before() {
                    if t > now {
                        next = Some(next.map_or(t, |n: SimTime| n.min(t)));
                    }
                }
            }
        }
        if let Some(t) = next {
            self.fw_step_gen += 1;
            self.fw_scheduled_at = t;
            out.push(NicOut::After(t - now, NicEvent::FwStep { gen: self.fw_step_gen }));
        }
    }

    // ------------------------------------------------------------- send path

    fn alloc_channel(&mut self, now: SimTime, peer: HostId) -> Option<ChannelKey> {
        let start = *self.chan_rr.entry(peer).or_insert(0);
        // Two-pass preference under a fault campaign: a free channel whose
        // route is up beats any free channel whose route is scheduled
        // down. Without an oracle every free channel is "up" and the
        // first pass decides, exactly as before.
        let mut fallback = None;
        for step in 0..self.cfg.channels_per_peer {
            let idx = (start + step) % self.cfg.channels_per_peer;
            let key = ChannelKey { peer, idx };
            let free =
                self.tx.entry(key).or_insert_with(|| ChannelState::new(self.cfg.rto_base)).is_free();
            if !free {
                continue;
            }
            if self.route_is_up(now, peer, idx) {
                self.chan_rr.insert(peer, (idx + 1) % self.cfg.channels_per_peer);
                return Some(key);
            }
            if fallback.is_none() {
                fallback = Some(key);
            }
        }
        if let Some(key) = fallback {
            self.chan_rr.insert(peer, (key.idx + 1) % self.cfg.channels_per_peer);
            return Some(key);
        }
        None
    }

    /// Find a free channel to `avoid.peer`, other than `avoid`, whose
    /// route is fully up at `now` — the failover target. No fallback: if
    /// every alternative is busy or scheduled down, the caller keeps
    /// retransmitting on the original binding.
    fn pick_up_channel(&mut self, now: SimTime, avoid: ChannelKey) -> Option<ChannelKey> {
        let start = *self.chan_rr.entry(avoid.peer).or_insert(0);
        for step in 0..self.cfg.channels_per_peer {
            let idx = (start + step) % self.cfg.channels_per_peer;
            if idx == avoid.idx {
                continue;
            }
            let key = ChannelKey { peer: avoid.peer, idx };
            let free =
                self.tx.entry(key).or_insert_with(|| ChannelState::new(self.cfg.rto_base)).is_free();
            if free && self.route_is_up(now, avoid.peer, idx) {
                self.chan_rr.insert(avoid.peer, (idx + 1) % self.cfg.channels_per_peer);
                return Some(key);
            }
        }
        None
    }

    /// Move the message bound on `from` to channel `to`, whose route is
    /// up (§5.1 multipath as failover). The old binding is unbound
    /// (invalidating its timer generation) and the message transmits on
    /// `to` immediately. The receiver's per-channel sequence state
    /// self-resynchronizes on the next frame ([`SeqClass::Resync`]) and
    /// the uid dedup window filters any copy still crawling along the old
    /// route, so FIFO-per-channel ordering (§5.3) and exactly-once
    /// delivery both survive the switch. `in_flight_per_ep` is untouched:
    /// the message never stops being in flight.
    fn failover(
        &mut self,
        now: SimTime,
        from: ChannelKey,
        to: ChannelKey,
        out: &mut Vec<NicOut>,
    ) -> SimDuration {
        let inf = self
            .tx
            .get_mut(&from)
            .and_then(|ch| ch.unbind(self.cfg.rto_base))
            .expect("failover with nothing bound");
        let uid = inf.uid;
        let h = self.host.0;
        self.audit(|a| a.on_channel_unbind(now, h, from.peer.0, from.idx, uid));
        let meta = self.pending_meta.remove(&uid);
        let (nacks, unbind_cycles, dst, pkey) =
            meta.unwrap_or((0, 0, GlobalEp::new(from.peer, inf.frame.dst_ep), inf.frame.key));
        let msg = match inf.frame.kind {
            FrameKind::Data(m) => m,
            _ => unreachable!("in-flight frames carry data"),
        };
        self.stats.failovers.inc();
        self.audit(|a| a.on_failover(now, h, uid));
        self.trace_with(now, "nic.failover", || {
            format!(
                "uid {uid} h{}#{} → #{} around scheduled-down route",
                from.peer.0, from.idx, to.idx
            )
        });
        if let Some(t) = &mut self.tel {
            t.retx_end(now, &from);
            t.instant(now, "failover", format!("uid={uid:#x} chan {} → {}", from.idx, to.idx));
        }
        let ps = PendingSend { uid, dst, key: pkey, msg, not_before: now, nacks, unbind_cycles };
        self.transmit(now, inf.src_ep, ps, to, out);
        self.cfg.costs.retransmit
    }

    fn process_send(&mut self, now: SimTime, fi: usize, out: &mut Vec<NicOut>) -> SimDuration {
        let FrameSlot::Active { ep, image } = &mut self.frames[fi] else {
            return SimDuration::ZERO;
        };
        let ep = *ep;
        let Some(ps) = image.send_q.pop_front() else { return SimDuration::ZERO };
        let bulk = ps.msg.is_bulk(self.cfg.pio_threshold);
        if self.cfg.mode == NicMode::Gam {
            return self.gam_send(now, ps, bulk, out);
        }
        let Some(chan) = self.alloc_channel(now, ps.dst.host) else {
            // Raced: the oracle saw a free channel but another frame's work
            // took it within this step. Put the descriptor back.
            let image = self.frames[fi].image_mut().unwrap();
            image.send_q.push_front(ps);
            return SimDuration::ZERO;
        };
        *self.in_flight_per_ep.entry(ep).or_insert(0) += 1;
        if bulk {
            // Stage payload host -> NI over the SBUS, then inject. The
            // channel is reserved now so a second bulk send cannot race it
            // during the DMA; the bind happens at completion.
            self.tx.get_mut(&chan).expect("allocated").reserved = true;
            let delay = self.dma.start(now, DmaDirection::ReadHost, ps.msg.payload_bytes);
            if let Some(t) = &mut self.tel {
                t.dma_span(now, now + delay, "dma_send_stage", ps.msg.payload_bytes);
            }
            let uid = ps.uid;
            self.staging_out.insert(uid, StagedSend { ps, chan, src_ep: ep });
            out.push(NicOut::After(delay, NicEvent::DmaDone(DmaTag::SendStaged { uid })));
            self.cfg.costs.send_bulk_setup
        } else {
            self.transmit(now, ep, ps, chan, out);
            self.cfg.costs.send_small
        }
    }

    /// Bind `ps` to `chan`, inject its data frame, and arm the
    /// retransmission timer.
    fn transmit(
        &mut self,
        now: SimTime,
        src_ep: EpId,
        ps: PendingSend,
        chan: ChannelKey,
        out: &mut Vec<NicOut>,
    ) {
        if let Some(t) = &mut self.tel {
            // A parked message (NACK backoff / post-unbind wait) is now
            // rebound: close its park span.
            t.park_end(now, ps.uid);
        }
        let frame = Frame {
            kind: FrameKind::Data(ps.msg.clone()),
            dst_ep: ps.dst.ep,
            key: ps.key,
            chan: chan.idx,
            seq: 0, // assigned by bind
            ack_uid: 0,
            timestamp: Self::ts32(now),
        };
        let bytes = ps.msg.wire_bytes();
        let inf = InFlight {
            uid: ps.uid,
            src_ep,
            frame,
            bytes,
            last_tx: now,
            retx: 0,
            gen: 0,
        };
        // Keep backoff/progress metadata with the channel binding by stashing
        // the PendingSend fields we need on unbind inside the frame's msg —
        // nacks/unbind_cycles are carried in `pending_meta`.
        let ch = self.tx.get_mut(&chan).expect("channel allocated");
        let _seq = ch.bind(inf);
        let inf = ch.in_flight.as_mut().unwrap();
        inf.frame.seq = _seq;
        self.pending_meta.insert(ps.uid, (ps.nacks, ps.unbind_cycles, ps.dst, ps.key));
        let gen = inf.gen;
        let ch_rto = ch.rto;
        let base = self.rto_for(chan.peer, ch_rto, ps.msg.payload_bytes);
        let rto = base.mul_f64(self.rng.jitter(0.25));
        let pkt = Packet {
            src: self.host,
            dst: chan.peer,
            channel: chan.idx,
            bytes,
            payload: self.tx[&chan].in_flight.as_ref().unwrap().frame.clone(),
        };
        self.emit(pkt, out);
        out.push(NicOut::After(rto, NicEvent::Retx { key: chan, gen }));
        self.stats.data_sent.inc();
        let h = self.host.0;
        self.audit(|a| a.on_channel_bind(now, h, chan.peer.0, chan.idx, ps.uid, _seq));
        // Recovery invariant (§3.2): with a campaign oracle attached, a
        // send planned over a scheduled-down route while a free channel
        // with an up route existed means failover failed to do its job.
        if self.oracle_active()
            && !self.route_is_up(now, chan.peer, chan.idx)
            && self.has_free_up_alternative(now, chan)
        {
            self.audit(|a| a.on_down_route_send(now, h, chan.peer.0, chan.idx, ps.uid));
        }
    }

    /// Whether a channel other than `chan` to the same peer is free and
    /// has a fully-up route at `now` (the "could have routed around it"
    /// half of the down-route recovery invariant).
    fn has_free_up_alternative(&mut self, now: SimTime, chan: ChannelKey) -> bool {
        for idx in 0..self.cfg.channels_per_peer {
            if idx == chan.idx {
                continue;
            }
            let free = self
                .tx
                .get(&ChannelKey { peer: chan.peer, idx })
                .is_none_or(ChannelState::is_free);
            if free && self.route_is_up(now, chan.peer, idx) {
                return true;
            }
        }
        false
    }

    fn gam_send(
        &mut self,
        now: SimTime,
        ps: PendingSend,
        bulk: bool,
        out: &mut Vec<NicOut>,
    ) -> SimDuration {
        if bulk {
            let delay = self.dma.start(now, DmaDirection::ReadHost, ps.msg.payload_bytes);
            if let Some(t) = &mut self.tel {
                t.dma_span(now, now + delay, "dma_send_stage", ps.msg.payload_bytes);
            }
            let uid = ps.uid;
            let chan = ChannelKey { peer: ps.dst.host, idx: 0 };
            self.staging_out.insert(uid, StagedSend { ps, chan, src_ep: EpId(0) });
            out.push(NicOut::After(delay, NicEvent::DmaDone(DmaTag::SendStaged { uid })));
            self.cfg.costs.send_bulk_setup
        } else {
            let frame = Frame {
                kind: FrameKind::Data(ps.msg.clone()),
                dst_ep: ps.dst.ep,
                key: ps.key,
                chan: 0,
                seq: 0,
                ack_uid: 0,
                timestamp: Self::ts32(now),
            };
            self.emit(
                Packet {
                    src: self.host,
                    dst: ps.dst.host,
                    channel: 0,
                    bytes: ps.msg.wire_bytes(),
                    payload: frame,
                },
                out,
            );
            self.stats.data_sent.inc();
            self.cfg.costs.send_small
        }
    }

    // ---------------------------------------------------------- receive path

    fn process_rx(
        &mut self,
        now: SimTime,
        src: HostId,
        frame: Frame,
        out: &mut Vec<NicOut>,
    ) -> SimDuration {
        match frame.kind {
            FrameKind::Data(ref m) => {
                let msg = Arc::clone(m);
                self.process_data(now, src, frame, msg, out)
            }
            FrameKind::Ack => self.process_ack(now, src, frame, None, out),
            FrameKind::Nack(r) => self.process_ack(now, src, frame, Some(r), out),
            FrameKind::AckBatch(entries) => {
                let n = entries.len().max(1);
                for e in entries {
                    self.handle_ack_entry(now, src, e.chan, e.uid, e.timestamp, None, out);
                }
                self.cfg.costs.ack + self.cfg.costs.ack_entry() * (n as u64 - 1)
            }
        }
    }

    fn process_data(
        &mut self,
        now: SimTime,
        src: HostId,
        frame: Frame,
        msg: Arc<UserMsg>,
        out: &mut Vec<NicOut>,
    ) -> SimDuration {
        let bulk = msg.is_bulk(self.cfg.pio_threshold);
        // Sequence bookkeeping (self-synchronizing; exactness comes from the
        // dedup window below).
        let rxk = ChannelKey { peer: src, idx: frame.chan };
        if self.rx.entry(rxk).or_default().accept(frame.seq) == SeqClass::Resync {
            // Sender epoch advanced (unbind churn or failover rebind);
            // sequencing state adopted (§5.1 self-resynchronization).
            self.stats.resyncs.inc();
        }

        if self.cfg.mode == NicMode::Gam {
            return self.gam_receive(now, src, frame, msg, bulk, out);
        }
        // Duplicate? Ack again, deliver nothing.
        if self.dedup.contains(msg.uid) {
            self.stats.duplicates.inc();
            let h = self.host.0;
            self.audit(|a| a.on_duplicate_filtered(now, h, msg.uid));
            self.send_ack(now, src, &frame, None, out);
            return self.cfg.costs.recv_small;
        }
        // A copy of a bulk frame whose first copy is still staging through
        // the SBUS: drop it silently — the staged copy will ack on deposit.
        if self.staging_in.contains_key(&msg.uid) {
            self.stats.duplicates.inc();
            let h = self.host.0;
            self.audit(|a| a.on_duplicate_filtered(now, h, msg.uid));
            return self.cfg.costs.recv_small;
        }
        // Admission checks (fast, before any DMA).
        if let Some(reason) = self.admission_check(&frame, &msg) {
            self.stats.nacks_tx.inc();
            if let Some(t) = &mut self.tel {
                t.instant(now, "nack_tx", format!("{reason:?} ep={} uid={:#x}", frame.dst_ep.0, msg.uid));
            }
            self.send_ack(now, src, &frame, Some(reason), out);
            if reason == NackReason::NotResident {
                self.request_residency(frame.dst_ep, out);
            }
            return self.cfg.costs.recv_small;
        }
        if bulk {
            // Stage NI -> host over the SBUS; deposit + ack on completion.
            // Staging SRAM is finite: an arrival beyond the buffer budget
            // draws a transient NACK and the sender backs off, exactly the
            // self-regulation receive-queue overruns get (§6.4.1).
            if self.staging_in.len() >= self.cfg.recv_staging_bufs {
                self.stats.nacks_tx.inc();
                if let Some(t) = &mut self.tel {
                    t.instant(now, "nack_tx", format!("RecvQueueFull uid={:#x}", msg.uid));
                }
                self.send_ack(now, src, &frame, Some(NackReason::RecvQueueFull), out);
                return self.cfg.costs.recv_small;
            }
            let delay = self.dma.start(now, DmaDirection::WriteHost, msg.payload_bytes);
            if let Some(t) = &mut self.tel {
                t.dma_span(now, now + delay, "dma_recv_stage", msg.payload_bytes);
            }
            let uid = msg.uid;
            self.staging_in.insert(uid, StagedRecv { src, frame });
            out.push(NicOut::After(delay, NicEvent::DmaDone(DmaTag::RecvStaged { uid })));
            self.cfg.costs.recv_bulk_setup
        } else {
            // A queue-capacity check ran in admission; the deposit itself
            // lands when the receive processing completes (After(0) here is
            // shifted by the step cost in `defer`).
            out.push(NicOut::After(
                SimDuration::ZERO,
                NicEvent::DepositSmall { src, frame: Box::new(frame) },
            ));
            self.cfg.costs.recv_small
        }
    }

    /// Pre-deposit admission: endpoint existence, residency, key.
    fn admission_check(&self, frame: &Frame, _msg: &UserMsg) -> Option<NackReason> {
        let ep = frame.dst_ep;
        if !self.registered.contains(&ep) {
            return Some(NackReason::NoSuchEndpoint);
        }
        match self.ep_frame.get(&ep).map(|&i| &self.frames[i]) {
            Some(FrameSlot::Active { image, .. }) => {
                if image.key != frame.key {
                    Some(NackReason::BadKey)
                } else {
                    None
                }
            }
            // Loading / draining endpoints are not yet/no longer serviceable.
            Some(_) | None => Some(NackReason::NotResident),
        }
    }

    fn request_residency(&mut self, ep: EpId, out: &mut Vec<NicOut>) {
        // Suppress while loading (already on its way) or draining (the
        // driver just decided to evict it; the sender's retry will re-raise
        // after the unload completes).
        let in_transition = self.ep_frame.get(&ep).map(|&i| !self.frames[i].is_active() && self.frames[i].occupant().is_some()).unwrap_or(false);
        if in_transition {
            return;
        }
        if self.need_resident_pending.insert(ep) {
            let clock = self.tick_clock(0);
            self.stats.resident_requests.inc();
            out.push(NicOut::Driver(DriverMsg::NeedResident { ep, clock }));
        }
    }

    fn gam_receive(
        &mut self,
        now: SimTime,
        _src: HostId,
        frame: Frame,
        msg: Arc<UserMsg>,
        bulk: bool,
        out: &mut Vec<NicOut>,
    ) -> SimDuration {
        if bulk {
            // First-generation interface: single-buffered staging — the
            // wire -> NI SRAM copy cannot overlap the SBUS transfer, so it
            // occupies the staging pipeline serially (the store-and-forward
            // penalty that virtual networks pipeline away, §6.1).
            let penalty =
                SimDuration::for_bytes(msg.payload_bytes as u64, self.cfg.link_mb_s_hint);
            let delay = self.dma.start_with_overhead(
                now,
                DmaDirection::WriteHost,
                msg.payload_bytes,
                penalty,
            );
            if let Some(t) = &mut self.tel {
                t.dma_span(now, now + delay, "dma_recv_stage", msg.payload_bytes);
            }
            let uid = msg.uid;
            self.staging_in.insert(uid, StagedRecv { src: _src, frame });
            out.push(NicOut::After(delay, NicEvent::DmaDone(DmaTag::RecvStaged { uid })));
            self.cfg.costs.recv_bulk_setup
        } else {
            out.push(NicOut::After(
                SimDuration::ZERO,
                NicEvent::DepositSmall { src: _src, frame: Box::new(frame) },
            ));
            let _ = msg;
            self.cfg.costs.recv_small
        }
    }

    /// Deposit into the endpoint's receive queue; raises a driver event on
    /// empty→nonempty transitions when the mask asks for it.
    fn deposit(
        &mut self,
        now: SimTime,
        ep: EpId,
        msg: Arc<UserMsg>,
        undeliverable: bool,
        out: &mut Vec<NicOut>,
    ) -> Result<(), NackReason> {
        let uid = msg.uid;
        let Some(&fi) = self.ep_frame.get(&ep) else { return Err(NackReason::NotResident) };
        if !self.frames[fi].is_active() {
            return Err(NackReason::NotResident);
        }
        let depth = self.cfg.recv_queue_depth;
        let image = self.frames[fi].image_mut().unwrap();
        let q = if msg.is_request && !undeliverable {
            &mut image.recv_req
        } else {
            &mut image.recv_rep
        };
        if q.len() >= depth {
            return Err(NackReason::RecvQueueFull);
        }
        let was_idle = !image.has_received();
        let q = if msg.is_request && !undeliverable {
            &mut image.recv_req
        } else {
            &mut image.recv_rep
        };
        q.push_back(DeliveredMsg { msg, undeliverable, deposited_at: now });
        self.stats.deposits.inc();
        let image = self.frames[fi].image().unwrap();
        if was_idle && image.notify_on_arrival {
            let clock = self.tick_clock(0);
            out.push(NicOut::Driver(DriverMsg::Event { ep, clock }));
        }
        if !undeliverable {
            let h = self.host.0;
            self.audit(|a| a.on_delivered(now, h, uid));
        }
        Ok(())
    }

    fn send_ack(
        &mut self,
        now: SimTime,
        to: HostId,
        data_frame: &Frame,
        nack: Option<NackReason>,
        out: &mut Vec<NicOut>,
    ) {
        let uid = match &data_frame.kind {
            FrameKind::Data(m) => m.uid,
            _ => unreachable!("acks acknowledge data frames"),
        };
        // Positive acks may coalesce (§8 piggybacking); NACKs never wait.
        if nack.is_none() && to != self.host {
            if let Some(window) = self.cfg.ack_coalesce {
                let buf = self.ack_buf.entry(to).or_default();
                buf.push(AckEntry {
                    chan: data_frame.chan,
                    seq: data_frame.seq,
                    uid,
                    timestamp: data_frame.timestamp,
                });
                let len = buf.len();
                if len >= self.cfg.ack_coalesce_max {
                    self.flush_acks(to, out);
                } else if len == 1 {
                    let gen = self.ack_flush_gen.entry(to).or_insert(0);
                    *gen += 1;
                    let gen = *gen;
                    out.push(NicOut::After(window, NicEvent::FlushAcks { peer: to, gen }));
                }
                return;
            }
        }
        let frame = Frame {
            kind: match nack {
                None => FrameKind::Ack,
                Some(r) => FrameKind::Nack(r),
            },
            dst_ep: data_frame.dst_ep,
            key: data_frame.key,
            chan: data_frame.chan,
            seq: data_frame.seq,
            ack_uid: uid,
            timestamp: data_frame.timestamp, // reflected (§5.1)
        };
        self.emit(
            Packet { src: self.host, dst: to, channel: data_frame.chan, bytes: 0, payload: frame },
            out,
        );
        let _ = now;
    }

    // -------------------------------------------------------------- ack path

    fn process_ack(
        &mut self,
        now: SimTime,
        src: HostId,
        frame: Frame,
        nack: Option<NackReason>,
        out: &mut Vec<NicOut>,
    ) -> SimDuration {
        self.handle_ack_entry(now, src, frame.chan, frame.ack_uid, frame.timestamp, nack, out);
        self.cfg.costs.ack
    }

    /// Channel bookkeeping for one acknowledgment (shared by single acks
    /// and batch entries).
    #[allow(clippy::too_many_arguments)]
    fn handle_ack_entry(
        &mut self,
        now: SimTime,
        src: HostId,
        chan: u8,
        ack_uid: u64,
        timestamp: u32,
        nack: Option<NackReason>,
        out: &mut Vec<NicOut>,
    ) {
        let key = ChannelKey { peer: src, idx: chan };
        let completed = self
            .tx
            .get_mut(&key)
            .and_then(|ch| ch.complete(ack_uid, self.cfg.rto_base));
        let Some(inf) = completed else {
            return; // stale ack of an unbound copy
        };
        let h = self.host.0;
        self.audit(|a| a.on_channel_complete(now, h, src.0, chan, ack_uid));
        if let Some(t) = &mut self.tel {
            // The channel produced an acknowledgment: any open
            // retransmission episode on it is over.
            t.retx_end(now, &key);
        }
        self.dec_in_flight(now, inf.src_ep, out);
        // Observed RTT via the reflected timestamp. Because the receiver
        // echoes the timestamp of the specific copy it saw, the sample is
        // unambiguous even for retransmitted frames (no Karn's rule
        // needed — the reason §5.1 puts a timestamp in every link header).
        let rtt = Self::ts32(now).wrapping_sub(timestamp);
        self.stats.rtt_us.record(rtt as f64);
        if self.cfg.adaptive_rto && nack.is_none() {
            self.observe_rtt(src, rtt as f64);
        }
        let meta = self.pending_meta.remove(&inf.uid);
        match nack {
            None => {
                self.stats.acks_rx.inc();
                // If this message had entered a retransmission episode,
                // the ack ends it: sample the time from first timer
                // expiry to acknowledgment (the recovery distribution).
                if let Some(t0) = self.troubled.remove(&inf.uid) {
                    self.stats.recovery_us.record((now - t0).as_micros_f64());
                }
            }
            Some(reason) => {
                self.stats.record_nack_rx(reason);
                let (nacks, unbind_cycles, dst, pkey) = meta.unwrap_or((
                    0,
                    0,
                    GlobalEp::new(src, inf.frame.dst_ep),
                    inf.frame.key,
                ));
                let msg = match inf.frame.kind {
                    FrameKind::Data(m) => m,
                    _ => unreachable!("in-flight frames carry data"),
                };
                if reason.is_transient() {
                    // Park for a backoff and retry (§6.4.1: "negatively
                    // acknowledged and retransmitted later").
                    let exp = nacks.min(5);
                    let delay = self
                        .cfg
                        .nack_retry_base
                        .saturating_mul(1 << exp)
                        .min(self.cfg.nack_retry_max)
                        .mul_f64(self.rng.jitter(0.3));
                    if let Some(t) = &mut self.tel {
                        t.instant(now, "nack_rx", format!("{reason:?} uid={:#x}", inf.uid));
                        t.park_begin(
                            now,
                            inf.uid,
                            "nack_backoff",
                            format!(
                                "{reason:?} nacks={} delay={:.1}us",
                                nacks + 1,
                                delay.as_micros_f64()
                            ),
                        );
                    }
                    self.park_for_retry(
                        now,
                        inf.src_ep,
                        PendingSend {
                            uid: inf.uid,
                            dst,
                            key: pkey,
                            msg,
                            not_before: now + delay,
                            nacks: nacks + 1,
                            unbind_cycles,
                        },
                        out,
                    );
                } else {
                    // Hard failure: return to sender (§3.2).
                    self.return_to_sender(now, inf.src_ep, msg, out);
                }
            }
        }
    }

    fn dec_in_flight(&mut self, now: SimTime, ep: EpId, out: &mut Vec<NicOut>) {
        if let Some(c) = self.in_flight_per_ep.get_mut(&ep) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.in_flight_per_ep.remove(&ep);
                self.maybe_start_unload_dma(now, ep, out);
            }
        }
    }

    /// Put a message back on its endpoint's send queue for a later retry.
    /// If the endpoint has vanished mid-flight (freed), the message is
    /// dropped — process teardown discards its traffic.
    fn park_for_retry(
        &mut self,
        now: SimTime,
        ep: EpId,
        ps: PendingSend,
        out: &mut Vec<NicOut>,
    ) {
        let _ = &out;
        if let Some(&fi) = self.ep_frame.get(&ep) {
            if let Some(image) = self.frames[fi].image_mut() {
                image.send_q.push_front(ps);
                return;
            }
        }
        // Endpoint gone mid-flight (freed): teardown discards its traffic.
        self.troubled.remove(&ps.uid);
        let h = self.host.0;
        self.audit(|a| a.on_send_aborted(now, h, ps.uid));
        self.trace_with(now, "nic.abort", || format!("uid {} dropped: {ep} gone", ps.uid));
        if let Some(t) = &mut self.tel {
            t.park_end(now, ps.uid);
            t.instant(now, "send_aborted", format!("uid={:#x} ep={} gone", ps.uid, ep.0));
        }
    }

    /// Deliver `msg` back to its source endpoint marked undeliverable.
    fn return_to_sender(&mut self, now: SimTime, ep: EpId, msg: Arc<UserMsg>, out: &mut Vec<NicOut>) {
        self.stats.returned_to_sender.inc();
        let h = self.host.0;
        let uid = msg.uid;
        self.troubled.remove(&uid); // bounced, not recovered: no sample
        self.audit(|a| a.on_bounced(now, h, uid));
        self.trace_with(now, "nic.bounce", || format!("uid {uid} returned to sender ({ep})"));
        if let Some(t) = &mut self.tel {
            t.park_end(now, uid);
            t.instant(now, "bounce", format!("uid={uid:#x} ep={}", ep.0));
        }
        if self.deposit(now, ep, msg.clone(), true, out).is_err() {
            // Not resident or queue full: hold and flush later.
            self.pending_returns.entry(ep).or_default().push_back(DeliveredMsg {
                msg,
                undeliverable: true,
                deposited_at: now,
            });
            self.request_residency(ep, out);
        }
    }

    fn flush_pending_returns(&mut self, ep: EpId) {
        let Some(q) = self.pending_returns.get_mut(&ep) else { return };
        let Some(&fi) = self.ep_frame.get(&ep) else { return };
        if !self.frames[fi].is_active() {
            return;
        }
        let depth = self.cfg.recv_queue_depth;
        let image = self.frames[fi].image_mut().unwrap();
        while image.recv_rep.len() < depth {
            match q.pop_front() {
                Some(m) => image.recv_rep.push_back(m),
                None => break,
            }
        }
        if q.is_empty() {
            self.pending_returns.remove(&ep);
        }
    }

    // ----------------------------------------------------------- retransmit

    fn process_retx(&mut self, now: SimTime, key: ChannelKey, out: &mut Vec<NicOut>) -> SimDuration {
        let Some(ch) = self.tx.get_mut(&key) else { return SimDuration::ZERO };
        let Some(inf) = ch.in_flight.as_ref() else { return SimDuration::ZERO };
        // A retransmission timer fired: this message is in trouble. Note
        // when the episode began for the time-to-recovery distribution.
        self.troubled.entry(inf.uid).or_insert(now);
        // Failover first (§5.1 multipath as §3.2 hot-swap recovery): if
        // the bound route crosses a *scheduled* down link and a free
        // channel with an up route exists, move the message there instead
        // of retransmitting into a known hole. With no alternate route
        // the normal retransmit-until-unbind path below takes over.
        if self.oracle_active() && !self.route_is_up(now, key.peer, key.idx) {
            if let Some(alt) = self.pick_up_channel(now, key) {
                return self.failover(now, key, alt, out);
            }
        }
        let Some(ch) = self.tx.get_mut(&key) else { return SimDuration::ZERO };
        let Some(inf) = ch.in_flight.as_ref() else { return SimDuration::ZERO };
        if inf.retx + 1 > self.cfg.max_retx_before_unbind {
            // Unbind so the shared channel can be reused (§5.1).
            let inf = ch.unbind(self.cfg.rto_base).unwrap();
            self.stats.unbinds.inc();
            let h = self.host.0;
            let uid = inf.uid;
            self.audit(|a| a.on_channel_unbind(now, h, key.peer.0, key.idx, uid));
            self.dec_in_flight(now, inf.src_ep, out);
            let meta = self.pending_meta.remove(&inf.uid);
            let (nacks, unbind_cycles, dst, pkey) = meta.unwrap_or((
                0,
                0,
                GlobalEp::new(key.peer, inf.frame.dst_ep),
                inf.frame.key,
            ));
            self.trace_with(now, "nic.unbind", || {
                format!(
                    "uid {uid} → h{}#{} after {} retx (unbind cycle {})",
                    key.peer.0,
                    key.idx,
                    inf.retx,
                    unbind_cycles + 1
                )
            });
            if let Some(t) = &mut self.tel {
                t.retx_end(now, &key);
                t.instant(
                    now,
                    "unbind",
                    format!("uid={uid:#x} after {} retx (cycle {})", inf.retx, unbind_cycles + 1),
                );
            }
            let msg = match inf.frame.kind {
                FrameKind::Data(m) => m,
                _ => unreachable!(),
            };
            if unbind_cycles + 1 > self.cfg.max_unbind_cycles {
                // Prolonged absence of acknowledgments: unrecoverable (§5.1).
                self.return_to_sender(now, inf.src_ep, msg, out);
            } else {
                let delay = self.cfg.rto_max.mul_f64(self.rng.jitter(0.3));
                if let Some(t) = &mut self.tel {
                    t.park_begin(
                        now,
                        uid,
                        "unbind_backoff",
                        format!(
                            "cycle {} delay={:.1}us",
                            unbind_cycles + 1,
                            delay.as_micros_f64()
                        ),
                    );
                }
                self.park_for_retry(
                    now,
                    inf.src_ep,
                    PendingSend {
                        uid: inf.uid,
                        dst,
                        key: pkey,
                        msg,
                        not_before: now + delay,
                        nacks,
                        unbind_cycles: unbind_cycles + 1,
                    },
                    out,
                );
            }
            return self.cfg.costs.retransmit;
        }
        ch.on_retransmit(self.cfg.rto_max);
        let inf = ch.in_flight.as_mut().unwrap();
        inf.last_tx = now;
        inf.frame.timestamp = Self::ts32(now);
        let pkt = Packet {
            src: self.host,
            dst: key.peer,
            channel: key.idx,
            bytes: inf.bytes,
            payload: inf.frame.clone(),
        };
        let gen = inf.gen;
        let uid = inf.uid;
        let n_retx = inf.retx;
        let payload_bytes = match &inf.frame.kind {
            FrameKind::Data(m) => m.payload_bytes,
            _ => 0,
        };
        let ch_rto = ch.rto;
        let rto = self.rto_for(key.peer, ch_rto, payload_bytes).mul_f64(self.rng.jitter(0.25));
        self.emit(pkt, out);
        out.push(NicOut::After(rto, NicEvent::Retx { key, gen }));
        self.stats.retransmits.inc();
        if let Some(t) = &mut self.tel {
            // Opens the channel's retransmission episode on the first
            // retransmit of this binding (idempotent on later ones).
            t.retx_begin(now, key, uid);
        }
        let h = self.host.0;
        self.audit(|a| a.on_channel_retransmit(now, h, key.peer.0, key.idx, uid));
        self.trace_with(now, "nic.retx", || {
            format!(
                "uid {uid} → h{}#{} retx {} next rto {:.1}us",
                key.peer.0,
                key.idx,
                n_retx,
                rto.as_micros_f64()
            )
        });
        self.cfg.costs.retransmit
    }

    // ---------------------------------------------------------------- DMA

    fn process_dma_done(&mut self, now: SimTime, tag: DmaTag, out: &mut Vec<NicOut>) -> SimDuration {
        match tag {
            DmaTag::SendStaged { uid } => {
                let Some(st) = self.staging_out.remove(&uid) else { return SimDuration::ZERO };
                if self.cfg.mode == NicMode::Gam {
                    let frame = Frame {
                        kind: FrameKind::Data(st.ps.msg.clone()),
                        dst_ep: st.ps.dst.ep,
                        key: st.ps.key,
                        chan: 0,
                        seq: 0,
                        ack_uid: 0,
                        timestamp: Self::ts32(now),
                    };
                    self.emit(
                        Packet {
                            src: self.host,
                            dst: st.ps.dst.host,
                            channel: 0,
                            bytes: st.ps.msg.wire_bytes(),
                            payload: frame,
                        },
                        out,
                    );
                    self.stats.data_sent.inc();
                } else {
                    self.transmit(now, st.src_ep, st.ps, st.chan, out);
                }
                self.cfg.costs.send_bulk_finish
            }
            DmaTag::RecvStaged { uid } => {
                let Some(st) = self.staging_in.remove(&uid) else { return SimDuration::ZERO };
                let msg = match &st.frame.kind {
                    FrameKind::Data(m) => m.clone(),
                    _ => unreachable!(),
                };
                if self.cfg.mode == NicMode::Gam {
                    if self.deposit(now, st.frame.dst_ep, msg, false, out).is_err() {
                        self.stats.gam_overruns.inc();
                    }
                } else {
                    match self.deposit(now, st.frame.dst_ep, msg.clone(), false, out) {
                        Ok(()) => {
                            self.dedup.insert(uid, self.cfg.dedup_window);
                            self.send_ack(now, st.src, &st.frame, None, out);
                        }
                        Err(reason) => {
                            self.stats.nacks_tx.inc();
                            self.send_ack(now, st.src, &st.frame, Some(reason), out);
                            if reason == NackReason::NotResident {
                                self.request_residency(st.frame.dst_ep, out);
                            }
                        }
                    }
                }
                self.cfg.costs.recv_bulk_finish
            }
            DmaTag::LoadDone { ep } => {
                let &fi = self.ep_frame.get(&ep).expect("loading ep has a frame");
                let slot = std::mem::replace(&mut self.frames[fi], FrameSlot::Free);
                let FrameSlot::Loading { image, clock: _, .. } = slot else {
                    panic!("LoadDone for a frame not in Loading state");
                };
                self.frames[fi] = FrameSlot::Active { ep, image };
                self.stats.loads.inc();
                self.flush_pending_returns(ep);
                let clock = self.tick_clock(0);
                out.push(NicOut::Driver(DriverMsg::Loaded { ep, clock }));
                self.cfg.costs.driver_op / 2
            }
            DmaTag::UnloadDone { ep } => {
                let Some(&fi) = self.ep_frame.get(&ep) else { return SimDuration::ZERO };
                let slot = std::mem::replace(&mut self.frames[fi], FrameSlot::Free);
                let FrameSlot::Draining { image, .. } = slot else {
                    panic!("UnloadDone for a frame not in Draining state");
                };
                self.ep_frame.remove(&ep);
                self.unload_dma_started.remove(&ep);
                self.stats.unloads.inc();
                let clock = self.tick_clock(0);
                out.push(NicOut::Driver(DriverMsg::Unloaded { ep, image, clock }));
                self.cfg.costs.driver_op / 2
            }
        }
    }

    // ------------------------------------------------------------- driver ops

    fn process_driver(&mut self, now: SimTime, op: DriverOp, out: &mut Vec<NicOut>) -> SimDuration {
        match op {
            DriverOp::Load { ep, image, clock } => {
                self.tick_clock(clock);
                self.need_resident_pending.remove(&ep);
                let fi = self
                    .frames
                    .iter()
                    .position(|s| matches!(s, FrameSlot::Free))
                    .expect("driver must evict before loading into a full NI");
                self.frames[fi] = FrameSlot::Loading { ep, image, clock };
                self.ep_frame.insert(ep, fi);
                let delay = self.dma.start(now, DmaDirection::ReadHost, self.cfg.frame_bytes);
                if let Some(t) = &mut self.tel {
                    t.dma_span(now, now + delay, "dma_ep_load", self.cfg.frame_bytes);
                }
                out.push(NicOut::After(delay, NicEvent::DmaDone(DmaTag::LoadDone { ep })));
                self.cfg.costs.driver_op
            }
            DriverOp::Unload { ep, clock } => {
                self.tick_clock(clock);
                let &fi = self.ep_frame.get(&ep).expect("unload of a non-resident endpoint");
                let slot = std::mem::replace(&mut self.frames[fi], FrameSlot::Free);
                let FrameSlot::Active { image, .. } = slot else {
                    panic!("unload of a frame not in Active state");
                };
                self.frames[fi] = FrameSlot::Draining { ep, image, clock };
                self.maybe_start_unload_dma(now, ep, out);
                self.cfg.costs.driver_op
            }
            DriverOp::SetMask { ep, notify_on_arrival, clock } => {
                self.tick_clock(clock);
                if let Some(&fi) = self.ep_frame.get(&ep) {
                    if let Some(image) = self.frames[fi].image_mut() {
                        image.notify_on_arrival = notify_on_arrival;
                    }
                }
                self.cfg.costs.driver_op / 10
            }
            DriverOp::Register { ep, clock } => {
                self.tick_clock(clock);
                self.registered.insert(ep);
                self.cfg.costs.driver_op / 10
            }
            DriverOp::Unregister { ep, clock } => {
                self.tick_clock(clock);
                self.registered.remove(&ep);
                self.need_resident_pending.remove(&ep);
                self.pending_returns.remove(&ep);
                // Abort any bulk sends still staging over the SBUS for the
                // departing endpoint and release their reserved channels, so
                // teardown cannot leak a lane (the later SendStaged DMA
                // completion finds no staging entry and is a no-op).
                let doomed: Vec<u64> = self
                    .staging_out
                    .iter()
                    .filter(|(_, s)| s.src_ep == ep)
                    .map(|(&uid, _)| uid)
                    .collect();
                for uid in doomed {
                    let st = self.staging_out.remove(&uid).expect("collected above");
                    if let Some(ch) = self.tx.get_mut(&st.chan) {
                        ch.reserved = false;
                    }
                    self.pending_meta.remove(&uid);
                    self.dec_in_flight(now, ep, out);
                    let h = self.host.0;
                    self.audit(|a| a.on_send_aborted(now, h, uid));
                    self.trace_with(now, "nic.abort", || {
                        format!("uid {uid} staged DMA aborted: {ep} unregistered")
                    });
                }
                self.cfg.costs.driver_op / 10
            }
        }
    }

    /// Begin the unload DMA once the draining endpoint has quiesced: no
    /// in-flight messages still reference it (§5.3).
    fn maybe_start_unload_dma(&mut self, now: SimTime, ep: EpId, out: &mut Vec<NicOut>) {
        let Some(&fi) = self.ep_frame.get(&ep) else { return };
        if !matches!(self.frames[fi], FrameSlot::Draining { .. }) {
            return;
        }
        let in_flight = self.in_flight_per_ep.get(&ep).copied().unwrap_or(0);
        let staging = self.staging_out.values().any(|s| s.src_ep == ep);
        if in_flight == 0 && !staging && self.unload_dma_started.insert(ep) {
            let delay = self.dma.start(now, DmaDirection::WriteHost, self.cfg.frame_bytes);
            if let Some(t) = &mut self.tel {
                t.dma_span(now, now + delay, "dma_ep_unload", self.cfg.frame_bytes);
            }
            out.push(NicOut::After(delay, NicEvent::DmaDone(DmaTag::UnloadDone { ep })));
        }
    }
}

impl Nic {
    /// One-line diagnostic dump of the firmware state (send queues,
    /// channels, scheduling horizon) for debugging stalls.
    pub fn diagnostic_summary(&self, now: SimTime) -> String {
        let mut sendq = Vec::new();
        for slot in &self.frames {
            if let Some(ep) = slot.occupant() {
                if let Some(img) = slot.image() {
                    sendq.push(format!(
                        "{ep}:q{}nb{:?}",
                        img.send_q.len(),
                        img.head_not_before().map(|t| t.as_micros_f64())
                    ));
                }
            }
        }
        let busy_ch = self
            .tx
            .iter()
            .filter(|(_, c)| !c.is_free())
            .map(|(k, c)| {
                format!(
                    "{}#{}:{:?}r{}",
                    k.peer,
                    k.idx,
                    c.in_flight.as_ref().map(|i| i.uid),
                    c.reserved
                )
            })
            .collect::<Vec<_>>();
        format!(
            "now={} fw_busy_until={} sched_at={:?} gen={} inbox={} sendq=[{}] busy_ch=[{}] staging_out={} in_flight={:?}",
            now,
            self.fw_busy_until,
            if self.fw_scheduled_at == SimTime::MAX {
                None
            } else {
                Some(self.fw_scheduled_at.as_micros_f64())
            },
            self.fw_step_gen,
            self.inbox.len(),
            sendq.join(","),
            busy_ch.join(","),
            self.staging_out.len(),
            self.in_flight_per_ep,
        )
    }

    /// Number of endpoints currently bound to frames (any phase).
    pub fn resident_count(&self) -> usize {
        self.ep_frame.len()
    }

    /// Number of free frames.
    pub fn free_frames(&self) -> usize {
        self.frames.iter().filter(|s| matches!(s, FrameSlot::Free)).count()
    }

    /// Number of bulk sends currently staging host→NI over the SBUS.
    pub fn staging_count(&self) -> usize {
        self.staging_out.len()
    }

    /// Number of transmit channels currently occupied — bound to an
    /// in-flight frame or reserved by a staging bulk send.
    pub fn busy_channel_count(&self) -> usize {
        self.tx.values().filter(|c| !c.is_free()).count()
    }
}
