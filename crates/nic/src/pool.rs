//! Recycling allocator for wire-message boxes.
//!
//! Every message on the wire is an `Arc<UserMsg>` (see
//! [`crate::msg::FrameKind::Data`]). On the fire-and-forget abstract
//! path a fleet-scale run allocates and frees one box per message —
//! millions of malloc/free pairs that dominate the hot loop and fragment
//! the heap. A [`FramePool`] keeps a bounded LIFO of boxes whose last
//! reference has been dropped back to it; the next send overwrites the
//! recycled box in place (`Arc::get_mut`) instead of allocating.
//!
//! The pool is plain per-owner state: no sharing, no interior
//! mutability, LIFO order. It moves wholesale with its owning host
//! across shard splits, so recycling is invisible to the parallel
//! executor's determinism contract — the same sends produce the same
//! bytes whether a box was fresh or reused.

use crate::msg::UserMsg;
use std::sync::Arc;

/// A bounded free-list of reusable `Arc<UserMsg>` boxes.
#[derive(Debug, Default)]
pub struct FramePool {
    free: Vec<Arc<UserMsg>>,
    cap: usize,
    recycled: u64,
    fresh: u64,
}

impl FramePool {
    /// A pool retaining at most `cap` free boxes (excess returns are
    /// simply dropped).
    pub fn with_capacity(cap: usize) -> Self {
        FramePool { free: Vec::new(), cap, recycled: 0, fresh: 0 }
    }

    /// Produce a box holding `msg`, reusing a recycled box when one is
    /// available (falling back to a fresh allocation).
    pub fn alloc(&mut self, msg: UserMsg) -> Arc<UserMsg> {
        while let Some(mut a) = self.free.pop() {
            // recycle() only keeps sole references, and the pool owns
            // them exclusively, so this practically always succeeds; a
            // shared box is just dropped.
            if let Some(slot) = Arc::get_mut(&mut a) {
                *slot = msg;
                self.recycled += 1;
                return a;
            }
        }
        self.fresh += 1;
        Arc::new(msg)
    }

    /// Offer a consumed box back for reuse. Kept only if this is the
    /// last reference (nobody can observe the overwrite) and the pool
    /// has room.
    pub fn recycle(&mut self, a: Arc<UserMsg>) {
        if self.free.len() < self.cap && Arc::strong_count(&a) == 1 {
            self.free.push(a);
        }
    }

    /// Boxes served from the free list.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// Boxes that had to be freshly allocated.
    pub fn fresh(&self) -> u64 {
        self.fresh
    }

    /// Free boxes currently held.
    pub fn held(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{EpId, GlobalEp, ProtectionKey};
    use vnet_net::HostId;

    fn msg(uid: u64) -> UserMsg {
        UserMsg {
            uid,
            is_request: false,
            handler: 0,
            args: [0; 4],
            payload_bytes: 64,
            src_ep: GlobalEp::new(HostId(0), EpId(0)),
            reply_key: ProtectionKey::OPEN,
            corr: 0,
        }
    }

    #[test]
    fn pool_recycles_sole_references() {
        let mut p = FramePool::with_capacity(4);
        let a = p.alloc(msg(1));
        assert_eq!(p.fresh(), 1);
        p.recycle(a);
        assert_eq!(p.held(), 1);
        let b = p.alloc(msg(2));
        assert_eq!(b.uid, 2, "recycled box is overwritten");
        assert_eq!(p.recycled(), 1);
        assert_eq!(p.held(), 0);
    }

    #[test]
    fn pool_refuses_shared_and_overflow() {
        let mut p = FramePool::with_capacity(1);
        let a = p.alloc(msg(1));
        let extra = Arc::clone(&a);
        p.recycle(a);
        assert_eq!(p.held(), 0, "shared boxes are not retained");
        drop(extra);
        let b = p.alloc(msg(2));
        let c = p.alloc(msg(3));
        p.recycle(b);
        p.recycle(c);
        assert_eq!(p.held(), 1, "capacity bounds the free list");
    }
}
