//! NIC instrumentation counters, used by the evaluation harness to report
//! the §6.4.1 diagnostics (NACK/retransmission rates, remap traffic,
//! observed round-trip times from reflected timestamps).
//!
//! `NicStats` is enumerated generically through
//! [`vnet_sim::telemetry::MetricSet`]: read a named counter with
//! [`MetricSet::counter_value`] and walk everything with
//! [`MetricSet::visit_metrics`]. Only samplers whose individual samples
//! matter (`rtt_us`, `recovery_us`) keep first-class accessors.

use crate::msg::NackReason;
use vnet_sim::stats::{Counter, Sampler};
use vnet_sim::telemetry::{MetricSet, MetricValue, MetricVisitor, Summary};

/// Per-NIC counters and samplers.
///
/// Iterate the metrics via [`MetricSet::visit_metrics`] (short names
/// match the accessor names below, e.g. `retransmits`), or look one up
/// with [`MetricSet::counter_value`].
#[derive(Clone, Debug, Default)]
pub struct NicStats {
    /// Data frames injected (first transmissions).
    pub(crate) data_sent: Counter,
    /// Data frames retransmitted.
    pub(crate) retransmits: Counter,
    /// Messages unbound from channels after the consecutive-retransmission
    /// bound.
    pub(crate) unbinds: Counter,
    /// Messages returned to their sender as undeliverable.
    pub(crate) returned_to_sender: Counter,
    /// Data frames received and deposited.
    pub(crate) deposits: Counter,
    /// Duplicate data frames suppressed.
    pub(crate) duplicates: Counter,
    /// Positive acks received.
    pub(crate) acks_rx: Counter,
    /// NACKs received: destination endpoint not resident.
    pub(crate) nacks_rx_not_resident: Counter,
    /// NACKs received: receive queue full.
    pub(crate) nacks_rx_queue_full: Counter,
    /// NACKs received: bad key.
    pub(crate) nacks_rx_bad_key: Counter,
    /// NACKs received: no such endpoint.
    pub(crate) nacks_rx_no_endpoint: Counter,
    /// NACKs generated locally, by any reason.
    pub(crate) nacks_tx: Counter,
    /// Corrupted frames discarded on CRC check.
    pub(crate) crc_drops: Counter,
    /// Endpoint loads completed.
    pub(crate) loads: Counter,
    /// Endpoint unloads completed.
    pub(crate) unloads: Counter,
    /// NeedResident requests raised to the driver.
    pub(crate) resident_requests: Counter,
    /// GAM mode only: frames dropped because the receive queue overran
    /// (no transport protocol to NACK them).
    pub(crate) gam_overruns: Counter,
    /// Round-trip times observed via reflected timestamps, µs.
    pub(crate) rtt_us: Sampler,
    /// Route failovers: bound messages moved to an alternate channel
    /// around a scheduled-down link.
    pub(crate) failovers: Counter,
    /// Receive-side sequence resynchronizations (sender epoch advanced
    /// past the expected sequence — unbind churn or failover rebinds).
    pub(crate) resyncs: Counter,
    /// Time from a message's first retransmission-timer expiry to its
    /// acknowledgment, µs — the time-to-recovery distribution.
    pub(crate) recovery_us: Sampler,
}

impl NicStats {
    /// Record an incoming NACK by reason.
    pub fn record_nack_rx(&mut self, r: NackReason) {
        match r {
            NackReason::NotResident => self.nacks_rx_not_resident.inc(),
            NackReason::RecvQueueFull => self.nacks_rx_queue_full.inc(),
            NackReason::BadKey => self.nacks_rx_bad_key.inc(),
            NackReason::NoSuchEndpoint => self.nacks_rx_no_endpoint.inc(),
        }
    }

    /// Total incoming NACKs.
    pub fn nacks_rx_total(&self) -> u64 {
        self.nacks_rx_not_resident.get()
            + self.nacks_rx_queue_full.get()
            + self.nacks_rx_bad_key.get()
            + self.nacks_rx_no_endpoint.get()
    }

    /// The raw round-trip-time sampler (µs). Kept as a first-class
    /// accessor because distribution analysis (quantiles, the §6.4.1
    /// bimodal split) needs the individual samples, which a
    /// [`Summary`] cannot reconstruct.
    pub fn rtt_us(&self) -> Sampler {
        self.rtt_us.clone()
    }

    /// The raw time-to-recovery sampler (µs): first retransmission-timer
    /// expiry to acknowledgment, per recovered message. Kept first-class
    /// for the same reason as [`NicStats::rtt_us`] — campaign reports
    /// want quantiles of the individual samples.
    pub fn recovery_us(&self) -> Sampler {
        self.recovery_us.clone()
    }
}

impl MetricSet for NicStats {
    fn visit_metrics(&self, v: &mut dyn MetricVisitor) {
        v.metric("data_sent", MetricValue::Counter(self.data_sent.get()));
        v.metric("retransmits", MetricValue::Counter(self.retransmits.get()));
        v.metric("unbinds", MetricValue::Counter(self.unbinds.get()));
        v.metric("returned_to_sender", MetricValue::Counter(self.returned_to_sender.get()));
        v.metric("deposits", MetricValue::Counter(self.deposits.get()));
        v.metric("duplicates", MetricValue::Counter(self.duplicates.get()));
        v.metric("acks_rx", MetricValue::Counter(self.acks_rx.get()));
        v.metric("nacks_rx_not_resident", MetricValue::Counter(self.nacks_rx_not_resident.get()));
        v.metric("nacks_rx_queue_full", MetricValue::Counter(self.nacks_rx_queue_full.get()));
        v.metric("nacks_rx_bad_key", MetricValue::Counter(self.nacks_rx_bad_key.get()));
        v.metric("nacks_rx_no_endpoint", MetricValue::Counter(self.nacks_rx_no_endpoint.get()));
        v.metric("nacks_rx", MetricValue::Counter(self.nacks_rx_total()));
        v.metric("nacks_tx", MetricValue::Counter(self.nacks_tx.get()));
        v.metric("crc_drops", MetricValue::Counter(self.crc_drops.get()));
        v.metric("loads", MetricValue::Counter(self.loads.get()));
        v.metric("unloads", MetricValue::Counter(self.unloads.get()));
        v.metric("resident_requests", MetricValue::Counter(self.resident_requests.get()));
        v.metric("gam_overruns", MetricValue::Counter(self.gam_overruns.get()));
        v.metric("rtt_us", MetricValue::Summary(Summary::from_sampler(&self.rtt_us)));
        v.metric("failovers", MetricValue::Counter(self.failovers.get()));
        v.metric("resyncs", MetricValue::Counter(self.resyncs.get()));
        v.metric("recovery_us", MetricValue::Summary(Summary::from_sampler(&self.recovery_us)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nack_breakdown_sums() {
        let mut s = NicStats::default();
        s.record_nack_rx(NackReason::NotResident);
        s.record_nack_rx(NackReason::NotResident);
        s.record_nack_rx(NackReason::RecvQueueFull);
        s.record_nack_rx(NackReason::BadKey);
        s.record_nack_rx(NackReason::NoSuchEndpoint);
        assert_eq!(s.counter_value("nacks_rx_not_resident"), 2);
        assert_eq!(s.nacks_rx_total(), 5);
        assert_eq!(s.counter_value("nacks_rx"), 5, "aggregate is enumerated too");
    }

    #[test]
    fn metric_set_enumerates_all_counters() {
        let mut s = NicStats::default();
        s.data_sent.add(3);
        s.rtt_us.record(61.0);
        let mut names = Vec::new();
        struct V<'a>(&'a mut Vec<String>);
        impl MetricVisitor for V<'_> {
            fn metric(&mut self, n: &str, _: MetricValue) {
                self.0.push(n.to_string());
            }
        }
        s.visit_metrics(&mut V(&mut names));
        assert!(names.len() >= 19);
        assert!(names.contains(&"retransmits".to_string()));
        assert_eq!(s.counter_value("data_sent"), 3);
        assert_eq!(s.summary_value("rtt_us").count, 1);
    }

    #[test]
    fn counter_value_is_the_per_counter_read_path() {
        // The per-counter `#[deprecated]` forwarders are gone; named reads
        // go through `MetricSet::counter_value` only.
        let mut s = NicStats::default();
        s.retransmits.inc();
        assert_eq!(s.counter_value("retransmits"), 1);
        assert_eq!(s.counter_value("data_sent"), 0);
    }
}
