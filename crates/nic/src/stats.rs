//! NIC instrumentation counters, used by the evaluation harness to report
//! the §6.4.1 diagnostics (NACK/retransmission rates, remap traffic,
//! observed round-trip times from reflected timestamps).

use crate::msg::NackReason;
use vnet_sim::stats::{Counter, Sampler};

/// Per-NIC counters and samplers.
#[derive(Clone, Debug, Default)]
pub struct NicStats {
    /// Data frames injected (first transmissions).
    pub data_sent: Counter,
    /// Data frames retransmitted.
    pub retransmits: Counter,
    /// Messages unbound from channels after the consecutive-retransmission
    /// bound.
    pub unbinds: Counter,
    /// Messages returned to their sender as undeliverable.
    pub returned_to_sender: Counter,
    /// Data frames received and deposited.
    pub deposits: Counter,
    /// Duplicate data frames suppressed.
    pub duplicates: Counter,
    /// Positive acks received.
    pub acks_rx: Counter,
    /// NACKs received, by reason.
    pub nacks_rx_not_resident: Counter,
    /// NACKs received: receive queue full.
    pub nacks_rx_queue_full: Counter,
    /// NACKs received: bad key.
    pub nacks_rx_bad_key: Counter,
    /// NACKs received: no such endpoint.
    pub nacks_rx_no_endpoint: Counter,
    /// NACKs generated locally, by any reason.
    pub nacks_tx: Counter,
    /// Corrupted frames discarded on CRC check.
    pub crc_drops: Counter,
    /// Endpoint loads completed.
    pub loads: Counter,
    /// Endpoint unloads completed.
    pub unloads: Counter,
    /// NeedResident requests raised to the driver.
    pub resident_requests: Counter,
    /// GAM mode only: frames dropped because the receive queue overran
    /// (no transport protocol to NACK them).
    pub gam_overruns: Counter,
    /// Round-trip times observed via reflected timestamps, µs.
    pub rtt_us: Sampler,
}

impl NicStats {
    /// Record an incoming NACK by reason.
    pub fn record_nack_rx(&mut self, r: NackReason) {
        match r {
            NackReason::NotResident => self.nacks_rx_not_resident.inc(),
            NackReason::RecvQueueFull => self.nacks_rx_queue_full.inc(),
            NackReason::BadKey => self.nacks_rx_bad_key.inc(),
            NackReason::NoSuchEndpoint => self.nacks_rx_no_endpoint.inc(),
        }
    }

    /// Total incoming NACKs.
    pub fn nacks_rx_total(&self) -> u64 {
        self.nacks_rx_not_resident.get()
            + self.nacks_rx_queue_full.get()
            + self.nacks_rx_bad_key.get()
            + self.nacks_rx_no_endpoint.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nack_breakdown_sums() {
        let mut s = NicStats::default();
        s.record_nack_rx(NackReason::NotResident);
        s.record_nack_rx(NackReason::NotResident);
        s.record_nack_rx(NackReason::RecvQueueFull);
        s.record_nack_rx(NackReason::BadKey);
        s.record_nack_rx(NackReason::NoSuchEndpoint);
        assert_eq!(s.nacks_rx_not_resident.get(), 2);
        assert_eq!(s.nacks_rx_total(), 5);
    }
}
