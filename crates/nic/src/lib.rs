//! LANai-style intelligent network interface model.
//!
//! Implements §5 of the paper — the NI side of network virtualization:
//!
//! * **Endpoint frames** (§4.1): 8 (LANai 4.3) or 96 (newer hardware)
//!   on-board frames; resident endpoints live in NI SRAM with their send and
//!   receive queues, giving the firmware single-cycle access and the host
//!   fine-grained PIO access.
//! * **Transport** (§5.1): lightweight stop-and-wait flow control over
//!   multiple logical channels per host pair, positive acknowledgments with
//!   reflected 32-bit timestamps, negative acknowledgments encoding why a
//!   message could not be delivered, randomized exponential backoff for
//!   retransmission, channel unbinding after a bounded number of consecutive
//!   retransmissions, and self-resynchronizing sequence state.
//! * **Service & queueing discipline** (§5.2): weighted round-robin across
//!   resident endpoints, loitering on a busy endpoint for at most 64
//!   messages / 4 ms; FCFS descriptor processing within an endpoint.
//! * **Driver operations** (§5.3): endpoint load/unload interleaved with
//!   user traffic, with *quiescence* — an endpoint with unacknowledged
//!   messages in flight keeps retransmitting until every copy is accounted
//!   for before the driver may reuse its frame.
//!
//! The firmware is modeled as a single serial processor (the 37.5 MHz LANai
//! CPU) whose per-operation costs come from [`NicConfig`]; all timing
//! behaviour (gap, gap inflation under virtualization, NACK storms under
//! overload) *emerges* from those costs plus the protocol state machines.
//!
//! The crate is deliberately OS-free: everything the NIC needs from the host
//! arrives as [`DriverOp`]s and everything it tells the host leaves as
//! [`DriverMsg`]s, mirroring the paper's peer-agent protocol over the
//! permanently resident system endpoint.

#![warn(missing_docs)]

pub mod channel;
pub mod config;
pub mod dma;
pub mod endpoint;
pub mod ids;
pub mod msg;
pub mod nic;
pub mod pool;
pub mod sched;
pub mod stats;
pub mod tel;
pub mod testkit;

pub use channel::{ChannelKey, ChannelState};
pub use config::{FwCosts, NicConfig, NicMode};
pub use dma::{DmaDirection, DmaEngine};
pub use endpoint::{EndpointImage, PendingSend};
pub use ids::{EpId, GlobalEp, ProtectionKey};
pub use msg::{
    DeliveredMsg, DriverMsg, DriverOp, Frame, FrameKind, NackReason, PollOutcome, PostError,
    QueueSel, SendRequest, UserMsg,
};
pub use nic::{Nic, NicEvent, NicOut};
pub use pool::FramePool;
pub use stats::NicStats;
