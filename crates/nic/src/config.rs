//! NIC configuration and the calibrated firmware cost model.
//!
//! Costs are calibrated against the paper's §6.1 microbenchmarks (see
//! DESIGN.md §4): the virtual-network preset yields a small-message gap of
//! ≈12.8 µs (the paper's 2.21× the GAM gap, and consistent with the 78 K
//! msgs/s server rate of Figure 6 and the N½ ≈ 540 B of Figure 4), and the
//! GAM preset a gap of ≈5.8 µs.

use vnet_sim::SimDuration;

/// Operating mode of the interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NicMode {
    /// Virtual networks: full transport protocol (acks, retransmission,
    /// protection checks), many endpoint frames, driver protocol.
    VirtualNetwork,
    /// First-generation Active Messages baseline ("GAM"): one permanently
    /// resident endpoint, no transport acknowledgments (assumes a perfect
    /// network), no key checks. Receive-queue overruns silently drop.
    Gam,
}

/// Per-operation firmware costs (time the serial LANai processor is
/// occupied). These produce the LogP parameters; see module docs.
#[derive(Clone, Debug)]
pub struct FwCosts {
    /// Process one send descriptor for a short message and inject it.
    pub send_small: SimDuration,
    /// Receive a short data frame: demux, key check, deposit, build+inject
    /// the ack.
    pub recv_small: SimDuration,
    /// Process an arriving ack/nack: channel bookkeeping, timer management,
    /// timestamp reflection.
    pub ack: SimDuration,
    /// Set up a bulk send: descriptor decode + SBUS read DMA initiation.
    pub send_bulk_setup: SimDuration,
    /// Finish a bulk send after DMA: build packet, inject.
    pub send_bulk_finish: SimDuration,
    /// Receive a bulk data frame: demux, key check, SBUS write DMA
    /// initiation.
    pub recv_bulk_setup: SimDuration,
    /// Finish a bulk receive after DMA: deposit, build+inject ack.
    pub recv_bulk_finish: SimDuration,
    /// Retransmit an in-flight frame (copy already in NI memory).
    pub retransmit: SimDuration,
    /// Process one driver-protocol operation (load/unload bookkeeping
    /// around the DMA itself, mask updates).
    pub driver_op: SimDuration,
}

impl FwCosts {
    /// Virtual-network firmware (the paper's system).
    pub fn virtual_network() -> Self {
        FwCosts {
            send_small: SimDuration::from_nanos(4_200),
            recv_small: SimDuration::from_nanos(4_400),
            ack: SimDuration::from_nanos(4_200),
            send_bulk_setup: SimDuration::from_nanos(3_000),
            send_bulk_finish: SimDuration::from_nanos(2_000),
            recv_bulk_setup: SimDuration::from_nanos(3_000),
            recv_bulk_finish: SimDuration::from_nanos(2_400),
            retransmit: SimDuration::from_nanos(3_000),
            driver_op: SimDuration::from_nanos(10_000),
        }
    }

    /// Process one entry of a batched ack (channel bookkeeping only; the
    /// per-frame demux cost is paid once by [`FwCosts::ack`]).
    pub fn ack_entry(&self) -> SimDuration {
        self.ack / 3
    }

    /// GAM baseline firmware: no transport protocol, no defensive checks
    /// (the paper: checks and defensive practices cost 1.1 µs of L and g).
    pub fn gam() -> Self {
        FwCosts {
            send_small: SimDuration::from_nanos(2_600),
            recv_small: SimDuration::from_nanos(3_200),
            ack: SimDuration::ZERO,
            send_bulk_setup: SimDuration::from_nanos(2_400),
            send_bulk_finish: SimDuration::from_nanos(1_600),
            recv_bulk_setup: SimDuration::from_nanos(2_400),
            recv_bulk_finish: SimDuration::from_nanos(2_000),
            retransmit: SimDuration::ZERO,
            driver_op: SimDuration::from_nanos(10_000),
        }
    }
}

/// Full NIC configuration.
#[derive(Clone, Debug)]
pub struct NicConfig {
    /// Operating mode.
    pub mode: NicMode,
    /// Number of endpoint frames in NI memory: 8 on the LANai 4.3 (64 KB
    /// reserved), 96 on newer interfaces (§4.1).
    pub frames: u32,
    /// Logical flow-control channels per destination host (§5.1 "multiple
    /// logical channels between all interfaces mask transmission and
    /// acknowledgment latencies").
    pub channels_per_peer: u8,
    /// Send descriptor queue depth per endpoint (§5.2: 64).
    pub send_queue_depth: usize,
    /// Request receive queue depth per endpoint (§6.4.1: 32).
    pub recv_queue_depth: usize,
    /// Payload bytes the host writes with PIO; larger payloads stage
    /// through SBUS DMA.
    pub pio_threshold: u32,
    /// Endpoint frame size moved on load/unload (64 KB / 8 frames = 8 KB).
    pub frame_bytes: u32,
    /// Maximum transmission unit (one message = one packet up to this).
    pub mtu: u32,
    /// Base retransmission timeout.
    pub rto_base: SimDuration,
    /// Retransmission timeout cap.
    pub rto_max: SimDuration,
    /// Consecutive retransmissions of one message before the NI unbinds it
    /// from its channel so the channel can be reused (§5.1).
    pub max_retx_before_unbind: u32,
    /// Unbind/rebind cycles before the message is declared undeliverable
    /// and returned to its sender ("prolonged absence of acknowledgments").
    pub max_unbind_cycles: u32,
    /// Delay before retrying a message that drew a transient NACK
    /// (non-resident / queue full); doubles per consecutive transient NACK.
    pub nack_retry_base: SimDuration,
    /// Cap on the transient-NACK retry delay.
    pub nack_retry_max: SimDuration,
    /// Firmware costs.
    pub costs: FwCosts,
    /// Duplicate-suppression window per source host (delivered uids
    /// remembered).
    pub dedup_window: usize,
    /// Estimate per-peer round-trip times from reflected timestamps and
    /// schedule retransmissions from SRTT + 4·RTTVAR instead of the fixed
    /// base timeout (the paper's §8: more NI processing power "would
    /// enable more sophisticated algorithms, e.g., round-trip times
    /// estimation for scheduling retransmissions").
    pub adaptive_rto: bool,
    /// Coalesce positive acknowledgments to the same peer for this window
    /// before emitting one batched ack frame (§8 "piggybacking
    /// acknowledgments to reduce network occupancy"). `None` = emit every
    /// ack immediately (the paper's shipped firmware). NACKs always flush
    /// immediately.
    pub ack_coalesce: Option<SimDuration>,
    /// Flush a coalescing buffer once it holds this many acks.
    pub ack_coalesce_max: usize,
    /// Bulk receive staging buffers in NI SRAM. Data frames arriving while
    /// all are busy draw a RecvQueueFull NACK (the sender's exponential
    /// backoff then self-regulates incast) — the LANai's 1 MB cannot hold
    /// an unbounded backlog of 8 KB deposits.
    pub recv_staging_bufs: usize,
    /// Link rate hint (MB/s) used to charge the GAM baseline's
    /// store-and-forward staging penalty on bulk receives: the paper notes
    /// the virtual-network NI "pipelines its processing of message
    /// descriptors to compensate for the store-and-forward delay", which
    /// the first-generation interface did not (38 vs 43.9 MB/s at 8 KB).
    pub link_mb_s_hint: f64,
}

impl NicConfig {
    /// The paper's virtual-network interface with the default 8 frames.
    pub fn virtual_network() -> Self {
        NicConfig {
            mode: NicMode::VirtualNetwork,
            frames: 8,
            channels_per_peer: 4,
            send_queue_depth: 64,
            recv_queue_depth: 32,
            pio_threshold: 64,
            frame_bytes: 8 * 1024,
            mtu: 8 * 1024,
            rto_base: SimDuration::from_micros(120),
            rto_max: SimDuration::from_millis(8),
            max_retx_before_unbind: 8,
            max_unbind_cycles: 24,
            nack_retry_base: SimDuration::from_micros(150),
            nack_retry_max: SimDuration::from_millis(4),
            costs: FwCosts::virtual_network(),
            dedup_window: 4096,
            adaptive_rto: false,
            ack_coalesce: None,
            ack_coalesce_max: 8,
            recv_staging_bufs: 4,
            link_mb_s_hint: 160.0,
        }
    }

    /// The 96-frame configuration of the newer interface hardware.
    pub fn virtual_network_96() -> Self {
        NicConfig { frames: 96, ..Self::virtual_network() }
    }

    /// The GAM baseline.
    pub fn gam() -> Self {
        NicConfig {
            mode: NicMode::Gam,
            frames: 1,
            costs: FwCosts::gam(),
            ..Self::virtual_network()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vn_gap_components_match_calibration() {
        // Sender-side firmware occupancy per message: send + ack + recv of
        // the reply + ack of the reply shared across both NIs works out to
        // send + ack + recv per NI = 12.8 us (see DESIGN.md §4).
        let c = FwCosts::virtual_network();
        let g = c.send_small + c.ack + c.recv_small;
        assert_eq!(g.as_nanos(), 12_800);
    }

    #[test]
    fn gam_gap_components_match_calibration() {
        let c = FwCosts::gam();
        let g = c.send_small + c.ack + c.recv_small;
        assert_eq!(g.as_nanos(), 5_800);
        // Gap ratio the paper reports: 2.21x.
        let vn = FwCosts::virtual_network();
        let gv = (vn.send_small + vn.ack + vn.recv_small).as_nanos() as f64;
        assert!((gv / g.as_nanos() as f64 - 2.21).abs() < 0.01);
    }

    #[test]
    fn presets_differ_where_expected() {
        let vn = NicConfig::virtual_network();
        let gam = NicConfig::gam();
        assert_eq!(vn.frames, 8);
        assert_eq!(NicConfig::virtual_network_96().frames, 96);
        assert_eq!(gam.frames, 1);
        assert_eq!(gam.mode, NicMode::Gam);
        assert_eq!(vn.send_queue_depth, 64);
        assert_eq!(vn.recv_queue_depth, 32);
    }
}
