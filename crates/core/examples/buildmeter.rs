//! Build a 16k-host abstract fat tree with auditing and telemetry on and
//! report wall time + peak RSS.
use std::time::Instant;
use vnet_core::prelude::*;
use vnet_net::TopologySpec;

fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn main() {
    let t = Instant::now();
    let c = Cluster::builder()
        .topology(TopologySpec::FatTree { leaves: 512, hosts_per_leaf: 32, spines: 8 })
        .audit(true)
        .telemetry(true)
        .default_fidelity(Fidelity::Abstract)
        .fabric_fidelity(Fidelity::Abstract)
        .build();
    let ms = t.elapsed().as_secs_f64() * 1e3;
    println!("hosts={} build_ms={:.0} vm_hwm_kb={}", c.hosts(), ms, vm_hwm_kb());
}
