//! Cluster configuration and the calibrated host cost model.
//!
//! # Knob precedence
//!
//! Every run-shape knob — [`ClusterConfig::shards`], [`ClusterConfig::audit`],
//! [`ClusterConfig::telemetry`], [`ClusterConfig::fidelity`] — resolves the
//! same way, and this is the one place the contract is written down:
//!
//! 1. **builder** — an explicit `with_*` call on `ClusterConfig` (or the
//!    corresponding [`crate::ClusterBuilder`] method) always wins;
//! 2. **environment** — otherwise the variable (`VNET_SHARDS`,
//!    `VNET_AUDIT`, `VNET_TELEMETRY`, `VNET_FIDELITY`), read when the
//!    config preset is constructed;
//! 3. **default** — otherwise `1` shard, audit in debug builds only,
//!    telemetry off, full fidelity everywhere.
//!
//! The environment is consulted once, inside the preset constructors
//! ([`ClusterConfig::now`] and friends); a `with_*` call after that
//! replaces the resolved value wholesale. Bench binaries map their
//! `--shards` / `--fidelity` flags onto the same environment variables
//! before building, so flags inherit this contract.

use crate::model::FidelityMap;
use vnet_net::{FaultScheduleSpec, NetConfig, TopologySpec};
use vnet_nic::NicConfig;
use vnet_os::{OsConfig, SchedConfig};
use vnet_sim::SimDuration;

/// Which communication system the cluster runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Virtual networks (the paper's system): many endpoints per host,
    /// full transport protocol, OS-managed residency.
    VirtualNetwork,
    /// First-generation Active Messages ("GAM"): one permanently resident
    /// endpoint per host, no transport protocol. The Figure 3/4 baseline.
    Gam,
}

/// Host-processor costs (§6.1): the LogP overheads and the polling costs
/// that drive the Figure 6 single-thread-vs-frames effects.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Send overhead o_s: CPU time to write a message descriptor into the
    /// NI with programmed I/O.
    pub host_send: SimDuration,
    /// Receive overhead o_r: CPU time to read a message out of the NI.
    pub host_recv: SimDuration,
    /// Poll of a **resident** endpoint: uncached programmed I/O across the
    /// SBUS ("the costs of polling resident but non-cacheable endpoints in
    /// interface memory", §6.4).
    pub poll_nic: SimDuration,
    /// Poll of a **non-resident** endpoint: cacheable host memory.
    pub poll_host: SimDuration,
    /// User-level bookkeeping per request (credit check, table lookup).
    pub credit_check: SimDuration,
    /// Mutex acquire+release around each operation on a *shared* endpoint
    /// (§3.3; exclusive endpoints skip it).
    pub shared_lock: SimDuration,
}

impl CostModel {
    /// Virtual-network Active Messages on the NOW: o_s = 2.6 µs (bigger
    /// descriptors), o_r = 3.2 µs (VIS block loads). o_s + o_r matches GAM.
    pub fn now_am() -> Self {
        CostModel {
            host_send: SimDuration::from_nanos(2_600),
            host_recv: SimDuration::from_nanos(3_200),
            poll_nic: SimDuration::from_nanos(900),
            poll_host: SimDuration::from_nanos(150),
            credit_check: SimDuration::from_nanos(100),
            shared_lock: SimDuration::from_nanos(500),
        }
    }

    /// First-generation GAM: o_s = 1.8 µs, o_r = 4.0 µs.
    pub fn now_gam() -> Self {
        CostModel {
            host_send: SimDuration::from_nanos(1_800),
            host_recv: SimDuration::from_nanos(4_000),
            poll_nic: SimDuration::from_nanos(900),
            poll_host: SimDuration::from_nanos(150),
            credit_check: SimDuration::from_nanos(100),
            shared_lock: SimDuration::from_nanos(500),
        }
    }
}

/// Everything needed to build a [`crate::cluster::Cluster`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Operating mode (selects NIC protocol + cost presets).
    pub mode: Mode,
    /// Network topology.
    pub topology: TopologySpec,
    /// Network physical parameters.
    pub net: NetConfig,
    /// NIC configuration (frames, queue depths, firmware costs).
    pub nic: NicConfig,
    /// OS configuration (fault handling, replacement policy).
    pub os: OsConfig,
    /// Thread scheduler configuration.
    pub sched: SchedConfig,
    /// Host cost model.
    pub cost: CostModel,
    /// Random drop probability per routed packet (0 for the healthy
    /// cluster; Myrinet error rates are negligible).
    pub drop_prob: f64,
    /// Random corruption probability per routed packet.
    pub corrupt_prob: f64,
    /// Scheduled fault campaign: timed link flaps, whole-switch failures,
    /// degraded-link windows, and the optional Gilbert–Elliott bursty
    /// error model. Empty (the default) adds no events and no per-packet
    /// cost beyond the existing uniform-error draws. Campaign transitions
    /// are delivered through the engine's event queue, so results are
    /// byte-identical under sequential and sharded execution.
    pub faults: FaultScheduleSpec,
    /// Master seed; every component derives its stream from this.
    pub seed: u64,
    /// User-level request credits per destination endpoint (§6.4.1: 32,
    /// matching the request receive queue depth).
    pub credits: u32,
    /// Whether the cross-layer invariant auditor's hooks are attached.
    /// Defaults to debug builds only: with hooks detached, the simulation
    /// fast path performs no auditor hash lookups at all (the auditor is
    /// a passive observer, so results are identical either way).
    pub audit: bool,
    /// Whether the unified telemetry registry's hooks are attached
    /// (metrics handles + span tracing; see `Cluster::telemetry`).
    /// Defaults to off: with hooks detached the hot path pays nothing,
    /// and, like the auditor, telemetry is a passive observer — protocol
    /// results are byte-identical either way.
    pub telemetry: bool,
    /// Worker shards for the conservative parallel executor. `1` (the
    /// default) runs the classic sequential engine; higher values
    /// partition hosts across threads with link-latency lookahead.
    /// Results are byte-identical for any value — the count is clamped
    /// to what the topology supports (see `vnet_net::Partition::plan`).
    /// The `VNET_SHARDS` environment variable overrides the preset
    /// default (but not an explicit [`ClusterConfig::with_shards`]).
    pub shards: u32,
    /// Per-node (and fabric) fidelity selection — which hosts run the
    /// complete machinery and which run the abstract LogP model (see
    /// [`crate::model`]). Defaults to full everywhere; the
    /// `VNET_FIDELITY` environment variable overrides the preset default
    /// (but not an explicit [`ClusterConfig::with_fidelity`]).
    pub fidelity: FidelityMap,
}

impl ClusterConfig {
    /// The paper's cluster: `n` hosts in virtual-network mode. For
    /// `n == 100` this is the full NOW; smaller `n` uses a crossbar
    /// (microbenchmark isolation).
    pub fn now(n: u32) -> Self {
        let topology = if n == 100 {
            TopologySpec::now_cluster()
        } else {
            TopologySpec::Crossbar { hosts: n }
        };
        ClusterConfig {
            mode: Mode::VirtualNetwork,
            topology,
            net: NetConfig::default(),
            nic: NicConfig::virtual_network(),
            os: OsConfig::default(),
            sched: SchedConfig::default(),
            cost: CostModel::now_am(),
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            faults: FaultScheduleSpec::none(),
            seed: 0x5EED,
            credits: 32,
            audit: env_flag("VNET_AUDIT").unwrap_or(cfg!(debug_assertions)),
            telemetry: env_flag("VNET_TELEMETRY").unwrap_or(false),
            shards: env_shards().unwrap_or(1),
            fidelity: env_fidelity().unwrap_or_default(),
        }
    }

    /// Full 100-node NOW fat tree regardless of `n` hosts in use.
    pub fn now_fat_tree() -> Self {
        let mut c = Self::now(100);
        c.topology = TopologySpec::now_cluster();
        c
    }

    /// The GAM baseline configuration on `n` hosts.
    pub fn gam(n: u32) -> Self {
        let mut c = Self::now(n);
        c.mode = Mode::Gam;
        c.nic = NicConfig::gam();
        c.cost = CostModel::now_gam();
        c
    }

    /// Same cluster with 96 endpoint frames (the newer interface).
    pub fn with_frames(mut self, frames: u32) -> Self {
        self.nic.frames = frames;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style auditor-hook override (force on for release-mode
    /// invariant sweeps, or off to measure debug-audit overhead).
    pub fn with_audit(mut self, audit: bool) -> Self {
        self.audit = audit;
        self
    }

    /// Builder-style telemetry-hook override (attach the metrics
    /// registry and span tracing; see `Cluster::telemetry`).
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Builder-style fault-campaign override (scheduled link/switch
    /// failures, degrade windows, bursty errors).
    pub fn with_faults(mut self, faults: FaultScheduleSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Builder-style parallel-shard override. Takes precedence over the
    /// `VNET_SHARDS` environment default, so differential tests can pin
    /// both sides of a sequential-vs-parallel comparison.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Builder-style fidelity override. Takes precedence over the
    /// `VNET_FIDELITY` environment default (see the module docs for the
    /// knob-precedence contract).
    pub fn with_fidelity(mut self, fidelity: FidelityMap) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Number of hosts.
    pub fn hosts(&self) -> u32 {
        self.topology.hosts()
    }
}

/// The `VNET_SHARDS` environment default (None when unset or unparsable).
pub(crate) fn env_shards() -> Option<u32> {
    env_lookup("VNET_SHARDS")?.trim().parse::<u32>().ok().map(|n| n.max(1))
}

/// A boolean environment default: `1`/`true`/`on`/`yes` or
/// `0`/`false`/`off`/`no` (None when unset or unrecognized).
pub(crate) fn env_flag(name: &str) -> Option<bool> {
    match env_lookup(name)?.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

/// The `VNET_FIDELITY` environment default (None when unset). A set but
/// malformed value panics — silently running everything at full fidelity
/// when the user asked for abstraction would be worse.
pub(crate) fn env_fidelity() -> Option<FidelityMap> {
    let s = env_lookup("VNET_FIDELITY")?;
    match FidelityMap::parse(&s) {
        Ok(m) => Some(m),
        Err(e) => panic!("VNET_FIDELITY={s:?}: {e}"),
    }
}

/// One environment read path for every knob, with a thread-local test
/// seam: precedence tests override variables per thread instead of racing
/// on the process environment.
pub(crate) fn env_lookup(name: &str) -> Option<String> {
    #[cfg(test)]
    if let Some(v) = test_env::get(name) {
        return v;
    }
    std::env::var(name).ok()
}

/// Thread-local environment overrides for tests (`None` masks a variable
/// that is genuinely set in the process environment).
#[cfg(test)]
pub(crate) mod test_env {
    use std::cell::RefCell;
    use std::collections::HashMap;

    thread_local! {
        static OVERRIDES: RefCell<HashMap<String, Option<String>>> =
            RefCell::new(HashMap::new());
    }

    pub(crate) fn set(name: &str, value: Option<&str>) {
        OVERRIDES.with(|o| o.borrow_mut().insert(name.to_string(), value.map(String::from)));
    }

    pub(crate) fn clear(name: &str) {
        OVERRIDES.with(|o| {
            o.borrow_mut().remove(name);
        });
    }

    pub(crate) fn get(name: &str) -> Option<Option<String>> {
        OVERRIDES.with(|o| o.borrow().get(name).cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logp_overhead_sum_preserved() {
        // The paper: "the total per-packet overhead remains the same".
        let am = CostModel::now_am();
        let gam = CostModel::now_gam();
        assert_eq!(
            (am.host_send + am.host_recv).as_nanos(),
            (gam.host_send + gam.host_recv).as_nanos()
        );
        assert!(am.host_send > gam.host_send, "bigger descriptors cost more o_s");
        assert!(am.host_recv < gam.host_recv, "block loads cost less o_r");
    }

    #[test]
    fn presets() {
        let c = ClusterConfig::now(100);
        assert_eq!(c.hosts(), 100);
        assert_eq!(c.nic.frames, 8);
        assert_eq!(c.credits, 32);
        let c = ClusterConfig::now(100).with_frames(96);
        assert_eq!(c.nic.frames, 96);
        let g = ClusterConfig::gam(2);
        assert_eq!(g.mode, Mode::Gam);
        assert_eq!(g.nic.frames, 1);
        assert_eq!(ClusterConfig::now(16).hosts(), 16);
    }

    /// The module-doc precedence contract (builder > env > default),
    /// asserted for all four run-shape knobs through the thread-local
    /// environment seam.
    #[test]
    fn knob_precedence_builder_over_env_over_default() {
        use crate::model::Fidelity;
        let knobs = ["VNET_SHARDS", "VNET_AUDIT", "VNET_TELEMETRY", "VNET_FIDELITY"];
        // Defaults (masking anything leaked into the process environment).
        for k in knobs {
            test_env::set(k, None);
        }
        let c = ClusterConfig::now(4);
        assert_eq!(c.shards, 1);
        assert_eq!(c.audit, cfg!(debug_assertions));
        assert!(!c.telemetry);
        assert_eq!(c.fidelity, FidelityMap::full());
        // The environment overrides the default...
        test_env::set("VNET_SHARDS", Some("4"));
        test_env::set("VNET_AUDIT", Some("on"));
        test_env::set("VNET_TELEMETRY", Some("1"));
        test_env::set("VNET_FIDELITY", Some("abstract:2-3"));
        let c = ClusterConfig::now(4);
        assert_eq!(c.shards, 4);
        assert!(c.audit);
        assert!(c.telemetry);
        assert_eq!(c.fidelity.of(0), Fidelity::Full);
        assert_eq!(c.fidelity.of(2), Fidelity::Abstract);
        // ...and an explicit builder-style call beats the environment.
        let c = ClusterConfig::now(4)
            .with_shards(2)
            .with_audit(false)
            .with_telemetry(false)
            .with_fidelity(FidelityMap::full());
        assert_eq!(c.shards, 2);
        assert!(!c.audit);
        assert!(!c.telemetry);
        assert_eq!(c.fidelity, FidelityMap::full());
        for k in knobs {
            test_env::clear(k);
        }
    }
}
