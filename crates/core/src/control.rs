//! The multi-tenant cluster control plane: coordinator-owned allocation,
//! per-tenant quotas, and audited live endpoint migration.
//!
//! The paper's §4 residency machine and §5 channel allocation are per-host
//! mechanism; this module adds the cluster-level *policy* layer in the
//! shape of ADR-002 ("coordinator owns all network allocation; agents
//! cache desired state"):
//!
//! * a **coordinator** that owns every managed endpoint — which host it
//!   lives on, which tenant it belongs to, what its byte budget is;
//! * a **reconcile loop** that runs as ordinary keyed wheel events
//!   ([`crate::world::Event::Ctl`]), observing scheduled link faults
//!   through the read-only [`vnet_net::RouteOracle`] and migrating service
//!   endpoints off dead hosts with retry/backoff;
//! * **live migration** built from the §4 residency machine: the source
//!   incarnation is evicted from the NI and held host-resident
//!   ([`vnet_os::SegmentDriver::begin_migrate_out`]) so the service keeps
//!   draining queued work in place, a fresh incarnation is created on the
//!   destination, client translation tables are retargeted, and the old
//!   incarnation is retired through a bounded lame-duck drain
//!   ([`crate::world::Event::CtlRetire`]) that frees it only once both the
//!   OS image and the NI report dry — in-flight frames nack/bounce through
//!   the ordinary retransmit → backoff → unbind → return-to-sender
//!   machinery with exactly-once preserved;
//! * **graceful degradation**: coordinator outage windows suspend
//!   reconciliation only — host agents keep serving on the desired state
//!   they already cached (their translation tables and resident
//!   endpoints), so traffic continues untouched.
//!
//! # Determinism
//!
//! The coordinator state is *replicated*: every shard world carries an
//! identical [`ControlPlane`] copy, and every control event is broadcast
//! — scheduled once per `(event, host)` for every host, exactly like
//! fault-campaign transitions. Within a world, the copy addressed to the
//! world's base host sorts first (the control key band orders by host) and
//! runs the replicated decision step; the decisions are pure functions of
//! (replicated state, oracle, time), so every world computes the same
//! follow-up schedule and the same state. Host-local side effects (pageout,
//! endpoint creation, translation retargeting) run only on the event copy
//! addressed to the acting host. The net effect: byte-identical results at
//! any shard count, with no cross-shard communication beyond the events
//! already in the wheel.

use crate::sys::ThreadBody;
use std::collections::BTreeMap;
use std::sync::Arc;
use vnet_net::{HostId, RouteOracle};
use vnet_nic::{EpId, GlobalEp, ProtectionKey};
use vnet_sim::telemetry::{MetricSet, MetricValue, MetricVisitor};
use vnet_sim::{SimDuration, SimRng, SimTime};

/// First endpoint id in the control-plane band. Coordinator-assigned ids
/// live far above the per-host sequential counter so a migrated endpoint
/// can keep a cluster-unique identity without colliding with locally
/// created endpoints on any destination host.
pub const CTL_EP_BASE: u32 = 0x8000_0000;

/// Factory for a tenant's service thread body, invoked on the destination
/// host when a managed service endpoint is (re)created there. `Send +
/// Sync` because shard worlds on worker threads call it; the returned body
/// stays on the calling thread.
pub type EpFactory = Arc<dyn Fn(GlobalEp) -> Box<dyn ThreadBody> + Send + Sync>;

/// Per-tenant resource limits and service logic.
#[derive(Clone)]
pub struct TenantSpec {
    /// Human-readable tenant name (violation dumps, debugging).
    pub name: String,
    /// Maximum managed endpoints this tenant may allocate.
    pub max_endpoints: u32,
    /// Maximum bound channels (client→service connections) targeting this
    /// tenant's services.
    pub max_bound_channels: u32,
    /// Request bytes the tenant may admit per accounting epoch, across all
    /// of its client endpoints (each client gets an equal slice).
    pub bytes_per_epoch: u64,
    /// Service thread body factory (used at creation and after migration).
    pub factory: EpFactory,
}

impl std::fmt::Debug for TenantSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantSpec")
            .field("name", &self.name)
            .field("max_endpoints", &self.max_endpoints)
            .field("max_bound_channels", &self.max_bound_channels)
            .field("bytes_per_epoch", &self.bytes_per_epoch)
            .finish_non_exhaustive()
    }
}

/// Static configuration of the control plane, installed once via
/// [`crate::cluster::Cluster::install_control`].
#[derive(Clone, Debug)]
pub struct ControlSpec {
    /// The tenants, indexed by position (tenant id = index).
    pub tenants: Vec<TenantSpec>,
    /// Reconcile tick period.
    pub tick_period: SimDuration,
    /// Time of the first reconcile tick.
    pub first_tick: SimTime,
    /// No ticks are chained past this time (bounds `settle()`).
    pub horizon: SimTime,
    /// Coordinator outage windows `[from, until)`: ticks inside them do
    /// not reconcile — host agents serve on cached desired state.
    pub outages: Vec<(SimTime, SimTime)>,
    /// Base delay between migration phases (drain → create → retarget →
    /// finish). Generous gaps let in-flight traffic drain through the
    /// retransmit machinery between steps.
    pub phase_gap: SimDuration,
    /// Extra delay before a retried migration's first phase, scaled by the
    /// attempt number.
    pub retry_backoff: SimDuration,
    /// Maximum migration attempts per displacement before giving up until
    /// the next reconcile notices the endpoint again.
    pub max_attempts: u32,
    /// Quota accounting epoch length.
    pub epoch: SimDuration,
    /// Hosts eligible as migration destinations (full-fidelity hosts).
    pub placement_pool: Vec<u32>,
}

impl Default for ControlSpec {
    fn default() -> Self {
        ControlSpec {
            tenants: Vec::new(),
            tick_period: SimDuration::from_micros(500),
            first_tick: SimTime::from_nanos(100_000),
            horizon: SimTime::from_nanos(u64::MAX / 2),
            outages: Vec::new(),
            phase_gap: SimDuration::from_micros(400),
            retry_backoff: SimDuration::from_micros(800),
            max_attempts: 3,
            epoch: SimDuration::from_millis(1),
            placement_pool: Vec::new(),
        }
    }
}

/// Operations carried by [`crate::world::Event::Ctl`] broadcasts.
#[derive(Clone, Debug)]
pub enum CtlOp {
    /// A reconcile tick (`seq` counts ticks; each tick chains the next).
    Tick {
        /// Tick sequence number.
        seq: u64,
    },
    /// One phase of migration `id`.
    Mig {
        /// Migration record id.
        id: u32,
        /// The phase to execute.
        phase: MigPhase,
    },
}

/// The four phases of a live migration, scheduled at fixed offsets so the
/// retransmit machinery drains in-flight frames between steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigPhase {
    /// Pin the source incarnation to `Disk` (arrivals nack `NotResident`).
    Drain,
    /// Create the destination incarnation (aborts if the destination host
    /// is down at this instant).
    CreateDst,
    /// Repoint every client translation at the new residence.
    Retarget,
    /// Destroy the source incarnation; or, for an aborted attempt, retry
    /// with backoff.
    Finish,
}

/// Lifecycle state of one migration attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigState {
    /// Drain scheduled/underway.
    Draining,
    /// Destination incarnation exists.
    Created,
    /// Clients repointed.
    Retargeted,
    /// Destination was down at `CreateDst`; `Finish` turns this into a
    /// retry or a terminal failure.
    Aborted,
    /// Completed: the managed endpoint now lives at the destination.
    Done,
    /// This attempt failed terminally (a successor attempt may exist).
    Failed,
}

/// One migration attempt of a managed endpoint.
#[derive(Clone, Debug)]
pub struct MigRec {
    /// The managed endpoint being moved.
    pub vid: u32,
    /// Source host.
    pub from: u32,
    /// Source endpoint id.
    pub from_ep: EpId,
    /// Destination host.
    pub to: u32,
    /// Destination endpoint id (control band, coordinator-assigned).
    pub to_ep: EpId,
    /// Protection key of the destination incarnation.
    pub key: ProtectionKey,
    /// Attempt number (0 = first).
    pub attempt: u32,
    /// Current state.
    pub state: MigState,
}

impl MigRec {
    fn in_flight(&self) -> bool {
        matches!(
            self.state,
            MigState::Draining | MigState::Created | MigState::Retargeted | MigState::Aborted
        )
    }
}

/// Coordinator's record of one managed endpoint.
#[derive(Clone, Debug)]
pub struct ManagedEp {
    /// Owning tenant (index into [`ControlSpec::tenants`]).
    pub tenant: u32,
    /// Service endpoints migrate; client endpoints are pinned (their
    /// quota meters stay exact across migrations this way).
    pub service: bool,
    /// Current host.
    pub host: u32,
    /// Current endpoint id on that host.
    pub ep: EpId,
    /// Current protection key.
    pub key: ProtectionKey,
}

impl ManagedEp {
    /// Current global endpoint address.
    pub fn gep(&self) -> GlobalEp {
        GlobalEp::new(HostId(self.host), self.ep)
    }
}

/// A client→service connection the coordinator brokered (and must
/// retarget when the service migrates).
#[derive(Clone, Debug)]
pub struct Connection {
    /// vid of the client endpoint.
    pub client_vid: u32,
    /// Translation-table slot on the client endpoint.
    pub idx: usize,
    /// vid of the target service endpoint.
    pub target_vid: u32,
}

/// A follow-up control event the deciding step scheduled: `(fire time,
/// key sequence, operation)`. Every host schedules its own broadcast copy.
pub type CtlEntry = (SimTime, u64, CtlOp);

/// The replicated coordinator state (see module docs for the determinism
/// model). One copy lives in the main world and is cloned into every
/// shard world at split time; all copies evolve identically.
#[derive(Clone, Debug)]
pub struct ControlPlane {
    /// Static configuration.
    pub spec: ControlSpec,
    managed: BTreeMap<u32, ManagedEp>,
    connections: Vec<Connection>,
    migs: BTreeMap<u32, MigRec>,
    next_vid: u32,
    next_ep_raw: u32,
    next_mig: u32,
    key_rng: SimRng,
    key_seq: u64,
    /// Follow-ups computed by the latest deciding step: `(kseq of the
    /// decided event, entries)`. Read by every host copy of that event.
    current: (u64, Vec<CtlEntry>),
    rr_cursor: usize,
    pending_requests: Vec<(u32, Option<u32>)>,
    /// When the placement first diverged from desired state (an in-flight
    /// migration or a service on a down host), if currently diverged.
    pub diverged_since: Option<SimTime>,
    /// Worst completed divergence episode: `(start, duration)`.
    pub worst_lag: Option<(SimTime, SimDuration)>,
    /// Migration attempts started.
    pub migrations_started: u64,
    /// Migrations completed (endpoint serving at its new residence).
    pub migrations_completed: u64,
    /// Migration attempts that failed (dead destination at `CreateDst`).
    pub migrations_failed: u64,
    /// Reconcile ticks that actually reconciled.
    pub reconciles: u64,
    /// Ticks that fell inside a coordinator outage window (host agents
    /// served on cached state).
    pub cached_ticks: u64,
    /// Retry/backoff events (failed placements re-attempted later).
    pub retries: u64,
}

impl ControlPlane {
    /// Fresh coordinator with `spec`, deriving key material from `seed`.
    pub fn new(spec: ControlSpec, seed: u64) -> Self {
        ControlPlane {
            spec,
            managed: BTreeMap::new(),
            connections: Vec::new(),
            migs: BTreeMap::new(),
            next_vid: 0,
            next_ep_raw: 0,
            next_mig: 0,
            key_rng: SimRng::seed_from_u64(seed ^ 0xC7_1CE7),
            key_seq: 1, // kseq 0 is the bootstrap tick broadcast
            current: (u64::MAX, Vec::new()),
            rr_cursor: 0,
            pending_requests: Vec::new(),
            diverged_since: None,
            worst_lag: None,
            migrations_started: 0,
            migrations_completed: 0,
            migrations_failed: 0,
            reconciles: 0,
            cached_ticks: 0,
            retries: 0,
        }
    }

    // ------------------------------------------------------- allocation
    //
    // Setup-path methods, called through the `Cluster` facade between run
    // slices (the main world then owns all state, so no replication
    // concerns arise).

    /// Allocate a managed endpoint id, host placement entry, and key for
    /// tenant `tenant` on `host`. Fails when the tenant's endpoint quota
    /// is exhausted. Returns `(vid, ep, key)`; the caller instantiates
    /// the endpoint on the host.
    pub fn alloc_endpoint(
        &mut self,
        tenant: u32,
        host: u32,
        service: bool,
    ) -> Result<(u32, EpId, ProtectionKey), QuotaError> {
        let t = self
            .spec
            .tenants
            .get(tenant as usize)
            .ok_or(QuotaError::UnknownTenant(tenant))?;
        let owned = self.managed.values().filter(|m| m.tenant == tenant).count() as u32;
        if owned >= t.max_endpoints {
            return Err(QuotaError::Endpoints { tenant, limit: t.max_endpoints });
        }
        let ep = EpId(CTL_EP_BASE + self.next_ep_raw);
        self.next_ep_raw += 1;
        let key = ProtectionKey(self.key_rng.below(u64::MAX - 1) + 1);
        let vid = self.next_vid;
        self.next_vid += 1;
        self.managed.insert(vid, ManagedEp { tenant, service, host, ep, key });
        Ok((vid, ep, key))
    }

    /// Record a brokered client→service connection (for retargeting).
    /// Fails when the target tenant's bound-channel quota is exhausted.
    pub fn bind_connection(
        &mut self,
        client_vid: u32,
        idx: usize,
        target_vid: u32,
    ) -> Result<(), QuotaError> {
        let target =
            self.managed.get(&target_vid).ok_or(QuotaError::UnknownVid(target_vid))?;
        let tenant = target.tenant;
        let t = &self.spec.tenants[tenant as usize];
        let bound = self
            .connections
            .iter()
            .filter(|c| {
                self.managed.get(&c.target_vid).is_some_and(|m| m.tenant == tenant)
            })
            .count() as u32;
        if bound >= t.max_bound_channels {
            return Err(QuotaError::BoundChannels { tenant, limit: t.max_bound_channels });
        }
        self.connections.push(Connection { client_vid, idx, target_vid });
        Ok(())
    }

    /// Ask the coordinator to migrate `vid` (optionally to a specific
    /// host) at its next reconcile tick.
    pub fn request_migration(&mut self, vid: u32, dst: Option<u32>) {
        self.pending_requests.push((vid, dst));
    }

    // -------------------------------------------------------- inspection

    /// The managed endpoint `vid`.
    pub fn managed(&self, vid: u32) -> Option<&ManagedEp> {
        self.managed.get(&vid)
    }

    /// Every managed endpoint, in vid order.
    pub fn placements(&self) -> impl Iterator<Item = (u32, &ManagedEp)> {
        self.managed.iter().map(|(v, m)| (*v, m))
    }

    /// Every migration record, in id order (terminal records retained).
    pub fn migrations(&self) -> impl Iterator<Item = (u32, &MigRec)> {
        self.migs.iter().map(|(i, m)| (*i, m))
    }

    /// One migration record by id.
    pub fn migration(&self, id: u32) -> Option<&MigRec> {
        self.migs.get(&id)
    }

    /// Brokered connections.
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// Per-ep byte budget for a tenant: its epoch budget split evenly
    /// across its allowed endpoints.
    pub fn per_ep_budget(&self, tenant: u32) -> u64 {
        let t = &self.spec.tenants[tenant as usize];
        t.bytes_per_epoch / u64::from(t.max_endpoints.max(1))
    }

    fn in_outage(&self, now: SimTime) -> bool {
        self.spec.outages.iter().any(|&(from, until)| from <= now && now < until)
    }

    // ----------------------------------------------- replicated decisions

    fn push_entry(&mut self, at: SimTime, op: CtlOp) {
        let k = self.key_seq;
        self.key_seq += 1;
        self.current.1.push((at, k, op));
    }

    /// The follow-up entries computed for the event with key sequence
    /// `kseq` (every host copy schedules its own broadcast of these).
    pub(crate) fn entries_for(&self, kseq: u64) -> &[CtlEntry] {
        debug_assert_eq!(self.current.0, kseq, "control entries read out of order");
        &self.current.1
    }

    /// The replicated decision step: run on each world's base-host copy of
    /// a control event, before any host-local side effects. Mutates only
    /// replicated state; pure in (state, oracle, now, op), so every world
    /// computes identical results.
    pub(crate) fn process(
        &mut self,
        now: SimTime,
        kseq: u64,
        op: &CtlOp,
        oracle: Option<&RouteOracle>,
    ) {
        self.current = (kseq, Vec::new());
        match op {
            CtlOp::Tick { seq } => {
                let next = now + self.spec.tick_period;
                if next <= self.spec.horizon {
                    self.push_entry(next, CtlOp::Tick { seq: seq + 1 });
                }
                if self.in_outage(now) {
                    self.cached_ticks += 1;
                } else {
                    self.reconciles += 1;
                    let reqs = std::mem::take(&mut self.pending_requests);
                    for (vid, dst) in reqs {
                        self.start_migration(now, vid, dst, 0, oracle);
                    }
                    // Evict services from hosts the campaign took down.
                    let vids: Vec<u32> = self
                        .managed
                        .iter()
                        .filter(|(_, m)| m.service)
                        .map(|(v, _)| *v)
                        .collect();
                    for vid in vids {
                        let host = self.managed[&vid].host;
                        let down =
                            oracle.is_some_and(|o| o.host_down(HostId(host), now));
                        let busy = self.migs.values().any(|m| m.vid == vid && m.in_flight());
                        if down && !busy {
                            self.start_migration(now, vid, None, 0, oracle);
                        }
                    }
                }
            }
            CtlOp::Mig { id, phase } => {
                self.step_migration(now, *id, *phase, oracle);
            }
        }
        self.update_convergence(now, oracle);
    }

    fn start_migration(
        &mut self,
        now: SimTime,
        vid: u32,
        dst: Option<u32>,
        attempt: u32,
        oracle: Option<&RouteOracle>,
    ) {
        let Some(m) = self.managed.get(&vid) else { return };
        if !m.service {
            return; // clients are pinned
        }
        let from = m.host;
        let from_ep = m.ep;
        let to = match dst {
            Some(h) if h != from => h,
            _ => match self.pick_destination(now, from, oracle) {
                Some(h) => h,
                None => {
                    // No live destination right now; the next reconcile
                    // tick will try again.
                    self.retries += 1;
                    return;
                }
            },
        };
        let to_ep = EpId(CTL_EP_BASE + self.next_ep_raw);
        self.next_ep_raw += 1;
        let key = ProtectionKey(self.key_rng.below(u64::MAX - 1) + 1);
        let id = self.next_mig;
        self.next_mig += 1;
        self.migs.insert(
            id,
            MigRec { vid, from, from_ep, to, to_ep, key, attempt, state: MigState::Draining },
        );
        self.migrations_started += 1;
        let base = now + self.spec.retry_backoff.saturating_mul(u64::from(attempt));
        let g = self.spec.phase_gap;
        self.push_entry(base + g, CtlOp::Mig { id, phase: MigPhase::Drain });
        self.push_entry(base + g.saturating_mul(2), CtlOp::Mig { id, phase: MigPhase::CreateDst });
        self.push_entry(base + g.saturating_mul(3), CtlOp::Mig { id, phase: MigPhase::Retarget });
        self.push_entry(base + g.saturating_mul(4), CtlOp::Mig { id, phase: MigPhase::Finish });
    }

    /// Round-robin over the placement pool, skipping the source host,
    /// hosts currently down, and hosts with managed client endpoints
    /// (the fabric has no self-routes, so a service co-located with a
    /// client could never serve it). The cursor is replicated state, so
    /// every world draws the same sequence.
    fn pick_destination(
        &mut self,
        now: SimTime,
        from: u32,
        oracle: Option<&RouteOracle>,
    ) -> Option<u32> {
        let pool = &self.spec.placement_pool;
        if pool.is_empty() {
            return None;
        }
        for probe in 0..pool.len() {
            let h = pool[(self.rr_cursor + probe) % pool.len()];
            let down = oracle.is_some_and(|o| o.host_down(HostId(h), now));
            let client_host = self.managed.values().any(|m| !m.service && m.host == h);
            if h != from && !down && !client_host {
                self.rr_cursor = (self.rr_cursor + probe + 1) % pool.len();
                return Some(h);
            }
        }
        None
    }

    fn step_migration(
        &mut self,
        now: SimTime,
        id: u32,
        phase: MigPhase,
        oracle: Option<&RouteOracle>,
    ) {
        let Some(rec) = self.migs.get(&id) else { return };
        let (vid, to, to_ep, key, attempt, state) =
            (rec.vid, rec.to, rec.to_ep, rec.key, rec.attempt, rec.state);
        match phase {
            MigPhase::Drain => {} // side effects only (source host pageout)
            MigPhase::CreateDst => {
                if state == MigState::Draining {
                    let down = oracle.is_some_and(|o| o.host_down(HostId(to), now));
                    let rec = self.migs.get_mut(&id).expect("checked above");
                    if down {
                        rec.state = MigState::Aborted;
                        self.migrations_failed += 1;
                    } else {
                        rec.state = MigState::Created;
                    }
                }
            }
            MigPhase::Retarget => {
                if state == MigState::Created {
                    self.migs.get_mut(&id).expect("checked above").state =
                        MigState::Retargeted;
                }
            }
            MigPhase::Finish => match state {
                MigState::Retargeted => {
                    self.migs.get_mut(&id).expect("checked above").state = MigState::Done;
                    self.migrations_completed += 1;
                    if let Some(m) = self.managed.get_mut(&vid) {
                        m.host = to;
                        m.ep = to_ep;
                        m.key = key;
                    }
                }
                MigState::Aborted => {
                    self.migs.get_mut(&id).expect("checked above").state = MigState::Failed;
                    if attempt + 1 < self.spec.max_attempts {
                        self.retries += 1;
                        self.start_migration(now, vid, None, attempt + 1, oracle);
                    }
                    // Otherwise: give up for now; the reconcile loop will
                    // notice the endpoint again if its host is still down.
                }
                _ => {}
            },
        }
    }

    fn update_convergence(&mut self, now: SimTime, oracle: Option<&RouteOracle>) {
        let inflight = self.migs.values().any(MigRec::in_flight);
        let displaced = self.managed.values().any(|m| {
            m.service && oracle.is_some_and(|o| o.host_down(HostId(m.host), now))
        });
        let diverged = inflight || displaced;
        match (self.diverged_since, diverged) {
            (None, true) => self.diverged_since = Some(now),
            (Some(t0), false) => {
                let lag = now.since(t0);
                if self.worst_lag.is_none_or(|(_, w)| lag > w) {
                    self.worst_lag = Some((t0, lag));
                }
                self.diverged_since = None;
            }
            _ => {}
        }
    }
}

impl MetricSet for ControlPlane {
    fn visit_metrics(&self, v: &mut dyn MetricVisitor) {
        v.metric("migrations_started", MetricValue::Counter(self.migrations_started));
        v.metric("migrations_completed", MetricValue::Counter(self.migrations_completed));
        v.metric("migrations_failed", MetricValue::Counter(self.migrations_failed));
        v.metric("reconciles", MetricValue::Counter(self.reconciles));
        v.metric("cached_ticks", MetricValue::Counter(self.cached_ticks));
        v.metric("retries", MetricValue::Counter(self.retries));
        v.metric("managed_endpoints", MetricValue::Gauge(self.managed.len() as f64));
    }
}

/// Why a control-plane allocation was denied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuotaError {
    /// No such tenant id.
    UnknownTenant(u32),
    /// No such managed endpoint.
    UnknownVid(u32),
    /// The tenant's endpoint quota is exhausted.
    Endpoints {
        /// The tenant.
        tenant: u32,
        /// Its limit.
        limit: u32,
    },
    /// The tenant's bound-channel quota is exhausted.
    BoundChannels {
        /// The tenant.
        tenant: u32,
        /// Its limit.
        limit: u32,
    },
}

impl std::fmt::Display for QuotaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuotaError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            QuotaError::UnknownVid(v) => write!(f, "unknown managed endpoint vid {v}"),
            QuotaError::Endpoints { tenant, limit } => {
                write!(f, "tenant {tenant} endpoint quota exhausted (limit {limit})")
            }
            QuotaError::BoundChannels { tenant, limit } => {
                write!(f, "tenant {tenant} bound-channel quota exhausted (limit {limit})")
            }
        }
    }
}

impl std::error::Error for QuotaError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sys::{Step, Sys};

    struct Noop;
    impl ThreadBody for Noop {
        fn run(&mut self, _sys: &mut Sys<'_>) -> Step {
            Step::Exit
        }
    }

    fn spec(pool: Vec<u32>) -> ControlSpec {
        ControlSpec {
            tenants: vec![TenantSpec {
                name: "a".into(),
                max_endpoints: 2,
                max_bound_channels: 1,
                bytes_per_epoch: 1_000,
                factory: Arc::new(|_| Box::new(Noop)),
            }],
            placement_pool: pool,
            ..Default::default()
        }
    }

    #[test]
    fn endpoint_quota_is_enforced() {
        let mut c = ControlPlane::new(spec(vec![0, 1]), 7);
        assert!(c.alloc_endpoint(0, 0, true).is_ok());
        assert!(c.alloc_endpoint(0, 1, false).is_ok());
        assert_eq!(
            c.alloc_endpoint(0, 1, false),
            Err(QuotaError::Endpoints { tenant: 0, limit: 2 })
        );
        assert_eq!(c.alloc_endpoint(9, 0, true), Err(QuotaError::UnknownTenant(9)));
    }

    #[test]
    fn bound_channel_quota_is_enforced() {
        let mut c = ControlPlane::new(spec(vec![0, 1]), 7);
        let (svc, _, _) = c.alloc_endpoint(0, 0, true).unwrap();
        let (cli, _, _) = c.alloc_endpoint(0, 1, false).unwrap();
        assert!(c.bind_connection(cli, 0, svc).is_ok());
        assert_eq!(
            c.bind_connection(cli, 1, svc),
            Err(QuotaError::BoundChannels { tenant: 0, limit: 1 })
        );
    }

    #[test]
    fn tick_chain_respects_the_horizon() {
        let mut c = ControlPlane::new(
            ControlSpec {
                horizon: SimTime::from_nanos(1_000_000),
                tick_period: SimDuration::from_nanos(600_000),
                ..spec(vec![1])
            },
            7,
        );
        c.process(SimTime::from_nanos(100_000), 0, &CtlOp::Tick { seq: 0 }, None);
        assert_eq!(c.entries_for(0).len(), 1, "next tick chained");
        let (at, k, _) = c.entries_for(0)[0].clone();
        assert_eq!(at, SimTime::from_nanos(700_000));
        c.process(at, k, &CtlOp::Tick { seq: 1 }, None);
        assert!(c.entries_for(k).is_empty(), "past the horizon, the chain ends");
        assert_eq!(c.reconciles, 2);
    }

    #[test]
    fn outage_ticks_degrade_to_cached_state() {
        let mut c = ControlPlane::new(
            ControlSpec {
                outages: vec![(SimTime::from_nanos(0), SimTime::from_nanos(1 << 40))],
                ..spec(vec![1])
            },
            7,
        );
        let (vid, _, _) = c.alloc_endpoint(0, 0, true).unwrap();
        c.request_migration(vid, Some(1));
        c.process(SimTime::from_nanos(5), 0, &CtlOp::Tick { seq: 0 }, None);
        assert_eq!(c.cached_ticks, 1);
        assert_eq!(c.reconciles, 0);
        assert_eq!(c.migrations_started, 0, "no reconciliation during an outage");
    }

    #[test]
    fn manual_migration_runs_the_four_phases() {
        let mut c = ControlPlane::new(spec(vec![0, 1]), 7);
        let (vid, _, _) = c.alloc_endpoint(0, 0, true).unwrap();
        c.request_migration(vid, Some(1));
        let t0 = SimTime::from_nanos(1_000);
        c.process(t0, 0, &CtlOp::Tick { seq: 0 }, None);
        // Tick chain + 4 phases.
        let phases: Vec<CtlEntry> = c
            .entries_for(0)
            .iter()
            .filter(|(_, _, op)| matches!(op, CtlOp::Mig { .. }))
            .cloned()
            .collect();
        assert_eq!(phases.len(), 4);
        assert_eq!(c.migrations_started, 1);
        for (at, k, op) in phases {
            c.process(at, k, &op, None);
        }
        assert_eq!(c.migrations_completed, 1);
        let m = c.managed(vid).unwrap();
        assert_eq!(m.host, 1);
        assert!(m.ep.0 >= CTL_EP_BASE);
        assert!(c.worst_lag.is_some(), "divergence episode recorded and closed");
        assert!(c.diverged_since.is_none());
    }
}
