//! Fluent cluster construction: `Cluster::builder()`.
//!
//! ```
//! use vnet_core::prelude::*;
//!
//! let cluster = Cluster::builder()
//!     .hosts(4)
//!     .frames(96)
//!     .seed(7)
//!     .telemetry(true)
//!     .build();
//! assert_eq!(cluster.hosts(), 4);
//! assert!(cluster.telemetry().enabled());
//! ```
//!
//! `Cluster::new(cfg)` remains for callers that already hold a
//! [`ClusterConfig`]; the builder is sugar over the same presets
//! ([`ClusterConfig::now`] / [`ClusterConfig::gam`]) plus the common
//! overrides, with [`ClusterBuilder::tweak`] as the escape hatch for
//! everything else.

use crate::cluster::Cluster;
use crate::config::ClusterConfig;
use crate::model::{Fidelity, FidelityMap};
use vnet_net::{FaultScheduleSpec, TopologySpec};

type ConfigTweak = Box<dyn FnOnce(&mut ClusterConfig)>;

/// Fluent builder for a [`Cluster`]; see the module docs.
pub struct ClusterBuilder {
    hosts: u32,
    gam: bool,
    topology: Option<TopologySpec>,
    frames: Option<u32>,
    seed: Option<u64>,
    credits: Option<u32>,
    drop_prob: Option<f64>,
    corrupt_prob: Option<f64>,
    audit: Option<bool>,
    telemetry: Option<bool>,
    tracing: bool,
    shards: Option<u32>,
    fidelity: Option<FidelityMap>,
    faults: Option<FaultScheduleSpec>,
    tweaks: Vec<ConfigTweak>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterBuilder {
    /// A builder for the paper's default two-host virtual-network cluster.
    pub fn new() -> Self {
        ClusterBuilder {
            hosts: 2,
            gam: false,
            topology: None,
            frames: None,
            seed: None,
            credits: None,
            drop_prob: None,
            corrupt_prob: None,
            audit: None,
            telemetry: None,
            tracing: false,
            shards: None,
            fidelity: None,
            faults: None,
            tweaks: Vec::new(),
        }
    }

    /// Number of hosts (crossbar topology unless overridden; `100` gives
    /// the full NOW fat tree).
    pub fn hosts(mut self, n: u32) -> Self {
        self.hosts = n;
        self
    }

    /// Use the first-generation GAM baseline instead of virtual networks.
    pub fn gam(mut self) -> Self {
        self.gam = true;
        self
    }

    /// Explicit network topology (overrides the host-count default).
    pub fn topology(mut self, t: TopologySpec) -> Self {
        self.topology = Some(t);
        self
    }

    /// NI endpoint frames per NIC (8 = LANai 4.3, 96 = newer interface).
    pub fn frames(mut self, frames: u32) -> Self {
        self.frames = Some(frames);
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// User-level request credits per destination endpoint.
    pub fn credits(mut self, credits: u32) -> Self {
        self.credits = Some(credits);
        self
    }

    /// Random per-packet drop probability.
    pub fn drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = Some(p);
        self
    }

    /// Random per-packet corruption probability.
    pub fn corrupt_prob(mut self, p: f64) -> Self {
        self.corrupt_prob = Some(p);
        self
    }

    /// Attach (or detach) the cross-layer invariant auditor's hooks.
    /// Default: debug builds only.
    pub fn audit(mut self, on: bool) -> Self {
        self.audit = Some(on);
        self
    }

    /// Attach the unified telemetry registry (metrics handles + span
    /// tracing; read back through `Cluster::telemetry`). Default: the
    /// `VNET_TELEMETRY` environment variable, else off.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = Some(on);
        self
    }

    /// Enable the causal trace ring from the start.
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Worker shards for the conservative parallel executor (clamped to
    /// what the topology supports; results are byte-identical for any
    /// value). Default: the `VNET_SHARDS` environment variable, else 1
    /// (sequential).
    pub fn shards(mut self, n: u32) -> Self {
        self.shards = Some(n);
        self
    }

    /// Assign a fidelity class to the listed hosts (see
    /// [`crate::model`]): `Fidelity::Abstract` hosts run the fast LogP
    /// model, everything else stays `Fidelity::Full`. The first fidelity
    /// call on a builder starts from full-everywhere and *replaces* any
    /// `VNET_FIDELITY` environment default (the builder > env > default
    /// contract in [`crate::config`]); later calls accumulate.
    pub fn fidelity(mut self, hosts: impl IntoIterator<Item = u32>, f: Fidelity) -> Self {
        self.fidelity.get_or_insert_with(FidelityMap::full).set_hosts(hosts, f);
        self
    }

    /// The fidelity class unlisted hosts take (replaces/seeds the map the
    /// same way as [`ClusterBuilder::fidelity`]).
    pub fn default_fidelity(mut self, f: Fidelity) -> Self {
        self.fidelity.get_or_insert_with(FidelityMap::full).set_default_host(f);
        self
    }

    /// The fabric's fidelity (`Fidelity::Abstract` selects the delay-only
    /// fabric; same map-seeding rule as [`ClusterBuilder::fidelity`]).
    pub fn fabric_fidelity(mut self, f: Fidelity) -> Self {
        self.fidelity.get_or_insert_with(FidelityMap::full).set_fabric(f);
        self
    }

    /// Scheduled fault campaign: timed link flaps, switch failures,
    /// degrade windows, bursty errors (see
    /// [`vnet_net::FaultScheduleSpec`]). Default: none.
    pub fn faults(mut self, spec: FaultScheduleSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Escape hatch: arbitrary configuration surgery, applied after every
    /// other builder option, in registration order.
    pub fn tweak(mut self, f: impl FnOnce(&mut ClusterConfig) + 'static) -> Self {
        self.tweaks.push(Box::new(f));
        self
    }

    /// Resolve the configuration this builder describes.
    pub fn config(&self) -> ClusterConfig {
        let mut cfg =
            if self.gam { ClusterConfig::gam(self.hosts) } else { ClusterConfig::now(self.hosts) };
        if let Some(t) = &self.topology {
            cfg.topology = t.clone();
        }
        if let Some(f) = self.frames {
            cfg.nic.frames = f;
        }
        if let Some(s) = self.seed {
            cfg.seed = s;
        }
        if let Some(c) = self.credits {
            cfg.credits = c;
        }
        if let Some(p) = self.drop_prob {
            cfg.drop_prob = p;
        }
        if let Some(p) = self.corrupt_prob {
            cfg.corrupt_prob = p;
        }
        if let Some(a) = self.audit {
            cfg.audit = a;
        }
        if let Some(t) = self.telemetry {
            cfg.telemetry = t;
        }
        if let Some(s) = self.shards {
            cfg.shards = s.max(1);
        }
        if let Some(f) = &self.fidelity {
            cfg.fidelity = f.clone();
        }
        if let Some(f) = &self.faults {
            cfg.faults = f.clone();
        }
        cfg
    }

    /// Build the cluster.
    pub fn build(self) -> Cluster {
        let mut cfg = self.config();
        for t in self.tweaks {
            t(&mut cfg);
        }
        let c = Cluster::new(cfg);
        if self.tracing {
            c.telemetry().trace_enable();
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;

    #[test]
    fn builder_resolves_presets_and_overrides() {
        let b = ClusterBuilder::new()
            .hosts(4)
            .frames(96)
            .seed(42)
            .credits(16)
            .drop_prob(0.1)
            .audit(false)
            .telemetry(true);
        let cfg = b.config();
        assert_eq!(cfg.hosts(), 4);
        assert_eq!(cfg.nic.frames, 96);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.credits, 16);
        assert!((cfg.drop_prob - 0.1).abs() < 1e-12);
        assert!(!cfg.audit);
        assert!(cfg.telemetry);
        let c = b.build();
        assert_eq!(c.hosts(), 4);
        assert!(c.telemetry().enabled());
    }

    #[test]
    fn builder_gam_and_tweak() {
        let c = Cluster::builder()
            .gam()
            .hosts(2)
            .tweak(|cfg| cfg.net.link_mb_s = 320.0)
            .build();
        assert_eq!(c.world().cfg.mode, Mode::Gam);
        assert!(!c.telemetry().enabled());
    }

    #[test]
    fn builder_tracing_enables_ring() {
        let c = Cluster::builder().tracing(true).build();
        assert!(c.world().trace.borrow().is_enabled());
    }

    #[test]
    fn builder_fidelity_map() {
        let cfg = ClusterBuilder::new()
            .hosts(8)
            .fidelity(4..8, Fidelity::Abstract)
            .fabric_fidelity(Fidelity::Abstract)
            .config();
        assert_eq!(cfg.fidelity.of(0), Fidelity::Full);
        assert_eq!(cfg.fidelity.of(4), Fidelity::Abstract);
        assert_eq!(cfg.fidelity.fabric(), Fidelity::Abstract);
        assert!(cfg.fidelity.any_abstract(8));
    }
}
