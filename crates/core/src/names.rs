//! Endpoint name rendezvous (§3.1).
//!
//! "Endpoint names are opaque … and the names can be obtained by any
//! rendezvous mechanism." This module is that rendezvous: a simple
//! string-keyed registry, the analogue of the cluster's name server.
//! Applications register endpoints under well-known names
//! (`"nfs/server0"`, `"mpi/job42/rank3"`) and peers resolve them into
//! [`GlobalEp`]s to install in their translation tables.

use std::collections::HashMap;
use vnet_nic::GlobalEp;

/// A string-keyed endpoint registry.
#[derive(Debug, Default)]
pub struct NameService {
    names: HashMap<String, GlobalEp>,
}

impl NameService {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `ep` under `name`. Returns the previous binding, if any
    /// (re-registration is how a restarted service reclaims its name).
    pub fn register(&mut self, name: impl Into<String>, ep: GlobalEp) -> Option<GlobalEp> {
        self.names.insert(name.into(), ep)
    }

    /// Resolve a name.
    pub fn lookup(&self, name: &str) -> Option<GlobalEp> {
        self.names.get(name).copied()
    }

    /// Remove a binding.
    pub fn unregister(&mut self, name: &str) -> Option<GlobalEp> {
        self.names.remove(name)
    }

    /// All names with a given prefix (service discovery: every member of
    /// `"mpi/job42/"`).
    pub fn lookup_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, GlobalEp)> + 'a {
        self.names
            .iter()
            .filter(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_net::HostId;
    use vnet_nic::EpId;

    fn gep(h: u32, e: u32) -> GlobalEp {
        GlobalEp::new(HostId(h), EpId(e))
    }

    #[test]
    fn register_lookup_unregister() {
        let mut ns = NameService::new();
        assert!(ns.is_empty());
        assert_eq!(ns.register("nfs/server0", gep(3, 1)), None);
        assert_eq!(ns.lookup("nfs/server0"), Some(gep(3, 1)));
        assert_eq!(ns.lookup("nope"), None);
        // Restarted service reclaims its name.
        assert_eq!(ns.register("nfs/server0", gep(4, 0)), Some(gep(3, 1)));
        assert_eq!(ns.unregister("nfs/server0"), Some(gep(4, 0)));
        assert!(ns.is_empty());
    }

    #[test]
    fn prefix_discovery() {
        let mut ns = NameService::new();
        for r in 0..4 {
            ns.register(format!("mpi/job42/rank{r}"), gep(r, 0));
        }
        ns.register("mpi/job7/rank0", gep(9, 0));
        let members: Vec<_> = ns.lookup_prefix("mpi/job42/").collect();
        assert_eq!(members.len(), 4);
        assert_eq!(ns.len(), 5);
    }
}
