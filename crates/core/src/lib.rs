//! Virtual networks: the Active Messages II programming interface and the
//! full-cluster composition — the paper's primary contribution.
//!
//! A **virtual network** is a collection of *endpoints* that refer to one
//! another through translation tables, giving each application "the
//! illusion of having its own dedicated, high-performance network" while
//! the interface hardware multiplexes a small number of physical endpoint
//! frames (§1, §3).
//!
//! This crate supplies:
//!
//! * the user-level programming interface — endpoints with endpoint-relative
//!   naming and protection keys (§3.1), the exactly-once/return-to-sender
//!   delivery model (§3.2), thread-based communication events (§3.3), and
//!   the 32-credit user-level request flow control of §6.4.1 — in
//!   [`sys::Sys`] and [`sys::ThreadBody`];
//! * the composition of every substrate — [`vnet_net`] fabric,
//!   [`vnet_nic`] interfaces, [`vnet_os`] segment drivers and schedulers —
//!   into a single deterministic simulated cluster, [`cluster::Cluster`];
//! * calibrated [`config::CostModel`] presets for the paper's two systems:
//!   virtual-network Active Messages (`now_am`) and the first-generation
//!   single-endpoint GAM baseline (`now_gam`).
//!
//! # Quickstart
//!
//! ```
//! use vnet_core::prelude::*;
//!
//! // Two workstations on the NOW fat tree.
//! let mut cluster = Cluster::new(ClusterConfig::now(2));
//! let a = cluster.create_endpoint(HostId(0));
//! let b = cluster.create_endpoint(HostId(1));
//! cluster.build_virtual_network(&[a, b]);
//!
//! // A thread on host 1 that answers every request.
//! cluster.spawn_thread(HostId(1), Box::new(Echo { ep: b }));
//! // A thread on host 0 that sends one request and waits for the reply.
//! cluster.spawn_thread(HostId(0), Box::new(PingOnce { ep: a, done: false }));
//! cluster.run_for(SimDuration::from_millis(50));
//!
//! let pinger: &PingOnce = cluster.body::<PingOnce>(HostId(0), Tid(0)).unwrap();
//! assert!(pinger.done, "reply must arrive");
//!
//! struct Echo { ep: GlobalEp }
//! impl ThreadBody for Echo {
//!     fn run(&mut self, sys: &mut Sys<'_>) -> Step {
//!         while let Some(m) = sys.poll(self.ep.ep, QueueSel::Request) {
//!             let _ = sys.reply(self.ep.ep, &m, 0, [0; 4], 0);
//!         }
//!         Step::WaitEvent(self.ep.ep)
//!     }
//! }
//!
//! struct PingOnce { ep: GlobalEp, done: bool }
//! impl ThreadBody for PingOnce {
//!     fn run(&mut self, sys: &mut Sys<'_>) -> Step {
//!         if self.done {
//!             return Step::Exit;
//!         }
//!         if sys.outstanding(self.ep.ep) == 0 {
//!             sys.request(self.ep.ep, 1, 9, [1, 2, 3, 4], 0).unwrap();
//!         }
//!         if sys.poll(self.ep.ep, QueueSel::Reply).is_some() {
//!             self.done = true;
//!             return Step::Exit;
//!         }
//!         Step::WaitEvent(self.ep.ep)
//!     }
//! }
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod cluster;
pub mod config;
pub mod control;
pub mod model;
pub mod names;
pub mod observe;
pub mod sys;
pub mod user;
pub mod world;

pub use builder::ClusterBuilder;
pub use cluster::Cluster;
pub use config::{ClusterConfig, CostModel, Mode};
pub use control::{
    ControlPlane, ControlSpec, CtlOp, EpFactory, ManagedEp, MigPhase, MigRec, MigState,
    QuotaError, TenantSpec, CTL_EP_BASE,
};
pub use model::{
    bounded_pareto, zipf_rank, AbsStats, AbstractTraffic, FabricModel, FabricSlot, Fidelity,
    FidelityMap, HostModel, NicModel, OpenLoopSpec, OPEN_LOOP_HANDLER,
};
pub use names::NameService;
pub use observe::ClusterTelemetry;
pub use sys::{SendError, Step, Sys, ThreadBody};
pub use user::{EpMode, UserEpState};
pub use world::{Event, FullHost, HostEnv, HostSlot, World};

/// Common imports for applications built on virtual networks.
pub mod prelude {
    pub use crate::builder::ClusterBuilder;
    pub use crate::cluster::Cluster;
    pub use crate::config::{ClusterConfig, CostModel, Mode};
    pub use crate::control::{ControlSpec, QuotaError, TenantSpec};
    pub use crate::model::{AbsStats, AbstractTraffic, Fidelity, FidelityMap, OpenLoopSpec};
    pub use crate::observe::ClusterTelemetry;
    pub use crate::sys::{SendError, Step, Sys, ThreadBody};
    pub use crate::user::EpMode;
    pub use vnet_nic::{DeliveredMsg, EpId, GlobalEp, QueueSel};
    pub use vnet_net::HostId;
    pub use vnet_os::Tid;
    pub use vnet_sim::telemetry::{MetricSet, MetricValue, MetricsSnapshot};
    pub use vnet_sim::{SimDuration, SimTime};
}
