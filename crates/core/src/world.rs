//! The composed cluster world: fabric + NICs + segment drivers + thread
//! schedulers + application threads, wired into one deterministic
//! event graph.

use crate::config::{ClusterConfig, Mode};
use crate::sys::{Step, Sys, ThreadBody};
use crate::user::UserEpState;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use vnet_net::{Fabric, FaultPlan, HostId, InjectOutcome, Topology};
use vnet_nic::{
    DriverMsg, EpId, Frame, GlobalEp, Nic, NicConfig, NicEvent, NicMode, NicOut, ProtectionKey,
};
use vnet_os::{BlockReason, OsEvent, OsOut, Scheduler, SegmentDriver, Tid};
use vnet_sim::{
    AuditHandle, Auditor, Ctx, SimDuration, SimRng, SimTime, SimWorld, Telemetry, TelemetryHandle,
    TraceHandle, TraceRing,
};

/// Minimum CPU time charged per thread burst: no user-level loop runs in
/// zero time (guards against zero-cost livelock in misbehaving bodies).
const MIN_BURST: SimDuration = SimDuration::from_nanos(200);

/// Global event alphabet of the composed simulation.
#[derive(Debug)]
pub enum Event {
    /// NIC-internal event.
    Nic {
        /// Host index.
        host: u32,
        /// The event.
        ev: NicEvent,
    },
    /// OS-internal event (remap daemon, page-in).
    Os {
        /// Host index.
        host: u32,
        /// The event.
        ev: OsEvent,
    },
    /// Frame delivery from the fabric.
    Deliver {
        /// Receiving host.
        host: u32,
        /// Sending host.
        src: HostId,
        /// The frame.
        frame: Frame,
        /// CRC failure flag.
        corrupt: bool,
    },
    /// Driver-protocol message crossing NIC → OS (used when raised outside
    /// an event handler).
    DriverMsg {
        /// Host index.
        host: u32,
        /// The message.
        msg: DriverMsg,
    },
    /// CPU dispatch step (generation-guarded).
    Cpu {
        /// Host index.
        host: u32,
        /// Generation stamp.
        gen: u64,
    },
    /// Timer wake for a sleeping thread.
    WakeThread {
        /// Host index.
        host: u32,
        /// The thread.
        tid: Tid,
    },
}

struct ThreadRec {
    body: Option<Box<dyn ThreadBody>>,
    pending_compute: SimDuration,
}

struct CpuState {
    gen: u64,
    sched_at: SimTime,
    busy_until: SimTime,
}

/// The composed world (see module docs).
pub struct World {
    /// Build configuration.
    pub cfg: ClusterConfig,
    /// The network.
    pub fabric: Fabric,
    /// One NIC per host.
    pub nics: Vec<Nic>,
    /// One endpoint segment driver per host.
    pub oses: Vec<SegmentDriver>,
    /// One thread scheduler per host.
    pub scheds: Vec<Scheduler>,
    /// User-level endpoint state per host.
    pub user: Vec<HashMap<EpId, UserEpState>>,
    /// Protection keys of every endpoint (the rendezvous snapshot).
    pub keys: HashMap<GlobalEp, ProtectionKey>,
    /// Debug trace of residency and scheduling transitions; disabled by
    /// default (enable via [`World::trace_mut`]). Shared with every NIC,
    /// segment driver, and the auditor so protocol-level events land in one
    /// causally ordered ring.
    pub trace: TraceHandle,
    /// Cross-layer invariant auditor; every NIC and segment driver reports
    /// protocol events into it (delivery ledger, credit conservation,
    /// stop-and-wait channel discipline, endpoint frame accounting).
    pub auditor: AuditHandle,
    /// Unified telemetry registry (metrics + span tracing). `Some` only
    /// when [`ClusterConfig::telemetry`] is set; with it absent no
    /// component holds hooks and the hot path pays nothing.
    pub telemetry: Option<TelemetryHandle>,
    threads: Vec<HashMap<Tid, ThreadRec>>,
    cpu: Vec<CpuState>,
    rngs: Vec<SimRng>,
    key_rng: SimRng,
}

impl World {
    /// Build from configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        let topo = Topology::build(cfg.topology.clone());
        let n = topo.host_count() as usize;
        let faults = if cfg.drop_prob > 0.0 || cfg.corrupt_prob > 0.0 {
            FaultPlan::with_errors(cfg.seed ^ 0xFA17, cfg.drop_prob, cfg.corrupt_prob)
        } else {
            FaultPlan::none(cfg.seed ^ 0xFA17)
        };
        let fabric = Fabric::new(cfg.net.clone(), topo, faults);
        let mut nic_cfg: NicConfig = cfg.nic.clone();
        nic_cfg.mode = match cfg.mode {
            Mode::VirtualNetwork => NicMode::VirtualNetwork,
            Mode::Gam => NicMode::Gam,
        };
        let root = SimRng::seed_from_u64(cfg.seed);
        let trace: TraceHandle = Rc::new(RefCell::new(TraceRing::default()));
        let auditor = Auditor::handle(cfg.credits);
        {
            let mut a = auditor.borrow_mut();
            a.set_trace(trace.clone());
            for i in 0..n {
                a.register_host(i as u32, nic_cfg.frames);
            }
        }
        let mut nics: Vec<Nic> =
            (0..n).map(|i| Nic::new(HostId(i as u32), nic_cfg.clone(), cfg.seed)).collect();
        let mut oses: Vec<SegmentDriver> = (0..n)
            .map(|i| SegmentDriver::new(cfg.os.clone(), nic_cfg.frames, cfg.seed ^ (i as u64)))
            .collect();
        if cfg.audit {
            for nic in nics.iter_mut() {
                nic.attach_auditor(auditor.clone());
                nic.attach_trace(trace.clone());
            }
            for (i, os) in oses.iter_mut().enumerate() {
                os.attach_instrumentation(i as u32, auditor.clone(), trace.clone());
            }
        }
        let telemetry = if cfg.telemetry {
            let tel = Telemetry::handle();
            for nic in nics.iter_mut() {
                nic.attach_telemetry(tel.clone());
            }
            for (i, os) in oses.iter_mut().enumerate() {
                os.attach_telemetry(i as u32, tel.clone());
            }
            Some(tel)
        } else {
            None
        };
        World {
            fabric,
            nics,
            oses,
            scheds: (0..n).map(|_| Scheduler::new(cfg.sched.clone())).collect(),
            user: (0..n).map(|_| HashMap::new()).collect(),
            keys: HashMap::new(),
            threads: (0..n).map(|_| HashMap::new()).collect(),
            cpu: (0..n)
                .map(|_| CpuState { gen: 0, sched_at: SimTime::MAX, busy_until: SimTime::ZERO })
                .collect(),
            rngs: (0..n).map(|i| root.derive(0x7000 + i as u64)).collect(),
            key_rng: root.derive(0x4B45_5953),
            trace,
            auditor,
            telemetry,
            cfg,
        }
    }

    /// Mutable access to the debug trace (call `.enable()` to record).
    pub fn trace_mut(&mut self) -> std::cell::RefMut<'_, TraceRing> {
        self.trace.borrow_mut()
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.nics.len()
    }

    // ------------------------------------------------------------ effects

    /// Apply NIC effects inside an event handler.
    pub(crate) fn apply_nic(&mut self, host: usize, outs: Vec<NicOut>, ctx: &mut Ctx<'_, Event>) {
        for o in outs {
            match o {
                NicOut::After(d, ev) => {
                    ctx.schedule(d, Event::Nic { host: host as u32, ev });
                }
                NicOut::Inject(pkt) => match self.fabric.inject(ctx.now(), pkt) {
                    InjectOutcome::Delivered { delay, corrupt, pkt } => {
                        ctx.schedule(
                            delay,
                            Event::Deliver {
                                host: pkt.dst.0,
                                src: pkt.src,
                                frame: pkt.payload,
                                corrupt,
                            },
                        );
                    }
                    InjectOutcome::Dropped { .. } => {}
                },
                NicOut::Driver(msg) => self.handle_driver_msg(host, msg, ctx),
            }
        }
    }

    /// Apply OS effects inside an event handler.
    pub(crate) fn apply_os(&mut self, host: usize, outs: Vec<OsOut>, ctx: &mut Ctx<'_, Event>) {
        for o in outs {
            match o {
                OsOut::Nic(op) => {
                    let mut nic_outs = Vec::new();
                    self.nics[host].driver_request(ctx.now(), op, &mut nic_outs);
                    self.apply_nic(host, nic_outs, ctx);
                }
                OsOut::Wake(tid) => {
                    if self.scheds[host].wake(tid) {
                        self.kick_cpu(host, ctx);
                    }
                }
                OsOut::After(d, ev) => {
                    ctx.schedule(d, Event::Os { host: host as u32, ev });
                }
            }
        }
    }

    /// Route a NIC→driver message: segment-driver bookkeeping plus thread
    /// wakeups (the composing world owns the scheduler).
    fn handle_driver_msg(&mut self, host: usize, msg: DriverMsg, ctx: &mut Ctx<'_, Event>) {
        let wake_cost = self.cfg.os.wake_cost;
        self.trace.borrow_mut().record_with(ctx.now(), host as u32, "driver.msg", || {
            format!("{msg:?}")
        });
        match &msg {
            DriverMsg::Loaded { ep, .. } => {
                let ep = *ep;
                // Wake residency waiters, and event waiters too — a load
                // can deposit flushed returns before any fresh Event fires,
                // and spurious wakes are safe (bodies re-check and
                // re-block).
                let mut woken = 0;
                let tids: Vec<Tid> = self.scheds[host]
                    .blocked_on_residency(ep)
                    .into_iter()
                    .chain(self.scheds[host].blocked_on_event(ep))
                    .collect();
                for tid in tids {
                    ctx.schedule(wake_cost, Event::WakeThread { host: host as u32, tid });
                    woken += 1;
                }
                self.oses[host].note_residency_wakes(woken);
            }
            DriverMsg::Event { ep, .. } => {
                let ep = *ep;
                let tids = self.scheds[host].blocked_on_event(ep);
                self.oses[host].note_event_wakes(tids.len() as u64);
                for tid in tids {
                    ctx.schedule(wake_cost, Event::WakeThread { host: host as u32, tid });
                }
            }
            _ => {}
        }
        let mut os_outs = Vec::new();
        self.oses[host].on_nic_msg(ctx.now(), msg, &mut os_outs);
        self.apply_os(host, os_outs, ctx);
    }

    // ---------------------------------------------------------------- CPU

    /// Ensure a CPU step is scheduled no later than the CPU's ready time.
    pub(crate) fn kick_cpu(&mut self, host: usize, ctx: &mut Ctx<'_, Event>) {
        let ready = ctx.now().max(self.cpu[host].busy_until);
        if self.cpu[host].sched_at <= ready {
            return;
        }
        self.cpu[host].gen += 1;
        self.cpu[host].sched_at = ready;
        let gen = self.cpu[host].gen;
        ctx.schedule(ready - ctx.now(), Event::Cpu { host: host as u32, gen });
    }

    fn on_cpu(&mut self, host: usize, gen: u64, ctx: &mut Ctx<'_, Event>) {
        if gen != self.cpu[host].gen {
            return;
        }
        self.cpu[host].sched_at = SimTime::MAX;
        let now = ctx.now();
        if now < self.cpu[host].busy_until {
            self.kick_cpu(host, ctx);
            return;
        }
        // Dispatch / preempt.
        if self.scheds[host].current().is_none() {
            if !self.scheds[host].has_runnable() {
                return; // CPU idles; wakes re-kick
            }
            let cost = self.scheds[host].dispatch(now);
            if cost > SimDuration::ZERO {
                self.cpu[host].busy_until = now + cost;
                self.kick_cpu(host, ctx);
                return;
            }
        } else if self.scheds[host].preempt_if_due(now) {
            self.kick_cpu(host, ctx);
            return;
        }
        let Some(tid) = self.scheds[host].current() else {
            self.kick_cpu(host, ctx);
            return;
        };
        // Continue a long compute without re-invoking the body.
        let pending = self.threads[host].get(&tid).map(|r| r.pending_compute);
        if let Some(pending) = pending {
            if pending > SimDuration::ZERO {
                let slice = if self.scheds[host].ready_count() == 0 {
                    pending
                } else {
                    pending.min(self.scheds[host].quantum_left(now)).max(MIN_BURST)
                };
                self.threads[host].get_mut(&tid).unwrap().pending_compute = pending - slice;
                self.cpu[host].busy_until = now + slice;
                self.kick_cpu(host, ctx);
                return;
            }
        }
        // Run one burst of the body.
        let Some(rec) = self.threads[host].get_mut(&tid) else {
            // Registered in the scheduler but no body (shouldn't happen).
            self.scheds[host].exit_current();
            self.kick_cpu(host, ctx);
            return;
        };
        let Some(mut body) = rec.body.take() else {
            self.scheds[host].exit_current();
            self.kick_cpu(host, ctx);
            return;
        };
        let mut sys = Sys {
            now,
            host: HostId(host as u32),
            nic: &mut self.nics[host],
            os: &mut self.oses[host],
            user: &mut self.user[host],
            keys: &self.keys,
            cost: &self.cfg.cost,
            credits: self.cfg.credits,
            rng: &mut self.rngs[host],
            elapsed: SimDuration::ZERO,
            nic_outs: Vec::new(),
            os_outs: Vec::new(),
            auditor: if self.cfg.audit { Some(&self.auditor) } else { None },
        };
        let step = body.run(&mut sys);
        let elapsed = sys.elapsed.max(MIN_BURST);
        let nic_outs = std::mem::take(&mut sys.nic_outs);
        let os_outs = std::mem::take(&mut sys.os_outs);
        drop(sys);
        self.threads[host].get_mut(&tid).unwrap().body = Some(body);
        self.apply_nic(host, nic_outs, ctx);
        self.apply_os(host, os_outs, ctx);

        match step {
            Step::Compute(d) => {
                self.threads[host].get_mut(&tid).unwrap().pending_compute = d;
            }
            Step::Yield => {
                self.scheds[host].yield_current();
            }
            Step::Sleep(d) => {
                self.scheds[host].block_current(BlockReason::Sleep);
                ctx.schedule(elapsed + d, Event::WakeThread { host: host as u32, tid });
            }
            Step::WaitEvent(ep) => {
                // Arm the mask first, then re-check, to close the lost
                // wakeup window.
                if !self.nics[host].set_event_mask_direct(ep, true) {
                    if let Some(img) = self.oses[host].host_image_mut(ep) {
                        img.notify_on_arrival = true;
                    }
                }
                let has = if self.nics[host].is_resident(ep) {
                    self.nics[host].recv_depths(ep).map(|(a, b)| a + b > 0).unwrap_or(false)
                } else {
                    self.oses[host].host_image(ep).map(|i| i.has_received()).unwrap_or(false)
                };
                if has {
                    self.scheds[host].yield_current();
                } else {
                    self.scheds[host].block_current(BlockReason::EndpointEvent(ep));
                }
            }
            Step::WaitResident(ep) => {
                if self.nics[host].is_resident(ep) {
                    self.scheds[host].yield_current();
                } else {
                    self.scheds[host].block_current(BlockReason::Residency(ep));
                }
            }
            Step::Exit => {
                self.scheds[host].exit_current();
            }
        }
        self.cpu[host].busy_until = now + elapsed;
        self.kick_cpu(host, ctx);
    }

    // ----------------------------------------------------- setup (no ctx)

    /// Allocate an endpoint on `host` with a fresh protection key.
    /// Effects are returned for the caller (the [`crate::Cluster`] facade)
    /// to inject into the engine.
    pub(crate) fn create_endpoint_raw(
        &mut self,
        now: SimTime,
        host: usize,
    ) -> (GlobalEp, Vec<OsOut>) {
        let key = ProtectionKey(self.key_rng.below(u64::MAX - 1) + 1);
        let mut outs = Vec::new();
        let ep = self.oses[host].create_endpoint(now, key, &mut outs);
        let gep = GlobalEp::new(HostId(host as u32), ep);
        self.keys.insert(gep, key);
        self.user[host].entry(ep).or_default();
        (gep, outs)
    }

    /// Spawn a thread with `body` on `host`.
    pub(crate) fn spawn_thread_raw(&mut self, host: usize, body: Box<dyn ThreadBody>) -> Tid {
        let tid = self.scheds[host].spawn();
        self.threads[host]
            .insert(tid, ThreadRec { body: Some(body), pending_compute: SimDuration::ZERO });
        tid
    }

    /// Immutable access to a thread body, downcast to its concrete type.
    pub fn body<T: ThreadBody>(&self, host: usize, tid: Tid) -> Option<&T> {
        let rec = self.threads[host].get(&tid)?;
        let body = rec.body.as_deref()?;
        (body as &dyn std::any::Any).downcast_ref::<T>()
    }

    /// Mutable access to a thread body, downcast to its concrete type.
    pub fn body_mut<T: ThreadBody>(&mut self, host: usize, tid: Tid) -> Option<&mut T> {
        let rec = self.threads[host].get_mut(&tid)?;
        let body = rec.body.as_deref_mut()?;
        (body as &mut dyn std::any::Any).downcast_mut::<T>()
    }

    /// Forcibly terminate a thread (process exit): its body is dropped and
    /// it will never be scheduled again.
    pub(crate) fn kill_thread(&mut self, host: usize, tid: Tid) {
        if let Some(rec) = self.threads[host].get_mut(&tid) {
            rec.body = None;
            rec.pending_compute = SimDuration::ZERO;
        }
        // If it is blocked, wake it so the scheduler can observe the exit
        // (the CPU loop exits bodies that have vanished).
        self.scheds[host].wake(tid);
    }

    /// Prepare a CPU kick from outside an event handler (setup paths).
    /// Returns the event to schedule, if one is needed.
    pub(crate) fn prep_cpu_kick(&mut self, host: usize, now: SimTime) -> Option<(SimDuration, Event)> {
        let ready = now.max(self.cpu[host].busy_until);
        if self.cpu[host].sched_at <= ready {
            return None;
        }
        self.cpu[host].gen += 1;
        self.cpu[host].sched_at = ready;
        let gen = self.cpu[host].gen;
        Some((ready - now, Event::Cpu { host: host as u32, gen }))
    }
}

impl SimWorld for World {
    type Event = Event;

    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_, Event>) {
        match ev {
            Event::Nic { host, ev } => {
                let mut outs = Vec::new();
                self.nics[host as usize].on_event(ctx.now(), ev, &mut outs);
                self.apply_nic(host as usize, outs, ctx);
            }
            Event::Os { host, ev } => {
                let mut outs = Vec::new();
                match ev {
                    OsEvent::DaemonStep => {
                        self.oses[host as usize].on_daemon_step(ctx.now(), &mut outs)
                    }
                    OsEvent::PageInDone { ep } => {
                        self.oses[host as usize].on_page_in_done(ctx.now(), ep, &mut outs)
                    }
                }
                self.apply_os(host as usize, outs, ctx);
            }
            Event::Deliver { host, src, frame, corrupt } => {
                let mut outs = Vec::new();
                self.nics[host as usize].on_packet(ctx.now(), src, frame, corrupt, &mut outs);
                self.apply_nic(host as usize, outs, ctx);
            }
            Event::DriverMsg { host, msg } => {
                self.handle_driver_msg(host as usize, msg, ctx);
            }
            Event::Cpu { host, gen } => {
                self.on_cpu(host as usize, gen, ctx);
            }
            Event::WakeThread { host, tid } => {
                if self.scheds[host as usize].wake(tid) {
                    self.kick_cpu(host as usize, ctx);
                }
            }
        }
    }
}
