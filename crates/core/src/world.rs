//! The composed cluster world: fabric + NICs + segment drivers + thread
//! schedulers + application threads, wired into one deterministic
//! event graph.

use crate::config::{ClusterConfig, Mode};
use crate::sys::{Step, Sys, ThreadBody};
use crate::user::UserEpState;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;
use vnet_net::{Fabric, FaultOp, FaultPlan, HostId, Packet, Partition, Phase1, RouteOracle, Topology};
use vnet_nic::{
    DriverMsg, EpId, Frame, GlobalEp, Nic, NicConfig, NicEvent, NicMode, NicOut, ProtectionKey,
};
use vnet_os::{BlockReason, OsEvent, OsOut, Scheduler, SegmentDriver, Tid};
use vnet_sim::{
    AuditHandle, Auditor, Ctx, SimDuration, SimRng, SimTime, SimWorld, Telemetry, TelemetryHandle,
    TraceHandle, TraceRing, INGRESS_KEY_BIT,
};

/// Minimum CPU time charged per thread burst: no user-level loop runs in
/// zero time (guards against zero-cost livelock in misbehaving bodies).
const MIN_BURST: SimDuration = SimDuration::from_nanos(200);

/// Global event alphabet of the composed simulation.
#[derive(Debug)]
pub enum Event {
    /// NIC-internal event.
    Nic {
        /// Host index.
        host: u32,
        /// The event.
        ev: NicEvent,
    },
    /// OS-internal event (remap daemon, page-in).
    Os {
        /// Host index.
        host: u32,
        /// The event.
        ev: OsEvent,
    },
    /// A packet finishing its ascending (source-side) fabric hops: the
    /// descending-path reservation is made when this fires, in canonical
    /// `(time, source, sequence)` order, so the sequential and parallel
    /// executors contend for links identically.
    Ingress {
        /// Receiving host.
        host: u32,
        /// CRC failure flag decided at injection.
        corrupt: bool,
        /// The in-flight packet.
        pkt: Packet<Frame>,
    },
    /// Frame delivery from the fabric.
    Deliver {
        /// Receiving host.
        host: u32,
        /// Sending host.
        src: HostId,
        /// The frame.
        frame: Frame,
        /// CRC failure flag.
        corrupt: bool,
    },
    /// Driver-protocol message crossing NIC → OS (used when raised outside
    /// an event handler).
    DriverMsg {
        /// Host index.
        host: u32,
        /// The message.
        msg: DriverMsg,
    },
    /// CPU dispatch step (generation-guarded).
    Cpu {
        /// Host index.
        host: u32,
        /// Generation stamp.
        gen: u64,
    },
    /// Timer wake for a sleeping thread.
    WakeThread {
        /// Host index.
        host: u32,
        /// The thread.
        tid: Tid,
    },
    /// A fault-campaign transition (link flap edge, switch failure edge,
    /// degrade-window edge). Scheduled once per `(transition, host)` so
    /// every shard world receives it; each world applies the op to its
    /// fabric copy exactly once — on its own base host's event — which
    /// keeps every copy of the [`FaultPlan`] byte-identical at the same
    /// simulated instant regardless of the shard count.
    Fault {
        /// Host index (routing only; the op is fabric-global).
        host: u32,
        /// The state transition to apply.
        op: FaultOp,
    },
}

impl Event {
    /// The host this event must execute on (the parallel executor's shard
    /// router keys on this).
    pub(crate) fn target_host(&self) -> u32 {
        match self {
            Event::Nic { host, .. }
            | Event::Os { host, .. }
            | Event::Ingress { host, .. }
            | Event::Deliver { host, .. }
            | Event::DriverMsg { host, .. }
            | Event::Cpu { host, .. }
            | Event::WakeThread { host, .. }
            | Event::Fault { host, .. } => *host,
        }
    }
}

struct ThreadRec {
    body: Option<Box<dyn ThreadBody>>,
    pending_compute: SimDuration,
}

struct CpuState {
    gen: u64,
    sched_at: SimTime,
    busy_until: SimTime,
}

/// The composed world (see module docs).
pub struct World {
    /// Build configuration.
    pub cfg: ClusterConfig,
    /// The network.
    pub fabric: Fabric,
    /// One NIC per host.
    pub nics: Vec<Nic>,
    /// One endpoint segment driver per host.
    pub oses: Vec<SegmentDriver>,
    /// One thread scheduler per host.
    pub scheds: Vec<Scheduler>,
    /// User-level endpoint state per host.
    pub user: Vec<HashMap<EpId, UserEpState>>,
    /// Protection keys of every endpoint (the rendezvous snapshot).
    pub keys: HashMap<GlobalEp, ProtectionKey>,
    /// Debug trace of residency and scheduling transitions; disabled by
    /// default (enable via [`World::trace_mut`]). Shared with every NIC,
    /// segment driver, and the auditor so protocol-level events land in one
    /// causally ordered ring.
    pub trace: TraceHandle,
    /// Cross-layer invariant auditor; every NIC and segment driver reports
    /// protocol events into it (delivery ledger, credit conservation,
    /// stop-and-wait channel discipline, endpoint frame accounting).
    pub auditor: AuditHandle,
    /// Unified telemetry registry (metrics + span tracing). `Some` only
    /// when [`ClusterConfig::telemetry`] is set; with it absent no
    /// component holds hooks and the hot path pays nothing.
    pub telemetry: Option<TelemetryHandle>,
    threads: Vec<HashMap<Tid, ThreadRec>>,
    cpu: Vec<CpuState>,
    rngs: Vec<SimRng>,
    key_rng: SimRng,
    /// First global host id owned by this world: `0` for the full world,
    /// the shard's partition start for a shard world. Events carry global
    /// host ids; handlers subtract `base` to index the local vectors.
    base: u32,
    /// Cross-shard packets produced this epoch: `(arrival, canonical
    /// ingress key, corrupt, packet)`. Always empty on the full world —
    /// it owns every host — and drained at each epoch barrier by the
    /// parallel executor.
    pub(crate) outbox: Vec<(SimTime, u64, bool, Packet<Frame>)>,
}

impl World {
    /// Build from configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        let topo = Topology::build(cfg.topology.clone());
        let n = topo.host_count() as usize;
        let mut faults = if cfg.drop_prob > 0.0 || cfg.corrupt_prob > 0.0 {
            FaultPlan::with_errors(cfg.seed ^ 0xFA17, cfg.drop_prob, cfg.corrupt_prob)
        } else {
            FaultPlan::none(cfg.seed ^ 0xFA17)
        };
        if let Some(ge) = cfg.faults.bursty {
            faults.install_bursty(ge);
        }
        // The route oracle is the NICs' read-only view of the *scheduled*
        // campaign (administrative hot-swaps stay invisible to it). Built
        // once, shared by every NIC on every shard.
        let oracle: Option<Arc<RouteOracle>> = if cfg.faults.is_empty() {
            None
        } else {
            Some(Arc::new(RouteOracle::new(topo.clone(), &cfg.faults)))
        };
        let fabric = Fabric::new(cfg.net.clone(), topo, faults);
        let mut nic_cfg: NicConfig = cfg.nic.clone();
        nic_cfg.mode = match cfg.mode {
            Mode::VirtualNetwork => NicMode::VirtualNetwork,
            Mode::Gam => NicMode::Gam,
        };
        let root = SimRng::seed_from_u64(cfg.seed);
        let trace: TraceHandle = Rc::new(RefCell::new(TraceRing::default()));
        let auditor = Auditor::handle(cfg.credits);
        {
            let mut a = auditor.borrow_mut();
            a.set_trace(trace.clone());
            for i in 0..n {
                a.register_host(i as u32, nic_cfg.frames);
            }
        }
        let mut nics: Vec<Nic> =
            (0..n).map(|i| Nic::new(HostId(i as u32), nic_cfg.clone(), cfg.seed)).collect();
        if let Some(o) = &oracle {
            for nic in nics.iter_mut() {
                nic.attach_route_oracle(Arc::clone(o));
            }
        }
        let mut oses: Vec<SegmentDriver> = (0..n)
            .map(|i| SegmentDriver::new(cfg.os.clone(), nic_cfg.frames, cfg.seed ^ (i as u64)))
            .collect();
        if cfg.audit {
            for nic in nics.iter_mut() {
                nic.attach_auditor(auditor.clone());
                nic.attach_trace(trace.clone());
            }
            for (i, os) in oses.iter_mut().enumerate() {
                os.attach_instrumentation(i as u32, auditor.clone(), trace.clone());
            }
        }
        let telemetry = if cfg.telemetry {
            let tel = Telemetry::handle();
            for nic in nics.iter_mut() {
                nic.attach_telemetry(tel.clone());
            }
            for (i, os) in oses.iter_mut().enumerate() {
                os.attach_telemetry(i as u32, tel.clone());
            }
            Some(tel)
        } else {
            None
        };
        World {
            fabric,
            nics,
            oses,
            scheds: (0..n).map(|_| Scheduler::new(cfg.sched.clone())).collect(),
            user: (0..n).map(|_| HashMap::new()).collect(),
            keys: HashMap::new(),
            threads: (0..n).map(|_| HashMap::new()).collect(),
            cpu: (0..n)
                .map(|_| CpuState { gen: 0, sched_at: SimTime::MAX, busy_until: SimTime::ZERO })
                .collect(),
            rngs: (0..n).map(|i| root.derive(0x7000 + i as u64)).collect(),
            key_rng: root.derive(0x4B45_5953),
            trace,
            auditor,
            telemetry,
            cfg,
            base: 0,
            outbox: Vec::new(),
        }
    }

    /// Mutable access to the debug trace (call `.enable()` to record).
    pub fn trace_mut(&mut self) -> std::cell::RefMut<'_, TraceRing> {
        self.trace.borrow_mut()
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.nics.len()
    }

    // ------------------------------------------------------- host indexing
    //
    // Events carry *global* host ids so they stay meaningful when the
    // world is split into shard worlds, each owning the contiguous global
    // range `[base, base + len)`. Handlers convert on entry.

    /// Local vector index of global host `gh` (must be owned).
    #[inline]
    fn hx(&self, gh: u32) -> usize {
        debug_assert!(self.owns(gh), "event for host {gh} routed to the wrong shard");
        (gh - self.base) as usize
    }

    /// Global host id of local vector index `local`.
    #[inline]
    fn gh(&self, local: usize) -> u32 {
        self.base + local as u32
    }

    /// Whether this world owns global host `gh`.
    #[inline]
    fn owns(&self, gh: u32) -> bool {
        gh >= self.base && ((gh - self.base) as usize) < self.nics.len()
    }

    // ------------------------------------------------------------ effects

    /// Apply NIC effects inside an event handler.
    pub(crate) fn apply_nic(&mut self, host: usize, outs: Vec<NicOut>, ctx: &mut Ctx<'_, Event>) {
        for o in outs {
            match o {
                NicOut::After(d, ev) => {
                    ctx.schedule(d, Event::Nic { host: self.gh(host), ev });
                }
                NicOut::Inject(pkt) => match self.fabric.inject_src(ctx.now(), pkt) {
                    Phase1::Ingress { at, seq, corrupt, pkt } => {
                        let key = INGRESS_KEY_BIT | ((pkt.src.0 as u64) << 40) | seq;
                        if self.owns(pkt.dst.0) {
                            ctx.schedule_keyed_at(
                                at,
                                key,
                                Event::Ingress { host: pkt.dst.0, corrupt, pkt },
                            );
                        } else {
                            // Crossing a shard boundary: the frame payload
                            // is a frozen `Arc`, so the epoch barrier moves
                            // a pointer — no copy of the message body.
                            self.outbox.push((at, key, corrupt, pkt));
                        }
                    }
                    Phase1::Dropped { .. } => {}
                },
                NicOut::Driver(msg) => self.handle_driver_msg(host, msg, ctx),
            }
        }
    }

    /// Apply OS effects inside an event handler.
    pub(crate) fn apply_os(&mut self, host: usize, outs: Vec<OsOut>, ctx: &mut Ctx<'_, Event>) {
        for o in outs {
            match o {
                OsOut::Nic(op) => {
                    let mut nic_outs = Vec::new();
                    self.nics[host].driver_request(ctx.now(), op, &mut nic_outs);
                    self.apply_nic(host, nic_outs, ctx);
                }
                OsOut::Wake(tid) => {
                    if self.scheds[host].wake(tid) {
                        self.kick_cpu(host, ctx);
                    }
                }
                OsOut::After(d, ev) => {
                    ctx.schedule(d, Event::Os { host: self.gh(host), ev });
                }
            }
        }
    }

    /// Route a NIC→driver message: segment-driver bookkeeping plus thread
    /// wakeups (the composing world owns the scheduler).
    fn handle_driver_msg(&mut self, host: usize, msg: DriverMsg, ctx: &mut Ctx<'_, Event>) {
        let wake_cost = self.cfg.os.wake_cost;
        self.trace.borrow_mut().record_with(ctx.now(), self.gh(host), "driver.msg", || {
            format!("{msg:?}")
        });
        match &msg {
            DriverMsg::Loaded { ep, .. } => {
                let ep = *ep;
                // Wake residency waiters, and event waiters too — a load
                // can deposit flushed returns before any fresh Event fires,
                // and spurious wakes are safe (bodies re-check and
                // re-block).
                let mut woken = 0;
                let tids: Vec<Tid> = self.scheds[host]
                    .blocked_on_residency(ep)
                    .into_iter()
                    .chain(self.scheds[host].blocked_on_event(ep))
                    .collect();
                for tid in tids {
                    ctx.schedule(wake_cost, Event::WakeThread { host: self.gh(host), tid });
                    woken += 1;
                }
                self.oses[host].note_residency_wakes(woken);
            }
            DriverMsg::Event { ep, .. } => {
                let ep = *ep;
                let tids = self.scheds[host].blocked_on_event(ep);
                self.oses[host].note_event_wakes(tids.len() as u64);
                for tid in tids {
                    ctx.schedule(wake_cost, Event::WakeThread { host: self.gh(host), tid });
                }
            }
            _ => {}
        }
        let mut os_outs = Vec::new();
        self.oses[host].on_nic_msg(ctx.now(), msg, &mut os_outs);
        self.apply_os(host, os_outs, ctx);
    }

    // ---------------------------------------------------------------- CPU

    /// Ensure a CPU step is scheduled no later than the CPU's ready time.
    pub(crate) fn kick_cpu(&mut self, host: usize, ctx: &mut Ctx<'_, Event>) {
        let ready = ctx.now().max(self.cpu[host].busy_until);
        if self.cpu[host].sched_at <= ready {
            return;
        }
        self.cpu[host].gen += 1;
        self.cpu[host].sched_at = ready;
        let gen = self.cpu[host].gen;
        ctx.schedule(ready - ctx.now(), Event::Cpu { host: self.gh(host), gen });
    }

    fn on_cpu(&mut self, host: usize, gen: u64, ctx: &mut Ctx<'_, Event>) {
        if gen != self.cpu[host].gen {
            return;
        }
        self.cpu[host].sched_at = SimTime::MAX;
        let now = ctx.now();
        if now < self.cpu[host].busy_until {
            self.kick_cpu(host, ctx);
            return;
        }
        // Dispatch / preempt.
        if self.scheds[host].current().is_none() {
            if !self.scheds[host].has_runnable() {
                return; // CPU idles; wakes re-kick
            }
            let cost = self.scheds[host].dispatch(now);
            if cost > SimDuration::ZERO {
                self.cpu[host].busy_until = now + cost;
                self.kick_cpu(host, ctx);
                return;
            }
        } else if self.scheds[host].preempt_if_due(now) {
            self.kick_cpu(host, ctx);
            return;
        }
        let Some(tid) = self.scheds[host].current() else {
            self.kick_cpu(host, ctx);
            return;
        };
        // Continue a long compute without re-invoking the body.
        let pending = self.threads[host].get(&tid).map(|r| r.pending_compute);
        if let Some(pending) = pending {
            if pending > SimDuration::ZERO {
                let slice = if self.scheds[host].ready_count() == 0 {
                    pending
                } else {
                    pending.min(self.scheds[host].quantum_left(now)).max(MIN_BURST)
                };
                self.threads[host].get_mut(&tid).unwrap().pending_compute = pending - slice;
                self.cpu[host].busy_until = now + slice;
                self.kick_cpu(host, ctx);
                return;
            }
        }
        // Run one burst of the body.
        let Some(rec) = self.threads[host].get_mut(&tid) else {
            // Registered in the scheduler but no body (shouldn't happen).
            self.scheds[host].exit_current();
            self.kick_cpu(host, ctx);
            return;
        };
        let Some(mut body) = rec.body.take() else {
            self.scheds[host].exit_current();
            self.kick_cpu(host, ctx);
            return;
        };
        let mut sys = Sys {
            now,
            host: HostId(self.gh(host)),
            nic: &mut self.nics[host],
            os: &mut self.oses[host],
            user: &mut self.user[host],
            keys: &self.keys,
            cost: &self.cfg.cost,
            credits: self.cfg.credits,
            rng: &mut self.rngs[host],
            elapsed: SimDuration::ZERO,
            nic_outs: Vec::new(),
            os_outs: Vec::new(),
            auditor: if self.cfg.audit { Some(&self.auditor) } else { None },
        };
        let step = body.run(&mut sys);
        let elapsed = sys.elapsed.max(MIN_BURST);
        let nic_outs = std::mem::take(&mut sys.nic_outs);
        let os_outs = std::mem::take(&mut sys.os_outs);
        drop(sys);
        self.threads[host].get_mut(&tid).unwrap().body = Some(body);
        self.apply_nic(host, nic_outs, ctx);
        self.apply_os(host, os_outs, ctx);

        match step {
            Step::Compute(d) => {
                self.threads[host].get_mut(&tid).unwrap().pending_compute = d;
            }
            Step::Yield => {
                self.scheds[host].yield_current();
            }
            Step::Sleep(d) => {
                self.scheds[host].block_current(BlockReason::Sleep);
                ctx.schedule(elapsed + d, Event::WakeThread { host: self.gh(host), tid });
            }
            Step::WaitEvent(ep) => {
                // Arm the mask first, then re-check, to close the lost
                // wakeup window.
                if !self.nics[host].set_event_mask_direct(ep, true) {
                    if let Some(img) = self.oses[host].host_image_mut(ep) {
                        img.notify_on_arrival = true;
                    }
                }
                let has = if self.nics[host].is_resident(ep) {
                    self.nics[host].recv_depths(ep).map(|(a, b)| a + b > 0).unwrap_or(false)
                } else {
                    self.oses[host].host_image(ep).map(|i| i.has_received()).unwrap_or(false)
                };
                if has {
                    self.scheds[host].yield_current();
                } else {
                    self.scheds[host].block_current(BlockReason::EndpointEvent(ep));
                }
            }
            Step::WaitResident(ep) => {
                if self.nics[host].is_resident(ep) {
                    self.scheds[host].yield_current();
                } else {
                    self.scheds[host].block_current(BlockReason::Residency(ep));
                }
            }
            Step::Exit => {
                self.scheds[host].exit_current();
            }
        }
        self.cpu[host].busy_until = now + elapsed;
        self.kick_cpu(host, ctx);
    }

    // ----------------------------------------------------- setup (no ctx)

    /// Allocate an endpoint on `host` with a fresh protection key.
    /// Effects are returned for the caller (the [`crate::Cluster`] facade)
    /// to inject into the engine.
    pub(crate) fn create_endpoint_raw(
        &mut self,
        now: SimTime,
        host: usize,
    ) -> (GlobalEp, Vec<OsOut>) {
        let key = ProtectionKey(self.key_rng.below(u64::MAX - 1) + 1);
        let mut outs = Vec::new();
        let ep = self.oses[host].create_endpoint(now, key, &mut outs);
        let gep = GlobalEp::new(HostId(self.gh(host)), ep);
        self.keys.insert(gep, key);
        self.user[host].entry(ep).or_default();
        (gep, outs)
    }

    /// Spawn a thread with `body` on `host`.
    pub(crate) fn spawn_thread_raw(&mut self, host: usize, body: Box<dyn ThreadBody>) -> Tid {
        let tid = self.scheds[host].spawn();
        self.threads[host]
            .insert(tid, ThreadRec { body: Some(body), pending_compute: SimDuration::ZERO });
        tid
    }

    /// Immutable access to a thread body, downcast to its concrete type.
    pub fn body<T: ThreadBody>(&self, host: usize, tid: Tid) -> Option<&T> {
        let rec = self.threads[host].get(&tid)?;
        let body = rec.body.as_deref()?;
        (body as &dyn std::any::Any).downcast_ref::<T>()
    }

    /// Mutable access to a thread body, downcast to its concrete type.
    pub fn body_mut<T: ThreadBody>(&mut self, host: usize, tid: Tid) -> Option<&mut T> {
        let rec = self.threads[host].get_mut(&tid)?;
        let body = rec.body.as_deref_mut()?;
        (body as &mut dyn std::any::Any).downcast_mut::<T>()
    }

    /// Forcibly terminate a thread (process exit): its body is dropped and
    /// it will never be scheduled again.
    pub(crate) fn kill_thread(&mut self, host: usize, tid: Tid) {
        if let Some(rec) = self.threads[host].get_mut(&tid) {
            rec.body = None;
            rec.pending_compute = SimDuration::ZERO;
        }
        // If it is blocked, wake it so the scheduler can observe the exit
        // (the CPU loop exits bodies that have vanished).
        self.scheds[host].wake(tid);
    }

    /// Prepare a CPU kick from outside an event handler (setup paths).
    /// Returns the event to schedule, if one is needed.
    pub(crate) fn prep_cpu_kick(&mut self, host: usize, now: SimTime) -> Option<(SimDuration, Event)> {
        let ready = now.max(self.cpu[host].busy_until);
        if self.cpu[host].sched_at <= ready {
            return None;
        }
        self.cpu[host].gen += 1;
        self.cpu[host].sched_at = ready;
        let gen = self.cpu[host].gen;
        Some((ready - now, Event::Cpu { host: self.gh(host), gen }))
    }

    // ------------------------------------------------- parallel sharding

    /// Split this world into one world per partition shard, leaving `self`
    /// an empty husk that retains the canonical fabric, trace, auditor,
    /// and telemetry. Hosts move wholesale — NIC, driver, scheduler,
    /// thread bodies, CPU state, RNG streams — so each shard world is a
    /// closed `Rc` graph suitable for [`vnet_sim::SendCell`].
    pub(crate) fn split_shards(&mut self, part: &Partition) -> Vec<World> {
        let n = part.shards();
        let mut out: Vec<Option<World>> = (0..n).map(|_| None).collect();
        // Tail-first so each `split_range` peels the current vector tail.
        for s in (0..n).rev() {
            let (lo, hi) = part.range(s);
            out[s as usize] = Some(self.split_range(lo, hi));
        }
        out.into_iter().map(Option::unwrap).collect()
    }

    /// Peel global hosts `[lo, hi)` — currently the tail of the host
    /// vectors — into a shard world with its own observability sinks.
    fn split_range(&mut self, lo: u32, hi: u32) -> World {
        debug_assert_eq!(self.base, 0, "split_range on a shard world");
        debug_assert_eq!(self.nics.len(), hi as usize, "shards must split tail-first");
        let l = lo as usize;
        let mut nics = self.nics.split_off(l);
        let mut oses = self.oses.split_off(l);
        let scheds = self.scheds.split_off(l);
        let user = self.user.split_off(l);
        let threads = self.threads.split_off(l);
        let cpu = self.cpu.split_off(l);
        let rngs = self.rngs.split_off(l);
        let trace: TraceHandle = Rc::new(RefCell::new(self.trace.borrow().split_shard()));
        let auditor: AuditHandle = {
            let mut shard = self.auditor.borrow_mut().split_shard(lo, hi);
            shard.set_trace(trace.clone());
            Rc::new(RefCell::new(shard))
        };
        if self.cfg.audit {
            for nic in nics.iter_mut() {
                nic.attach_auditor(auditor.clone());
                nic.attach_trace(trace.clone());
            }
            for (i, os) in oses.iter_mut().enumerate() {
                os.attach_instrumentation(lo + i as u32, auditor.clone(), trace.clone());
            }
        }
        let telemetry = self.telemetry.as_ref().map(|main| {
            let tel: TelemetryHandle = Rc::new(RefCell::new(main.borrow().split_shard()));
            for nic in nics.iter_mut() {
                nic.rebind_telemetry(tel.clone());
            }
            for os in oses.iter_mut() {
                os.rebind_telemetry(tel.clone());
            }
            // Rebind registered this shard's metric names at zero; pull
            // their current values so counters keep accumulating.
            tel.borrow_mut().adopt_values(&main.borrow());
            tel
        });
        World {
            cfg: self.cfg.clone(),
            fabric: self.fabric.split_shard(),
            nics,
            oses,
            scheds,
            user,
            keys: self.keys.clone(),
            trace,
            auditor,
            telemetry,
            threads,
            cpu,
            rngs,
            key_rng: self.key_rng.clone(),
            base: lo,
            outbox: Vec::new(),
        }
    }

    /// Inverse of [`World::split_shards`]: host state returns in order,
    /// the canonical fabric copies back each shard's owned link and fault
    /// state, and the observability sinks merge deterministically (trace
    /// entries re-sorted, auditor ledgers fate-joined, telemetry published
    /// by name).
    pub(crate) fn absorb_shards(&mut self, shards: Vec<World>, part: &Partition) {
        let mut shard_auditors = Vec::with_capacity(shards.len());
        for (s, shard) in shards.into_iter().enumerate() {
            let World {
                cfg: _,
                fabric,
                mut nics,
                mut oses,
                scheds,
                user,
                keys: _,
                trace,
                auditor,
                telemetry,
                threads,
                cpu,
                rngs,
                key_rng: _,
                base,
                outbox,
            } = shard;
            debug_assert!(outbox.is_empty(), "cross-shard mail left unpublished");
            let (lo, hi) = part.range(s as u32);
            debug_assert_eq!(base, lo);
            debug_assert_eq!(self.nics.len(), lo as usize, "shards must absorb in order");
            self.fabric.absorb_shard(&fabric, lo, hi, |l| part.link_owner(l) == s as u32);
            if self.cfg.audit {
                for nic in nics.iter_mut() {
                    nic.attach_auditor(self.auditor.clone());
                    nic.attach_trace(self.trace.clone());
                }
                for (i, os) in oses.iter_mut().enumerate() {
                    os.attach_instrumentation(
                        lo + i as u32,
                        self.auditor.clone(),
                        self.trace.clone(),
                    );
                }
            }
            if let Some(main) = &self.telemetry {
                for nic in nics.iter_mut() {
                    nic.rebind_telemetry(main.clone());
                }
                for os in oses.iter_mut() {
                    os.rebind_telemetry(main.clone());
                }
                main.borrow_mut().absorb_shard(unwrap_handle(telemetry.expect("shard telemetry")));
            }
            self.nics.append(&mut nics);
            self.oses.append(&mut oses);
            self.scheds.extend(scheds);
            self.user.extend(user);
            self.threads.extend(threads);
            self.cpu.extend(cpu);
            self.rngs.extend(rngs);
            // The shard auditor holds the shard trace handle; re-point it
            // at the main ring before unwrapping the shard ring below.
            let mut a = unwrap_handle(auditor);
            a.set_trace(self.trace.clone());
            shard_auditors.push(a);
            self.trace.borrow_mut().absorb_shard(unwrap_handle(trace));
        }
        self.auditor.borrow_mut().absorb_shards(shard_auditors);
    }
}

/// Recover sole ownership of a shard-local `Rc<RefCell<_>>` handle after
/// every component clone has been re-pointed at the main handles.
fn unwrap_handle<T>(h: Rc<RefCell<T>>) -> T {
    match Rc::try_unwrap(h) {
        Ok(cell) => cell.into_inner(),
        Err(_) => panic!("shard observability handle still shared at absorb"),
    }
}

impl SimWorld for World {
    type Event = Event;

    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_, Event>) {
        match ev {
            Event::Nic { host, ev } => {
                let h = self.hx(host);
                let mut outs = Vec::new();
                self.nics[h].on_event(ctx.now(), ev, &mut outs);
                self.apply_nic(h, outs, ctx);
            }
            Event::Os { host, ev } => {
                let h = self.hx(host);
                let mut outs = Vec::new();
                match ev {
                    OsEvent::DaemonStep => self.oses[h].on_daemon_step(ctx.now(), &mut outs),
                    OsEvent::PageInDone { ep } => {
                        self.oses[h].on_page_in_done(ctx.now(), ep, &mut outs)
                    }
                }
                self.apply_os(h, outs, ctx);
            }
            Event::Ingress { host, corrupt, pkt } => {
                // Phase two of injection: reserve the descending-path links
                // now, then deliver after the residual fabric delay.
                let rest = self.fabric.complete_ingress(ctx.now(), &pkt);
                let src = pkt.src;
                ctx.schedule(rest, Event::Deliver { host, src, frame: pkt.payload, corrupt });
            }
            Event::Deliver { host, src, frame, corrupt } => {
                let h = self.hx(host);
                let mut outs = Vec::new();
                self.nics[h].on_packet(ctx.now(), src, frame, corrupt, &mut outs);
                self.apply_nic(h, outs, ctx);
            }
            Event::DriverMsg { host, msg } => {
                let h = self.hx(host);
                self.handle_driver_msg(h, msg, ctx);
            }
            Event::Cpu { host, gen } => {
                let h = self.hx(host);
                self.on_cpu(h, gen, ctx);
            }
            Event::WakeThread { host, tid } => {
                let h = self.hx(host);
                if self.scheds[h].wake(tid) {
                    self.kick_cpu(h, ctx);
                }
            }
            Event::Fault { host, op } => {
                debug_assert!(self.owns(host), "fault op routed to the wrong shard");
                // One application per fabric copy: the base host's event is
                // the shard's designated carrier; the others only exist so
                // the transition is schedulable under any partition.
                if host == self.base {
                    self.fabric.faults_mut().apply(&op);
                }
                // Observability fires once globally (host 0 lives on the
                // first shard, whose trace/telemetry absorb first).
                if host == 0 {
                    self.trace
                        .borrow_mut()
                        .record_with(ctx.now(), 0, "fault.op", || format!("{op:?}"));
                    if let Some(tel) = &self.telemetry {
                        tel.borrow_mut().instant(ctx.now(), 0, "net", "fault", format!("{op:?}"));
                    }
                }
            }
        }
    }
}
