//! The composed cluster world: fabric + per-host models (NIC, segment
//! driver, thread scheduler, application threads — or an abstract LogP
//! source/sink), wired into one deterministic event graph.
//!
//! Since PR 7 the world is fidelity-pluggable: each host slot holds one
//! [`HostModel`] implementation ([`FullHost`] or
//! [`crate::model::AbstractHost`]) and the fabric slot one
//! [`crate::model::FabricModel`] implementation, selected per node by
//! [`crate::config::ClusterConfig::fidelity`]. See [`crate::model`].

use crate::config::{ClusterConfig, Mode};
use crate::control::{ControlPlane, CtlOp, MigPhase, MigState};
use crate::model::{
    AbsEvent, AbsStats, AbstractHost, FabricSlot, Fidelity, HostModel, NicModel,
};
use crate::sys::{Step, Sys, ThreadBody};
use crate::user::UserEpState;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;
use vnet_net::{FaultOp, FaultPlan, HostId, Packet, Partition, Phase1, RouteOracle, Topology};
use vnet_nic::{
    DriverMsg, EpId, Frame, GlobalEp, Nic, NicConfig, NicEvent, NicMode, NicOut, ProtectionKey,
};
use vnet_os::{BlockReason, OsEvent, OsOut, Scheduler, SegmentDriver, Tid};
use vnet_sim::telemetry::MetricsSnapshot;
use vnet_sim::{
    AuditHandle, Auditor, Ctx, SimDuration, SimRng, SimTime, SimWorld, Telemetry, TelemetryHandle,
    TraceHandle, TraceRing, INGRESS_KEY_BIT,
};

/// Minimum CPU time charged per thread burst: no user-level loop runs in
/// zero time (guards against zero-cost livelock in misbehaving bodies).
const MIN_BURST: SimDuration = SimDuration::from_nanos(200);

/// Global event alphabet of the composed simulation.
#[derive(Debug)]
pub enum Event {
    /// NIC-internal event.
    Nic {
        /// Host index.
        host: u32,
        /// The event.
        ev: NicEvent,
    },
    /// OS-internal event (remap daemon, page-in).
    Os {
        /// Host index.
        host: u32,
        /// The event.
        ev: OsEvent,
    },
    /// A packet finishing its ascending (source-side) fabric hops: the
    /// descending-path reservation is made when this fires, in canonical
    /// `(time, source, sequence)` order, so the sequential and parallel
    /// executors contend for links identically.
    Ingress {
        /// Receiving host.
        host: u32,
        /// CRC failure flag decided at injection.
        corrupt: bool,
        /// The in-flight packet.
        pkt: Packet<Frame>,
    },
    /// Frame delivery from the fabric.
    Deliver {
        /// Receiving host.
        host: u32,
        /// Sending host.
        src: HostId,
        /// The frame.
        frame: Frame,
        /// CRC failure flag.
        corrupt: bool,
    },
    /// Driver-protocol message crossing NIC → OS (used when raised outside
    /// an event handler).
    DriverMsg {
        /// Host index.
        host: u32,
        /// The message.
        msg: DriverMsg,
    },
    /// CPU dispatch step (generation-guarded).
    Cpu {
        /// Host index.
        host: u32,
        /// Generation stamp.
        gen: u64,
    },
    /// Timer wake for a sleeping thread.
    WakeThread {
        /// Host index.
        host: u32,
        /// The thread.
        tid: Tid,
    },
    /// Abstract-host internal event (traffic ticks and deferred sends);
    /// only ever addressed to [`Fidelity::Abstract`] hosts.
    Abs {
        /// Host index.
        host: u32,
        /// The event.
        ev: AbsEvent,
    },
    /// A fault-campaign transition (link flap edge, switch failure edge,
    /// degrade-window edge). Scheduled once per `(transition, host)` so
    /// every shard world receives it; each world applies the op to its
    /// fabric copy exactly once — on its own base host's event — which
    /// keeps every copy of the [`FaultPlan`] byte-identical at the same
    /// simulated instant regardless of the shard count.
    Fault {
        /// Host index (routing only; the op is fabric-global).
        host: u32,
        /// The state transition to apply.
        op: FaultOp,
    },
    /// A control-plane broadcast (reconcile tick or migration phase),
    /// replicated like [`Event::Fault`]: one copy per `(event, host)`.
    /// The copy addressed to a world's base host runs the replicated
    /// coordinator decision; the copy addressed to an acting host performs
    /// that host's local side effects (pageout, endpoint creation,
    /// translation retargeting). See [`crate::control`] for the model.
    Ctl {
        /// Host index (every host receives every control event).
        host: u32,
        /// Key sequence of this event in the control band (total order of
        /// same-instant control events; the per-host key appends `host`).
        kseq: u64,
        /// The operation.
        op: CtlOp,
    },
    /// Lame-duck teardown poll for a migrated-away source endpoint. The
    /// `Finish` phase lifts the migration hold instead of destroying the
    /// old incarnation outright; this host-local event (it never crosses a
    /// shard boundary) re-checks until the residual queues and in-flight
    /// sends have drained, then frees the endpoint — or forces the free
    /// after a bounded number of polls, resolving any still-queued sends
    /// in the audit ledger.
    CtlRetire {
        /// Host the retiring endpoint lives on.
        host: u32,
        /// The retiring endpoint.
        ep: EpId,
        /// Polls taken so far (caps the drain window).
        polls: u32,
    },
}

/// Same-instant ordering key for a control event copy addressed to `host`:
/// the control band sorts above canonical ingress (bit 61 set on top of
/// bit 63) and below the fault band (bit 62), and within the band orders
/// by `(kseq, host)` — so each world's base host (its lowest) decides
/// before any host acts.
pub(crate) fn ctl_key(kseq: u64, host: u32) -> u64 {
    (1 << 63) | (1 << 61) | (kseq << 20) | u64::from(host)
}

impl Event {
    /// The host this event must execute on (the parallel executor's shard
    /// router keys on this).
    pub(crate) fn target_host(&self) -> u32 {
        match self {
            Event::Nic { host, .. }
            | Event::Os { host, .. }
            | Event::Ingress { host, .. }
            | Event::Deliver { host, .. }
            | Event::DriverMsg { host, .. }
            | Event::Cpu { host, .. }
            | Event::WakeThread { host, .. }
            | Event::Abs { host, .. }
            | Event::Fault { host, .. }
            | Event::Ctl { host, .. }
            | Event::CtlRetire { host, .. } => *host,
        }
    }
}

/// Cadence of the lame-duck retire poll: frequent enough that a drained
/// endpoint is torn down promptly, coarse enough to stay off the hot path.
const CTL_RETIRE_POLL: SimDuration = SimDuration::from_micros(50);

/// Drain bound: after this many polls (10 ms) the old incarnation is freed
/// even if work remains — a partitioned peer must not pin it forever. The
/// forced free resolves the leftovers in the audit ledger.
const CTL_RETIRE_MAX_POLLS: u32 = 200;

struct ThreadRec {
    body: Option<Box<dyn ThreadBody>>,
    pending_compute: SimDuration,
}

struct CpuState {
    gen: u64,
    sched_at: SimTime,
    busy_until: SimTime,
}

/// The world-owned context a [`HostModel`] works against while handling
/// one event: the shared fabric, the rendezvous key table, observability
/// sinks, and this world's host-ownership window (for routing injected
/// packets either into the local engine or into the cross-shard outbox).
pub struct HostEnv<'a> {
    pub(crate) cfg: &'a ClusterConfig,
    pub(crate) fabric: &'a mut FabricSlot,
    pub(crate) keys: &'a HashMap<GlobalEp, ProtectionKey>,
    pub(crate) trace: &'a TraceHandle,
    pub(crate) auditor: &'a AuditHandle,
    pub(crate) outbox: &'a mut Vec<(SimTime, u64, bool, Packet<Frame>)>,
    pub(crate) base: u32,
    pub(crate) len: u32,
}

impl HostEnv<'_> {
    /// Whether this world owns global host `gh`.
    #[inline]
    fn owns(&self, gh: u32) -> bool {
        gh >= self.base && gh - self.base < self.len
    }

    /// Inject a packet into the fabric (phase 1) and route the resulting
    /// ingress: scheduled locally under its canonical `(time, source,
    /// sequence)` key when this world owns the destination, or pushed
    /// into the cross-shard outbox for the epoch barrier otherwise.
    /// The one injection path shared by every host model.
    pub(crate) fn inject(&mut self, now: SimTime, pkt: Packet<Frame>, ctx: &mut Ctx<'_, Event>) {
        match self.fabric.inject_src(now, pkt) {
            Phase1::Ingress { at, seq, corrupt, pkt } => {
                let key = INGRESS_KEY_BIT | ((pkt.src.0 as u64) << 40) | seq;
                if self.owns(pkt.dst.0) {
                    ctx.schedule_keyed_at(at, key, Event::Ingress { host: pkt.dst.0, corrupt, pkt });
                } else {
                    // Crossing a shard boundary: the frame payload is a
                    // frozen `Arc`, so the epoch barrier moves a pointer —
                    // no copy of the message body.
                    self.outbox.push((at, key, corrupt, pkt));
                }
            }
            Phase1::Dropped { .. } => {}
        }
    }
}

/// The full-fidelity host: the complete §3–§6 machinery — NIC, endpoint
/// segment driver, thread scheduler, user-level endpoint state, thread
/// bodies, CPU accounting, and the host's RNG stream — exactly the
/// per-host state the pre-refactor `World` held in parallel vectors.
pub struct FullHost {
    /// The network interface.
    pub nic: Nic,
    /// The endpoint segment driver.
    pub os: SegmentDriver,
    /// The thread scheduler.
    pub sched: Scheduler,
    /// User-level endpoint state.
    pub user: HashMap<EpId, UserEpState>,
    threads: HashMap<Tid, ThreadRec>,
    cpu: CpuState,
    rng: SimRng,
    /// Control-plane-owned service threads, by the endpoint they serve
    /// (killed when the endpoint migrates away).
    ctl_threads: HashMap<EpId, Tid>,
}

impl FullHost {
    /// Apply NIC effects inside an event handler.
    fn apply_nic(
        &mut self,
        gh: u32,
        outs: Vec<NicOut>,
        env: &mut HostEnv<'_>,
        ctx: &mut Ctx<'_, Event>,
    ) {
        for o in outs {
            match o {
                NicOut::After(d, ev) => {
                    ctx.schedule(d, Event::Nic { host: gh, ev });
                }
                NicOut::Inject(pkt) => env.inject(ctx.now(), pkt, ctx),
                NicOut::Driver(msg) => self.handle_driver_msg(gh, msg, env, ctx),
            }
        }
    }

    /// Apply OS effects inside an event handler.
    fn apply_os(
        &mut self,
        gh: u32,
        outs: Vec<OsOut>,
        env: &mut HostEnv<'_>,
        ctx: &mut Ctx<'_, Event>,
    ) {
        for o in outs {
            match o {
                OsOut::Nic(op) => {
                    let mut nic_outs = Vec::new();
                    self.nic.driver_request(ctx.now(), op, &mut nic_outs);
                    self.apply_nic(gh, nic_outs, env, ctx);
                }
                OsOut::Wake(tid) => {
                    if self.sched.wake(tid) {
                        self.kick_cpu(gh, ctx);
                    }
                }
                OsOut::After(d, ev) => {
                    ctx.schedule(d, Event::Os { host: gh, ev });
                }
            }
        }
    }

    /// Route a NIC→driver message: segment-driver bookkeeping plus thread
    /// wakeups (the composing host owns the scheduler).
    fn handle_driver_msg(
        &mut self,
        gh: u32,
        msg: DriverMsg,
        env: &mut HostEnv<'_>,
        ctx: &mut Ctx<'_, Event>,
    ) {
        let wake_cost = env.cfg.os.wake_cost;
        env.trace.borrow_mut().record_with(ctx.now(), gh, "driver.msg", || format!("{msg:?}"));
        match &msg {
            DriverMsg::Loaded { ep, .. } => {
                let ep = *ep;
                // Wake residency waiters, and event waiters too — a load
                // can deposit flushed returns before any fresh Event fires,
                // and spurious wakes are safe (bodies re-check and
                // re-block).
                let mut woken = 0;
                let tids: Vec<Tid> = self
                    .sched
                    .blocked_on_residency(ep)
                    .into_iter()
                    .chain(self.sched.blocked_on_event(ep))
                    .collect();
                for tid in tids {
                    ctx.schedule(wake_cost, Event::WakeThread { host: gh, tid });
                    woken += 1;
                }
                self.os.note_residency_wakes(woken);
            }
            DriverMsg::Event { ep, .. } => {
                let ep = *ep;
                let tids = self.sched.blocked_on_event(ep);
                self.os.note_event_wakes(tids.len() as u64);
                for tid in tids {
                    ctx.schedule(wake_cost, Event::WakeThread { host: gh, tid });
                }
            }
            _ => {}
        }
        let mut os_outs = Vec::new();
        self.os.on_nic_msg(ctx.now(), msg, &mut os_outs);
        self.apply_os(gh, os_outs, env, ctx);
    }

    // ---------------------------------------------------------------- CPU

    /// Ensure a CPU step is scheduled no later than the CPU's ready time.
    fn kick_cpu(&mut self, gh: u32, ctx: &mut Ctx<'_, Event>) {
        let ready = ctx.now().max(self.cpu.busy_until);
        if self.cpu.sched_at <= ready {
            return;
        }
        self.cpu.gen += 1;
        self.cpu.sched_at = ready;
        let gen = self.cpu.gen;
        ctx.schedule(ready - ctx.now(), Event::Cpu { host: gh, gen });
    }

    fn on_cpu(&mut self, gh: u32, gen: u64, env: &mut HostEnv<'_>, ctx: &mut Ctx<'_, Event>) {
        if gen != self.cpu.gen {
            return;
        }
        self.cpu.sched_at = SimTime::MAX;
        let now = ctx.now();
        if now < self.cpu.busy_until {
            self.kick_cpu(gh, ctx);
            return;
        }
        // Dispatch / preempt.
        if self.sched.current().is_none() {
            if !self.sched.has_runnable() {
                return; // CPU idles; wakes re-kick
            }
            let cost = self.sched.dispatch(now);
            if cost > SimDuration::ZERO {
                self.cpu.busy_until = now + cost;
                self.kick_cpu(gh, ctx);
                return;
            }
        } else if self.sched.preempt_if_due(now) {
            self.kick_cpu(gh, ctx);
            return;
        }
        let Some(tid) = self.sched.current() else {
            self.kick_cpu(gh, ctx);
            return;
        };
        // Continue a long compute without re-invoking the body.
        let pending = self.threads.get(&tid).map(|r| r.pending_compute);
        if let Some(pending) = pending {
            if pending > SimDuration::ZERO {
                let slice = if self.sched.ready_count() == 0 {
                    pending
                } else {
                    pending.min(self.sched.quantum_left(now)).max(MIN_BURST)
                };
                self.threads.get_mut(&tid).unwrap().pending_compute = pending - slice;
                self.cpu.busy_until = now + slice;
                self.kick_cpu(gh, ctx);
                return;
            }
        }
        // Run one burst of the body.
        let Some(rec) = self.threads.get_mut(&tid) else {
            // Registered in the scheduler but no body (shouldn't happen).
            self.sched.exit_current();
            self.kick_cpu(gh, ctx);
            return;
        };
        let Some(mut body) = rec.body.take() else {
            self.sched.exit_current();
            self.kick_cpu(gh, ctx);
            return;
        };
        let mut sys = Sys {
            now,
            host: HostId(gh),
            nic: &mut self.nic,
            os: &mut self.os,
            user: &mut self.user,
            keys: env.keys,
            cost: &env.cfg.cost,
            credits: env.cfg.credits,
            rng: &mut self.rng,
            elapsed: SimDuration::ZERO,
            nic_outs: Vec::new(),
            os_outs: Vec::new(),
            auditor: if env.cfg.audit { Some(env.auditor) } else { None },
        };
        let step = body.run(&mut sys);
        let elapsed = sys.elapsed.max(MIN_BURST);
        let nic_outs = std::mem::take(&mut sys.nic_outs);
        let os_outs = std::mem::take(&mut sys.os_outs);
        drop(sys);
        self.threads.get_mut(&tid).unwrap().body = Some(body);
        self.apply_nic(gh, nic_outs, env, ctx);
        self.apply_os(gh, os_outs, env, ctx);

        match step {
            Step::Compute(d) => {
                self.threads.get_mut(&tid).unwrap().pending_compute = d;
            }
            Step::Yield => {
                self.sched.yield_current();
            }
            Step::Sleep(d) => {
                self.sched.block_current(BlockReason::Sleep);
                ctx.schedule(elapsed + d, Event::WakeThread { host: gh, tid });
            }
            Step::WaitEvent(ep) => {
                // Arm the mask first, then re-check, to close the lost
                // wakeup window.
                if !self.nic.set_event_mask_direct(ep, true) {
                    if let Some(img) = self.os.host_image_mut(ep) {
                        img.notify_on_arrival = true;
                    }
                }
                let has = if self.nic.is_resident(ep) {
                    self.nic.recv_depths(ep).map(|(a, b)| a + b > 0).unwrap_or(false)
                } else {
                    self.os.host_image(ep).map(|i| i.has_received()).unwrap_or(false)
                };
                if has {
                    self.sched.yield_current();
                } else {
                    self.sched.block_current(BlockReason::EndpointEvent(ep));
                }
            }
            Step::WaitResident(ep) => {
                if self.nic.is_resident(ep) {
                    self.sched.yield_current();
                } else {
                    self.sched.block_current(BlockReason::Residency(ep));
                }
            }
            Step::Exit => {
                self.sched.exit_current();
            }
        }
        self.cpu.busy_until = now + elapsed;
        self.kick_cpu(gh, ctx);
    }
}

impl HostModel for FullHost {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Full
    }

    fn on_event(&mut self, gh: u32, ev: Event, env: &mut HostEnv<'_>, ctx: &mut Ctx<'_, Event>) {
        match ev {
            Event::Nic { ev, .. } => {
                let mut outs = Vec::new();
                self.nic.on_event(ctx.now(), ev, &mut outs);
                self.apply_nic(gh, outs, env, ctx);
            }
            Event::Os { ev, .. } => {
                let mut outs = Vec::new();
                match ev {
                    OsEvent::DaemonStep => self.os.on_daemon_step(ctx.now(), &mut outs),
                    OsEvent::PageInDone { ep } => self.os.on_page_in_done(ctx.now(), ep, &mut outs),
                }
                self.apply_os(gh, outs, env, ctx);
            }
            Event::Deliver { src, frame, corrupt, .. } => {
                let mut outs = Vec::new();
                NicModel::deliver(&mut self.nic, ctx.now(), src, frame, corrupt, &mut outs);
                self.apply_nic(gh, outs, env, ctx);
            }
            Event::DriverMsg { msg, .. } => {
                self.handle_driver_msg(gh, msg, env, ctx);
            }
            Event::Cpu { gen, .. } => {
                self.on_cpu(gh, gen, env, ctx);
            }
            Event::WakeThread { tid, .. } => {
                if self.sched.wake(tid) {
                    self.kick_cpu(gh, ctx);
                }
            }
            other => panic!("abstract/world event {other:?} routed to full host {gh}"),
        }
    }

    fn record_metrics(&self, h: usize, out: &mut MetricsSnapshot) {
        out.record_set(&format!("host{h}.nic"), self.nic.stats());
        out.record_set(&format!("host{h}.os"), self.os.stats());
    }
}

/// One host slot of the composed world: a registered [`HostModel`],
/// dispatched statically (the same pattern as [`FabricSlot`]).
// `FullHost` is boxed because the enum's size is its largest variant:
// inline it is ~2.5 KB, and a fleet-scale world is almost all
// `AbstractHost` (~200 B) — 16k abstract slots would carry ~38 MB of
// dead padding. Full hosts pay one pointer chase per event, noise next
// to the work their handlers actually do.
pub enum HostSlot {
    /// The complete machinery.
    Full(Box<FullHost>),
    /// The LogP source/sink.
    Abstract(AbstractHost),
}

impl HostSlot {
    /// This slot's fidelity class.
    pub fn fidelity(&self) -> Fidelity {
        match self {
            HostSlot::Full(_) => Fidelity::Full,
            HostSlot::Abstract(_) => Fidelity::Abstract,
        }
    }

    fn on_event(&mut self, gh: u32, ev: Event, env: &mut HostEnv<'_>, ctx: &mut Ctx<'_, Event>) {
        match self {
            HostSlot::Full(f) => f.on_event(gh, ev, env, ctx),
            HostSlot::Abstract(a) => a.on_event(gh, ev, env, ctx),
        }
    }

    pub(crate) fn record_metrics(&self, h: usize, out: &mut MetricsSnapshot) {
        match self {
            HostSlot::Full(f) => f.record_metrics(h, out),
            HostSlot::Abstract(a) => a.record_metrics(h, out),
        }
    }

    fn full_ref(&self, h: usize) -> &FullHost {
        match self {
            HostSlot::Full(f) => f,
            HostSlot::Abstract(_) => panic!(
                "host {h} is Fidelity::Abstract; this operation (endpoints, threads, \
                 NIC/OS access) requires a full-fidelity host"
            ),
        }
    }

    fn full_mut(&mut self, h: usize) -> &mut FullHost {
        match self {
            HostSlot::Full(f) => f,
            HostSlot::Abstract(_) => panic!(
                "host {h} is Fidelity::Abstract; this operation (endpoints, threads, \
                 NIC/OS access) requires a full-fidelity host"
            ),
        }
    }
}

/// The composed world (see module docs).
pub struct World {
    /// Build configuration.
    pub cfg: ClusterConfig,
    /// The network model (full or delay-only; see [`FabricSlot`]).
    pub fabric: FabricSlot,
    /// Protection keys of every endpoint (the rendezvous snapshot).
    pub keys: HashMap<GlobalEp, ProtectionKey>,
    /// Debug trace of residency and scheduling transitions; disabled by
    /// default (enable via [`World::trace_mut`]). Shared with every NIC,
    /// segment driver, and the auditor so protocol-level events land in one
    /// causally ordered ring.
    pub trace: TraceHandle,
    /// Cross-layer invariant auditor; every full-fidelity NIC and segment
    /// driver reports protocol events into it (delivery ledger, credit
    /// conservation, stop-and-wait channel discipline, endpoint frame
    /// accounting). Abstract hosts report nothing.
    pub auditor: AuditHandle,
    /// Unified telemetry registry (metrics + span tracing). `Some` only
    /// when [`ClusterConfig::telemetry`] is set; with it absent no
    /// component holds hooks and the hot path pays nothing.
    pub telemetry: Option<TelemetryHandle>,
    /// Replicated cluster control plane (coordinator + reconcile loop);
    /// `None` until [`crate::cluster::Cluster::install_control`]. Every
    /// shard world carries an identical copy that evolves identically —
    /// see [`crate::control`] for the replication model.
    pub control: Option<Box<ControlPlane>>,
    /// The NICs' read-only view of the scheduled fault campaign; also the
    /// control plane's host-liveness verdict. Shared by every shard.
    pub(crate) oracle: Option<Arc<RouteOracle>>,
    hosts: Vec<HostSlot>,
    key_rng: SimRng,
    /// First global host id owned by this world: `0` for the full world,
    /// the shard's partition start for a shard world. Events carry global
    /// host ids; handlers subtract `base` to index the local vectors.
    base: u32,
    /// Cross-shard packets produced this epoch: `(arrival, canonical
    /// ingress key, corrupt, packet)`. Always empty on the full world —
    /// it owns every host — and drained at each epoch barrier by the
    /// parallel executor.
    pub(crate) outbox: Vec<(SimTime, u64, bool, Packet<Frame>)>,
}

impl World {
    /// Build from configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        let topo = Topology::build(cfg.topology.clone());
        let n = topo.host_count() as usize;
        let mut faults = if cfg.drop_prob > 0.0 || cfg.corrupt_prob > 0.0 {
            FaultPlan::with_errors(cfg.seed ^ 0xFA17, cfg.drop_prob, cfg.corrupt_prob)
        } else {
            FaultPlan::none(cfg.seed ^ 0xFA17)
        };
        if let Some(ge) = cfg.faults.bursty {
            faults.install_bursty(ge);
        }
        // The route oracle is the NICs' read-only view of the *scheduled*
        // campaign (administrative hot-swaps stay invisible to it). Built
        // once, shared by every NIC on every shard.
        let oracle: Option<Arc<RouteOracle>> = if cfg.faults.is_empty() {
            None
        } else {
            Some(Arc::new(RouteOracle::new(topo.clone(), &cfg.faults)))
        };
        let fabric = FabricSlot::build(cfg.fidelity.fabric(), cfg.net.clone(), topo, faults);
        let mut nic_cfg: NicConfig = cfg.nic.clone();
        nic_cfg.mode = match cfg.mode {
            Mode::VirtualNetwork => NicMode::VirtualNetwork,
            Mode::Gam => NicMode::Gam,
        };
        let root = SimRng::seed_from_u64(cfg.seed);
        let trace: TraceHandle = Rc::new(RefCell::new(TraceRing::default()));
        let auditor = Auditor::handle(cfg.credits);
        {
            let mut a = auditor.borrow_mut();
            a.set_trace(trace.clone());
            // Abstract hosts never report endpoint/frame events, so they
            // need no audit slot — at fleet scale (16k mostly-abstract
            // hosts) registering everyone would buy nothing but heap.
            for i in 0..n {
                if cfg.fidelity.of(i as u32) == Fidelity::Full {
                    a.register_host(i as u32, nic_cfg.frames);
                }
            }
        }
        let telemetry = if cfg.telemetry { Some(Telemetry::handle()) } else { None };
        let mut hosts: Vec<HostSlot> = Vec::with_capacity(n);
        for i in 0..n {
            // Every host draws the same derived RNG stream whatever its
            // fidelity, so re-assigning fidelity never perturbs neighbors.
            let rng = root.derive(0x7000 + i as u64);
            match cfg.fidelity.of(i as u32) {
                Fidelity::Abstract => {
                    hosts.push(HostSlot::Abstract(AbstractHost::new(HostId(i as u32), rng)));
                }
                Fidelity::Full => {
                    let mut nic = Nic::new(HostId(i as u32), nic_cfg.clone(), cfg.seed);
                    if let Some(o) = &oracle {
                        nic.attach_route_oracle(Arc::clone(o));
                    }
                    let mut os =
                        SegmentDriver::new(cfg.os.clone(), nic_cfg.frames, cfg.seed ^ (i as u64));
                    if cfg.audit {
                        nic.attach_auditor(auditor.clone());
                        nic.attach_trace(trace.clone());
                        os.attach_instrumentation(i as u32, auditor.clone(), trace.clone());
                    }
                    if let Some(tel) = &telemetry {
                        nic.attach_telemetry(tel.clone());
                        os.attach_telemetry(i as u32, tel.clone());
                    }
                    hosts.push(HostSlot::Full(Box::new(FullHost {
                        nic,
                        os,
                        sched: Scheduler::new(cfg.sched.clone()),
                        user: HashMap::new(),
                        threads: HashMap::new(),
                        cpu: CpuState {
                            gen: 0,
                            sched_at: SimTime::MAX,
                            busy_until: SimTime::ZERO,
                        },
                        rng,
                        ctl_threads: HashMap::new(),
                    })));
                }
            }
        }
        World {
            fabric,
            hosts,
            keys: HashMap::new(),
            key_rng: root.derive(0x4B45_5953),
            trace,
            auditor,
            telemetry,
            cfg,
            control: None,
            oracle,
            base: 0,
            outbox: Vec::new(),
        }
    }

    /// Mutable access to the debug trace (call `.enable()` to record).
    pub fn trace_mut(&mut self) -> std::cell::RefMut<'_, TraceRing> {
        self.trace.borrow_mut()
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.hosts.len()
    }

    // ------------------------------------------------------ host access
    //
    // Accessors panic with a clear message on abstract slots: endpoints,
    // threads, and the NIC/OS machinery exist only at full fidelity.

    /// The host slot at local index `h` (fidelity inspection, metrics).
    pub fn slot(&self, h: usize) -> &HostSlot {
        &self.hosts[h]
    }

    /// The fidelity of host `h`.
    pub fn fidelity_of(&self, h: usize) -> Fidelity {
        self.hosts[h].fidelity()
    }

    /// The NIC of host `h`, when `h` is full-fidelity.
    pub fn try_nic(&self, h: usize) -> Option<&Nic> {
        match &self.hosts[h] {
            HostSlot::Full(f) => Some(&f.nic),
            HostSlot::Abstract(_) => None,
        }
    }

    /// The NIC of host `h` (panics on an abstract host).
    pub fn nic(&self, h: usize) -> &Nic {
        &self.hosts[h].full_ref(h).nic
    }

    /// Mutable NIC of host `h` (panics on an abstract host).
    pub fn nic_mut(&mut self, h: usize) -> &mut Nic {
        &mut self.hosts[h].full_mut(h).nic
    }

    /// The segment driver of host `h` (panics on an abstract host).
    pub fn os(&self, h: usize) -> &SegmentDriver {
        &self.hosts[h].full_ref(h).os
    }

    /// Mutable segment driver of host `h` (panics on an abstract host) —
    /// pageout control, fault proxying.
    pub fn os_mut(&mut self, h: usize) -> &mut SegmentDriver {
        &mut self.hosts[h].full_mut(h).os
    }

    /// The thread scheduler of host `h` (panics on an abstract host).
    pub fn sched(&self, h: usize) -> &Scheduler {
        &self.hosts[h].full_ref(h).sched
    }

    /// User-level endpoint state on host `h` (None when the endpoint does
    /// not exist or the host is abstract).
    pub fn user_state(&self, h: usize, ep: EpId) -> Option<&UserEpState> {
        match &self.hosts[h] {
            HostSlot::Full(f) => f.user.get(&ep),
            HostSlot::Abstract(_) => None,
        }
    }

    /// User-level endpoint state on host `h`, created if absent (panics
    /// on an abstract host).
    pub(crate) fn user_entry(&mut self, h: usize, ep: EpId) -> &mut UserEpState {
        self.hosts[h].full_mut(h).user.entry(ep).or_default()
    }

    /// Remove user-level endpoint state on host `h`.
    pub(crate) fn user_remove(&mut self, h: usize, ep: EpId) {
        self.hosts[h].full_mut(h).user.remove(&ep);
    }

    /// The abstract host at `h`, when that is what is registered.
    pub(crate) fn abstract_host_mut(&mut self, h: usize) -> Option<&mut AbstractHost> {
        match &mut self.hosts[h] {
            HostSlot::Abstract(a) => Some(a),
            HostSlot::Full(_) => None,
        }
    }

    /// Total sends denied by tenant byte quotas across every endpoint on
    /// every full-fidelity host (the noisy-neighbor signal; `ctl.*`
    /// telemetry surfaces it as `ctl.quota_denials`).
    pub fn quota_denials(&self) -> u64 {
        self.hosts
            .iter()
            .filter_map(|s| match s {
                HostSlot::Full(f) => Some(f),
                HostSlot::Abstract(_) => None,
            })
            .flat_map(|f| f.user.values())
            .filter_map(|u| u.quota.as_ref())
            .map(|q| q.denied)
            .sum()
    }

    /// Coarse counters of an abstract host (None for full-fidelity hosts,
    /// which report full `host{N}.nic.*` / `host{N}.os.*` stats instead).
    pub fn abs_stats(&self, h: usize) -> Option<&AbsStats> {
        match &self.hosts[h] {
            HostSlot::Abstract(a) => Some(a.stats()),
            HostSlot::Full(_) => None,
        }
    }

    // ------------------------------------------------------- host indexing
    //
    // Events carry *global* host ids so they stay meaningful when the
    // world is split into shard worlds, each owning the contiguous global
    // range `[base, base + len)`. Handlers convert on entry.

    /// Local vector index of global host `gh` (must be owned).
    #[inline]
    fn hx(&self, gh: u32) -> usize {
        debug_assert!(self.owns(gh), "event for host {gh} routed to the wrong shard");
        (gh - self.base) as usize
    }

    /// Global host id of local vector index `local`.
    #[inline]
    fn gh(&self, local: usize) -> u32 {
        self.base + local as u32
    }

    /// Whether this world owns global host `gh`.
    #[inline]
    fn owns(&self, gh: u32) -> bool {
        gh >= self.base && ((gh - self.base) as usize) < self.hosts.len()
    }

    // ------------------------------------------------- control-plane glue

    /// Apply segment-driver effects raised by a control-plane action inside
    /// an event handler (same split-borrow shape as [`World::dispatch`]).
    fn ctl_apply_os(&mut self, h: usize, outs: Vec<OsOut>, ctx: &mut Ctx<'_, Event>) {
        let gh = self.gh(h);
        let World { cfg, fabric, hosts, keys, trace, auditor, outbox, base, .. } = self;
        let len = hosts.len() as u32;
        let mut env = HostEnv { cfg, fabric, keys, trace, auditor, outbox, base: *base, len };
        let HostSlot::Full(f) = &mut hosts[h] else { return };
        f.apply_os(gh, outs, &mut env, ctx);
    }

    /// Host-local side effects of a control operation, run on the event
    /// copy addressed to `host` *after* the world's replicated decision
    /// step. Each arm guards on the acting host, so a broadcast op touches
    /// exactly the hosts it names.
    fn ctl_local(&mut self, now: SimTime, host: u32, op: &CtlOp, ctx: &mut Ctx<'_, Event>) {
        let CtlOp::Mig { id, phase } = op else { return };
        // Gather everything needed from the replicated state up front (the
        // borrow ends before host mutation starts).
        let Some((rec, factory, conns)) = self.control.as_deref().and_then(|ctl| {
            let rec = ctl.migration(*id)?.clone();
            let factory = ctl
                .managed(rec.vid)
                .and_then(|m| ctl.spec.tenants.get(m.tenant as usize))
                .map(|t| t.factory.clone());
            let conns: Vec<(u32, EpId, usize)> = ctl
                .connections()
                .iter()
                .filter(|c| c.target_vid == rec.vid)
                .filter_map(|c| ctl.managed(c.client_vid).map(|m| (m.host, m.ep, c.idx)))
                .collect();
            Some((rec, factory, conns))
        }) else {
            return;
        };
        match phase {
            MigPhase::Drain if host == rec.from => {
                let h = self.hx(host);
                let mut outs = Vec::new();
                self.hosts[h].full_mut(h).os.begin_migrate_out(now, rec.from_ep, &mut outs);
                self.ctl_apply_os(h, outs, ctx);
            }
            MigPhase::CreateDst if host == rec.to && rec.state == MigState::Created => {
                let h = self.hx(host);
                let gep = GlobalEp::new(HostId(host), rec.to_ep);
                let mut outs = Vec::new();
                {
                    let f = self.hosts[h].full_mut(h);
                    f.os.create_endpoint_with_id(now, rec.to_ep, rec.key, &mut outs);
                    f.user.entry(rec.to_ep).or_default();
                }
                self.keys.insert(gep, rec.key);
                self.ctl_apply_os(h, outs, ctx);
                // Warm the new incarnation: a proxy fault starts the remap
                // pipeline so it is resident before clients retarget.
                let mut outs = Vec::new();
                self.hosts[h].full_mut(h).os.proxy_fault(now, rec.to_ep, &mut outs);
                self.ctl_apply_os(h, outs, ctx);
                if let Some(factory) = factory {
                    let body = factory(gep);
                    let tid = self.spawn_thread_raw(h, body);
                    let f = self.hosts[h].full_mut(h);
                    f.ctl_threads.insert(rec.to_ep, tid);
                    f.kick_cpu(host, ctx);
                }
            }
            MigPhase::Retarget if rec.state == MigState::Retargeted => {
                let target = GlobalEp::new(HostId(rec.to), rec.to_ep);
                for (ch, cep, idx) in conns {
                    if ch == host {
                        let h = self.hx(host);
                        self.user_entry(h, cep).set_translation(idx, target, rec.key);
                    }
                }
            }
            MigPhase::Finish if host == rec.from && rec.state == MigState::Done => {
                // Lift the migration hold and retire the old incarnation as
                // a lame duck: work it accepted before the drain began —
                // queued replies, delivered-but-unpolled requests — is
                // served out before the endpoint is destroyed, so no
                // message silently loses its fate (and no client wedges on
                // a credit whose reply died with the source image).
                let h = self.hx(host);
                let mut outs = Vec::new();
                self.hosts[h].full_mut(h).os.end_migrate_hold(now, rec.from_ep, &mut outs);
                self.ctl_apply_os(h, outs, ctx);
                self.ctl_retire(now, host, rec.from_ep, 0, ctx);
            }
            _ => {}
        }
    }

    /// One lame-duck retire poll (the `Finish` phase's teardown tail): free
    /// the migrated-away endpoint once the OS image and the NIC both report
    /// it dry, nudging the drain and re-polling otherwise. Host-local, so
    /// the cadence is identical under any shard count. After
    /// [`CTL_RETIRE_MAX_POLLS`] the free is forced (a dead peer or a
    /// partitioned fabric must not pin the source host forever) and any
    /// still-queued sends resolve as aborted in the audit ledger.
    fn ctl_retire(&mut self, now: SimTime, host: u32, ep: EpId, polls: u32, ctx: &mut Ctx<'_, Event>) {
        let h = self.hx(host);
        let f = self.hosts[h].full_mut(h);
        if !f.os.exists(ep) {
            return; // already torn down
        }
        let quiet = f.os.drained(ep) && f.nic.is_quiet(ep);
        if !quiet && polls < CTL_RETIRE_MAX_POLLS {
            // Keep the residual work flowing: a held image with queued
            // sends re-enters the remap pipeline so they reach the wire.
            let mut outs = Vec::new();
            f.os.nudge_drain(now, ep, &mut outs);
            self.ctl_apply_os(h, outs, ctx);
            ctx.schedule(CTL_RETIRE_POLL, Event::CtlRetire { host, ep, polls: polls + 1 });
            return;
        }
        self.trace.borrow_mut().record_with(now, host, "ctl.retire", || {
            if quiet {
                format!("ep {} drained after {polls} polls; freeing", ep.0)
            } else {
                format!("ep {} drain bound expired after {polls} polls; forcing free", ep.0)
            }
        });
        if let Some(tid) = self.hosts[h].full_mut(h).ctl_threads.remove(&ep) {
            self.kill_thread(h, tid);
            self.hosts[h].full_mut(h).kick_cpu(host, ctx);
        }
        let mut outs = Vec::new();
        self.hosts[h].full_mut(h).os.complete_migrate_out(now, ep, &mut outs);
        self.ctl_apply_os(h, outs, ctx);
        self.user_remove(h, ep);
        self.keys.remove(&GlobalEp::new(HostId(host), ep));
        // Late frames addressed to the old incarnation now return to their
        // senders as undeliverable — the designed path.
        self.auditor.borrow_mut().on_endpoint_destroyed(host, ep.0);
    }

    /// Split-borrow helper: the slot at local index `h` plus the
    /// [`HostEnv`] over every other field, ready for [`HostModel`]
    /// dispatch.
    fn dispatch(&mut self, h: usize, ev: Event, ctx: &mut Ctx<'_, Event>) {
        let gh = self.gh(h);
        let World { cfg, fabric, hosts, keys, trace, auditor, outbox, base, .. } = self;
        let len = hosts.len() as u32;
        let mut env = HostEnv { cfg, fabric, keys, trace, auditor, outbox, base: *base, len };
        hosts[h].on_event(gh, ev, &mut env, ctx);
    }

    // ----------------------------------------------------- setup (no ctx)

    /// Allocate an endpoint on `host` with a fresh protection key.
    /// Effects are returned for the caller (the [`crate::Cluster`] facade)
    /// to inject into the engine. Panics if `host` is abstract.
    pub(crate) fn create_endpoint_raw(
        &mut self,
        now: SimTime,
        host: usize,
    ) -> (GlobalEp, Vec<OsOut>) {
        let gh = self.gh(host);
        let key = ProtectionKey(self.key_rng.below(u64::MAX - 1) + 1);
        let f = self.hosts[host].full_mut(host);
        let mut outs = Vec::new();
        let ep = f.os.create_endpoint(now, key, &mut outs);
        f.user.entry(ep).or_default();
        let gep = GlobalEp::new(HostId(gh), ep);
        self.keys.insert(gep, key);
        (gep, outs)
    }

    /// Spawn a thread with `body` on `host`. Panics if `host` is abstract.
    pub(crate) fn spawn_thread_raw(&mut self, host: usize, body: Box<dyn ThreadBody>) -> Tid {
        let f = self.hosts[host].full_mut(host);
        let tid = f.sched.spawn();
        f.threads.insert(tid, ThreadRec { body: Some(body), pending_compute: SimDuration::ZERO });
        tid
    }

    /// Record `tid` as the control-plane service thread for `ep` on `host`
    /// (killed when the endpoint migrates away).
    pub(crate) fn note_ctl_thread(&mut self, host: usize, ep: EpId, tid: Tid) {
        self.hosts[host].full_mut(host).ctl_threads.insert(ep, tid);
    }

    /// Immutable access to a thread body, downcast to its concrete type.
    pub fn body<T: ThreadBody>(&self, host: usize, tid: Tid) -> Option<&T> {
        let HostSlot::Full(f) = &self.hosts[host] else { return None };
        let rec = f.threads.get(&tid)?;
        let body = rec.body.as_deref()?;
        (body as &dyn std::any::Any).downcast_ref::<T>()
    }

    /// Mutable access to a thread body, downcast to its concrete type.
    pub fn body_mut<T: ThreadBody>(&mut self, host: usize, tid: Tid) -> Option<&mut T> {
        let HostSlot::Full(f) = &mut self.hosts[host] else { return None };
        let rec = f.threads.get_mut(&tid)?;
        let body = rec.body.as_deref_mut()?;
        (body as &mut dyn std::any::Any).downcast_mut::<T>()
    }

    /// Forcibly terminate a thread (process exit): its body is dropped and
    /// it will never be scheduled again.
    pub(crate) fn kill_thread(&mut self, host: usize, tid: Tid) {
        let f = self.hosts[host].full_mut(host);
        if let Some(rec) = f.threads.get_mut(&tid) {
            rec.body = None;
            rec.pending_compute = SimDuration::ZERO;
        }
        // If it is blocked, wake it so the scheduler can observe the exit
        // (the CPU loop exits bodies that have vanished).
        f.sched.wake(tid);
    }

    /// Prepare a CPU kick from outside an event handler (setup paths).
    /// Returns the event to schedule, if one is needed.
    pub(crate) fn prep_cpu_kick(
        &mut self,
        host: usize,
        now: SimTime,
    ) -> Option<(SimDuration, Event)> {
        let gh = self.gh(host);
        let f = self.hosts[host].full_mut(host);
        let ready = now.max(f.cpu.busy_until);
        if f.cpu.sched_at <= ready {
            return None;
        }
        f.cpu.gen += 1;
        f.cpu.sched_at = ready;
        let gen = f.cpu.gen;
        Some((ready - now, Event::Cpu { host: gh, gen }))
    }

    // ------------------------------------------------- parallel sharding

    /// Split this world into one world per partition shard, leaving `self`
    /// an empty husk that retains the canonical fabric, trace, auditor,
    /// and telemetry. Host slots move wholesale — whatever their fidelity
    /// — so each shard world is a closed `Rc` graph suitable for
    /// [`vnet_sim::SendCell`].
    pub(crate) fn split_shards(&mut self, part: &Partition) -> Vec<World> {
        let n = part.shards();
        let mut out: Vec<Option<World>> = (0..n).map(|_| None).collect();
        // Tail-first so each `split_range` peels the current vector tail.
        for s in (0..n).rev() {
            let (lo, hi) = part.range(s);
            out[s as usize] = Some(self.split_range(lo, hi));
        }
        out.into_iter().map(Option::unwrap).collect()
    }

    /// Peel global hosts `[lo, hi)` — currently the tail of the host
    /// vector — into a shard world with its own observability sinks.
    fn split_range(&mut self, lo: u32, hi: u32) -> World {
        debug_assert_eq!(self.base, 0, "split_range on a shard world");
        debug_assert_eq!(self.hosts.len(), hi as usize, "shards must split tail-first");
        let mut hosts = self.hosts.split_off(lo as usize);
        let trace: TraceHandle = Rc::new(RefCell::new(self.trace.borrow().split_shard()));
        let auditor: AuditHandle = {
            let mut shard = self.auditor.borrow_mut().split_shard(lo, hi);
            shard.set_trace(trace.clone());
            Rc::new(RefCell::new(shard))
        };
        if self.cfg.audit {
            for (i, slot) in hosts.iter_mut().enumerate() {
                if let HostSlot::Full(f) = slot {
                    f.nic.attach_auditor(auditor.clone());
                    f.nic.attach_trace(trace.clone());
                    f.os.attach_instrumentation(lo + i as u32, auditor.clone(), trace.clone());
                }
            }
        }
        let telemetry = self.telemetry.as_ref().map(|main| {
            let tel: TelemetryHandle = Rc::new(RefCell::new(main.borrow().split_shard()));
            for slot in hosts.iter_mut() {
                if let HostSlot::Full(f) = slot {
                    f.nic.rebind_telemetry(tel.clone());
                    f.os.rebind_telemetry(tel.clone());
                }
            }
            // Rebind registered this shard's metric names at zero; pull
            // their current values so counters keep accumulating.
            tel.borrow_mut().adopt_values(&main.borrow());
            tel
        });
        World {
            cfg: self.cfg.clone(),
            fabric: self.fabric.split_shard(),
            hosts,
            keys: self.keys.clone(),
            trace,
            auditor,
            telemetry,
            control: self.control.clone(),
            oracle: self.oracle.clone(),
            key_rng: self.key_rng.clone(),
            base: lo,
            outbox: Vec::new(),
        }
    }

    /// Inverse of [`World::split_shards`]: host state returns in order,
    /// the canonical fabric copies back each shard's owned link and fault
    /// state, and the observability sinks merge deterministically (trace
    /// entries re-sorted, auditor ledgers fate-joined, telemetry published
    /// by name).
    pub(crate) fn absorb_shards(&mut self, shards: Vec<World>, part: &Partition) {
        let mut shard_auditors = Vec::with_capacity(shards.len());
        for (s, shard) in shards.into_iter().enumerate() {
            let World {
                cfg: _,
                fabric,
                mut hosts,
                keys: _,
                trace,
                auditor,
                telemetry,
                control,
                oracle: _,
                key_rng: _,
                base,
                outbox,
            } = shard;
            debug_assert!(outbox.is_empty(), "cross-shard mail left unpublished");
            // Every shard's control copy evolved identically; adopt the
            // first one as the merged coordinator state.
            if s == 0 && control.is_some() {
                self.control = control;
            }
            let (lo, hi) = part.range(s as u32);
            debug_assert_eq!(base, lo);
            debug_assert_eq!(self.hosts.len(), lo as usize, "shards must absorb in order");
            self.fabric.absorb_shard(&fabric, lo, hi, |l| part.link_owner(l) == s as u32);
            if self.cfg.audit {
                for (i, slot) in hosts.iter_mut().enumerate() {
                    if let HostSlot::Full(f) = slot {
                        f.nic.attach_auditor(self.auditor.clone());
                        f.nic.attach_trace(self.trace.clone());
                        f.os.attach_instrumentation(
                            lo + i as u32,
                            self.auditor.clone(),
                            self.trace.clone(),
                        );
                    }
                }
            }
            if let Some(main) = &self.telemetry {
                for slot in hosts.iter_mut() {
                    if let HostSlot::Full(f) = slot {
                        f.nic.rebind_telemetry(main.clone());
                        f.os.rebind_telemetry(main.clone());
                    }
                }
                main.borrow_mut().absorb_shard(unwrap_handle(telemetry.expect("shard telemetry")));
            }
            self.hosts.append(&mut hosts);
            // The shard auditor holds the shard trace handle; re-point it
            // at the main ring before unwrapping the shard ring below.
            let mut a = unwrap_handle(auditor);
            a.set_trace(self.trace.clone());
            shard_auditors.push(a);
            self.trace.borrow_mut().absorb_shard(unwrap_handle(trace));
        }
        self.auditor.borrow_mut().absorb_shards(shard_auditors);
    }
}

/// Recover sole ownership of a shard-local `Rc<RefCell<_>>` handle after
/// every component clone has been re-pointed at the main handles.
fn unwrap_handle<T>(h: Rc<RefCell<T>>) -> T {
    match Rc::try_unwrap(h) {
        Ok(cell) => cell.into_inner(),
        Err(_) => panic!("shard observability handle still shared at absorb"),
    }
}

impl SimWorld for World {
    type Event = Event;

    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_, Event>) {
        match ev {
            Event::Ingress { host, corrupt, pkt } => {
                // Phase two of injection: reserve the descending-path links
                // now, then deliver after the residual fabric delay.
                let rest = self.fabric.complete_ingress(ctx.now(), &pkt);
                let src = pkt.src;
                ctx.schedule(rest, Event::Deliver { host, src, frame: pkt.payload, corrupt });
            }
            Event::Fault { host, op } => {
                debug_assert!(self.owns(host), "fault op routed to the wrong shard");
                // One application per fabric copy: the base host's event is
                // the shard's designated carrier; the others only exist so
                // the transition is schedulable under any partition.
                if host == self.base {
                    self.fabric.faults_mut().apply(&op);
                }
                // Observability fires once globally (host 0 lives on the
                // first shard, whose trace/telemetry absorb first).
                if host == 0 {
                    self.trace
                        .borrow_mut()
                        .record_with(ctx.now(), 0, "fault.op", || format!("{op:?}"));
                    if let Some(tel) = &self.telemetry {
                        tel.borrow_mut().instant(ctx.now(), 0, "net", "fault", format!("{op:?}"));
                    }
                }
            }
            Event::Ctl { host, kseq, op } => {
                debug_assert!(self.owns(host), "control op routed to the wrong shard");
                let now = ctx.now();
                if host == self.base {
                    // The world's designated decider (its lowest host sorts
                    // first in the control key band): run the replicated
                    // coordinator step before any host-local action.
                    let oracle = self.oracle.clone();
                    let ctl = self
                        .control
                        .as_mut()
                        .expect("control event scheduled without a control plane");
                    ctl.process(now, kseq, &op, oracle.as_deref());
                }
                // Every host copy schedules its own broadcast of the
                // follow-ups the decision produced, so each shard's wheel
                // holds exactly the events its hosts will handle.
                let entries: Vec<(SimTime, u64, CtlOp)> = self
                    .control
                    .as_deref()
                    .expect("control event scheduled without a control plane")
                    .entries_for(kseq)
                    .to_vec();
                for (at, k2, op2) in entries {
                    ctx.schedule_keyed_at(
                        at,
                        ctl_key(k2, host),
                        Event::Ctl { host, kseq: k2, op: op2 },
                    );
                }
                self.ctl_local(now, host, &op, ctx);
                if host == 0 {
                    self.trace.borrow_mut().record_with(now, 0, "ctl.op", || format!("{op:?}"));
                    if let Some(tel) = &self.telemetry {
                        tel.borrow_mut().instant(now, 0, "net", "ctl", format!("{op:?}"));
                    }
                }
            }
            Event::CtlRetire { host, ep, polls } => {
                debug_assert!(self.owns(host), "retire poll routed to the wrong shard");
                self.ctl_retire(ctx.now(), host, ep, polls, ctx);
            }
            // Every remaining event is addressed to one host; dispatch
            // through its registered model.
            ev => {
                let h = self.hx(ev.target_host());
                self.dispatch(h, ev, ctx);
            }
        }
    }
}
