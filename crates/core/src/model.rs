//! Pluggable fidelity boundaries: narrow traits between the composed
//! world and its host / NIC / fabric models, plus one *abstract* fast
//! model per boundary.
//!
//! The paper's value is its per-protocol detail — the NI firmware loop,
//! the §4 residency machine, the §5.1 stop-and-wait channels — but a
//! fleet-scale run (thousands of hosts under background traffic) cannot
//! afford that detail at every node. Following the SimBricks recipe,
//! the world composes *models of differing fidelity* behind narrow
//! interfaces:
//!
//! * [`HostModel`] — everything above the wire on one host: OS, user
//!   library, thread scheduler, cost model. The full implementation is
//!   `world::FullHost` (the pre-existing machinery, unchanged); the
//!   abstract one is [`AbstractHost`], a LogP source/sink that charges
//!   `o_s`/`o_r` CPU overheads without running the residency machine.
//! * [`NicModel`] — the wire-facing delivery seam. Full: [`vnet_nic::Nic`]
//!   (CRC check, protection, NACK/retransmit). Abstract: [`AbstractNic`],
//!   a counter that accepts every frame.
//! * [`FabricModel`] — the network between hosts. Full:
//!   [`vnet_net::Fabric`] (per-link bandwidth arbitration). Abstract:
//!   [`vnet_net::DelayFabric`] (route latency only).
//!
//! Fidelity is chosen **per node** through [`FidelityMap`] (builder
//! `fidelity(..)` > `VNET_FIDELITY` env > default Full — see
//! [`crate::config`] for the precedence contract). Mixing is sound
//! because the classes couple only through the shared fabric: abstract
//! traffic reserves links (under the full fabric) exactly like real
//! frames, so full-fidelity hosts feel its contention, while abstract
//! hosts never participate in endpoint protocols. Endpoints, threads,
//! and residency exist only on full hosts; abstract hosts are driven by
//! [`crate::Cluster::drive_abstract`] and report coarse [`AbsStats`]
//! counters (`host{N}.abs.*`).
//!
//! Determinism is preserved across fidelity choices: abstract hosts draw
//! from the same per-host derived RNG streams, inject through the same
//! two-phase `(time, source, sequence)`-keyed ingress protocol, and the
//! delay fabric keeps the full fabric's per-hop latencies, so the
//! parallel executor's lookahead bound and epoch protocol apply
//! unchanged. Full-fidelity-everywhere through these seams is pinned
//! byte-identical to the pre-refactor oracle by `tests/parallel_differential.rs`.

use crate::world::{Event, HostEnv};
use std::collections::BTreeMap;
use vnet_net::{DelayFabric, Fabric, FaultPlan, HostId, NetConfig, Packet, Phase1, Topology};
use vnet_nic::{EpId, Frame, FrameKind, FramePool, GlobalEp, Nic, NicOut, ProtectionKey, UserMsg};
use vnet_sim::stats::LogHistogram;
use vnet_sim::telemetry::{MetricSet, MetricValue, MetricVisitor, MetricsSnapshot};
use vnet_sim::{Ctx, SimDuration, SimRng, SimTime};

// ===================================================================
// Fidelity selection
// ===================================================================

/// How much of the paper's machinery a node (or the fabric) simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fidelity {
    /// The complete model: NI firmware, residency, stop-and-wait
    /// channels, credits, threads, auditor hooks.
    Full,
    /// The fast model: LogP overheads and route latency only.
    Abstract,
}

/// Per-node fidelity assignment plus the fabric's own fidelity.
///
/// Defaults to Full everywhere. Host overrides are sparse; unlisted
/// hosts take `default_host`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FidelityMap {
    default_host: Fidelity,
    overrides: BTreeMap<u32, Fidelity>,
    fabric: Fidelity,
}

impl Default for FidelityMap {
    fn default() -> Self {
        Self::full()
    }
}

impl FidelityMap {
    /// Full fidelity everywhere (the historical behavior).
    pub fn full() -> Self {
        FidelityMap {
            default_host: Fidelity::Full,
            overrides: BTreeMap::new(),
            fabric: Fidelity::Full,
        }
    }

    /// The fidelity of host `h`.
    pub fn of(&self, h: u32) -> Fidelity {
        self.overrides.get(&h).copied().unwrap_or(self.default_host)
    }

    /// The fabric's fidelity ([`Fidelity::Abstract`] selects the
    /// delay-only [`vnet_net::DelayFabric`]).
    pub fn fabric(&self) -> Fidelity {
        self.fabric
    }

    /// Set the fabric fidelity.
    pub fn set_fabric(&mut self, f: Fidelity) {
        self.fabric = f;
    }

    /// The fidelity unlisted hosts take.
    pub fn default_host(&self) -> Fidelity {
        self.default_host
    }

    /// Set the fidelity unlisted hosts take (and clear nothing).
    pub fn set_default_host(&mut self, f: Fidelity) {
        self.default_host = f;
    }

    /// Assign fidelity `f` to each listed host.
    pub fn set_hosts(&mut self, hosts: impl IntoIterator<Item = u32>, f: Fidelity) {
        for h in hosts {
            self.overrides.insert(h, f);
        }
    }

    /// Whether any of hosts `0..n` (or the fabric) is abstract.
    pub fn any_abstract(&self, n: u32) -> bool {
        self.fabric == Fidelity::Abstract
            || self.default_host == Fidelity::Abstract
            || (0..n).any(|h| self.of(h) == Fidelity::Abstract)
    }

    /// Parse the `VNET_FIDELITY` grammar:
    ///
    /// ```text
    /// full                        everything full (the default)
    /// abstract                    every host abstract
    /// abstract:4-15,20            listed hosts abstract, the rest full
    /// full:0-3                    listed hosts full, the rest abstract
    /// ...;fabric=abstract         append to select the delay-only fabric
    /// ```
    ///
    /// Ranges are inclusive. The fabric defaults to full unless the
    /// `fabric=` suffix says otherwise.
    pub fn parse(s: &str) -> Result<FidelityMap, String> {
        let mut map = FidelityMap::full();
        for (i, part) in s.trim().split(';').enumerate() {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if i == 0 {
                let (kind, ranges) = match part.split_once(':') {
                    Some((k, r)) => (k.trim(), Some(r)),
                    None => (part, None),
                };
                let listed = match kind {
                    "full" => Fidelity::Full,
                    "abstract" => Fidelity::Abstract,
                    other => return Err(format!("unknown fidelity {other:?}")),
                };
                match ranges {
                    None => map.default_host = listed,
                    Some(r) => {
                        map.default_host = match listed {
                            Fidelity::Full => Fidelity::Abstract,
                            Fidelity::Abstract => Fidelity::Full,
                        };
                        map.set_hosts(parse_ranges(r)?, listed);
                    }
                }
            } else {
                let Some((key, val)) = part.split_once('=') else {
                    return Err(format!("expected key=value, got {part:?}"));
                };
                match (key.trim(), val.trim()) {
                    ("fabric", "full") => map.fabric = Fidelity::Full,
                    ("fabric", "abstract" | "delay") => map.fabric = Fidelity::Abstract,
                    (k, v) => return Err(format!("unknown option {k}={v}")),
                }
            }
        }
        Ok(map)
    }
}

/// Parse `"4-15,20"` into the listed host ids.
fn parse_ranges(s: &str) -> Result<Vec<u32>, String> {
    let mut out = Vec::new();
    for item in s.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        match item.split_once('-') {
            Some((a, b)) => {
                let lo: u32 = a.trim().parse().map_err(|_| format!("bad range {item:?}"))?;
                let hi: u32 = b.trim().parse().map_err(|_| format!("bad range {item:?}"))?;
                if lo > hi {
                    return Err(format!("inverted range {item:?}"));
                }
                out.extend(lo..=hi);
            }
            None => out.push(item.parse().map_err(|_| format!("bad host id {item:?}"))?),
        }
    }
    Ok(out)
}

// ===================================================================
// FabricModel
// ===================================================================

/// The network between hosts, as the composed world sees it: deterministic
/// source routing, the two-phase `(inject_src, complete_ingress)` timing
/// protocol, and a fault plan judged on the sender's own stream. Both
/// implementations keep per-source ingress sequences and identical per-hop
/// latencies, so the parallel executor's lookahead bound holds for either.
pub trait FabricModel {
    /// The topology in use.
    fn topology(&self) -> &Topology;
    /// The physical parameters in use.
    fn net_config(&self) -> &NetConfig;
    /// The fault plan (read).
    fn faults(&self) -> &FaultPlan;
    /// The fault plan (campaign ops, hot-swap control).
    fn faults_mut(&mut self) -> &mut FaultPlan;
    /// Phase 1: judge faults and time the ascending hops.
    fn inject_src(&mut self, now: SimTime, pkt: Packet<Frame>) -> Phase1<Frame>;
    /// Phase 2: time the descending hops from the ingress instant.
    fn complete_ingress(&mut self, at: SimTime, pkt: &Packet<Frame>) -> SimDuration;
}

impl FabricModel for Fabric {
    fn topology(&self) -> &Topology {
        Fabric::topology(self)
    }
    fn net_config(&self) -> &NetConfig {
        Fabric::config(self)
    }
    fn faults(&self) -> &FaultPlan {
        Fabric::faults(self)
    }
    fn faults_mut(&mut self) -> &mut FaultPlan {
        Fabric::faults_mut(self)
    }
    fn inject_src(&mut self, now: SimTime, pkt: Packet<Frame>) -> Phase1<Frame> {
        Fabric::inject_src(self, now, pkt)
    }
    fn complete_ingress(&mut self, at: SimTime, pkt: &Packet<Frame>) -> SimDuration {
        Fabric::complete_ingress(self, at, pkt)
    }
}

impl FabricModel for DelayFabric {
    fn topology(&self) -> &Topology {
        DelayFabric::topology(self)
    }
    fn net_config(&self) -> &NetConfig {
        DelayFabric::config(self)
    }
    fn faults(&self) -> &FaultPlan {
        DelayFabric::faults(self)
    }
    fn faults_mut(&mut self) -> &mut FaultPlan {
        DelayFabric::faults_mut(self)
    }
    fn inject_src(&mut self, now: SimTime, pkt: Packet<Frame>) -> Phase1<Frame> {
        DelayFabric::inject_src(self, now, pkt)
    }
    fn complete_ingress(&mut self, at: SimTime, pkt: &Packet<Frame>) -> SimDuration {
        DelayFabric::complete_ingress(self, at, pkt)
    }
}

/// The world's fabric: one registered [`FabricModel`], dispatched
/// statically so the hot path stays branch-predictable and the shard
/// split/absorb protocol stays concrete.
pub enum FabricSlot {
    /// Full bandwidth-arbitrating fabric.
    Full(Fabric),
    /// Delay-only fabric (no link reservation).
    Delay(DelayFabric),
}

impl FabricSlot {
    /// Build the fabric selected by `f`.
    pub fn build(f: Fidelity, cfg: NetConfig, topo: Topology, faults: FaultPlan) -> Self {
        match f {
            Fidelity::Full => FabricSlot::Full(Fabric::new(cfg, topo, faults)),
            Fidelity::Abstract => FabricSlot::Delay(DelayFabric::new(cfg, topo, faults)),
        }
    }

    /// The full fabric, when that is what is registered (tests and
    /// benchmarks that inspect link reservation state).
    pub fn as_full(&self) -> Option<&Fabric> {
        match self {
            FabricSlot::Full(f) => Some(f),
            FabricSlot::Delay(_) => None,
        }
    }

    // Inherent mirrors of the [`FabricModel`] surface, so callers holding
    // a `World` need no trait import for plain inspection and fault
    // control (the trait impl below forwards here).

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        match self {
            FabricSlot::Full(f) => f.topology(),
            FabricSlot::Delay(f) => f.topology(),
        }
    }

    /// The physical parameters in use.
    pub fn config(&self) -> &NetConfig {
        match self {
            FabricSlot::Full(f) => f.config(),
            FabricSlot::Delay(f) => f.config(),
        }
    }

    /// The fault plan (read).
    pub fn faults(&self) -> &FaultPlan {
        match self {
            FabricSlot::Full(f) => f.faults(),
            FabricSlot::Delay(f) => f.faults(),
        }
    }

    /// The fault plan (campaign ops, administrative hot-swap control).
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        match self {
            FabricSlot::Full(f) => f.faults_mut(),
            FabricSlot::Delay(f) => f.faults_mut(),
        }
    }

    /// Phase 1 of injection: judge faults and time the ascending hops.
    pub fn inject_src(&mut self, now: SimTime, pkt: Packet<Frame>) -> Phase1<Frame> {
        match self {
            FabricSlot::Full(f) => f.inject_src(now, pkt),
            FabricSlot::Delay(f) => f.inject_src(now, pkt),
        }
    }

    /// Phase 2 of injection: time the descending hops from the ingress
    /// instant.
    pub fn complete_ingress(&mut self, at: SimTime, pkt: &Packet<Frame>) -> SimDuration {
        match self {
            FabricSlot::Full(f) => f.complete_ingress(at, pkt),
            FabricSlot::Delay(f) => f.complete_ingress(at, pkt),
        }
    }

    /// Shard copy (same discipline as the underlying model).
    pub(crate) fn split_shard(&self) -> FabricSlot {
        match self {
            FabricSlot::Full(f) => FabricSlot::Full(f.split_shard()),
            FabricSlot::Delay(f) => FabricSlot::Delay(f.split_shard()),
        }
    }

    /// Copy back a shard's owned link/fault/sequence state.
    pub(crate) fn absorb_shard(
        &mut self,
        sh: &FabricSlot,
        lo: u32,
        hi: u32,
        owns_link: impl Fn(vnet_net::LinkId) -> bool,
    ) {
        match (self, sh) {
            (FabricSlot::Full(a), FabricSlot::Full(b)) => a.absorb_shard(b, lo, hi, owns_link),
            (FabricSlot::Delay(a), FabricSlot::Delay(b)) => a.absorb_shard(b, lo, hi, owns_link),
            _ => panic!("fabric fidelity changed between split and absorb"),
        }
    }
}

impl FabricModel for FabricSlot {
    fn topology(&self) -> &Topology {
        FabricSlot::topology(self)
    }
    fn net_config(&self) -> &NetConfig {
        FabricSlot::config(self)
    }
    fn faults(&self) -> &FaultPlan {
        FabricSlot::faults(self)
    }
    fn faults_mut(&mut self) -> &mut FaultPlan {
        FabricSlot::faults_mut(self)
    }
    fn inject_src(&mut self, now: SimTime, pkt: Packet<Frame>) -> Phase1<Frame> {
        FabricSlot::inject_src(self, now, pkt)
    }
    fn complete_ingress(&mut self, at: SimTime, pkt: &Packet<Frame>) -> SimDuration {
        FabricSlot::complete_ingress(self, at, pkt)
    }
}

/// Snapshot prefix `net.*`, whichever model is registered (the delay
/// fabric reports the same counter names; `link_busy_ns` then counts
/// serialization only, not queueing).
impl MetricSet for FabricSlot {
    fn visit_metrics(&self, v: &mut dyn MetricVisitor) {
        match self {
            FabricSlot::Full(f) => f.visit_metrics(v),
            FabricSlot::Delay(f) => f.visit_metrics(v),
        }
    }
}

// ===================================================================
// NicModel
// ===================================================================

/// The wire-facing seam of one host: what happens when a frame's tail
/// arrives. The full NIC runs CRC/protection/NACK/retransmit and emits
/// effects; the abstract NIC counts the frame and emits nothing.
pub trait NicModel {
    /// A frame's tail arrived from `src` (possibly corrupt in flight).
    fn deliver(
        &mut self,
        now: SimTime,
        src: HostId,
        frame: Frame,
        corrupt: bool,
        outs: &mut Vec<NicOut>,
    );
}

impl NicModel for Nic {
    fn deliver(
        &mut self,
        now: SimTime,
        src: HostId,
        frame: Frame,
        corrupt: bool,
        outs: &mut Vec<NicOut>,
    ) {
        self.on_packet(now, src, frame, corrupt, outs);
    }
}

/// Coarse counters an abstract node reports in place of the full
/// NIC/OS stats (snapshot prefix `host{N}.abs.*`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AbsStats {
    /// Messages injected into the fabric.
    pub sent: u64,
    /// Payload bytes injected.
    pub sent_bytes: u64,
    /// Messages received intact.
    pub recvd: u64,
    /// Payload bytes received intact.
    pub recv_bytes: u64,
    /// Frames discarded on arrival for in-flight corruption.
    pub corrupt_drops: u64,
}

impl MetricSet for AbsStats {
    fn visit_metrics(&self, v: &mut dyn MetricVisitor) {
        v.metric("sent", MetricValue::Counter(self.sent));
        v.metric("sent_bytes", MetricValue::Counter(self.sent_bytes));
        v.metric("recvd", MetricValue::Counter(self.recvd));
        v.metric("recv_bytes", MetricValue::Counter(self.recv_bytes));
        v.metric("corrupt_drops", MetricValue::Counter(self.corrupt_drops));
    }
}

/// The abstract NIC: a frame source/sink with counters. No protection
/// check, no sequencing, no acknowledgments — the §5.1 reliability
/// machinery is exactly what this model drops, so frames lost or
/// corrupted in the fabric stay lost (visible in [`AbsStats`]).
pub struct AbstractNic {
    host: HostId,
    seq: u64,
    /// Recycles delivered message boxes into the next send, so a
    /// steady-state abstract host allocates O(in-flight) boxes, not
    /// O(messages). Per-host state: moves wholesale across shard
    /// splits, invisible to determinism.
    pool: FramePool,
    /// Traffic counters.
    pub stats: AbsStats,
}

/// `UserMsg::handler` value marking an open-loop request whose
/// `args[0]` carries the arrival timestamp (ns) at the source.
pub const OPEN_LOOP_HANDLER: u16 = 1;

/// Free message boxes an abstract NIC retains for reuse. Bounds pool
/// memory at ~96 B × 64 per host while covering any realistic
/// in-flight window on the abstract path.
const FRAME_POOL_CAP: usize = 64;

impl AbstractNic {
    /// A fresh abstract NIC on `host`.
    pub fn new(host: HostId) -> Self {
        AbstractNic {
            host,
            seq: 0,
            pool: FramePool::with_capacity(FRAME_POOL_CAP),
            stats: AbsStats::default(),
        }
    }

    /// Forge a wire frame carrying `bytes` of payload to `dst`, counting
    /// it as sent. The frame is well-formed (the fabric charges its real
    /// wire size; the channel spreads over multipath) but addressed to
    /// endpoint 0 with the open key — only another abstract NIC may
    /// receive it.
    pub fn make_packet(&mut self, now: SimTime, dst: HostId, bytes: u32) -> Packet<Frame> {
        let uid = self.seq + 1;
        let msg = UserMsg {
            uid,
            is_request: false,
            handler: 0,
            args: [0; 4],
            payload_bytes: bytes,
            src_ep: GlobalEp::new(self.host, EpId(0)),
            reply_key: ProtectionKey::OPEN,
            corr: 0,
        };
        self.forge(now, dst, msg)
    }

    /// Forge an open-loop request frame: like [`Self::make_packet`] but
    /// tagged [`OPEN_LOOP_HANDLER`] with the request's arrival instant
    /// (`stamp_ns`, at the *source*) in `args[0]`, so the receiving
    /// abstract host can record end-to-end request latency including
    /// source CPU queueing.
    pub fn make_request(
        &mut self,
        now: SimTime,
        dst: HostId,
        bytes: u32,
        stamp_ns: u64,
    ) -> Packet<Frame> {
        let uid = self.seq + 1;
        let msg = UserMsg {
            uid,
            is_request: true,
            handler: OPEN_LOOP_HANDLER,
            args: [stamp_ns, 0, 0, 0],
            payload_bytes: bytes,
            src_ep: GlobalEp::new(self.host, EpId(0)),
            reply_key: ProtectionKey::OPEN,
            corr: 0,
        };
        self.forge(now, dst, msg)
    }

    fn forge(&mut self, now: SimTime, dst: HostId, msg: UserMsg) -> Packet<Frame> {
        self.seq += 1;
        self.stats.sent += 1;
        self.stats.sent_bytes += msg.payload_bytes as u64;
        let wire = msg.wire_bytes();
        let frame = Frame {
            kind: FrameKind::Data(self.pool.alloc(msg)),
            dst_ep: EpId(0),
            key: ProtectionKey::OPEN,
            chan: (self.seq & 3) as u8,
            seq: self.seq,
            ack_uid: 0,
            timestamp: (now.as_nanos() / 1_000) as u32,
        };
        Packet { src: self.host, dst, channel: frame.chan, bytes: wire, payload: frame }
    }
}

impl NicModel for AbstractNic {
    fn deliver(
        &mut self,
        _now: SimTime,
        _src: HostId,
        frame: Frame,
        corrupt: bool,
        _outs: &mut Vec<NicOut>,
    ) {
        if !corrupt {
            self.stats.recvd += 1;
            if let FrameKind::Data(m) = &frame.kind {
                self.stats.recv_bytes += m.payload_bytes as u64;
            }
        } else {
            self.stats.corrupt_drops += 1;
        }
        // Either way the box is consumed here; offer it for reuse.
        if let FrameKind::Data(m) = frame.kind {
            self.pool.recycle(m);
        }
    }
}

// ===================================================================
// Open-loop client-population sampling
// ===================================================================

/// Zipf(s) rank over `{1..=n}` by inverse CDF of the continuous
/// bounded-Pareto approximation: `P(K ≤ k) ≈ (k^{1-s} − 1)/(n^{1-s} − 1)`
/// (and `ln k / ln n` at `s = 1`). Exact enough for popularity skew at
/// fleet scale without per-rank tables, O(1) per draw, and monotone in
/// `u` so fixed seeds pin fixed ranks.
pub fn zipf_rank(u: f64, n: u64, s: f64) -> u64 {
    let n_f = n as f64;
    let u = u.clamp(0.0, 1.0 - 1e-12);
    let k = if (s - 1.0).abs() < 1e-9 {
        n_f.powf(u)
    } else {
        let t = 1.0 - n_f.powf(1.0 - s);
        (1.0 - u * t).powf(1.0 / (1.0 - s))
    };
    (k.floor() as u64).clamp(1, n)
}

/// Bounded Pareto(α) sample in `[min, max]` by inverse CDF:
/// `x = min / (1 − u(1 − (min/max)^α))^{1/α}`. Heavy-tailed request
/// sizes with a hard cap, per the fleet workload model.
pub fn bounded_pareto(u: f64, min: f64, max: f64, alpha: f64) -> f64 {
    let u = u.clamp(0.0, 1.0 - 1e-12);
    if min >= max {
        return min;
    }
    let r = (min / max).powf(alpha);
    min / (1.0 - u * (1.0 - r)).powf(1.0 / alpha)
}

/// An open-loop client population multiplexed onto one serving host
/// (see [`crate::Cluster::drive_open_loop`]).
///
/// Millions of clients are not simulated as objects: by Poisson
/// superposition their aggregate offered load is a small number of
/// exponential arrival `streams`, each carrying only an RNG and a
/// next-arrival event on the wheel. Arrivals are *open-loop* — the next
/// arrival is scheduled from wall-clock, never gated on the host CPU —
/// so overload shows up as queueing latency, not reduced offered load.
#[derive(Clone, Debug)]
pub struct OpenLoopSpec {
    /// Independent Poisson arrival streams on this host (≥ 1). More
    /// streams smooth the superposed process; each costs one wheel
    /// event, not one client.
    pub streams: u32,
    /// Mean inter-arrival gap of the *aggregate* host load (each stream
    /// runs at `mean_gap × streams`).
    pub mean_gap: SimDuration,
    /// Total requests this host emits before going quiet.
    pub requests: u64,
    /// Zipf skew for target popularity (1.0 ≈ classic Zipf).
    pub zipf_s: f64,
    /// Size of the target id space `[0, targets)`; ranks rotate around
    /// the source so no host targets itself.
    pub targets: u32,
    /// Smallest request payload, bytes.
    pub size_min: u32,
    /// Largest request payload, bytes (hard cap of the Pareto tail).
    pub size_max: u32,
    /// Pareto tail index for request sizes (smaller ⇒ heavier tail).
    pub size_alpha: f64,
}

/// Live state of a driven open-loop population: the spec, one derived
/// RNG per stream, and the global remaining-request budget.
#[derive(Debug)]
struct OpenLoop {
    spec: OpenLoopSpec,
    streams: Vec<SimRng>,
    remaining: u64,
}

// ===================================================================
// HostModel
// ===================================================================

/// Everything above the wire on one host, as the composed world sees
/// it: consume the events addressed to the host, produce injections and
/// follow-up events through the shared [`HostEnv`], and report metrics.
/// Implemented by `world::FullHost` (the complete §3–§6 machinery) and
/// [`AbstractHost`].
pub trait HostModel {
    /// This host's fidelity class.
    fn fidelity(&self) -> Fidelity;
    /// Handle an event addressed to global host `gh`.
    fn on_event(&mut self, gh: u32, ev: Event, env: &mut HostEnv<'_>, ctx: &mut Ctx<'_, Event>);
    /// Report this host's metrics into a snapshot (`host{h}.…` scope).
    fn record_metrics(&self, h: usize, out: &mut MetricsSnapshot);
}

/// Internal events of an abstract host (carried by `Event::Abs`).
#[derive(Clone, Copy, Debug)]
pub enum AbsEvent {
    /// Decide the next message of the driven traffic pattern.
    Tick,
    /// A decided message reaches the wire (after its `o_s` overhead).
    Send {
        /// Destination host.
        dst: HostId,
        /// Payload bytes.
        bytes: u32,
    },
    /// An open-loop client request arrives at its serving host (one
    /// Poisson stream fires). Draws target/size, charges `o_s`, and
    /// self-reschedules — never gated on the CPU.
    Arrive {
        /// Which arrival stream fired.
        stream: u32,
    },
    /// A decided open-loop request reaches the wire (after `o_s`),
    /// carrying its arrival instant for latency accounting.
    Req {
        /// Destination host.
        dst: HostId,
        /// Payload bytes.
        bytes: u32,
        /// Arrival instant at the source (start of the latency clock).
        stamp: SimTime,
    },
}

/// A synthetic traffic pattern driven on an abstract host (see
/// [`crate::Cluster::drive_abstract`]): `count` messages of
/// `payload_bytes` each, to peers drawn uniformly from `peers`, with
/// uniformly jittered gaps averaging `mean_gap`.
#[derive(Clone, Debug)]
pub struct AbstractTraffic {
    /// Destination hosts (drawn uniformly per message). Every peer must
    /// itself be abstract.
    pub peers: Vec<HostId>,
    /// Payload bytes per message.
    pub payload_bytes: u32,
    /// Mean inter-message gap (jittered uniformly in `[g/2, 3g/2)`).
    pub mean_gap: SimDuration,
    /// Messages remaining to send.
    pub count: u64,
}

/// The abstract host: a LogP traffic source/sink. Sends charge the
/// cost model's `o_s` (`host_send`) on a single serial CPU before the
/// message reaches the wire; receives charge `o_r` (`host_recv`). No
/// endpoints, threads, residency, credits, or reliability — see
/// DESIGN.md §13 for exactly what is dropped relative to the paper.
pub struct AbstractHost {
    nic: AbstractNic,
    rng: SimRng,
    /// The serial CPU: sends and receives occupy it back-to-back, so a
    /// saturated abstract host is overhead-limited like a real LogP node.
    cpu_free_at: SimTime,
    traffic: Option<AbstractTraffic>,
    /// Boxed: most abstract hosts in a fleet sink traffic and never
    /// source an open-loop population, so the common case pays one
    /// pointer, not the full spec + stream vector.
    open_loop: Option<Box<OpenLoop>>,
    /// Request latencies observed *as a server* (recorded when an
    /// [`OPEN_LOOP_HANDLER`] request clears this host's `o_r`). Boxed
    /// and lazy: 536 B per histogram matters × 16k hosts.
    req_lat: Option<Box<LogHistogram>>,
}

impl AbstractHost {
    /// A fresh abstract host for global host id `host`, drawing jitter
    /// and peer choices from `rng` (the host's derived stream).
    pub(crate) fn new(host: HostId, rng: SimRng) -> Self {
        AbstractHost {
            nic: AbstractNic::new(host),
            rng,
            cpu_free_at: SimTime::ZERO,
            traffic: None,
            open_loop: None,
            req_lat: None,
        }
    }

    /// Install (replacing any previous) driven traffic. The first
    /// [`AbsEvent::Tick`] must be scheduled by the caller.
    pub(crate) fn set_traffic(&mut self, t: AbstractTraffic) {
        self.traffic = Some(t);
    }

    /// Install (replacing any previous) an open-loop client population.
    /// Returns the initial exponential delay of each stream; the caller
    /// schedules stream `i`'s first [`AbsEvent::Arrive`] at `delays[i]`.
    pub(crate) fn start_open_loop(&mut self, spec: OpenLoopSpec) -> Vec<SimDuration> {
        assert!(spec.targets >= 2, "open-loop traffic needs at least two hosts");
        assert!(spec.streams >= 1, "open-loop traffic needs at least one stream");
        let per_stream_gap = spec.mean_gap.as_nanos().max(1) as f64 * spec.streams as f64;
        let mut streams = Vec::with_capacity(spec.streams as usize);
        let mut delays = Vec::with_capacity(spec.streams as usize);
        for i in 0..spec.streams {
            // Derived, not shared: stream RNGs must not depend on how
            // many draws the host's base stream has made.
            let mut r = self.rng.derive(0x09E7_0000 + i as u64);
            let d = r.expovariate(per_stream_gap).max(1.0) as u64;
            delays.push(SimDuration::from_nanos(d));
            streams.push(r);
        }
        let remaining = spec.requests;
        self.open_loop = Some(Box::new(OpenLoop { spec, streams, remaining }));
        delays
    }

    /// Traffic counters.
    pub fn stats(&self) -> &AbsStats {
        &self.nic.stats
    }

    /// Latencies of open-loop requests served *by* this host, if any
    /// arrived (arrival instant at the source → `o_r` cleared here).
    pub fn request_latency(&self) -> Option<&LogHistogram> {
        self.req_lat.as_deref()
    }

    /// Open-loop requests this host has yet to emit.
    pub fn open_loop_remaining(&self) -> u64 {
        self.open_loop.as_ref().map_or(0, |ol| ol.remaining)
    }
}

impl HostModel for AbstractHost {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Abstract
    }

    fn on_event(&mut self, gh: u32, ev: Event, env: &mut HostEnv<'_>, ctx: &mut Ctx<'_, Event>) {
        match ev {
            Event::Abs { ev: AbsEvent::Tick, .. } => {
                let Some(t) = &mut self.traffic else { return };
                if t.count == 0 {
                    return;
                }
                t.count -= 1;
                let dst = t.peers[self.rng.index(t.peers.len())];
                let bytes = t.payload_bytes;
                let now = ctx.now();
                // The send occupies the serial CPU for o_s before the
                // message reaches the wire.
                let start = now.max(self.cpu_free_at);
                let on_wire = start + env.cfg.cost.host_send;
                self.cpu_free_at = on_wire;
                ctx.schedule(on_wire - now, Event::Abs {
                    host: gh,
                    ev: AbsEvent::Send { dst, bytes },
                });
                if t.count > 0 {
                    let g = t.mean_gap.as_nanos().max(2);
                    let gap = g / 2 + self.rng.below(g);
                    ctx.schedule(SimDuration::from_nanos(gap), Event::Abs {
                        host: gh,
                        ev: AbsEvent::Tick,
                    });
                }
            }
            Event::Abs { ev: AbsEvent::Send { dst, bytes }, .. } => {
                let pkt = self.nic.make_packet(ctx.now(), dst, bytes);
                env.inject(ctx.now(), pkt, ctx);
            }
            Event::Abs { ev: AbsEvent::Arrive { stream }, .. } => {
                let Some(ol) = self.open_loop.as_deref_mut() else { return };
                if ol.remaining == 0 {
                    return;
                }
                ol.remaining -= 1;
                let now = ctx.now();
                let spec = &ol.spec;
                let rng = &mut ol.streams[stream as usize];
                // Zipf-popular target, ranks rotated around the source
                // so rank 1 is the next host and nothing targets itself.
                let rank = zipf_rank(rng.unit(), (spec.targets - 1) as u64, spec.zipf_s);
                let dst = HostId(((gh as u64 + rank) % spec.targets as u64) as u32);
                let bytes = bounded_pareto(
                    rng.unit(),
                    spec.size_min as f64,
                    spec.size_max as f64,
                    spec.size_alpha,
                )
                .round() as u32;
                // The request queues on the serial CPU for o_s like any
                // send; its latency clock starts *now*, at arrival, so
                // source-side queueing is part of the measured latency.
                let start = now.max(self.cpu_free_at);
                let on_wire = start + env.cfg.cost.host_send;
                self.cpu_free_at = on_wire;
                ctx.schedule(on_wire - now, Event::Abs {
                    host: gh,
                    ev: AbsEvent::Req { dst, bytes, stamp: now },
                });
                if ol.remaining > 0 {
                    // Open loop: the next arrival comes from wall-clock
                    // regardless of how far behind the CPU is.
                    let per_stream_gap =
                        spec.mean_gap.as_nanos().max(1) as f64 * spec.streams as f64;
                    let gap = rng.expovariate(per_stream_gap).max(1.0) as u64;
                    ctx.schedule(SimDuration::from_nanos(gap), Event::Abs {
                        host: gh,
                        ev: AbsEvent::Arrive { stream },
                    });
                }
            }
            Event::Abs { ev: AbsEvent::Req { dst, bytes, stamp }, .. } => {
                let pkt = self.nic.make_request(ctx.now(), dst, bytes, stamp.as_nanos());
                env.inject(ctx.now(), pkt, ctx);
            }
            Event::Deliver { src, frame, corrupt, .. } => {
                let now = ctx.now();
                // Pull the latency stamp before the frame is consumed.
                let stamp = match &frame.kind {
                    FrameKind::Data(m)
                        if !corrupt && m.is_request && m.handler == OPEN_LOOP_HANDLER =>
                    {
                        Some(m.args[0])
                    }
                    _ => None,
                };
                let mut outs = Vec::new();
                NicModel::deliver(&mut self.nic, now, src, frame, corrupt, &mut outs);
                debug_assert!(outs.is_empty(), "abstract NIC emitted effects");
                // Receive overhead o_r occupies the serial CPU, delaying
                // subsequent sends.
                self.cpu_free_at = now.max(self.cpu_free_at) + env.cfg.cost.host_recv;
                if let Some(stamp) = stamp {
                    // Served when o_r clears: arrival → CPU done here.
                    let lat = self.cpu_free_at.as_nanos().saturating_sub(stamp);
                    self.req_lat.get_or_insert_with(Default::default).record(lat);
                }
            }
            other => panic!(
                "full-fidelity event {other:?} routed to abstract host {gh}; \
                 endpoints and threads exist only on Fidelity::Full hosts"
            ),
        }
    }

    fn record_metrics(&self, h: usize, out: &mut MetricsSnapshot) {
        out.record_set(&format!("host{h}.abs"), &self.nic.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_map_defaults_full() {
        let m = FidelityMap::full();
        assert_eq!(m.of(0), Fidelity::Full);
        assert_eq!(m.of(999), Fidelity::Full);
        assert_eq!(m.fabric(), Fidelity::Full);
        assert!(!m.any_abstract(100));
    }

    #[test]
    fn fidelity_map_overrides() {
        let mut m = FidelityMap::full();
        m.set_hosts(4..8, Fidelity::Abstract);
        assert_eq!(m.of(3), Fidelity::Full);
        assert_eq!(m.of(4), Fidelity::Abstract);
        assert_eq!(m.of(7), Fidelity::Abstract);
        assert_eq!(m.of(8), Fidelity::Full);
        assert!(m.any_abstract(16));
    }

    #[test]
    fn parse_grammar() {
        assert_eq!(FidelityMap::parse("full").unwrap(), FidelityMap::full());
        let m = FidelityMap::parse("abstract").unwrap();
        assert_eq!(m.of(0), Fidelity::Abstract);
        assert_eq!(m.fabric(), Fidelity::Full);

        let m = FidelityMap::parse("abstract:4-15,20").unwrap();
        assert_eq!(m.of(0), Fidelity::Full);
        assert_eq!(m.of(4), Fidelity::Abstract);
        assert_eq!(m.of(15), Fidelity::Abstract);
        assert_eq!(m.of(16), Fidelity::Full);
        assert_eq!(m.of(20), Fidelity::Abstract);

        let m = FidelityMap::parse("full:0-3;fabric=abstract").unwrap();
        assert_eq!(m.of(0), Fidelity::Full);
        assert_eq!(m.of(4), Fidelity::Abstract);
        assert_eq!(m.fabric(), Fidelity::Abstract);

        assert!(FidelityMap::parse("med").is_err());
        assert!(FidelityMap::parse("full:9-2").is_err());
        assert!(FidelityMap::parse("full;fabric=med").is_err());
    }

    #[test]
    fn abstract_nic_counts() {
        let mut nic = AbstractNic::new(HostId(3));
        let pkt = nic.make_packet(SimTime::ZERO, HostId(1), 256);
        assert_eq!(pkt.src, HostId(3));
        assert_eq!(pkt.dst, HostId(1));
        assert_eq!(pkt.bytes, 48 + 256);
        assert_eq!(nic.stats.sent, 1);
        assert_eq!(nic.stats.sent_bytes, 256);

        let mut rx = AbstractNic::new(HostId(1));
        let mut outs = Vec::new();
        rx.deliver(SimTime::ZERO, pkt.src, pkt.payload.clone(), false, &mut outs);
        assert!(outs.is_empty());
        assert_eq!(rx.stats.recvd, 1);
        assert_eq!(rx.stats.recv_bytes, 256);
        rx.deliver(SimTime::ZERO, pkt.src, pkt.payload, true, &mut outs);
        assert_eq!(rx.stats.corrupt_drops, 1);
        assert_eq!(rx.stats.recvd, 1, "corrupt frames are not received");
    }

    #[test]
    fn zipf_rank_golden_values() {
        // Fixed (u, n, s) → fixed ranks: pins the inverse CDF so a seed
        // reproduces the same target sequence forever.
        assert_eq!(zipf_rank(0.0, 1000, 1.0), 1);
        assert_eq!(zipf_rank(0.25, 1000, 1.0), 5);
        assert_eq!(zipf_rank(0.5, 1000, 1.0), 31);
        assert_eq!(zipf_rank(0.75, 1000, 1.0), 177);
        assert_eq!(zipf_rank(0.999999, 1000, 1.0), 999);
        assert_eq!(zipf_rank(0.5, 1000, 1.5), 3);
        assert_eq!(zipf_rank(0.5, 1000, 0.8), 95);
        // Degenerate and clamped inputs stay in range.
        assert_eq!(zipf_rank(1.5, 1000, 1.0), 999);
        assert_eq!(zipf_rank(-0.5, 1000, 1.0), 1);
        assert_eq!(zipf_rank(0.7, 1, 1.2), 1);
    }

    #[test]
    fn zipf_rank_mass_concentration() {
        // Under the continuous s=1 approximation, P(K ≤ k) = ln k / ln n.
        // Check empirical head mass against that within ±2%.
        let n = 100_000u64;
        let mut rng = SimRng::seed_from_u64(42);
        let draws = 200_000;
        let mut head = 0u64;
        for _ in 0..draws {
            if zipf_rank(rng.unit(), n, 1.0) <= 10 {
                head += 1;
            }
        }
        let expect = (10f64).ln() / (n as f64).ln();
        let got = head as f64 / draws as f64;
        assert!(
            (got - expect).abs() < 0.02,
            "P(K<=10) = {got:.4}, expected ≈ {expect:.4}"
        );
    }

    #[test]
    fn bounded_pareto_moments_and_tail() {
        let (lo, hi, alpha) = (64.0f64, 65536.0f64, 1.3f64);
        // Analytic mean of the bounded Pareto.
        let expect = (lo.powf(alpha) / (1.0 - (lo / hi).powf(alpha))) * (alpha / (alpha - 1.0))
            * (lo.powf(1.0 - alpha) - hi.powf(1.0 - alpha));
        let mut rng = SimRng::seed_from_u64(7);
        let draws = 200_000;
        let mut sum = 0.0;
        let mut over_4k = 0u64;
        for _ in 0..draws {
            let x = bounded_pareto(rng.unit(), lo, hi, alpha);
            assert!((lo..=hi).contains(&x), "sample {x} out of [{lo}, {hi}]");
            sum += x;
            if x > 4096.0 {
                over_4k += 1;
            }
        }
        let mean = sum / draws as f64;
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "mean {mean:.1}, expected {expect:.1}"
        );
        // Heavy tail: P(X > 4096) ≈ (lo/4096)^α / (1 − (lo/hi)^α).
        let tail = (lo / 4096.0).powf(alpha) / (1.0 - (lo / hi).powf(alpha));
        let got = over_4k as f64 / draws as f64;
        assert!(
            (got - tail).abs() < 0.002,
            "P(X>4096) = {got:.4}, expected ≈ {tail:.4}"
        );
        // Degenerate bounds collapse to the floor.
        assert_eq!(bounded_pareto(0.9, 128.0, 128.0, 2.0), 128.0);
    }

    #[test]
    fn frame_pool_recycles_on_abstract_path() {
        let mut tx = AbstractNic::new(HostId(0));
        let mut rx = AbstractNic::new(HostId(1));
        let mut outs = Vec::new();
        for i in 0..100 {
            let pkt = tx.make_packet(SimTime::ZERO, HostId(1), 64 + i);
            rx.deliver(SimTime::ZERO, pkt.src, pkt.payload, false, &mut outs);
        }
        assert_eq!(rx.stats.recvd, 100);
        assert!(rx.pool.held() >= 1, "delivered boxes return to the receiver pool");
        // The receiver's next sends reuse those boxes.
        let before = rx.pool.recycled();
        let _ = rx.make_packet(SimTime::ZERO, HostId(0), 32);
        assert_eq!(rx.pool.recycled(), before + 1);
    }
}
