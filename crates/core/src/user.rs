//! Per-endpoint user-level library state: the translation table (§3.1) and
//! the credit-based request flow control (§6.4.1).
//!
//! "An endpoint object contains a simple translation table, which allows
//! programs to construct a logical communication namespace of small
//! integers by associating endpoint names and protection keys. A
//! communication operation specifies the source endpoint and a translation
//! table index for the destination endpoint."

use std::collections::HashMap;
use vnet_nic::{GlobalEp, ProtectionKey};

/// One translation-table entry: where index *i* points and the key that
/// grants delivery there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Translation {
    /// Destination endpoint.
    pub dst: GlobalEp,
    /// Protection key for that destination.
    pub key: ProtectionKey,
}

/// Concurrency marking of an endpoint (§3.3): "Applications can mark
/// endpoints as shared or exclusive, so that operations on shared
/// endpoints invoke code which performs the necessary synchronization
/// while operations on exclusive endpoints avoid those overheads."
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EpMode {
    /// One thread uses the endpoint; no locking on the fast path.
    #[default]
    Exclusive,
    /// Multiple threads may operate on the endpoint concurrently; every
    /// operation takes the endpoint mutex (a per-op cost).
    Shared,
}

/// Per-endpoint tenant byte budget (control-plane quota): request payload
/// admitted per accounting epoch. Epochs reset lazily at send time — no
/// timer events, so sharded and sequential runs see identical admission
/// decisions.
#[derive(Clone, Debug)]
pub struct EpQuota {
    /// Tenant id (auditor tenant-conservation key).
    pub tenant: u32,
    /// Bytes this endpoint may admit per epoch.
    pub bytes_per_epoch: u64,
    /// Accounting epoch length in nanoseconds.
    pub epoch_nanos: u64,
    /// Bytes admitted in the current epoch.
    pub used: u64,
    /// Index of the current epoch (`now / epoch_nanos`).
    pub epoch_idx: u64,
    /// Sends denied by the quota (noisy-neighbor signal).
    pub denied: u64,
}

impl EpQuota {
    /// Charge `bytes` at time-epoch `idx`; `false` means over budget (the
    /// send is denied and counted).
    pub fn admit(&mut self, idx: u64, bytes: u64) -> bool {
        if idx != self.epoch_idx {
            self.epoch_idx = idx;
            self.used = 0;
        }
        if self.used + bytes > self.bytes_per_epoch {
            self.denied += 1;
            false
        } else {
            self.used += bytes;
            true
        }
    }
}

/// User-level state attached to one local endpoint.
#[derive(Debug, Default)]
pub struct UserEpState {
    table: Vec<Option<Translation>>,
    /// Concurrency marking (§3.3).
    pub mode: EpMode,
    /// Tenant byte budget; `None` means unmetered (services, system eps).
    pub quota: Option<EpQuota>,
    /// Outstanding (unreplied) requests per translation index.
    outstanding: HashMap<usize, u32>,
    /// uid → translation index, for credit recovery when the reply (or the
    /// undeliverable return) comes back.
    in_flight: HashMap<u64, usize>,
}

impl UserEpState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or overwrite) translation `idx → (dst, key)`.
    pub fn set_translation(&mut self, idx: usize, dst: GlobalEp, key: ProtectionKey) {
        if self.table.len() <= idx {
            self.table.resize(idx + 1, None);
        }
        self.table[idx] = Some(Translation { dst, key });
    }

    /// Remove a translation (the slot becomes unaddressable).
    pub fn clear_translation(&mut self, idx: usize) {
        if let Some(slot) = self.table.get_mut(idx) {
            *slot = None;
        }
    }

    /// Look up a translation.
    pub fn translation(&self, idx: usize) -> Option<Translation> {
        self.table.get(idx).copied().flatten()
    }

    /// Number of table slots (including empty ones).
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Reverse lookup: the first index that maps to `dst`.
    pub fn index_of(&self, dst: GlobalEp) -> Option<usize> {
        self.table.iter().position(|t| t.map(|t| t.dst) == Some(dst))
    }

    /// Outstanding requests to translation `idx`.
    pub fn outstanding(&self, idx: usize) -> u32 {
        self.outstanding.get(&idx).copied().unwrap_or(0)
    }

    /// Total outstanding requests across all destinations.
    pub fn outstanding_total(&self) -> u32 {
        self.outstanding.values().sum()
    }

    /// Record that request `uid` left for translation `idx` (one credit
    /// consumed).
    pub fn note_sent(&mut self, uid: u64, idx: usize) {
        *self.outstanding.entry(idx).or_insert(0) += 1;
        self.in_flight.insert(uid, idx);
    }

    /// A reply (or undeliverable return) for request `uid` arrived: release
    /// its credit. Unknown uids (e.g. replies to a restarted process) are
    /// ignored. Returns the translation index the credit belonged to.
    pub fn note_completed(&mut self, uid: u64) -> Option<usize> {
        let idx = self.in_flight.remove(&uid)?;
        if let Some(c) = self.outstanding.get_mut(&idx) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.outstanding.remove(&idx);
            }
        }
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_net::HostId;
    use vnet_nic::EpId;

    fn gep(h: u32, e: u32) -> GlobalEp {
        GlobalEp::new(HostId(h), EpId(e))
    }

    #[test]
    fn translations_round_trip() {
        let mut u = UserEpState::new();
        u.set_translation(3, gep(1, 0), ProtectionKey(7));
        assert_eq!(u.translation(0), None);
        assert_eq!(u.translation(3).unwrap().dst, gep(1, 0));
        assert_eq!(u.table_len(), 4);
        assert_eq!(u.index_of(gep(1, 0)), Some(3));
        assert_eq!(u.index_of(gep(2, 0)), None);
        u.clear_translation(3);
        assert_eq!(u.translation(3), None);
    }

    #[test]
    fn credits_consumed_and_recovered() {
        let mut u = UserEpState::new();
        u.set_translation(0, gep(1, 0), ProtectionKey(1));
        u.note_sent(100, 0);
        u.note_sent(101, 0);
        assert_eq!(u.outstanding(0), 2);
        assert_eq!(u.outstanding_total(), 2);
        assert_eq!(u.note_completed(100), Some(0));
        assert_eq!(u.outstanding(0), 1);
        // Unknown uid ignored.
        assert_eq!(u.note_completed(999), None);
        assert_eq!(u.note_completed(101), Some(0));
        assert_eq!(u.outstanding(0), 0);
    }

    #[test]
    fn per_destination_credit_isolation() {
        let mut u = UserEpState::new();
        u.set_translation(0, gep(1, 0), ProtectionKey(1));
        u.set_translation(1, gep(2, 0), ProtectionKey(2));
        u.note_sent(1, 0);
        u.note_sent(2, 1);
        u.note_sent(3, 1);
        assert_eq!(u.outstanding(0), 1);
        assert_eq!(u.outstanding(1), 2);
        assert_eq!(u.outstanding_total(), 3);
    }
}
