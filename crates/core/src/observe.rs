//! The unified cluster observability handle.
//!
//! One entry point — [`crate::cluster::Cluster::telemetry`] — replaces
//! the former grab-bag of `enable_trace` / `trace_text` /
//! `set_debug_audit` and per-component stats spelunking:
//!
//! ```text
//! let tel = cluster.telemetry();
//! let before = tel.snapshot();              // flat metrics snapshot
//! /* ... run ... */
//! let tel = cluster.telemetry();
//! let delta = tel.delta_since(&before);     // counters subtracted
//! println!("{}", delta.to_table());
//! std::fs::write("trace.json", tel.export_perfetto())?;  // ui.perfetto.dev
//! tel.audit()?;                             // invariant check
//! ```
//!
//! Metric names are `host3.nic.retransmits`-style dotted paths: a host
//! scope (`host{N}`), a layer (`nic`, `os`), and the metric's short name
//! as enumerated by its [`MetricSet`]. Cluster-wide sets use a bare layer
//! prefix (`net.packets`, `trace.dropped_events`, `engine.*`).

use crate::cluster::Cluster;
use vnet_sim::telemetry::{MetricValue, MetricsSnapshot, TelemetryHandle};

/// Borrowed observability facade over a [`Cluster`] (see module docs).
///
/// Cheap to construct; holds no state of its own. All mutation goes
/// through interior-mutable handles (the trace ring, the debug-audit
/// flag), so a shared borrow suffices.
pub struct ClusterTelemetry<'a> {
    c: &'a Cluster,
}

impl<'a> ClusterTelemetry<'a> {
    pub(crate) fn new(c: &'a Cluster) -> Self {
        ClusterTelemetry { c }
    }

    /// Whether span/handle telemetry hooks are attached
    /// ([`crate::config::ClusterConfig::telemetry`]). Snapshots work
    /// either way — component stats are always counted; only the
    /// registry metrics and the Perfetto span log need the hooks.
    pub fn enabled(&self) -> bool {
        self.c.world().telemetry.is_some()
    }

    /// The raw telemetry registry handle, when attached (custom metric
    /// registration, direct span emission from test harnesses).
    pub fn handle(&self) -> Option<TelemetryHandle> {
        self.c.world().telemetry.clone()
    }

    /// Flat snapshot of every metric in the cluster at the current
    /// simulated time: per-host stats — `host{N}.nic.*` / `host{N}.os.*`
    /// for full-fidelity hosts, coarse `host{N}.abs.*` counters for
    /// abstract ones — fabric aggregates (`net.*`), engine progress
    /// (`engine.*`), trace-ring drop accounting (`trace.*`), and — when
    /// telemetry hooks are attached — every registry metric and the
    /// span-log drop counter (`telemetry.dropped_spans`).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let w = self.c.world();
        let mut s = MetricsSnapshot::new(self.c.now());
        for h in 0..w.hosts() {
            w.slot(h).record_metrics(h, &mut s);
        }
        s.record_set("net", &w.fabric);
        if let Some(ctl) = &w.control {
            s.record_set("ctl", &**ctl);
            s.record("ctl.quota_denials", MetricValue::Counter(w.quota_denials()));
        }
        s.record("engine.events_processed", MetricValue::Counter(self.c.events_processed()));
        s.record(
            "engine.sim_time_us",
            MetricValue::Gauge(self.c.now().as_micros_f64()),
        );
        s.record("trace.dropped_events", MetricValue::Counter(w.trace.borrow().dropped()));
        if let Some(tel) = &w.telemetry {
            let t = tel.borrow();
            s.record_set("", &*t);
            s.record("telemetry.dropped_spans", MetricValue::Counter(t.dropped_spans()));
        }
        s
    }

    /// Snapshot, minus `earlier`: counters are subtracted (saturating),
    /// gauges and summaries take their later value. The canonical way to
    /// report "what happened during this phase".
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        self.snapshot().delta_since(earlier)
    }

    /// Export the span log as Chrome trace-event / Perfetto JSON; load
    /// at <https://ui.perfetto.dev>. Each host is a process, each layer
    /// track (`nic.chan`, `nic.dma`, `nic.fw`, `os.seg`) a thread;
    /// retransmit/backoff/residency episodes are async spans, NACKs and
    /// faults are instants. An empty (but loadable) trace when telemetry
    /// hooks are detached.
    pub fn export_perfetto(&self) -> String {
        match &self.c.world().telemetry {
            Some(t) => t.borrow().export_chrome_trace(),
            None => "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n]}\n".to_string(),
        }
    }

    /// Check every cross-layer invariant observed so far (exactly-once
    /// delivery, credit conservation, channel discipline, frame
    /// accounting) plus live-state checks. `Err` carries a full report.
    /// Forwards to [`Cluster::audit`].
    pub fn audit(&self) -> Result<(), String> {
        self.c.audit()
    }

    /// Enable the causal trace ring (ring-buffered text records of
    /// residency and protocol transitions; see [`Self::trace_text`]).
    pub fn trace_enable(&self) {
        self.c.world().trace.borrow_mut().enable();
    }

    /// Disable the causal trace ring.
    pub fn trace_disable(&self) {
        self.c.world().trace.borrow_mut().disable();
    }

    /// Render the causal trace collected so far.
    pub fn trace_text(&self) -> String {
        self.c.world().trace.borrow().to_text()
    }

    /// Enable or disable the automatic debug-build invariant audit at
    /// run boundaries. Mutation tests that provoke violations on purpose
    /// disable it and inspect [`Self::audit`] directly.
    pub fn set_debug_audit(&self, on: bool) {
        self.c.set_debug_audit_flag(on);
    }
}
