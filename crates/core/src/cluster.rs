//! The `Cluster` facade: build a simulated cluster, create endpoints and
//! virtual networks, spawn application threads, and run.

use crate::builder::ClusterBuilder;
use crate::config::ClusterConfig;
use crate::control::{ControlPlane, ControlSpec, CtlOp, MigState, QuotaError};
use crate::model::{AbsEvent, AbsStats, AbstractTraffic, Fidelity, OpenLoopSpec};
use crate::names::NameService;
use crate::observe::ClusterTelemetry;
use crate::sys::ThreadBody;
use crate::user::EpQuota;
use crate::world::{ctl_key, Event, HostSlot, World};
use std::cell::Cell;
use vnet_net::{FaultOp, HostId, Packet, Partition, Phase1};
use vnet_nic::{EpId, Frame, GlobalEp, Nic, NicOut, ProtectionKey};
use vnet_os::{OsOut, Scheduler, SegmentDriver, Tid};
use vnet_sim::stats::LogHistogram;
use vnet_sim::{
    run_conservative, AuditHandle, Engine, PairLookahead, ParShard, SendCell, SimDuration,
    SimTime, INGRESS_KEY_BIT,
};

/// Parallel-execution state, present when the configuration asks for more
/// than one shard: the stable host partition, the per-shard-pair lookahead
/// derived from it (sliced by fault-campaign interval), plus one
/// *persistent* engine per shard. Engines persist across runs because
/// events already in a shard's wheel may share `Rc` state with that
/// shard's hosts; the partition never changes, so each host always returns
/// to the engine holding its pending events.
struct Par {
    part: Partition,
    look: PairLookahead,
    engines: Vec<Engine<World>>,
}

/// One worker shard while a parallel run is in flight: the shard's
/// persistent engine plus the world slice owning its hosts.
struct ShardRun {
    engine: Engine<World>,
    world: World,
    part: Partition,
}

impl ParShard for ShardRun {
    // A cross-shard packet: `(canonical ingress key, corrupt, packet)`.
    // Genuinely `Send`: the wire frame's payload is a frozen `Arc`, so
    // crossing the shard boundary moves a pointer, never a copy of the
    // message body.
    type Mail = (u64, bool, Packet<Frame>);

    fn run_until(&mut self, deadline: SimTime) {
        self.engine.run_until(&mut self.world, deadline);
    }

    fn next_at_bound(&self) -> Option<SimTime> {
        self.engine.next_at_bound()
    }

    fn drain_outbox(&mut self, out: &mut Vec<(usize, SimTime, Self::Mail)>) {
        for (at, key, corrupt, pkt) in self.world.outbox.drain(..) {
            let dst = self.part.shard_of(pkt.dst.0) as usize;
            out.push((dst, at, (key, corrupt, pkt)));
        }
    }

    fn ingest(&mut self, at: SimTime, (key, corrupt, pkt): Self::Mail) {
        self.engine.schedule_keyed_at(at, key, Event::Ingress { host: pkt.dst.0, corrupt, pkt });
    }

    fn last_event_at(&self) -> Option<SimTime> {
        self.engine.last_event_at()
    }

    fn now(&self) -> SimTime {
        self.engine.now()
    }

    fn sync_now(&mut self, t: SimTime) {
        self.engine.sync_now(t);
    }
}

/// A complete simulated cluster: engine + composed world.
pub struct Cluster {
    engine: Engine<World>,
    world: World,
    par: Option<Par>,
    names: NameService,
    /// Run [`Cluster::audit`] automatically at every `run_for` /
    /// `run_until` / `settle` boundary in debug builds, panicking on the
    /// first violation (with a trace dump). On by default; mutation tests
    /// that *expect* violations turn it off through
    /// `cluster.telemetry().set_debug_audit(false)` and call
    /// [`Cluster::audit`] themselves. A `Cell` so the shared-borrow
    /// [`ClusterTelemetry`] facade can flip it.
    debug_audit: Cell<bool>,
    /// Last scheduled fault-campaign transition (`SimTime::ZERO` when no
    /// campaign is configured); see [`Cluster::check_recovery`].
    fault_horizon: SimTime,
    /// Largest `P` such that hosts `[0, P)` are all abstract, computed on
    /// first use. Caching it keeps [`Cluster::drive_open_loop`]'s
    /// target-space fidelity check O(hosts) total instead of O(hosts²)
    /// when a fleet drives a population on every host. Fidelity is fixed
    /// at build time, so the cache never invalidates.
    abs_prefix: Cell<Option<u32>>,
}

impl Cluster {
    /// Build a cluster from configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        let world = World::new(cfg);
        let topo = world.fabric.topology();
        let part = Partition::plan(topo, &world.cfg.net, world.cfg.shards);
        // Compile the fault campaign once; it both becomes engine events
        // and slices the per-pair lookahead into validity intervals (a
        // scheduled LinkUp can lower a pair's latency floor).
        let ops = if world.cfg.faults.is_empty() {
            Vec::new()
        } else {
            world.cfg.faults.compile(topo)
        };
        let look = part.pair_lookahead(topo, &world.cfg.net, &ops);
        let par = (part.shards() > 1).then(|| Par {
            engines: (0..part.shards()).map(|_| Engine::new()).collect(),
            part,
            look,
        });
        let mut c = Cluster {
            engine: Engine::new(),
            world,
            par,
            names: NameService::new(),
            debug_audit: Cell::new(true),
            fault_horizon: SimTime::ZERO,
            abs_prefix: Cell::new(None),
        };
        c.schedule_campaign(ops);
        c
    }

    /// Lower the configured fault campaign into engine events: every
    /// transition is scheduled once per `(transition, host)` at its exact
    /// simulated time, keyed above the ingress band so same-instant
    /// ordering against packets is canonical. Each shard world applies
    /// the op on its base host's event (see `Event::Fault`), so the
    /// campaign is byte-identical under any shard count.
    fn schedule_campaign(&mut self, ops: Vec<(SimTime, FaultOp)>) {
        if ops.is_empty() {
            return;
        }
        self.fault_horizon = ops.last().map_or(SimTime::ZERO, |&(t, _)| t);
        let hosts = self.world.hosts() as u32;
        for (i, (at, op)) in ops.into_iter().enumerate() {
            for host in 0..hosts {
                let key = (1 << 63) | (1 << 62) | ((i as u64) << 20) | host as u64;
                self.sched_keyed_at(at, key, Event::Fault { host, op });
            }
        }
    }

    /// The last scheduled fault-campaign transition instant
    /// (`SimTime::ZERO` when no campaign is configured) — the horizon
    /// after which [`Cluster::check_recovery`] demands quiescence.
    pub fn fault_horizon(&self) -> SimTime {
        self.fault_horizon
    }

    /// Check the bounded time-to-recovery invariant: every message posted
    /// to the delivery ledger must have reached a terminal fate (acked,
    /// returned to sender, or dropped pre-binding) by the fault horizon
    /// plus `bound`. Call after the run; violations land in the auditor
    /// and surface through [`Cluster::audit`]. A no-op while `now` is
    /// still inside the grace window.
    pub fn check_recovery(&self, bound: SimDuration) {
        self.world.auditor.borrow_mut().check_recovery(self.now(), self.fault_horizon, bound);
    }

    /// Number of worker shards the cluster actually runs with (after
    /// clamping the configured count to what the topology supports).
    pub fn shards(&self) -> u32 {
        self.par.as_ref().map_or(1, |p| p.part.shards())
    }

    /// Fluent construction: `Cluster::builder().hosts(32).telemetry(true)
    /// .build()`. See [`ClusterBuilder`].
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::new()
    }

    /// The unified observability handle: metrics snapshots and deltas,
    /// Perfetto span export, trace-ring control, and the invariant audit
    /// — one facade over what used to be scattered across `enable_trace`,
    /// `trace_text`, `set_debug_audit`, and per-component stats access.
    pub fn telemetry(&self) -> ClusterTelemetry<'_> {
        ClusterTelemetry::new(self)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Total events processed (summed over every shard engine when the
    /// parallel executor is active).
    pub fn events_processed(&self) -> u64 {
        let par: u64 = self
            .par
            .iter()
            .flat_map(|p| p.engines.iter())
            .map(|e| e.events_processed())
            .sum();
        self.engine.events_processed() + par
    }

    /// Events still queued across every engine.
    fn queue_len(&self) -> usize {
        let par: usize =
            self.par.iter().flat_map(|p| p.engines.iter()).map(|e| e.queue_len()).sum();
        self.engine.queue_len() + par
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.world.hosts()
    }

    /// The composed world (full component access for instrumentation).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable world access (fault injection, pageout control).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Handle on the cluster-wide invariant auditor (counters, message
    /// fates, raw violation records).
    pub fn auditor(&self) -> AuditHandle {
        self.world.auditor.clone()
    }

    pub(crate) fn set_debug_audit_flag(&self, on: bool) {
        self.debug_audit.set(on);
    }

    /// Check every cross-layer invariant observed so far: exactly-once
    /// delivery, credit conservation, stop-and-wait channel discipline,
    /// and endpoint frame accounting. Returns `Err` with a full report —
    /// named violations plus a trace dump — on the first check that fails.
    ///
    /// Also validates the *live* state (not just the event history): the
    /// number of resident endpoints on each NIC can never exceed its frame
    /// count.
    pub fn audit(&self) -> Result<(), String> {
        let a = self.world.auditor.borrow();
        let mut report = String::new();
        if a.has_violations() {
            use std::fmt::Write;
            let _ = writeln!(
                report,
                "invariant audit failed: {} violation(s) (showing {}):",
                a.total_violations(),
                a.violations().len()
            );
            for v in a.violations() {
                let _ = writeln!(report, "  {v}");
            }
        }
        for h in 0..self.world.hosts() {
            // Live checks apply to full-fidelity hosts only; abstract
            // hosts have no NIC residency machine to violate.
            let Some(nic) = self.world.try_nic(h) else { continue };
            let frames = nic.config().frames;
            let resident = nic.resident_count();
            if resident > frames as usize {
                use std::fmt::Write;
                let _ = writeln!(
                    report,
                    "live check failed: h{h} has {resident} resident endpoints in {frames} frames"
                );
            }
        }
        if report.is_empty() {
            return Ok(());
        }
        let trace = self.world.trace.borrow();
        if trace.is_enabled() {
            report.push_str("trace (most recent last):\n");
            report.push_str(&trace.to_text());
        } else {
            report.push_str(
                "(trace disabled; call cluster.telemetry().trace_enable() for event context)\n",
            );
        }
        Err(report)
    }

    fn debug_audit_check(&self) {
        if cfg!(debug_assertions) && self.debug_audit.get() {
            if let Err(report) = self.audit() {
                panic!("{report}");
            }
        }
    }

    /// The NIC of `host` (panics on an abstract-fidelity host).
    pub fn nic(&self, host: HostId) -> &Nic {
        self.world.nic(host.idx())
    }

    /// The segment driver of `host` (panics on an abstract-fidelity host).
    pub fn os(&self, host: HostId) -> &SegmentDriver {
        self.world.os(host.idx())
    }

    /// The thread scheduler of `host` (panics on an abstract-fidelity
    /// host).
    pub fn sched(&self, host: HostId) -> &Scheduler {
        self.world.sched(host.idx())
    }

    /// The fidelity class of `host`.
    pub fn fidelity_of(&self, host: HostId) -> Fidelity {
        self.world.fidelity_of(host.idx())
    }

    /// Coarse traffic counters of an abstract host (`None` for
    /// full-fidelity hosts — read their NIC/OS stats instead).
    pub fn abs_stats(&self, host: HostId) -> Option<AbsStats> {
        self.world.abs_stats(host.idx()).copied()
    }

    /// Install a synthetic traffic pattern on an abstract host and start
    /// driving it. Panics unless `host` and every peer are
    /// [`Fidelity::Abstract`]: abstract traffic is forged wire frames
    /// with no endpoint protocol behind them, so a full-fidelity receiver
    /// would reject them (and a full host cannot source them). Coupling
    /// with full-fidelity hosts happens through the shared fabric, where
    /// abstract frames reserve links exactly like real ones.
    pub fn drive_abstract(&mut self, host: HostId, traffic: AbstractTraffic) {
        assert_eq!(
            self.world.fidelity_of(host.idx()),
            Fidelity::Abstract,
            "drive_abstract: {host} is full-fidelity; spawn threads instead"
        );
        for p in &traffic.peers {
            assert_eq!(
                self.world.fidelity_of(p.idx()),
                Fidelity::Abstract,
                "drive_abstract: peer {p} of {host} is full-fidelity; abstract \
                 traffic may only target abstract hosts"
            );
        }
        assert!(!traffic.peers.is_empty(), "drive_abstract: no peers");
        self.world
            .abstract_host_mut(host.idx())
            .expect("fidelity checked above")
            .set_traffic(traffic);
        self.sched_ev(SimDuration::ZERO, Event::Abs { host: host.0, ev: AbsEvent::Tick });
    }

    /// Install an open-loop client population on an abstract host and
    /// start its arrival streams (see [`OpenLoopSpec`]): requests arrive
    /// by Poisson process regardless of how far behind the host CPU is,
    /// target hosts by rotated Zipf rank, and carry bounded-Pareto
    /// payloads. Panics unless `host` and every host in the target space
    /// `[0, spec.targets)` are [`Fidelity::Abstract`] — like
    /// [`Cluster::drive_abstract`], open-loop traffic is forged wire
    /// frames only another abstract NIC may receive.
    pub fn drive_open_loop(&mut self, host: HostId, spec: OpenLoopSpec) {
        assert_eq!(
            self.world.fidelity_of(host.idx()),
            Fidelity::Abstract,
            "drive_open_loop: {host} is full-fidelity; spawn threads instead"
        );
        assert!(
            spec.targets as usize <= self.world.hosts(),
            "drive_open_loop: target space [0, {}) exceeds the {}-host cluster",
            spec.targets,
            self.world.hosts()
        );
        let abs_prefix = self.abs_prefix.get().unwrap_or_else(|| {
            let p = (0..self.world.hosts())
                .position(|h| self.world.fidelity_of(h) != Fidelity::Abstract)
                .unwrap_or(self.world.hosts()) as u32;
            self.abs_prefix.set(Some(p));
            p
        });
        assert!(
            spec.targets <= abs_prefix,
            "drive_open_loop: target host {abs_prefix} is full-fidelity; open-loop \
             requests may only target abstract hosts"
        );
        let delays = self
            .world
            .abstract_host_mut(host.idx())
            .expect("fidelity checked above")
            .start_open_loop(spec);
        for (stream, d) in delays.into_iter().enumerate() {
            self.sched_ev(d, Event::Abs {
                host: host.0,
                ev: AbsEvent::Arrive { stream: stream as u32 },
            });
        }
    }

    /// Fold every abstract host's served-request latency histogram into
    /// one cluster-wide [`LogHistogram`] (arrival at the source → `o_r`
    /// cleared at the server). Host-order accumulation of a commutative
    /// merge: byte-identical for any shard count or epoch driver.
    pub fn open_loop_latency(&self) -> LogHistogram {
        let mut all = LogHistogram::default();
        for h in 0..self.world.hosts() {
            if let HostSlot::Abstract(a) = self.world.slot(h) {
                if let Some(l) = a.request_latency() {
                    all.absorb(l);
                }
            }
        }
        all
    }

    /// Open-loop requests not yet emitted, summed across hosts (zero
    /// once every driven population has drained).
    pub fn open_loop_remaining(&self) -> u64 {
        (0..self.world.hosts())
            .map(|h| match self.world.slot(h) {
                HostSlot::Abstract(a) => a.open_loop_remaining(),
                HostSlot::Full(_) => 0,
            })
            .sum()
    }

    // ------------------------------------------------------------- setup

    /// Allocate an endpoint on `host` (registers with the NIC; starts
    /// non-resident in the on-host r/o state).
    pub fn create_endpoint(&mut self, host: HostId) -> GlobalEp {
        let now = self.engine.now();
        let (gep, outs) = self.world.create_endpoint_raw(now, host.idx());
        self.apply_os_ext(host.idx(), outs);
        gep
    }

    /// Register an endpoint under a well-known name (§3.1 rendezvous:
    /// "the names can be obtained by any rendezvous mechanism").
    pub fn register_name(&mut self, name: impl Into<String>, ep: GlobalEp) {
        self.names.register(name, ep);
    }

    /// Resolve a well-known name.
    pub fn lookup_name(&mut self, name: &str) -> Option<GlobalEp> {
        self.names.lookup(name)
    }

    /// Resolve a name and install it in `from`'s translation table —
    /// the full §3.1 flow: rendezvous, then endpoint-relative addressing.
    pub fn connect_by_name(&mut self, from: GlobalEp, idx: usize, name: &str) -> bool {
        match self.names.lookup(name) {
            Some(dst) => {
                self.connect(from, idx, dst);
                true
            }
            None => false,
        }
    }

    /// Install translation `idx → dst` (with dst's key) on endpoint `from`.
    pub fn connect(&mut self, from: GlobalEp, idx: usize, dst: GlobalEp) {
        let key = self.world.keys.get(&dst).copied().unwrap_or_default();
        self.world.user_entry(from.host.idx(), from.ep).set_translation(idx, dst, key);
    }

    /// Build a virtual network over `eps` (§3.1): every endpoint gets a
    /// translation table addressing every member by its slice index —
    /// "traditional virtual node number addressing in parallel programs is
    /// easily realized with this approach".
    pub fn build_virtual_network(&mut self, eps: &[GlobalEp]) {
        for (i, &a) in eps.iter().enumerate() {
            for (j, &b) in eps.iter().enumerate() {
                if i != j {
                    self.connect(a, j, b);
                }
            }
        }
    }

    /// Destroy an endpoint (process termination, §4.2): the driver
    /// synchronizes de-allocation with the NIC (quiescing first if it is
    /// resident) and unregisters it; late messages addressed to it return
    /// to their senders as undeliverable.
    pub fn destroy_endpoint(&mut self, ep: GlobalEp) {
        let now = self.engine.now();
        let h = ep.host.idx();
        let mut outs = Vec::new();
        self.world.os_mut(h).free_endpoint(now, ep.ep, &mut outs);
        self.world.keys.remove(&ep);
        self.world.user_remove(h, ep.ep);
        self.world.auditor.borrow_mut().on_endpoint_destroyed(ep.host.0, ep.ep.0);
        self.apply_os_ext(h, outs);
    }

    /// Spawn an application thread on `host`. Returns its id (per-host).
    pub fn spawn_thread(&mut self, host: HostId, body: Box<dyn ThreadBody>) -> Tid {
        let tid = self.world.spawn_thread_raw(host.idx(), body);
        let now = self.engine.now();
        if let Some((d, ev)) = self.world.prep_cpu_kick(host.idx(), now) {
            self.sched_ev(d, ev);
        }
        tid
    }

    /// Downcast access to a thread body (results extraction after a run).
    pub fn body<T: ThreadBody>(&self, host: HostId, tid: Tid) -> Option<&T> {
        self.world.body::<T>(host.idx(), tid)
    }

    /// Mutable downcast access to a thread body.
    pub fn body_mut<T: ThreadBody>(&mut self, host: HostId, tid: Tid) -> Option<&mut T> {
        self.world.body_mut::<T>(host.idx(), tid)
    }

    // --------------------------------------------------------------- run

    /// Run for `d` of simulated time. In debug builds the invariant audit
    /// runs at the boundary (see [`Cluster::audit`]).
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let deadline = self.engine.now() + d;
        let n = self.run_to(deadline);
        self.post_run();
        n
    }

    /// Run until `deadline`. Debug builds audit at the boundary.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let n = self.run_to(deadline);
        self.post_run();
        n
    }

    /// Run until the event queue drains (only sensible before threads with
    /// infinite loops are spawned, or after they all exit). Debug builds
    /// audit at the boundary.
    pub fn settle(&mut self) -> u64 {
        let n = self.run_to(SimTime::MAX);
        self.post_run();
        n
    }

    /// Advance to `deadline` on whichever executor the configuration
    /// selected; returns the number of events processed.
    ///
    /// The parallel path splits the world into per-shard worlds, marries
    /// each to its persistent engine, runs the conservative epoch protocol
    /// on scoped worker threads, then absorbs the shards back and snaps
    /// the facade clock to the merged final time. Every split/absorb step
    /// is deterministic, so results are byte-identical to the sequential
    /// path for any shard count.
    fn run_to(&mut self, deadline: SimTime) -> u64 {
        match &mut self.par {
            None => self.engine.run_until(&mut self.world, deadline),
            Some(par) => {
                let before: u64 = par.engines.iter().map(|e| e.events_processed()).sum();
                let worlds = self.world.split_shards(&par.part);
                let mut shards: Vec<SendCell<ShardRun>> = worlds
                    .into_iter()
                    .zip(par.engines.drain(..))
                    .map(|(world, engine)| {
                        // SAFETY: the shard world + its engine's pending
                        // events form one closed `Rc` graph (cross-shard
                        // frames share only atomically counted frozen
                        // payloads, hosts always return to the same
                        // shard), and the executor runs each shard on
                        // exactly one thread at a time.
                        unsafe {
                            SendCell::new(ShardRun { engine, world, part: par.part.clone() })
                        }
                    })
                    .collect();
                let final_now = run_conservative(&mut shards, &par.look, deadline);
                let mut worlds = Vec::with_capacity(shards.len());
                for cell in shards {
                    let ShardRun { engine, world, .. } = cell.into_inner();
                    par.engines.push(engine);
                    worlds.push(world);
                }
                // The executor's final-epoch elision may leave cross-shard
                // mail in shard outboxes — all of it timestamped past the
                // deadline, destined for the next run slice. Relay it into
                // the owning engines here (keyed, so order is canonical)
                // before the absorb's outbox-empty check.
                for world in &mut worlds {
                    for (at, key, corrupt, pkt) in world.outbox.drain(..) {
                        debug_assert!(at > deadline, "undelivered mail within the deadline");
                        let s = par.part.shard_of(pkt.dst.0) as usize;
                        par.engines[s].schedule_keyed_at(
                            at,
                            key,
                            Event::Ingress { host: pkt.dst.0, corrupt, pkt },
                        );
                    }
                }
                self.world.absorb_shards(worlds, &par.part);
                self.engine.sync_now(final_now);
                let after: u64 = par.engines.iter().map(|e| e.events_processed()).sum();
                after - before
            }
        }
    }

    /// Run-boundary bookkeeping shared by both executors: put the trace
    /// ring and the violation list into canonical `(time, host)` order —
    /// so reads are identical however the run was executed — then run the
    /// debug-build audit.
    fn post_run(&mut self) {
        self.world.trace.borrow_mut().canonicalize();
        self.world.auditor.borrow_mut().canonicalize_violations();
        self.sync_ctl_keys();
        self.debug_audit_check();
    }

    /// Re-derive the main world's protection-key table from the adopted
    /// control plane. Shard worlds clone the table at split and their
    /// mid-run mutations (a migration creating the destination incarnation
    /// and retiring the source one) are dropped at absorb, so without this
    /// the sequential and sharded tables would disagree at the next run
    /// slice — and `reply_key` lookups with them. Idempotent on the
    /// sequential path, where `ctl_local` already mutated the table live.
    fn sync_ctl_keys(&mut self) {
        let Some(ctl) = self.world.control.as_deref() else { return };
        let add: Vec<(GlobalEp, ProtectionKey)> =
            ctl.placements().map(|(_, m)| (m.gep(), m.key)).collect();
        let drop: Vec<GlobalEp> = ctl
            .migrations()
            .filter(|(_, m)| m.state == MigState::Done)
            .map(|(_, m)| GlobalEp::new(HostId(m.from), m.from_ep))
            .collect();
        for gep in drop {
            self.world.keys.remove(&gep);
        }
        for (gep, k) in add {
            self.world.keys.insert(gep, k);
        }
    }

    /// Schedule a setup-path event on the engine owning its target host.
    fn sched_ev(&mut self, d: SimDuration, ev: Event) {
        let at = self.engine.now() + d;
        match &mut self.par {
            None => {
                self.engine.schedule_at(at, ev);
            }
            Some(par) => {
                let s = par.part.shard_of(ev.target_host()) as usize;
                par.engines[s].schedule_at(at, ev);
            }
        }
    }

    /// Keyed variant of [`Cluster::sched_ev`] for canonical ingress events.
    fn sched_keyed_at(&mut self, at: SimTime, key: u64, ev: Event) {
        match &mut self.par {
            None => {
                self.engine.schedule_keyed_at(at, key, ev);
            }
            Some(par) => {
                let s = par.part.shard_of(ev.target_host()) as usize;
                par.engines[s].schedule_keyed_at(at, key, ev);
            }
        }
    }

    // ----------------------------------------------- external effect glue

    fn apply_os_ext(&mut self, host: usize, outs: Vec<OsOut>) {
        let now = self.engine.now();
        for o in outs {
            match o {
                OsOut::Nic(op) => {
                    let mut nic_outs = Vec::new();
                    self.world.nic_mut(host).driver_request(now, op, &mut nic_outs);
                    self.apply_nic_ext(host, nic_outs);
                }
                OsOut::Wake(tid) => {
                    self.sched_ev(SimDuration::ZERO, Event::WakeThread { host: host as u32, tid });
                }
                OsOut::After(d, ev) => {
                    self.sched_ev(d, Event::Os { host: host as u32, ev });
                }
            }
        }
    }

    fn apply_nic_ext(&mut self, host: usize, outs: Vec<NicOut>) {
        let now = self.engine.now();
        for o in outs {
            match o {
                NicOut::After(d, ev) => {
                    self.sched_ev(d, Event::Nic { host: host as u32, ev });
                }
                NicOut::Inject(pkt) => match self.world.fabric.inject_src(now, pkt) {
                    Phase1::Ingress { at, seq, corrupt, pkt } => {
                        let key = INGRESS_KEY_BIT | ((pkt.src.0 as u64) << 40) | seq;
                        self.sched_keyed_at(
                            at,
                            key,
                            Event::Ingress { host: pkt.dst.0, corrupt, pkt },
                        );
                    }
                    Phase1::Dropped { .. } => {}
                },
                NicOut::Driver(msg) => {
                    self.sched_ev(SimDuration::ZERO, Event::DriverMsg { host: host as u32, msg });
                }
            }
        }
    }

    /// Force `ep` resident and wait for the remap pipeline to finish —
    /// used by microbenchmarks that measure the steady state (§6.1 runs
    /// with warmed endpoints).
    pub fn make_resident(&mut self, ep: GlobalEp) {
        let h = ep.host.idx();
        let now = self.engine.now();
        let mut outs = Vec::new();
        self.world.os_mut(h).proxy_fault(now, ep.ep, &mut outs);
        self.apply_os_ext(h, outs);
        // Bounded settle: the remap takes well under 50 ms on an idle node.
        let deadline = self.engine.now() + SimDuration::from_millis(50);
        while !self.world.nic(h).is_resident(ep.ep) && self.engine.now() < deadline {
            let step = self.engine.now() + SimDuration::from_micros(100);
            self.run_to(step);
            if self.queue_len() == 0 && !self.world.nic(h).is_resident(ep.ep) {
                // Queue drained without the load completing — nothing more
                // will happen spontaneously.
                break;
            }
        }
        assert!(
            self.world.nic(h).is_resident(ep.ep),
            "make_resident failed for {ep}: remap pipeline stalled"
        );
    }

    // ----------------------------------------------------- control plane

    /// Install the multi-tenant control plane: the coordinator owns
    /// endpoint allocation, per-tenant quotas, and live migration from
    /// here on. Registers every tenant with the auditor (byte-conservation
    /// checking) and broadcasts the bootstrap reconcile tick to every
    /// host, so the reconcile loop runs as ordinary keyed wheel events —
    /// byte-identical sequential vs sharded. Call once, before running.
    pub fn install_control(&mut self, spec: ControlSpec) {
        assert!(self.world.control.is_none(), "control plane already installed");
        let plane = ControlPlane::new(spec, self.world.cfg.seed);
        {
            let mut a = self.world.auditor.borrow_mut();
            for (i, t) in plane.spec.tenants.iter().enumerate() {
                a.register_tenant(i as u32, &t.name, t.bytes_per_epoch, plane.spec.epoch);
            }
        }
        let first = plane.spec.first_tick;
        let hosts = self.world.hosts() as u32;
        self.world.control = Some(Box::new(plane));
        for h in 0..hosts {
            self.sched_keyed_at(
                first,
                ctl_key(0, h),
                Event::Ctl { host: h, kseq: 0, op: CtlOp::Tick { seq: 0 } },
            );
        }
    }

    /// The coordinator's replicated state (placements, migration records,
    /// convergence lag, counters). `None` before [`Self::install_control`].
    pub fn control(&self) -> Option<&ControlPlane> {
        self.world.control.as_deref()
    }

    /// Coordinator-owned service endpoint for `tenant` on `host`: counts
    /// against the tenant's endpoint quota, gets a coordinator-assigned id
    /// and key, and is *managed* — the reconcile loop may migrate it to
    /// another host (spawning a fresh service thread from the tenant's
    /// factory at the new residence). Returns `(vid, ep)`.
    pub fn ctl_create_service(
        &mut self,
        tenant: u32,
        host: HostId,
    ) -> Result<(u32, GlobalEp), QuotaError> {
        let now = self.engine.now();
        let ctl = self.world.control.as_mut().expect("install_control first");
        let (vid, ep, key) = ctl.alloc_endpoint(tenant, host.0, true)?;
        let factory = ctl.spec.tenants[tenant as usize].factory.clone();
        let h = host.idx();
        let mut outs = Vec::new();
        self.world.os_mut(h).create_endpoint_with_id(now, ep, key, &mut outs);
        self.world.user_entry(h, ep);
        let gep = GlobalEp::new(host, ep);
        self.world.keys.insert(gep, key);
        self.world.auditor.borrow_mut().bind_tenant(host.0, ep.0, tenant);
        self.apply_os_ext(h, outs);
        let tid = self.world.spawn_thread_raw(h, factory(gep));
        self.world.note_ctl_thread(h, ep, tid);
        if let Some((d, ev)) = self.world.prep_cpu_kick(h, now) {
            self.sched_ev(d, ev);
        }
        Ok((vid, gep))
    }

    /// Coordinator-owned client endpoint for `tenant` on `host`: counts
    /// against the endpoint quota and carries the tenant's per-endpoint
    /// byte budget — sends past it fail with
    /// [`crate::sys::SendError::QuotaExceeded`] until the next epoch.
    /// Clients are never migrated (pinned), which keeps tenant byte
    /// accounting exact across migrations. Returns `(vid, ep)`.
    pub fn ctl_create_client(
        &mut self,
        tenant: u32,
        host: HostId,
    ) -> Result<(u32, GlobalEp), QuotaError> {
        let now = self.engine.now();
        let ctl = self.world.control.as_mut().expect("install_control first");
        let (vid, ep, key) = ctl.alloc_endpoint(tenant, host.0, false)?;
        let budget = ctl.per_ep_budget(tenant);
        let epoch_nanos = ctl.spec.epoch.as_nanos().max(1);
        let h = host.idx();
        let mut outs = Vec::new();
        self.world.os_mut(h).create_endpoint_with_id(now, ep, key, &mut outs);
        self.world.user_entry(h, ep).quota = Some(EpQuota {
            tenant,
            bytes_per_epoch: budget,
            epoch_nanos,
            used: 0,
            epoch_idx: 0,
            denied: 0,
        });
        let gep = GlobalEp::new(host, ep);
        self.world.keys.insert(gep, key);
        self.world.auditor.borrow_mut().bind_tenant(host.0, ep.0, tenant);
        self.apply_os_ext(h, outs);
        Ok((vid, gep))
    }

    /// Broker a client→service connection through the coordinator: checks
    /// the target tenant's bound-channel quota, records the connection for
    /// migration-time retargeting, and installs the translation on the
    /// client endpoint.
    pub fn ctl_connect(
        &mut self,
        client_vid: u32,
        idx: usize,
        target_vid: u32,
    ) -> Result<(), QuotaError> {
        let ctl = self.world.control.as_mut().expect("install_control first");
        let (ch, cep) = ctl
            .managed(client_vid)
            .map(|m| (m.host, m.ep))
            .ok_or(QuotaError::UnknownVid(client_vid))?;
        ctl.bind_connection(client_vid, idx, target_vid)?;
        let t = ctl.managed(target_vid).expect("bind_connection validated the target");
        let (target, key) = (t.gep(), t.key);
        self.world.user_entry(ch as usize, cep).set_translation(idx, target, key);
        Ok(())
    }

    /// Ask the coordinator to live-migrate managed endpoint `vid` —
    /// optionally to a specific destination, otherwise to a host of the
    /// coordinator's choosing. Picked up at the next reconcile tick; the
    /// four-phase protocol (drain → create → retarget → finish) then runs
    /// under whatever traffic is in flight.
    pub fn ctl_request_migration(&mut self, vid: u32, dst: Option<HostId>) {
        self.world
            .control
            .as_mut()
            .expect("install_control first")
            .request_migration(vid, dst.map(|h| h.0));
    }

    /// Check the bounded time-to-convergence invariant: the coordinator
    /// must never have been diverged (in-flight migrations, or services
    /// placed on down hosts) for longer than `bound`, and must not be
    /// diverged older than `bound` right now. Violations land in the
    /// auditor and surface through [`Cluster::audit`]. A no-op before
    /// [`Self::install_control`].
    pub fn check_reconverged(&self, bound: SimDuration) {
        let Some(ctl) = self.world.control.as_deref() else { return };
        self.world.auditor.borrow_mut().check_reconverged(
            self.now(),
            ctl.diverged_since,
            ctl.worst_lag,
            bound,
        );
    }

    /// Force the least-recently-active paged-in endpoint on `host` out to
    /// disk (§4 pageout). Returns the victim, or `None` when nothing is
    /// eligible. Test hook for residency churn under traffic.
    pub fn force_pageout_lru(&mut self, host: HostId) -> Option<EpId> {
        self.world.os_mut(host.idx()).pageout_lru()
    }
}

/// Convenience: an endpoint id paired with its host for terser test code.
pub fn local(ep: GlobalEp) -> EpId {
    ep.ep
}

/// A process: a host, the endpoints it owns, and its threads — the unit
/// of teardown (§4.2: "Process termination automatically invokes segment
/// driver methods to free segments").
#[derive(Debug, Clone)]
pub struct Process {
    /// Hosting node.
    pub host: HostId,
    /// Endpoints owned by the process.
    pub endpoints: Vec<GlobalEp>,
    /// Threads belonging to the process.
    pub threads: Vec<Tid>,
}

impl Process {
    /// An empty process on `host`.
    pub fn new(host: HostId) -> Self {
        Process { host, endpoints: Vec::new(), threads: Vec::new() }
    }
}

impl Cluster {
    /// Create an endpoint owned by `proc`.
    pub fn create_process_endpoint(&mut self, proc_: &mut Process) -> GlobalEp {
        let ep = self.create_endpoint(proc_.host);
        proc_.endpoints.push(ep);
        ep
    }

    /// Spawn a thread owned by `proc`.
    pub fn spawn_process_thread(&mut self, proc_: &mut Process, body: Box<dyn ThreadBody>) -> Tid {
        let tid = self.spawn_thread(proc_.host, body);
        proc_.threads.push(tid);
        tid
    }

    /// Terminate a process: stop its threads and free every endpoint it
    /// owns. The driver synchronizes de-allocation with the NIC; traffic
    /// addressed to the dead endpoints returns to its senders (§3.2).
    pub fn exit_process(&mut self, proc_: &Process) {
        for &ep in &proc_.endpoints {
            self.destroy_endpoint(ep);
        }
        for &tid in &proc_.threads {
            self.world.kill_thread(proc_.host.idx(), tid);
        }
        // Let the scheduler observe the exits.
        let now = self.engine.now();
        if let Some((d, ev)) = self.world.prep_cpu_kick(proc_.host.idx(), now) {
            self.sched_ev(d, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::sys::{Step, Sys};
    use vnet_nic::QueueSel;

    struct Echo {
        ep: EpId,
        served: u64,
    }

    impl ThreadBody for Echo {
        fn run(&mut self, sys: &mut Sys<'_>) -> Step {
            while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
                self.served += 1;
                let _ = sys.reply(self.ep, &m, 0, [m.msg.args[0] * 2, 0, 0, 0], 0);
            }
            Step::WaitEvent(self.ep)
        }
    }

    struct Pinger {
        ep: EpId,
        to_send: u32,
        sent: u32,
        replies: u32,
        last_answer: u64,
    }

    impl ThreadBody for Pinger {
        fn run(&mut self, sys: &mut Sys<'_>) -> Step {
            while self.sent < self.to_send {
                match sys.request(self.ep, 1, 1, [self.sent as u64 + 1, 0, 0, 0], 0) {
                    Ok(_) => self.sent += 1,
                    Err(crate::sys::SendError::NoCredit) => break,
                    Err(crate::sys::SendError::WouldBlock) => return Step::WaitResident(self.ep),
                    Err(e) => panic!("send failed: {e:?}"),
                }
            }
            while let Some(m) = sys.poll(self.ep, QueueSel::Reply) {
                assert!(!m.undeliverable);
                self.replies += 1;
                self.last_answer = m.msg.args[0];
            }
            if self.replies == self.to_send {
                Step::Exit
            } else {
                Step::WaitEvent(self.ep)
            }
        }
    }

    #[test]
    fn request_reply_round_trips() {
        let mut c = Cluster::new(ClusterConfig::now(2));
        let a = c.create_endpoint(HostId(0));
        let b = c.create_endpoint(HostId(1));
        c.build_virtual_network(&[a, b]);
        c.spawn_thread(HostId(1), Box::new(Echo { ep: b.ep, served: 0 }));
        let pinger = c.spawn_thread(
            HostId(0),
            Box::new(Pinger { ep: a.ep, to_send: 10, sent: 0, replies: 0, last_answer: 0 }),
        );
        c.run_for(SimDuration::from_millis(100));
        let p: &Pinger = c.body(HostId(0), pinger).unwrap();
        assert_eq!(p.replies, 10, "all replies must arrive");
        assert_eq!(p.last_answer, 20, "handler computed 10 * 2");
        // Both endpoints were faulted in on demand.
        assert!(c.nic(HostId(0)).is_resident(a.ep));
        assert!(c.nic(HostId(1)).is_resident(b.ep));
        assert!(c.telemetry().snapshot().counter("host0.os.loads") >= 1);
    }

    #[test]
    fn credits_cap_outstanding_requests() {
        struct Blaster {
            ep: EpId,
            hit_no_credit: bool,
            accepted: u32,
        }
        impl ThreadBody for Blaster {
            fn run(&mut self, sys: &mut Sys<'_>) -> Step {
                loop {
                    match sys.request(self.ep, 1, 1, [0; 4], 0) {
                        Ok(_) => self.accepted += 1,
                        Err(crate::sys::SendError::NoCredit) => {
                            self.hit_no_credit = true;
                            return Step::Exit;
                        }
                        Err(_) => return Step::Yield,
                    }
                    if self.accepted > 100 {
                        return Step::Exit;
                    }
                }
            }
        }
        let mut c = Cluster::new(ClusterConfig::now(2));
        let a = c.create_endpoint(HostId(0));
        let b = c.create_endpoint(HostId(1));
        c.build_virtual_network(&[a, b]);
        // No server thread: replies never come, so credits never recover.
        let t = c.spawn_thread(
            HostId(0),
            Box::new(Blaster { ep: a.ep, hit_no_credit: false, accepted: 0 }),
        );
        c.run_for(SimDuration::from_millis(50));
        let bl: &Blaster = c.body(HostId(0), t).unwrap();
        assert!(bl.hit_no_credit, "the 32-credit window must close");
        assert_eq!(bl.accepted, 32, "exactly one window of requests accepted");
    }

    #[test]
    fn make_resident_preloads() {
        let mut c = Cluster::new(ClusterConfig::now(2));
        let a = c.create_endpoint(HostId(0));
        assert!(!c.nic(HostId(0)).is_resident(a.ep));
        c.make_resident(a);
        assert!(c.nic(HostId(0)).is_resident(a.ep));
    }

    #[test]
    fn open_loop_drains_and_records_latency() {
        let mut c = Cluster::builder()
            .hosts(8)
            .default_fidelity(Fidelity::Abstract)
            .fabric_fidelity(Fidelity::Abstract)
            .seed(11)
            .build();
        let spec = OpenLoopSpec {
            streams: 2,
            mean_gap: SimDuration::from_micros(50),
            requests: 40,
            zipf_s: 1.0,
            targets: 8,
            size_min: 64,
            size_max: 4096,
            size_alpha: 1.3,
        };
        for h in 0..4 {
            c.drive_open_loop(HostId(h), spec.clone());
        }
        assert_eq!(c.open_loop_remaining(), 160);
        c.run_for(SimDuration::from_millis(50));
        assert_eq!(c.open_loop_remaining(), 0, "all arrivals fired");
        let lat = c.open_loop_latency();
        assert_eq!(lat.count(), 160, "every request was served and timed");
        // o_s + wire + o_r floors the latency well above a microsecond.
        assert!(lat.quantile_bound(0.5) > 1_000, "p50 bound {}", lat.quantile_bound(0.5));
        let sent: u64 = (0..8).map(|h| c.abs_stats(HostId(h)).unwrap().sent).sum();
        assert_eq!(sent, 160);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| -> (u64, u64) {
            let mut c = Cluster::new(ClusterConfig::now(2).with_seed(seed));
            let a = c.create_endpoint(HostId(0));
            let b = c.create_endpoint(HostId(1));
            c.build_virtual_network(&[a, b]);
            c.spawn_thread(HostId(1), Box::new(Echo { ep: b.ep, served: 0 }));
            c.spawn_thread(
                HostId(0),
                Box::new(Pinger { ep: a.ep, to_send: 20, sent: 0, replies: 0, last_answer: 0 }),
            );
            c.run_for(SimDuration::from_millis(20));
            (c.events_processed(), c.now().as_nanos())
        };
        assert_eq!(run(7), run(7), "identical seeds give identical runs");
    }
}
