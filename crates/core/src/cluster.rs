//! The `Cluster` facade: build a simulated cluster, create endpoints and
//! virtual networks, spawn application threads, and run.

use crate::builder::ClusterBuilder;
use crate::config::ClusterConfig;
use crate::names::NameService;
use crate::observe::ClusterTelemetry;
use crate::sys::ThreadBody;
use crate::world::{Event, World};
use std::cell::Cell;
use vnet_net::HostId;
use vnet_nic::{EpId, GlobalEp, Nic, NicOut};
use vnet_os::{OsOut, Scheduler, SegmentDriver, Tid};
use vnet_sim::{AuditHandle, Engine, SimDuration, SimTime};

/// A complete simulated cluster: engine + composed world.
pub struct Cluster {
    engine: Engine<World>,
    world: World,
    names: NameService,
    /// Run [`Cluster::audit`] automatically at every `run_for` /
    /// `run_until` / `settle` boundary in debug builds, panicking on the
    /// first violation (with a trace dump). On by default; mutation tests
    /// that *expect* violations turn it off through
    /// `cluster.telemetry().set_debug_audit(false)` and call
    /// [`Cluster::audit`] themselves. A `Cell` so the shared-borrow
    /// [`ClusterTelemetry`] facade can flip it.
    debug_audit: Cell<bool>,
}

impl Cluster {
    /// Build a cluster from configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        Cluster {
            engine: Engine::new(),
            world: World::new(cfg),
            names: NameService::new(),
            debug_audit: Cell::new(true),
        }
    }

    /// Fluent construction: `Cluster::builder().hosts(32).telemetry(true)
    /// .build()`. See [`ClusterBuilder`].
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::new()
    }

    /// The unified observability handle: metrics snapshots and deltas,
    /// Perfetto span export, trace-ring control, and the invariant audit
    /// — one facade over what used to be scattered across `enable_trace`,
    /// `trace_text`, `set_debug_audit`, and per-component stats access.
    pub fn telemetry(&self) -> ClusterTelemetry<'_> {
        ClusterTelemetry::new(self)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Total events processed.
    pub fn events_processed(&self) -> u64 {
        self.engine.events_processed()
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.world.hosts()
    }

    /// The composed world (full component access for instrumentation).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable world access (fault injection, pageout control).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Enable the residency/scheduling debug trace.
    #[deprecated(since = "0.2.0", note = "use cluster.telemetry().trace_enable()")]
    pub fn enable_trace(&mut self) {
        self.telemetry().trace_enable();
    }

    /// Render the debug trace collected so far.
    #[deprecated(since = "0.2.0", note = "use cluster.telemetry().trace_text()")]
    pub fn trace_text(&self) -> String {
        self.telemetry().trace_text()
    }

    /// Handle on the cluster-wide invariant auditor (counters, message
    /// fates, raw violation records).
    pub fn auditor(&self) -> AuditHandle {
        self.world.auditor.clone()
    }

    /// Enable or disable the automatic debug-build audit at run
    /// boundaries (see [`Cluster::audit`]). Mutation tests that provoke
    /// violations on purpose disable it and inspect the report directly.
    #[deprecated(since = "0.2.0", note = "use cluster.telemetry().set_debug_audit(on)")]
    pub fn set_debug_audit(&mut self, on: bool) {
        self.debug_audit.set(on);
    }

    pub(crate) fn set_debug_audit_flag(&self, on: bool) {
        self.debug_audit.set(on);
    }

    /// Check every cross-layer invariant observed so far: exactly-once
    /// delivery, credit conservation, stop-and-wait channel discipline,
    /// and endpoint frame accounting. Returns `Err` with a full report —
    /// named violations plus a trace dump — on the first check that fails.
    ///
    /// Also validates the *live* state (not just the event history): the
    /// number of resident endpoints on each NIC can never exceed its frame
    /// count.
    pub fn audit(&self) -> Result<(), String> {
        let a = self.world.auditor.borrow();
        let mut report = String::new();
        if a.has_violations() {
            use std::fmt::Write;
            let _ = writeln!(
                report,
                "invariant audit failed: {} violation(s) (showing {}):",
                a.total_violations(),
                a.violations().len()
            );
            for v in a.violations() {
                let _ = writeln!(report, "  {v}");
            }
        }
        for (h, nic) in self.world.nics.iter().enumerate() {
            let frames = nic.config().frames;
            let resident = nic.resident_count();
            if resident > frames as usize {
                use std::fmt::Write;
                let _ = writeln!(
                    report,
                    "live check failed: h{h} has {resident} resident endpoints in {frames} frames"
                );
            }
        }
        if report.is_empty() {
            return Ok(());
        }
        let trace = self.world.trace.borrow();
        if trace.is_enabled() {
            report.push_str("trace (most recent last):\n");
            report.push_str(&trace.to_text());
        } else {
            report.push_str(
                "(trace disabled; call cluster.telemetry().trace_enable() for event context)\n",
            );
        }
        Err(report)
    }

    fn debug_audit_check(&self) {
        if cfg!(debug_assertions) && self.debug_audit.get() {
            if let Err(report) = self.audit() {
                panic!("{report}");
            }
        }
    }

    /// The NIC of `host`.
    pub fn nic(&self, host: HostId) -> &Nic {
        &self.world.nics[host.idx()]
    }

    /// The segment driver of `host`.
    pub fn os(&self, host: HostId) -> &SegmentDriver {
        &self.world.oses[host.idx()]
    }

    /// The thread scheduler of `host`.
    pub fn sched(&self, host: HostId) -> &Scheduler {
        &self.world.scheds[host.idx()]
    }

    // ------------------------------------------------------------- setup

    /// Allocate an endpoint on `host` (registers with the NIC; starts
    /// non-resident in the on-host r/o state).
    pub fn create_endpoint(&mut self, host: HostId) -> GlobalEp {
        let now = self.engine.now();
        let (gep, outs) = self.world.create_endpoint_raw(now, host.idx());
        self.apply_os_ext(host.idx(), outs);
        gep
    }

    /// Register an endpoint under a well-known name (§3.1 rendezvous:
    /// "the names can be obtained by any rendezvous mechanism").
    pub fn register_name(&mut self, name: impl Into<String>, ep: GlobalEp) {
        self.names.register(name, ep);
    }

    /// Resolve a well-known name.
    pub fn lookup_name(&mut self, name: &str) -> Option<GlobalEp> {
        self.names.lookup(name)
    }

    /// Resolve a name and install it in `from`'s translation table —
    /// the full §3.1 flow: rendezvous, then endpoint-relative addressing.
    pub fn connect_by_name(&mut self, from: GlobalEp, idx: usize, name: &str) -> bool {
        match self.names.lookup(name) {
            Some(dst) => {
                self.connect(from, idx, dst);
                true
            }
            None => false,
        }
    }

    /// Install translation `idx → dst` (with dst's key) on endpoint `from`.
    pub fn connect(&mut self, from: GlobalEp, idx: usize, dst: GlobalEp) {
        let key = self.world.keys.get(&dst).copied().unwrap_or_default();
        self.world.user[from.host.idx()]
            .entry(from.ep)
            .or_default()
            .set_translation(idx, dst, key);
    }

    /// Build a virtual network over `eps` (§3.1): every endpoint gets a
    /// translation table addressing every member by its slice index —
    /// "traditional virtual node number addressing in parallel programs is
    /// easily realized with this approach".
    pub fn build_virtual_network(&mut self, eps: &[GlobalEp]) {
        for (i, &a) in eps.iter().enumerate() {
            for (j, &b) in eps.iter().enumerate() {
                if i != j {
                    self.connect(a, j, b);
                }
            }
        }
    }

    /// Destroy an endpoint (process termination, §4.2): the driver
    /// synchronizes de-allocation with the NIC (quiescing first if it is
    /// resident) and unregisters it; late messages addressed to it return
    /// to their senders as undeliverable.
    pub fn destroy_endpoint(&mut self, ep: GlobalEp) {
        let now = self.engine.now();
        let h = ep.host.idx();
        let mut outs = Vec::new();
        self.world.oses[h].free_endpoint(now, ep.ep, &mut outs);
        self.world.keys.remove(&ep);
        self.world.user[h].remove(&ep.ep);
        self.world.auditor.borrow_mut().on_endpoint_destroyed(ep.host.0, ep.ep.0);
        self.apply_os_ext(h, outs);
    }

    /// Spawn an application thread on `host`. Returns its id (per-host).
    pub fn spawn_thread(&mut self, host: HostId, body: Box<dyn ThreadBody>) -> Tid {
        let tid = self.world.spawn_thread_raw(host.idx(), body);
        let now = self.engine.now();
        if let Some((d, ev)) = self.world.prep_cpu_kick(host.idx(), now) {
            self.engine.schedule(d, ev);
        }
        tid
    }

    /// Downcast access to a thread body (results extraction after a run).
    pub fn body<T: ThreadBody>(&self, host: HostId, tid: Tid) -> Option<&T> {
        self.world.body::<T>(host.idx(), tid)
    }

    /// Mutable downcast access to a thread body.
    pub fn body_mut<T: ThreadBody>(&mut self, host: HostId, tid: Tid) -> Option<&mut T> {
        self.world.body_mut::<T>(host.idx(), tid)
    }

    // --------------------------------------------------------------- run

    /// Run for `d` of simulated time. In debug builds the invariant audit
    /// runs at the boundary (see [`Cluster::audit`]).
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let deadline = self.engine.now() + d;
        let n = self.engine.run_until(&mut self.world, deadline);
        self.debug_audit_check();
        n
    }

    /// Run until `deadline`. Debug builds audit at the boundary.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let n = self.engine.run_until(&mut self.world, deadline);
        self.debug_audit_check();
        n
    }

    /// Run until the event queue drains (only sensible before threads with
    /// infinite loops are spawned, or after they all exit). Debug builds
    /// audit at the boundary.
    pub fn settle(&mut self) -> u64 {
        let n = self.engine.run(&mut self.world);
        self.debug_audit_check();
        n
    }

    // ----------------------------------------------- external effect glue

    fn apply_os_ext(&mut self, host: usize, outs: Vec<OsOut>) {
        let now = self.engine.now();
        for o in outs {
            match o {
                OsOut::Nic(op) => {
                    let mut nic_outs = Vec::new();
                    self.world.nics[host].driver_request(now, op, &mut nic_outs);
                    self.apply_nic_ext(host, nic_outs);
                }
                OsOut::Wake(tid) => {
                    self.engine
                        .schedule(SimDuration::ZERO, Event::WakeThread { host: host as u32, tid });
                }
                OsOut::After(d, ev) => {
                    self.engine.schedule(d, Event::Os { host: host as u32, ev });
                }
            }
        }
    }

    fn apply_nic_ext(&mut self, host: usize, outs: Vec<NicOut>) {
        let now = self.engine.now();
        for o in outs {
            match o {
                NicOut::After(d, ev) => {
                    self.engine.schedule(d, Event::Nic { host: host as u32, ev });
                }
                NicOut::Inject(pkt) => match self.world.fabric.inject(now, pkt) {
                    vnet_net::InjectOutcome::Delivered { delay, corrupt, pkt } => {
                        self.engine.schedule(
                            delay,
                            Event::Deliver {
                                host: pkt.dst.0,
                                src: pkt.src,
                                frame: pkt.payload,
                                corrupt,
                            },
                        );
                    }
                    vnet_net::InjectOutcome::Dropped { .. } => {}
                },
                NicOut::Driver(msg) => {
                    self.engine
                        .schedule(SimDuration::ZERO, Event::DriverMsg { host: host as u32, msg });
                }
            }
        }
    }

    /// Force `ep` resident and wait for the remap pipeline to finish —
    /// used by microbenchmarks that measure the steady state (§6.1 runs
    /// with warmed endpoints).
    pub fn make_resident(&mut self, ep: GlobalEp) {
        let h = ep.host.idx();
        let now = self.engine.now();
        let mut outs = Vec::new();
        self.world.oses[h].proxy_fault(now, ep.ep, &mut outs);
        self.apply_os_ext(h, outs);
        // Bounded settle: the remap takes well under 50 ms on an idle node.
        let deadline = self.engine.now() + SimDuration::from_millis(50);
        while !self.world.nics[h].is_resident(ep.ep) && self.engine.now() < deadline {
            let step = self.engine.now() + SimDuration::from_micros(100);
            self.engine.run_until(&mut self.world, step);
            if self.engine.queue_len() == 0 && !self.world.nics[h].is_resident(ep.ep) {
                // Queue drained without the load completing — nothing more
                // will happen spontaneously.
                break;
            }
        }
        assert!(
            self.world.nics[h].is_resident(ep.ep),
            "make_resident failed for {ep}: remap pipeline stalled"
        );
    }
}

/// Convenience: an endpoint id paired with its host for terser test code.
pub fn local(ep: GlobalEp) -> EpId {
    ep.ep
}

/// A process: a host, the endpoints it owns, and its threads — the unit
/// of teardown (§4.2: "Process termination automatically invokes segment
/// driver methods to free segments").
#[derive(Debug, Clone)]
pub struct Process {
    /// Hosting node.
    pub host: HostId,
    /// Endpoints owned by the process.
    pub endpoints: Vec<GlobalEp>,
    /// Threads belonging to the process.
    pub threads: Vec<Tid>,
}

impl Process {
    /// An empty process on `host`.
    pub fn new(host: HostId) -> Self {
        Process { host, endpoints: Vec::new(), threads: Vec::new() }
    }
}

impl Cluster {
    /// Create an endpoint owned by `proc`.
    pub fn create_process_endpoint(&mut self, proc_: &mut Process) -> GlobalEp {
        let ep = self.create_endpoint(proc_.host);
        proc_.endpoints.push(ep);
        ep
    }

    /// Spawn a thread owned by `proc`.
    pub fn spawn_process_thread(&mut self, proc_: &mut Process, body: Box<dyn ThreadBody>) -> Tid {
        let tid = self.spawn_thread(proc_.host, body);
        proc_.threads.push(tid);
        tid
    }

    /// Terminate a process: stop its threads and free every endpoint it
    /// owns. The driver synchronizes de-allocation with the NIC; traffic
    /// addressed to the dead endpoints returns to its senders (§3.2).
    pub fn exit_process(&mut self, proc_: &Process) {
        for &ep in &proc_.endpoints {
            self.destroy_endpoint(ep);
        }
        for &tid in &proc_.threads {
            self.world.kill_thread(proc_.host.idx(), tid);
        }
        // Let the scheduler observe the exits.
        let now = self.engine.now();
        if let Some((d, ev)) = self.world.prep_cpu_kick(proc_.host.idx(), now) {
            self.engine.schedule(d, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::sys::{Step, Sys};
    use vnet_nic::QueueSel;

    struct Echo {
        ep: EpId,
        served: u64,
    }

    impl ThreadBody for Echo {
        fn run(&mut self, sys: &mut Sys<'_>) -> Step {
            while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
                self.served += 1;
                let _ = sys.reply(self.ep, &m, 0, [m.msg.args[0] * 2, 0, 0, 0], 0);
            }
            Step::WaitEvent(self.ep)
        }
    }

    struct Pinger {
        ep: EpId,
        to_send: u32,
        sent: u32,
        replies: u32,
        last_answer: u64,
    }

    impl ThreadBody for Pinger {
        fn run(&mut self, sys: &mut Sys<'_>) -> Step {
            while self.sent < self.to_send {
                match sys.request(self.ep, 1, 1, [self.sent as u64 + 1, 0, 0, 0], 0) {
                    Ok(_) => self.sent += 1,
                    Err(crate::sys::SendError::NoCredit) => break,
                    Err(crate::sys::SendError::WouldBlock) => return Step::WaitResident(self.ep),
                    Err(e) => panic!("send failed: {e:?}"),
                }
            }
            while let Some(m) = sys.poll(self.ep, QueueSel::Reply) {
                assert!(!m.undeliverable);
                self.replies += 1;
                self.last_answer = m.msg.args[0];
            }
            if self.replies == self.to_send {
                Step::Exit
            } else {
                Step::WaitEvent(self.ep)
            }
        }
    }

    #[test]
    fn request_reply_round_trips() {
        let mut c = Cluster::new(ClusterConfig::now(2));
        let a = c.create_endpoint(HostId(0));
        let b = c.create_endpoint(HostId(1));
        c.build_virtual_network(&[a, b]);
        c.spawn_thread(HostId(1), Box::new(Echo { ep: b.ep, served: 0 }));
        let pinger = c.spawn_thread(
            HostId(0),
            Box::new(Pinger { ep: a.ep, to_send: 10, sent: 0, replies: 0, last_answer: 0 }),
        );
        c.run_for(SimDuration::from_millis(100));
        let p: &Pinger = c.body(HostId(0), pinger).unwrap();
        assert_eq!(p.replies, 10, "all replies must arrive");
        assert_eq!(p.last_answer, 20, "handler computed 10 * 2");
        // Both endpoints were faulted in on demand.
        assert!(c.nic(HostId(0)).is_resident(a.ep));
        assert!(c.nic(HostId(1)).is_resident(b.ep));
        assert!(c.telemetry().snapshot().counter("host0.os.loads") >= 1);
    }

    #[test]
    fn credits_cap_outstanding_requests() {
        struct Blaster {
            ep: EpId,
            hit_no_credit: bool,
            accepted: u32,
        }
        impl ThreadBody for Blaster {
            fn run(&mut self, sys: &mut Sys<'_>) -> Step {
                loop {
                    match sys.request(self.ep, 1, 1, [0; 4], 0) {
                        Ok(_) => self.accepted += 1,
                        Err(crate::sys::SendError::NoCredit) => {
                            self.hit_no_credit = true;
                            return Step::Exit;
                        }
                        Err(_) => return Step::Yield,
                    }
                    if self.accepted > 100 {
                        return Step::Exit;
                    }
                }
            }
        }
        let mut c = Cluster::new(ClusterConfig::now(2));
        let a = c.create_endpoint(HostId(0));
        let b = c.create_endpoint(HostId(1));
        c.build_virtual_network(&[a, b]);
        // No server thread: replies never come, so credits never recover.
        let t = c.spawn_thread(
            HostId(0),
            Box::new(Blaster { ep: a.ep, hit_no_credit: false, accepted: 0 }),
        );
        c.run_for(SimDuration::from_millis(50));
        let bl: &Blaster = c.body(HostId(0), t).unwrap();
        assert!(bl.hit_no_credit, "the 32-credit window must close");
        assert_eq!(bl.accepted, 32, "exactly one window of requests accepted");
    }

    #[test]
    fn make_resident_preloads() {
        let mut c = Cluster::new(ClusterConfig::now(2));
        let a = c.create_endpoint(HostId(0));
        assert!(!c.nic(HostId(0)).is_resident(a.ep));
        c.make_resident(a);
        assert!(c.nic(HostId(0)).is_resident(a.ep));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| -> (u64, u64) {
            let mut c = Cluster::new(ClusterConfig::now(2).with_seed(seed));
            let a = c.create_endpoint(HostId(0));
            let b = c.create_endpoint(HostId(1));
            c.build_virtual_network(&[a, b]);
            c.spawn_thread(HostId(1), Box::new(Echo { ep: b.ep, served: 0 }));
            c.spawn_thread(
                HostId(0),
                Box::new(Pinger { ep: a.ep, to_send: 20, sent: 0, replies: 0, last_answer: 0 }),
            );
            c.run_for(SimDuration::from_millis(20));
            (c.events_processed(), c.now().as_nanos())
        };
        assert_eq!(run(7), run(7), "identical seeds give identical runs");
    }
}
