//! The user-level communication interface as seen by one running thread.
//!
//! Application code is written as [`ThreadBody`] state machines. Each time
//! the scheduler gives a thread the CPU, the world calls
//! [`ThreadBody::run`] with a [`Sys`] handle. The body performs synchronous
//! user-level operations (posting requests and replies, polling receive
//! queues — all ordinary loads and stores against mapped endpoint memory,
//! charged with the calibrated [`crate::config::CostModel`]) and then
//! returns a [`Step`] saying how it yields the processor.
//!
//! This mirrors how Active Message programs are actually structured: all
//! communication work happens in short handler-style bursts, and blocking
//! is expressed through endpoint event masks (§3.3).

use crate::config::CostModel;
use crate::user::UserEpState;
use std::any::Any;
use std::collections::HashMap;
use vnet_nic::{
    DeliveredMsg, EndpointImage, EpId, GlobalEp, Nic, NicOut, PendingSend, PollOutcome, PostError,
    QueueSel, SendRequest, UserMsg,
};
use vnet_os::{SegmentDriver, WriteOutcome};
use vnet_sim::{AuditHandle, Auditor, SimDuration, SimRng, SimTime};

/// How a thread yields the CPU after a burst of work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Consume CPU for this long (split into quanta by the scheduler),
    /// then run again.
    Compute(SimDuration),
    /// Block until the endpoint's event mask fires (message arrival).
    /// If messages are already queued, the thread stays runnable.
    WaitEvent(EpId),
    /// Block until the endpoint becomes resident (used with the write-fault
    /// ablation and page-ins).
    WaitResident(EpId),
    /// Sleep for a fixed time.
    Sleep(SimDuration),
    /// Stay runnable; let the scheduler rotate.
    Yield,
    /// Terminate the thread.
    Exit,
}

/// Why a request could not be posted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendError {
    /// No translation installed at that index.
    BadIndex,
    /// The 32-credit window to that destination is exhausted; poll for
    /// replies to recover credits.
    NoCredit,
    /// The endpoint's send queue (NI or host image) is full.
    QueueFull,
    /// The endpoint is mid-transition (or the write-fault ablation is
    /// active); return [`Step::WaitResident`] to wait it out.
    WouldBlock,
    /// Payload exceeds the network MTU (8 KB): one message is one packet
    /// (§5.2); fragment larger transfers at the library level the way the
    /// paper's bulk store/get and our `bsp::collectives::chunked` do.
    TooLarge,
    /// The endpoint's tenant byte budget for the current accounting epoch
    /// is exhausted (control-plane quota); retry next epoch.
    QuotaExceeded,
}

/// Fixed per-message byte charge against the tenant quota, on top of the
/// payload (header + descriptor); keeps zero-payload chatter metered.
pub const QUOTA_MSG_OVERHEAD: u64 = 64;

/// Application thread logic.
///
/// `Any` supertrait allows the harness to downcast bodies and read results
/// after a run. Bodies are *not* required to be `Send`: the parallel
/// executor moves a whole host (bodies included) between threads as one
/// closed `Rc` graph under [`vnet_sim::SendCell`]'s invariant, and only
/// ever runs it on one thread at a time.
pub trait ThreadBody: Any {
    /// One scheduling burst. See [`Sys`] for the available operations.
    fn run(&mut self, sys: &mut Sys<'_>) -> Step;
}

/// Synchronous user-level services for the running thread.
pub struct Sys<'a> {
    pub(crate) now: SimTime,
    pub(crate) host: vnet_net::HostId,
    pub(crate) nic: &'a mut Nic,
    pub(crate) os: &'a mut SegmentDriver,
    pub(crate) user: &'a mut HashMap<EpId, UserEpState>,
    pub(crate) keys: &'a HashMap<GlobalEp, vnet_nic::ProtectionKey>,
    pub(crate) cost: &'a CostModel,
    pub(crate) credits: u32,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) elapsed: SimDuration,
    pub(crate) nic_outs: Vec<NicOut>,
    pub(crate) os_outs: Vec<vnet_os::OsOut>,
    /// `None` when audit hooks are detached ([`ClusterConfig::audit`]
    /// off): the fast path then performs no auditor work at all.
    ///
    /// [`ClusterConfig::audit`]: crate::config::ClusterConfig::audit
    pub(crate) auditor: Option<&'a AuditHandle>,
}

impl<'a> Sys<'a> {
    /// Current simulated time (start of this burst).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This thread's host.
    pub fn host(&self) -> vnet_net::HostId {
        self.host
    }

    /// CPU time consumed so far in this burst.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Deterministic per-host randomness for workload decisions.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    fn charge(&mut self, d: SimDuration) {
        self.elapsed += d;
    }

    fn audit(&self, f: impl FnOnce(&mut Auditor)) {
        if let Some(a) = self.auditor {
            f(&mut a.borrow_mut());
        }
    }

    /// Charge the endpoint mutex cost when the endpoint is marked shared
    /// (§3.3): every operation on a shared endpoint synchronizes.
    fn charge_lock(&mut self, ep: EpId) {
        if self.user.get(&ep).map(|u| u.mode) == Some(crate::user::EpMode::Shared) {
            self.charge(self.cost.shared_lock);
        }
    }

    /// Mark the endpoint shared or exclusive (§3.3).
    pub fn set_endpoint_mode(&mut self, ep: EpId, mode: crate::user::EpMode) {
        self.user.entry(ep).or_default().mode = mode;
    }

    /// Outstanding (unreplied) requests from `ep` across all destinations.
    pub fn outstanding(&self, ep: EpId) -> u32 {
        self.user.get(&ep).map(|u| u.outstanding_total()).unwrap_or(0)
    }

    /// Outstanding requests from `ep` to translation `idx`.
    pub fn outstanding_to(&self, ep: EpId, idx: usize) -> u32 {
        self.user.get(&ep).map(|u| u.outstanding(idx)).unwrap_or(0)
    }

    /// Send an Active Message request from `ep` to translation-table entry
    /// `idx` (§3.1 endpoint-relative naming). Consumes one of the 32
    /// per-destination credits; the credit returns when the reply (or the
    /// undeliverable return) is polled.
    pub fn request(
        &mut self,
        ep: EpId,
        idx: usize,
        handler: u16,
        args: [u64; 4],
        payload_bytes: u32,
    ) -> Result<u64, SendError> {
        self.charge(self.cost.credit_check);
        self.charge_lock(ep);
        if payload_bytes > self.nic.config().mtu {
            return Err(SendError::TooLarge);
        }
        let ustate = self.user.entry(ep).or_default();
        let Some(tr) = ustate.translation(idx) else { return Err(SendError::BadIndex) };
        if ustate.outstanding(idx) >= self.credits {
            return Err(SendError::NoCredit);
        }
        // Tenant byte budget (control-plane quota): charged per admitted
        // request, epochs reset lazily so admission is a pure function of
        // (send time, prior sends) — identical sequential vs sharded.
        let quota_charge = QUOTA_MSG_OVERHEAD + payload_bytes as u64;
        let mut quota_tenant = None;
        if let Some(q) = ustate.quota.as_mut() {
            let epoch_idx = self.now.as_nanos() / q.epoch_nanos.max(1);
            if !q.admit(epoch_idx, quota_charge) {
                return Err(SendError::QuotaExceeded);
            }
            quota_tenant = Some(q.tenant);
        }
        let src_ep = GlobalEp::new(self.host, ep);
        let reply_key = self.keys.get(&src_ep).copied().unwrap_or_default();
        let msg = UserMsg {
            uid: 0,
            is_request: true,
            handler,
            args,
            payload_bytes,
            src_ep,
            reply_key,
            corr: 0,
        };
        let uid = match self.post(ep, tr.dst, tr.key, msg) {
            Ok(uid) => uid,
            Err(e) => {
                // The send never left: refund the quota charge.
                if let Some(q) =
                    self.user.get_mut(&ep).and_then(|u| u.quota.as_mut())
                {
                    q.used = q.used.saturating_sub(quota_charge);
                }
                return Err(e);
            }
        };
        self.user.get_mut(&ep).unwrap().note_sent(uid, idx);
        let (now, h, e) = (self.now, self.host.0, ep.0);
        self.audit(|a| a.on_credit_acquire(now, h, e, idx, uid));
        if quota_tenant.is_some() {
            self.audit(|a| a.on_tenant_bytes(now, h, e, quota_charge));
        }
        Ok(uid)
    }

    /// Reply to a received request (§3: request/response paradigm). Replies
    /// are not credit-limited; they are addressed by the request's return
    /// path and carry `corr` so the requester recovers its credit.
    pub fn reply(
        &mut self,
        ep: EpId,
        to: &DeliveredMsg,
        handler: u16,
        args: [u64; 4],
        payload_bytes: u32,
    ) -> Result<u64, SendError> {
        if payload_bytes > self.nic.config().mtu {
            return Err(SendError::TooLarge);
        }
        let src_ep = GlobalEp::new(self.host, ep);
        let reply_key = self.keys.get(&src_ep).copied().unwrap_or_default();
        let msg = UserMsg {
            uid: 0,
            is_request: false,
            handler,
            args,
            payload_bytes,
            src_ep,
            reply_key,
            corr: to.msg.uid,
        };
        self.post(ep, to.msg.src_ep, to.msg.reply_key, msg)
    }

    /// Common post path: resident → PIO descriptor into the NI; otherwise
    /// the four-state write-fault path of §4.2.
    fn post(
        &mut self,
        ep: EpId,
        dst: GlobalEp,
        key: vnet_nic::ProtectionKey,
        msg: UserMsg,
    ) -> Result<u64, SendError> {
        self.charge(self.cost.host_send);
        // The descriptor becomes visible to the NI when the PIO writes
        // finish — after the CPU time charged so far in this burst.
        let ready_at = self.now + self.elapsed;
        match self.os.touch_write(self.now, ep, &mut self.os_outs) {
            WriteOutcome::Resident => {
                let req = SendRequest { dst, key, msg };
                match self.nic.post_send_at(self.now, ready_at, ep, req, &mut self.nic_outs) {
                    Ok(uid) => Ok(uid),
                    Err(PostError::SendQueueFull) => Err(SendError::QueueFull),
                    // Unload raced us between the residency check and the
                    // post; take the fault path next time.
                    Err(PostError::NotResident) => Err(SendError::WouldBlock),
                }
            }
            WriteOutcome::Proceed => {
                // On-host r/w state: write the descriptor into the host
                // image; it will flow when the remap daemon loads it.
                let uid = self.nic.alloc_uid();
                let depth = self.nic.config().send_queue_depth;
                let Some(image) = self.os.host_image_mut(ep) else {
                    return Err(SendError::WouldBlock);
                };
                if image.send_q.len() >= depth {
                    return Err(SendError::QueueFull);
                }
                let mut msg = msg;
                msg.uid = uid;
                image.send_q.push_back(PendingSend {
                    uid,
                    dst,
                    key,
                    msg: std::sync::Arc::new(msg),
                    not_before: ready_at,
                    nacks: 0,
                    unbind_cycles: 0,
                });
                let (now, h) = (self.now, self.host.0);
                self.audit(|a| a.on_posted(now, h, uid));
                Ok(uid)
            }
            WriteOutcome::MustBlock => Err(SendError::WouldBlock),
        }
    }

    /// Poll a receive queue of `ep`. Charges the residency-dependent poll
    /// cost (§6.4: uncached NI memory vs cacheable host memory) plus the
    /// receive overhead o_r when a message is dequeued. Handles credit
    /// recovery for replies and undeliverable returns.
    pub fn poll(&mut self, ep: EpId, q: QueueSel) -> Option<DeliveredMsg> {
        self.charge_lock(ep);
        let got = if self.nic.is_resident(ep) {
            self.charge(self.cost.poll_nic);
            match self.nic.poll_recv(self.now, ep, q) {
                PollOutcome::Msg(m) => Some(m),
                _ => None,
            }
        } else {
            self.charge(self.cost.poll_host);
            let image = self.os.host_image_mut(ep)?;
            match q {
                QueueSel::Request => image.recv_req.pop_front(),
                QueueSel::Reply => image.recv_rep.pop_front(),
            }
        };
        if let Some(m) = &got {
            // The o_r receive overhead subsumes the poll probe that found
            // the message (total charge for a successful poll = o_r).
            let poll_cost =
                if self.nic.is_resident(ep) { self.cost.poll_nic } else { self.cost.poll_host };
            self.charge(self.cost.host_recv - poll_cost);
            if !m.msg.is_request || m.undeliverable {
                // Reply or bounced request: recover the credit.
                let uid = if m.undeliverable { m.msg.uid } else { m.msg.corr };
                let released =
                    self.user.get_mut(&ep).is_some_and(|u| u.note_completed(uid).is_some());
                if released {
                    let (now, h, e) = (self.now, self.host.0, ep.0);
                    self.audit(|a| a.on_credit_release(now, h, e, uid));
                }
            }
        }
        got
    }

    /// Whether `ep` has any received message waiting (either queue),
    /// charged like a poll.
    pub fn has_messages(&mut self, ep: EpId) -> bool {
        if self.nic.is_resident(ep) {
            self.charge(self.cost.poll_nic);
            self.nic.recv_depths(ep).map(|(a, b)| a + b > 0).unwrap_or(false)
        } else {
            self.charge(self.cost.poll_host);
            self.os.host_image(ep).map(|i| i.has_received()).unwrap_or(false)
        }
    }

    /// Whether `ep` is currently resident (bound to an NI frame).
    pub fn is_resident(&self, ep: EpId) -> bool {
        self.nic.is_resident(ep)
    }

    /// Translation-table management (§3.1): point `idx` of `ep` at `dst`.
    /// The key is resolved through the name service snapshot the world
    /// holds; unknown destinations get the open key.
    pub fn set_translation(&mut self, ep: EpId, idx: usize, dst: GlobalEp) {
        let key = self.keys.get(&dst).copied().unwrap_or_default();
        self.user.entry(ep).or_default().set_translation(idx, dst, key);
    }

    /// Host image accessor for tests and warm-up logic.
    pub fn host_image(&self, ep: EpId) -> Option<&EndpointImage> {
        self.os.host_image(ep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Sys is exercised end-to-end through the Cluster tests in
    // `crate::cluster`; here we only pin trivial enum behaviour.
    #[test]
    fn step_equality() {
        assert_eq!(Step::Yield, Step::Yield);
        assert_ne!(Step::Exit, Step::Yield);
        assert_eq!(
            Step::Compute(SimDuration::from_micros(5)),
            Step::Compute(SimDuration::from_micros(5))
        );
    }

    #[test]
    fn send_error_classification() {
        assert_ne!(SendError::NoCredit, SendError::QueueFull);
    }
}
