//! Whole-stack property test: randomized small workloads — random host
//! counts, endpoint placements, payload sizes, fault rates, frame
//! pressure — always complete every request exactly once, and identical
//! seeds give identical runs.
//!
//! Cases are generated from [`SimRng`] seeds rather than an external
//! property-testing crate, so the suite builds offline.

use vnet_core::prelude::*;
use vnet_core::{Cluster, ClusterConfig};
use vnet_sim::SimDuration as D;
use vnet_sim::SimRng;

struct Echo {
    ep: EpId,
    pending: Vec<DeliveredMsg>,
}

impl ThreadBody for Echo {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while let Some(m) = self.pending.pop() {
            if sys.reply(self.ep, &m, 0, m.msg.args, 0).is_err() {
                self.pending.push(m);
                return Step::Yield;
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
            if sys.reply(self.ep, &m, 0, m.msg.args, 0).is_err() {
                self.pending.push(m);
                return Step::Yield;
            }
        }
        Step::WaitEvent(self.ep)
    }
}

struct Client {
    ep: EpId,
    total: u32,
    bytes: u32,
    sent: u32,
    replies: u32,
    seen: std::collections::HashSet<u64>,
    dup: bool,
}

impl ThreadBody for Client {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while self.sent < self.total {
            match sys.request(self.ep, 0, 0, [self.sent as u64, 0, 0, 0], self.bytes) {
                Ok(_) => self.sent += 1,
                Err(SendError::NoCredit) | Err(SendError::QueueFull) => break,
                Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                Err(e) => panic!("{e:?}"),
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Reply) {
            assert!(!m.undeliverable, "healthy-cluster request bounced");
            self.replies += 1;
            if !self.seen.insert(m.msg.args[0]) {
                self.dup = true;
            }
        }
        if self.replies == self.total {
            Step::Exit
        } else {
            Step::WaitEvent(self.ep)
        }
    }
}

/// One randomized scenario: `pairs` conversations spread over `hosts`
/// hosts (multiple endpoints per host when pairs > hosts, exercising
/// frame pressure and loopback).
fn run_scenario(
    seed: u64,
    hosts: u32,
    pairs: usize,
    msgs: u32,
    bytes: u32,
    drop: f64,
) -> (Vec<(u32, bool)>, u64) {
    let mut cfg = ClusterConfig::now(hosts).with_seed(seed);
    cfg.drop_prob = drop;
    let mut c = Cluster::new(cfg);
    let mut clients = Vec::new();
    for k in 0..pairs {
        let ch = HostId((k as u32) % hosts);
        let sh = HostId((k as u32 + 1) % hosts);
        let ce = c.create_endpoint(ch);
        let se = c.create_endpoint(sh);
        c.connect(ce, 0, se);
        c.spawn_thread(sh, Box::new(Echo { ep: se.ep, pending: vec![] }));
        let t = c.spawn_thread(
            ch,
            Box::new(Client {
                ep: ce.ep,
                total: msgs,
                bytes,
                sent: 0,
                replies: 0,
                seen: Default::default(),
                dup: false,
            }),
        );
        clients.push((ch, t));
    }
    c.run_for(D::from_secs(120));
    let out = clients
        .iter()
        .map(|&(h, t)| {
            let b = c.body::<Client>(h, t).expect("client body");
            (b.replies, b.dup)
        })
        .collect();
    (out, c.events_processed())
}

#[test]
fn random_workloads_complete_exactly_once() {
    for case in 0..10u64 {
        let mut rng = SimRng::seed_from_u64(0xC0DE + case);
        let seed = rng.below(u64::MAX);
        let hosts = 2 + rng.below(4) as u32;
        let pairs = 1 + rng.index(9);
        let msgs = 1 + rng.below(59) as u32;
        let bytes = [0u32, 64, 2048, 8192][rng.index(4)];
        let drop = if rng.chance(0.5) { 0.0 } else { rng.unit() * 0.08 };
        let (results, _) = run_scenario(seed, hosts, pairs, msgs, bytes, drop);
        for (i, (replies, dup)) in results.iter().enumerate() {
            assert_eq!(
                *replies, msgs,
                "case {case}: conversation {i} incomplete (hosts={hosts} pairs={pairs} drop={drop})"
            );
            assert!(!dup, "case {case}: conversation {i} saw a duplicate reply");
        }
    }
}

#[test]
fn identical_seeds_identical_runs() {
    for case in 0..6u64 {
        let mut rng = SimRng::seed_from_u64(0x5EED + case);
        let seed = rng.below(u64::MAX);
        let hosts = 2 + rng.below(3) as u32;
        let pairs = 1 + rng.index(5);
        let a = run_scenario(seed, hosts, pairs, 20, 64, 0.02);
        let b = run_scenario(seed, hosts, pairs, 20, 64, 0.02);
        assert_eq!(a, b, "case {case}");
    }
}
