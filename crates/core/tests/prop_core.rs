//! Whole-stack property test: arbitrary small workloads — random host
//! counts, endpoint placements, payload sizes, fault rates, frame
//! pressure — always complete every request exactly once, and identical
//! seeds give identical runs.

use proptest::prelude::*;
use vnet_core::prelude::*;
use vnet_core::{Cluster, ClusterConfig};
use vnet_sim::SimDuration as D;

struct Echo {
    ep: EpId,
    pending: Vec<DeliveredMsg>,
}

impl ThreadBody for Echo {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while let Some(m) = self.pending.pop() {
            if sys.reply(self.ep, &m, 0, m.msg.args, 0).is_err() {
                self.pending.push(m);
                return Step::Yield;
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
            if sys.reply(self.ep, &m, 0, m.msg.args, 0).is_err() {
                self.pending.push(m);
                return Step::Yield;
            }
        }
        Step::WaitEvent(self.ep)
    }
}

struct Client {
    ep: EpId,
    total: u32,
    bytes: u32,
    sent: u32,
    replies: u32,
    seen: std::collections::HashSet<u64>,
    dup: bool,
}

impl ThreadBody for Client {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while self.sent < self.total {
            match sys.request(self.ep, 0, 0, [self.sent as u64, 0, 0, 0], self.bytes) {
                Ok(_) => self.sent += 1,
                Err(SendError::NoCredit) | Err(SendError::QueueFull) => break,
                Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                Err(e) => panic!("{e:?}"),
            }
        }
        while let Some(m) = sys.poll(self.ep, QueueSel::Reply) {
            assert!(!m.undeliverable, "healthy-cluster request bounced");
            self.replies += 1;
            if !self.seen.insert(m.msg.args[0]) {
                self.dup = true;
            }
        }
        if self.replies == self.total {
            Step::Exit
        } else {
            Step::WaitEvent(self.ep)
        }
    }
}

/// One randomized scenario: `pairs` conversations spread over `hosts`
/// hosts (multiple endpoints per host when pairs > hosts, exercising
/// frame pressure and loopback).
fn run_scenario(
    seed: u64,
    hosts: u32,
    pairs: usize,
    msgs: u32,
    bytes: u32,
    drop: f64,
) -> (Vec<(u32, bool)>, u64) {
    let mut cfg = ClusterConfig::now(hosts).with_seed(seed);
    cfg.drop_prob = drop;
    let mut c = Cluster::new(cfg);
    let mut clients = Vec::new();
    for k in 0..pairs {
        let ch = HostId((k as u32) % hosts);
        let sh = HostId((k as u32 + 1) % hosts);
        let ce = c.create_endpoint(ch);
        let se = c.create_endpoint(sh);
        c.connect(ce, 0, se);
        c.spawn_thread(sh, Box::new(Echo { ep: se.ep, pending: vec![] }));
        let t = c.spawn_thread(
            ch,
            Box::new(Client {
                ep: ce.ep,
                total: msgs,
                bytes,
                sent: 0,
                replies: 0,
                seen: Default::default(),
                dup: false,
            }),
        );
        clients.push((ch, t));
    }
    c.run_for(D::from_secs(120));
    let out = clients
        .iter()
        .map(|&(h, t)| {
            let b = c.body::<Client>(h, t).expect("client body");
            (b.replies, b.dup)
        })
        .collect();
    (out, c.events_processed())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn random_workloads_complete_exactly_once(
        seed in any::<u64>(),
        hosts in 2u32..6,
        pairs in 1usize..10,
        msgs in 1u32..60,
        bytes in prop_oneof![Just(0u32), Just(64u32), Just(2048u32), Just(8192u32)],
        drop in prop_oneof![Just(0.0f64), 0.0f64..0.08],
    ) {
        let (results, _) = run_scenario(seed, hosts, pairs, msgs, bytes, drop);
        for (i, (replies, dup)) in results.iter().enumerate() {
            prop_assert_eq!(*replies, msgs, "conversation {} incomplete", i);
            prop_assert!(!dup, "conversation {} saw a duplicate reply", i);
        }
    }

    #[test]
    fn identical_seeds_identical_runs(
        seed in any::<u64>(),
        hosts in 2u32..5,
        pairs in 1usize..6,
    ) {
        let a = run_scenario(seed, hosts, pairs, 20, 64, 0.02);
        let b = run_scenario(seed, hosts, pairs, 20, 64, 0.02);
        prop_assert_eq!(a, b);
    }
}
