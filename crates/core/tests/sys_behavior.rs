//! Behavioural tests of the user-level interface (`Sys`): endpoint modes,
//! translation management, credit scoping, and the write-fault ablation.

use vnet_core::prelude::*;
use vnet_core::{Cluster, ClusterConfig};
use vnet_sim::SimDuration as D;

struct Echo {
    ep: EpId,
}
impl ThreadBody for Echo {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        while let Some(m) = sys.poll(self.ep, QueueSel::Request) {
            sys.reply(self.ep, &m, 0, m.msg.args, 0).expect("echo");
        }
        Step::WaitEvent(self.ep)
    }
}

/// Measures the CPU cost of one request+poll pair in the given mode.
struct CostProbe {
    ep: EpId,
    mode: EpMode,
    configured: bool,
    pub request_cost_us: f64,
    pub poll_cost_us: f64,
    done: bool,
}

impl ThreadBody for CostProbe {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        if !self.configured {
            sys.set_endpoint_mode(self.ep, self.mode);
            self.configured = true;
        }
        if self.done {
            return Step::Exit;
        }
        if sys.outstanding(self.ep) == 0 && self.request_cost_us == 0.0 {
            let e0 = sys.elapsed();
            sys.request(self.ep, 1, 0, [0; 4], 0).expect("send");
            self.request_cost_us = (sys.elapsed() - e0).as_micros_f64();
            return Step::Yield;
        }
        let e0 = sys.elapsed();
        if sys.poll(self.ep, QueueSel::Reply).is_some() {
            self.poll_cost_us = (sys.elapsed() - e0).as_micros_f64();
            self.done = true;
            return Step::Exit;
        }
        Step::Yield
    }
}

fn probe(mode: EpMode) -> (f64, f64) {
    let mut c = Cluster::new(ClusterConfig::now(2));
    let a = c.create_endpoint(HostId(0));
    let b = c.create_endpoint(HostId(1));
    c.build_virtual_network(&[a, b]);
    c.make_resident(a);
    c.make_resident(b);
    c.spawn_thread(HostId(1), Box::new(Echo { ep: b.ep }));
    let t = c.spawn_thread(
        HostId(0),
        Box::new(CostProbe {
            ep: a.ep,
            mode,
            configured: false,
            request_cost_us: 0.0,
            poll_cost_us: 0.0,
            done: false,
        }),
    );
    c.run_for(D::from_millis(20));
    let p: &CostProbe = c.body(HostId(0), t).unwrap();
    assert!(p.done);
    (p.request_cost_us, p.poll_cost_us)
}

#[test]
fn shared_endpoints_pay_the_lock_exclusive_do_not() {
    let (req_x, poll_x) = probe(EpMode::Exclusive);
    let (req_s, poll_s) = probe(EpMode::Shared);
    // Section 3.3: shared endpoints synchronize on every operation; the
    // calibrated mutex cost is 0.5 us.
    assert!((req_s - req_x - 0.5).abs() < 0.01, "request: {req_x} vs {req_s}");
    assert!((poll_s - poll_x - 0.5).abs() < 0.01, "poll: {poll_x} vs {poll_s}");
}

#[test]
fn two_threads_share_one_endpoint() {
    // Section 3.3: "many threads may concurrently access a single
    // endpoint" — two sender threads drive the same shared endpoint.
    struct HalfSender {
        ep: EpId,
        want: u32,
        sent: u32,
        got: u32,
        configured: bool,
    }
    impl ThreadBody for HalfSender {
        fn run(&mut self, sys: &mut Sys<'_>) -> Step {
            if !self.configured {
                sys.set_endpoint_mode(self.ep, EpMode::Shared);
                self.configured = true;
            }
            while self.sent < self.want {
                match sys.request(self.ep, 1, 0, [0; 4], 0) {
                    Ok(_) => self.sent += 1,
                    Err(SendError::NoCredit) | Err(SendError::QueueFull) => break,
                    Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                    Err(e) => panic!("{e:?}"),
                }
            }
            while sys.poll(self.ep, QueueSel::Reply).is_some() {
                self.got += 1;
            }
            // The endpoint state (outstanding credits) is shared: both
            // threads observe global completion.
            if self.sent == self.want && sys.outstanding(self.ep) == 0 {
                Step::Exit
            } else {
                Step::Yield
            }
        }
    }
    let mut c = Cluster::new(ClusterConfig::now(2));
    let a = c.create_endpoint(HostId(0));
    let b = c.create_endpoint(HostId(1));
    c.build_virtual_network(&[a, b]);
    c.spawn_thread(HostId(1), Box::new(Echo { ep: b.ep }));
    let t1 = c.spawn_thread(
        HostId(0),
        Box::new(HalfSender { ep: a.ep, want: 20, sent: 0, got: 0, configured: false }),
    );
    let t2 = c.spawn_thread(
        HostId(0),
        Box::new(HalfSender { ep: a.ep, want: 20, sent: 0, got: 0, configured: false }),
    );
    c.run_for(D::from_millis(200));
    let g1 = c.body::<HalfSender>(HostId(0), t1).unwrap().got;
    let g2 = c.body::<HalfSender>(HostId(0), t2).unwrap().got;
    // Replies are polled by whichever thread runs first; together they must
    // account for every request.
    assert_eq!(g1 + g2, 40, "all replies consumed across sharing threads");
}

#[test]
fn ablation_write_fault_blocks_until_resident() {
    struct OneShot {
        ep: EpId,
        blocked_once: bool,
        sent: bool,
    }
    impl ThreadBody for OneShot {
        fn run(&mut self, sys: &mut Sys<'_>) -> Step {
            if self.sent {
                return Step::Exit;
            }
            match sys.request(self.ep, 1, 0, [0; 4], 0) {
                Ok(_) => {
                    self.sent = true;
                    Step::Exit
                }
                Err(SendError::WouldBlock) => {
                    self.blocked_once = true;
                    Step::WaitResident(self.ep)
                }
                Err(e) => panic!("{e:?}"),
            }
        }
    }
    let mut cfg = ClusterConfig::now(2);
    cfg.os.fast_write_fault = false; // the paper's original (ablated) design
    let mut c = Cluster::new(cfg);
    let a = c.create_endpoint(HostId(0));
    let b = c.create_endpoint(HostId(1));
    c.build_virtual_network(&[a, b]);
    c.make_resident(b);
    let t = c.spawn_thread(HostId(0), Box::new(OneShot { ep: a.ep, blocked_once: false, sent: false }));
    c.run_for(D::from_millis(100));
    let o: &OneShot = c.body(HostId(0), t).unwrap();
    assert!(o.blocked_once, "without on-host r/w the first write must block");
    assert!(o.sent, "the thread resumes once the endpoint is resident");
}

#[test]
fn translations_managed_through_sys() {
    struct Installer {
        ep: EpId,
        target: GlobalEp,
        sent: bool,
    }
    impl ThreadBody for Installer {
        fn run(&mut self, sys: &mut Sys<'_>) -> Step {
            if !self.sent {
                // Install a translation at runtime, then use it.
                sys.set_translation(self.ep, 5, self.target);
                match sys.request(self.ep, 5, 0, [0; 4], 0) {
                    Ok(_) => self.sent = true,
                    Err(SendError::WouldBlock) => return Step::WaitResident(self.ep),
                    Err(e) => panic!("{e:?}"),
                }
                return Step::Yield;
            }
            if sys.poll(self.ep, QueueSel::Reply).is_some() {
                return Step::Exit;
            }
            Step::WaitEvent(self.ep)
        }
    }
    let mut c = Cluster::new(ClusterConfig::now(2));
    let a = c.create_endpoint(HostId(0));
    let b = c.create_endpoint(HostId(1));
    c.spawn_thread(HostId(1), Box::new(Echo { ep: b.ep }));
    let t = c.spawn_thread(HostId(0), Box::new(Installer { ep: a.ep, target: b, sent: false }));
    c.run_for(D::from_millis(100));
    assert!(c.body::<Installer>(HostId(0), t).unwrap().sent);
    assert!(c.sched(HostId(0)).live_threads() == 0, "installer exited after its reply");
}

#[test]
fn oversized_payloads_are_rejected() {
    struct Oversend {
        ep: EpId,
        saw_too_large: bool,
    }
    impl ThreadBody for Oversend {
        fn run(&mut self, sys: &mut Sys<'_>) -> Step {
            match sys.request(self.ep, 1, 0, [0; 4], 9000) {
                Err(SendError::TooLarge) => self.saw_too_large = true,
                other => panic!("expected TooLarge, got {other:?}"),
            }
            Step::Exit
        }
    }
    let mut c = Cluster::new(ClusterConfig::now(2));
    let a = c.create_endpoint(HostId(0));
    let b = c.create_endpoint(HostId(1));
    c.build_virtual_network(&[a, b]);
    let t = c.spawn_thread(HostId(0), Box::new(Oversend { ep: a.ep, saw_too_large: false }));
    c.run_for(D::from_millis(5));
    assert!(c.body::<Oversend>(HostId(0), t).unwrap().saw_too_large);
}

#[test]
fn trace_records_driver_activity() {
    let mut c = Cluster::new(ClusterConfig::now(2));
    c.telemetry().trace_enable();
    let a = c.create_endpoint(HostId(0));
    c.make_resident(a);
    let text = c.telemetry().trace_text();
    assert!(text.contains("Loaded"), "trace must show the load:\n{text}");
}
