//! Tests of the host CPU/thread model: quantum preemption, sleep timing,
//! compute slicing, and livelock protection.

use vnet_core::prelude::*;
use vnet_core::{Cluster, ClusterConfig};
use vnet_sim::SimDuration as D;
use vnet_sim::SimTime;

struct Computer {
    chunks: u32,
    per_chunk: D,
    pub finished_at: Option<SimTime>,
}

impl ThreadBody for Computer {
    fn run(&mut self, sys: &mut Sys<'_>) -> Step {
        if self.chunks == 0 {
            self.finished_at = Some(sys.now());
            return Step::Exit;
        }
        self.chunks -= 1;
        Step::Compute(self.per_chunk)
    }
}

#[test]
fn long_computes_time_share_fairly() {
    // Two 100 ms compute jobs on one CPU with a 10 ms quantum: both finish
    // around 200 ms (interleaved), not one at 100 ms and the other at 200.
    let mut c = Cluster::new(ClusterConfig::now(2));
    let t1 = c.spawn_thread(
        HostId(0),
        Box::new(Computer { chunks: 10, per_chunk: D::from_millis(10), finished_at: None }),
    );
    let t2 = c.spawn_thread(
        HostId(0),
        Box::new(Computer { chunks: 10, per_chunk: D::from_millis(10), finished_at: None }),
    );
    c.run_for(D::from_millis(500));
    let f1 = c.body::<Computer>(HostId(0), t1).unwrap().finished_at.unwrap();
    let f2 = c.body::<Computer>(HostId(0), t2).unwrap().finished_at.unwrap();
    let (a, b) = (f1.as_secs_f64(), f2.as_secs_f64());
    assert!((0.18..0.22).contains(&a.max(b)), "last finisher at {:.3}", a.max(b));
    // Interleaving: the first finisher cannot be done before ~190 ms
    // either (both progress together).
    assert!(a.min(b) > 0.15, "first finisher at {:.3} — jobs did not interleave", a.min(b));
    assert!(c.sched(HostId(0)).preemptions() > 5, "quantum preemption must occur");
}

#[test]
fn single_compute_runs_unsliced() {
    // Alone on the CPU there is no reason to slice: one big chunk.
    let mut c = Cluster::new(ClusterConfig::now(2));
    let t = c.spawn_thread(
        HostId(0),
        Box::new(Computer { chunks: 1, per_chunk: D::from_millis(100), finished_at: None }),
    );
    c.run_for(D::from_millis(200));
    let f = c.body::<Computer>(HostId(0), t).unwrap().finished_at.unwrap();
    assert!((0.099..0.102).contains(&f.as_secs_f64()), "{f}");
    assert_eq!(c.sched(HostId(0)).preemptions(), 0);
}

#[test]
fn sleep_wakes_on_schedule() {
    struct Sleeper {
        pub woke_at: Option<SimTime>,
        slept: bool,
    }
    impl ThreadBody for Sleeper {
        fn run(&mut self, sys: &mut Sys<'_>) -> Step {
            if !self.slept {
                self.slept = true;
                return Step::Sleep(D::from_millis(7));
            }
            self.woke_at = Some(sys.now());
            Step::Exit
        }
    }
    let mut c = Cluster::new(ClusterConfig::now(2));
    let t = c.spawn_thread(HostId(0), Box::new(Sleeper { woke_at: None, slept: false }));
    c.run_for(D::from_millis(50));
    let woke = c.body::<Sleeper>(HostId(0), t).unwrap().woke_at.unwrap();
    let us = woke.as_micros_f64();
    assert!((7_000.0..7_200.0).contains(&us), "woke at {us} us");
}

#[test]
fn pure_yield_loops_cannot_freeze_time() {
    // A body that does nothing but Yield must still advance simulated time
    // (MIN_BURST), so runaway spinners cannot livelock the simulation.
    struct Spinner {
        pub bursts: u64,
    }
    impl ThreadBody for Spinner {
        fn run(&mut self, _sys: &mut Sys<'_>) -> Step {
            self.bursts += 1;
            Step::Yield
        }
    }
    let mut c = Cluster::new(ClusterConfig::now(2));
    let t = c.spawn_thread(HostId(0), Box::new(Spinner { bursts: 0 }));
    c.run_for(D::from_millis(1));
    let bursts = c.body::<Spinner>(HostId(0), t).unwrap().bursts;
    assert!(bursts > 0);
    assert!(
        bursts <= 1_000_000 / 200 + 2,
        "bursts bounded by MIN_BURST=200ns: {bursts}"
    );
    assert_eq!(c.now().as_nanos(), 1_000_000, "time advanced to the deadline");
}

#[test]
fn exiting_threads_leave_an_idle_cpu() {
    let mut c = Cluster::new(ClusterConfig::now(2));
    c.spawn_thread(
        HostId(0),
        Box::new(Computer { chunks: 2, per_chunk: D::from_micros(50), finished_at: None }),
    );
    c.run_for(D::from_millis(5));
    assert_eq!(c.sched(HostId(0)).live_threads(), 0);
    // No runnable work: the engine goes quiescent (no CPU self-kicks).
    let before = c.events_processed();
    c.run_for(D::from_millis(5));
    assert_eq!(c.events_processed(), before, "idle CPU must not burn events");
}
