//! Differential determinism: seeded random schedule/cancel/stop workloads
//! driven through both the production [`TimingWheel`] and the reference
//! BinaryHeap+tombstone scheduler ([`RefHeap`] — the exact pre-wheel
//! algorithm, kept for this purpose). Every case must produce a
//! byte-identical operation log (delivery order, cancel outcomes, drain
//! boundaries) and the same final clock.
//!
//! Cases are generated from [`SimRng`] seeds, so the suite builds offline
//! with no property-testing dependency.

use std::fmt::Write as _;
use vnet_sim::{Due, RefHeap, SimRng, SimTime, TimingWheel};

/// The two schedulers behind one face so the driver below is the same
/// workload, operation for operation, on both.
trait Queue {
    type Id: Copy;
    fn schedule(&mut self, at: SimTime, ev: u64) -> Self::Id;
    fn cancel(&mut self, id: Self::Id) -> bool;
    fn pop_due(&mut self, deadline: SimTime) -> Due<u64>;
    fn len(&self) -> usize;
}

impl Queue for TimingWheel<u64> {
    type Id = vnet_sim::EventId;
    fn schedule(&mut self, at: SimTime, ev: u64) -> Self::Id {
        TimingWheel::schedule(self, at, ev)
    }
    fn cancel(&mut self, id: Self::Id) -> bool {
        TimingWheel::cancel(self, id)
    }
    fn pop_due(&mut self, deadline: SimTime) -> Due<u64> {
        TimingWheel::pop_due(self, deadline)
    }
    fn len(&self) -> usize {
        TimingWheel::len(self)
    }
}

impl Queue for RefHeap<u64> {
    type Id = u64;
    fn schedule(&mut self, at: SimTime, ev: u64) -> Self::Id {
        RefHeap::schedule(self, at, ev)
    }
    fn cancel(&mut self, id: Self::Id) -> bool {
        RefHeap::cancel(self, id)
    }
    fn pop_due(&mut self, deadline: SimTime) -> Due<u64> {
        RefHeap::pop_due(self, deadline)
    }
    fn len(&self) -> usize {
        RefHeap::len(self)
    }
}

/// A random delay whose magnitude class is itself random, so cases cover
/// same-nanosecond ties, near-wheel slots, cascade levels, the 2^36 ns
/// horizon crossing into the spill heap, and far-future spill entries.
fn delay(rng: &mut SimRng) -> u64 {
    match rng.below(5) {
        0 => rng.below(4),                // ties and immediate events
        1 => rng.below(1_000),            // level 0
        2 => rng.below(1 << 20),          // mid levels
        3 => rng.below(1 << 37),          // horizon crossing / spill
        _ => rng.below(1 << 45),          // deep spill
    }
}

/// Replay one seeded workload, mirroring the engine's `run_until` clock
/// rules: fired events advance `now` to their timestamp; `AfterDeadline`
/// and `Empty` (under a finite deadline) advance it to the deadline; a
/// random "stop budget" abandons drains mid-deadline the way
/// `Ctx::stop` does. Returns the op log and the final clock.
fn drive<Q: Queue>(q: &mut Q, seed: u64) -> (String, u64) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut now = 0u64;
    let mut next_ev = 0u64;
    let mut ids: Vec<Q::Id> = Vec::new();
    let mut log = String::new();
    for round in 0..200 {
        for _ in 0..rng.index(8) {
            let at = now + delay(&mut rng);
            ids.push(q.schedule(SimTime::from_nanos(at), next_ev));
            next_ev += 1;
        }
        // Cancels target any ever-issued id, so most rounds also exercise
        // cancel-after-fire and double-cancel; the outcome is logged.
        for _ in 0..rng.index(4) {
            if !ids.is_empty() {
                let i = rng.index(ids.len());
                writeln!(log, "C{}", u8::from(q.cancel(ids[i]))).unwrap();
            }
        }
        let deadline = if rng.chance(0.1) { u64::MAX } else { now + delay(&mut rng) };
        let mut budget = rng.below(24);
        loop {
            if budget == 0 {
                writeln!(log, "S").unwrap(); // stopped mid-drain
                break;
            }
            budget -= 1;
            match q.pop_due(SimTime::from_nanos(deadline)) {
                Due::Event { at, ev } => {
                    now = at.as_nanos();
                    writeln!(log, "F {now} {ev}").unwrap();
                }
                Due::AfterDeadline => {
                    now = deadline;
                    writeln!(log, "A").unwrap();
                    break;
                }
                Due::Empty => {
                    if deadline != u64::MAX {
                        now = deadline;
                    }
                    writeln!(log, "E").unwrap();
                    break;
                }
            }
        }
        writeln!(log, "R{round} now={now} len={}", q.len()).unwrap();
    }
    (log, now)
}

#[test]
fn wheel_matches_reference_heap_on_seeded_workloads() {
    for case in 0..48u64 {
        let seed = 0xD1FF + case * 0x9E37_79B9;
        let (wheel_log, wheel_now) = drive(&mut TimingWheel::new(), seed);
        let (heap_log, heap_now) = drive(&mut RefHeap::new(), seed);
        if wheel_log != heap_log {
            let line = wheel_log
                .lines()
                .zip(heap_log.lines())
                .enumerate()
                .find(|(_, (w, h))| w != h);
            panic!(
                "case {case}: logs diverge at {:?} (wheel vs heap)",
                line.expect("some line differs")
            );
        }
        assert_eq!(wheel_now, heap_now, "case {case}: final clocks differ");
    }
}

/// Same differential, but with the drain deadline always at `SimTime::MAX`
/// (the engine's `step()` path) and heavier tie pressure.
#[test]
fn wheel_matches_reference_heap_under_tie_pressure() {
    for case in 0..16u64 {
        let seed = 0x7135 + case;
        let mut wheel = TimingWheel::new();
        let mut heap = RefHeap::new();
        let mut rng_w = SimRng::seed_from_u64(seed);
        let mut rng_h = SimRng::seed_from_u64(seed);
        let mut log_w = String::new();
        let mut log_h = String::new();
        for ev in 0..400u64 {
            let at_w = SimTime::from_nanos(rng_w.below(16));
            let at_h = SimTime::from_nanos(rng_h.below(16));
            wheel.schedule(at_w, ev);
            heap.schedule(at_h, ev);
        }
        while let Due::Event { at, ev } = wheel.pop_due(SimTime::MAX) {
            writeln!(log_w, "{} {}", at.as_nanos(), ev).unwrap();
        }
        while let Due::Event { at, ev } = heap.pop_due(SimTime::MAX) {
            writeln!(log_h, "{} {}", at.as_nanos(), ev).unwrap();
        }
        assert_eq!(log_w, log_h, "case {case}: tie-breaking diverged");
    }
}
