//! Property tests for the simulation kernel: ordering, cancellation, and
//! statistics invariants hold for randomized inputs.
//!
//! Cases are generated from [`SimRng`] seeds rather than an external
//! property-testing crate, so the suite builds offline; every assertion
//! message carries the case number, and re-running the named test replays
//! the identical sequence.

use vnet_sim::stats::{linear_fit, Sampler};
use vnet_sim::{Ctx, Engine, SimDuration, SimRng, SimTime, SimWorld};

struct Recorder {
    seen: Vec<(u64, u32)>,
}

impl SimWorld for Recorder {
    type Event = u32;
    fn handle(&mut self, ev: u32, ctx: &mut Ctx<'_, u32>) {
        self.seen.push((ctx.now().as_nanos(), ev));
    }
}

/// Events fire in nondecreasing time order, FIFO among equal times.
#[test]
fn events_ordered() {
    for case in 0..128u64 {
        let mut rng = SimRng::seed_from_u64(0xE0E0 + case);
        let n = 1 + rng.index(199);
        let delays: Vec<u64> = (0..n).map(|_| rng.below(10_000)).collect();
        let mut w = Recorder { seen: vec![] };
        let mut e = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            e.schedule(SimDuration::from_nanos(d), i as u32);
        }
        e.run(&mut w);
        assert_eq!(w.seen.len(), delays.len(), "case {case}");
        for win in w.seen.windows(2) {
            assert!(win[0].0 <= win[1].0, "case {case}: time went backwards");
            if win[0].0 == win[1].0 {
                // FIFO tie-break: scheduling order == payload order here.
                assert!(win[0].1 < win[1].1, "case {case}: FIFO violated at t={}", win[0].0);
            }
        }
    }
}

/// Cancelled events never fire; everything else does.
#[test]
fn cancellation_exact() {
    for case in 0..128u64 {
        let mut rng = SimRng::seed_from_u64(0xCA4C + case);
        let n = 1 + rng.index(99);
        let delays: Vec<u64> = (0..n).map(|_| rng.below(1_000)).collect();
        let cancel_mask: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        let mut w = Recorder { seen: vec![] };
        let mut e = Engine::new();
        let mut expect = vec![];
        for (i, &d) in delays.iter().enumerate() {
            let id = e.schedule(SimDuration::from_nanos(d), i as u32);
            if cancel_mask[i] {
                e.cancel(id);
            } else {
                expect.push(i as u32);
            }
        }
        e.run(&mut w);
        let mut got: Vec<u32> = w.seen.iter().map(|&(_, v)| v).collect();
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect, "case {case}");
    }
}

/// run_until never processes events beyond the deadline and leaves the
/// clock at exactly the deadline when it stops early.
#[test]
fn run_until_respects_deadline() {
    for case in 0..128u64 {
        let mut rng = SimRng::seed_from_u64(0xD3AD + case);
        let n = 1 + rng.index(99);
        let delays: Vec<u64> = (0..n).map(|_| 1 + rng.below(9_999)).collect();
        let deadline = 1 + rng.below(11_999);
        let mut w = Recorder { seen: vec![] };
        let mut e = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            e.schedule(SimDuration::from_nanos(d), i as u32);
        }
        e.run_until(&mut w, SimTime::from_nanos(deadline));
        for &(t, _) in &w.seen {
            assert!(t <= deadline, "case {case}");
        }
        assert!(e.now().as_nanos() <= deadline, "case {case}");
        let expected = delays.iter().filter(|&&d| d <= deadline).count();
        assert_eq!(w.seen.len(), expected, "case {case}");
    }
}

/// Sampler quantiles are bounded by min/max and monotone in q.
#[test]
fn sampler_quantiles_sane() {
    for case in 0..128u64 {
        let mut rng = SimRng::seed_from_u64(0x5A9A + case);
        let n = 1 + rng.index(299);
        let xs: Vec<f64> = (0..n).map(|_| (rng.unit() - 0.5) * 2e6).collect();
        let mut s = Sampler::default();
        for &x in &xs {
            s.record(x);
        }
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let v = s.quantile(q);
            assert!(v >= lo && v <= hi, "case {case}: q={q} v={v} out of [{lo},{hi}]");
            assert!(v >= prev, "case {case}: quantiles must be monotone");
            prev = v;
        }
    }
}

/// linear_fit recovers randomized noiseless lines exactly (R² = 1).
#[test]
fn linear_fit_exact() {
    for case in 0..128u64 {
        let mut rng = SimRng::seed_from_u64(0xF17 + case);
        let slope = (rng.unit() - 0.5) * 200.0;
        let intercept = (rng.unit() - 0.5) * 2e4;
        let n = 3 + rng.index(47);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| (i as f64 * 7.0 + 1.0, slope * (i as f64 * 7.0 + 1.0) + intercept))
            .collect();
        let (m, b, r2) = linear_fit(&pts);
        assert!((m - slope).abs() < 1e-6 * slope.abs().max(1.0), "case {case}");
        assert!((b - intercept).abs() < 1e-5 * intercept.abs().max(1.0), "case {case}");
        assert!(r2 > 0.999999, "case {case}: r2={r2}");
    }
}

/// Duration arithmetic saturates instead of wrapping.
#[test]
fn duration_saturates() {
    let mut rng = SimRng::seed_from_u64(0xD07);
    for case in 0..512 {
        // Mix full-range draws with values near the extremes so saturation
        // actually triggers.
        let a = match case % 4 {
            0 => u64::MAX - rng.below(1 << 20),
            1 => rng.below(1 << 20),
            _ => rng.below(u64::MAX),
        };
        let b = match case % 3 {
            0 => u64::MAX - rng.below(1 << 20),
            _ => rng.below(u64::MAX),
        };
        let x = SimDuration::from_nanos(a);
        let y = SimDuration::from_nanos(b);
        assert_eq!((x + y).as_nanos(), a.saturating_add(b), "case {case}");
        assert_eq!((x - y).as_nanos(), a.saturating_sub(b), "case {case}");
    }
}
