//! Property tests for the simulation kernel: ordering, cancellation, and
//! statistics invariants hold for arbitrary inputs.

use proptest::prelude::*;
use vnet_sim::stats::{linear_fit, Sampler};
use vnet_sim::{Ctx, Engine, SimDuration, SimTime, SimWorld};

struct Recorder {
    seen: Vec<(u64, u32)>,
}

impl SimWorld for Recorder {
    type Event = u32;
    fn handle(&mut self, ev: u32, ctx: &mut Ctx<u32>) {
        self.seen.push((ctx.now().as_nanos(), ev));
    }
}

proptest! {
    /// Events fire in nondecreasing time order, FIFO among equal times.
    #[test]
    fn events_ordered(delays in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut w = Recorder { seen: vec![] };
        let mut e = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            e.schedule(SimDuration::from_nanos(d), i as u32);
        }
        e.run(&mut w);
        prop_assert_eq!(w.seen.len(), delays.len());
        for win in w.seen.windows(2) {
            prop_assert!(win[0].0 <= win[1].0, "time went backwards");
            if win[0].0 == win[1].0 {
                // FIFO tie-break: scheduling order == payload order here.
                prop_assert!(win[0].1 < win[1].1, "FIFO violated at t={}", win[0].0);
            }
        }
    }

    /// Cancelled events never fire; everything else does.
    #[test]
    fn cancellation_exact(
        delays in prop::collection::vec(0u64..1_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut w = Recorder { seen: vec![] };
        let mut e = Engine::new();
        let mut expect = vec![];
        for (i, &d) in delays.iter().enumerate() {
            let id = e.schedule(SimDuration::from_nanos(d), i as u32);
            if *cancel_mask.get(i).unwrap_or(&false) {
                e.cancel(id);
            } else {
                expect.push(i as u32);
            }
        }
        e.run(&mut w);
        let mut got: Vec<u32> = w.seen.iter().map(|&(_, v)| v).collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// run_until never processes events beyond the deadline and leaves the
    /// clock at exactly the deadline when it stops early.
    #[test]
    fn run_until_respects_deadline(
        delays in prop::collection::vec(1u64..10_000, 1..100),
        deadline in 1u64..12_000,
    ) {
        let mut w = Recorder { seen: vec![] };
        let mut e = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            e.schedule(SimDuration::from_nanos(d), i as u32);
        }
        e.run_until(&mut w, SimTime::from_nanos(deadline));
        for &(t, _) in &w.seen {
            prop_assert!(t <= deadline);
        }
        prop_assert!(e.now().as_nanos() <= deadline);
        let expected = delays.iter().filter(|&&d| d <= deadline).count();
        prop_assert_eq!(w.seen.len(), expected);
    }

    /// Sampler quantiles are bounded by min/max and monotone in q.
    #[test]
    fn sampler_quantiles_sane(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut s = Sampler::default();
        for &x in &xs {
            s.record(x);
        }
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let v = s.quantile(q);
            prop_assert!(v >= lo && v <= hi, "q={q} v={v} out of [{lo},{hi}]");
            prop_assert!(v >= prev, "quantiles must be monotone");
            prev = v;
        }
    }

    /// linear_fit recovers arbitrary noiseless lines exactly (R² = 1).
    #[test]
    fn linear_fit_exact(
        slope in -100f64..100.0,
        intercept in -1e4f64..1e4,
        n in 3usize..50,
    ) {
        let pts: Vec<(f64, f64)> =
            (0..n).map(|i| (i as f64 * 7.0 + 1.0, slope * (i as f64 * 7.0 + 1.0) + intercept)).collect();
        let (m, b, r2) = linear_fit(&pts);
        prop_assert!((m - slope).abs() < 1e-6 * slope.abs().max(1.0));
        prop_assert!((b - intercept).abs() < 1e-5 * intercept.abs().max(1.0));
        prop_assert!(r2 > 0.999999);
    }

    /// Duration arithmetic saturates instead of wrapping.
    #[test]
    fn duration_saturates(a in any::<u64>(), b in any::<u64>()) {
        let x = SimDuration::from_nanos(a);
        let y = SimDuration::from_nanos(b);
        prop_assert_eq!((x + y).as_nanos(), a.saturating_add(b));
        prop_assert_eq!((x - y).as_nanos(), a.saturating_sub(b));
    }
}
