//! Deterministic discrete-event simulation kernel for the `vnet` stack.
//!
//! This crate is the foundation substrate of the PPoPP'99 *virtual networks*
//! reproduction: every other crate (network fabric, network interface, host
//! operating system) is expressed as event handlers driven by the [`Engine`]
//! defined here.
//!
//! Design points:
//!
//! * **Determinism.** Events that are scheduled for the same timestamp are
//!   delivered in scheduling order (FIFO tie-breaking on a monotone sequence
//!   number). All randomness flows through [`rng::SimRng`], a seeded small
//!   PRNG, so a run is a pure function of `(configuration, seed)`.
//! * **Single-threaded shards.** Simulation state is `Rc`-linked and never
//!   *shared* across threads. The conservative parallel executor
//!   ([`parallel`]) still scales one simulation across cores by moving
//!   whole shards (a closed `Rc` graph each) between epoch barriers;
//!   within an epoch every shard runs strictly single-threaded.
//! * **O(1) timers.** Protocol code cancels timers constantly (an
//!   acknowledgment cancels a retransmission timer), so the queue is a
//!   hierarchical timing wheel ([`wheel`]) with O(1) schedule and O(1)
//!   generation-checked cancellation; the per-event loop allocates
//!   nothing.

#![warn(missing_docs)]

pub mod audit;
pub mod engine;
pub mod fxhash;
pub mod parallel;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;
pub mod wheel;

pub use audit::{AuditCounters, AuditHandle, Auditor, EpPhase, MsgFate, TraceHandle, Violation};
pub use engine::{Ctx, Engine, EventId, SimWorld};
pub use fxhash::{fx_map_with_capacity, FxHashMap, FxHashSet, FxHasher};
pub use parallel::{
    run_conservative, run_conservative_with, Driver, PairLookahead, ParShard, SendCell,
    INGRESS_KEY_BIT,
};
pub use telemetry::{
    CounterHandle, GaugeHandle, HistogramHandle, MetricSet, MetricValue, MetricVisitor,
    MetricsSnapshot, SamplerHandle, SpanId, Summary, Telemetry, TelemetryHandle,
};
pub use wheel::{Due, RefHeap, TimingWheel};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEntry, TraceRing};
