//! Conservative parallel discrete-event execution.
//!
//! This module runs N *shards* — each a self-contained single-threaded
//! simulation with its own [`TimingWheel`](crate::wheel::TimingWheel) —
//! on `std::thread::scope` workers, synchronized in epochs bounded by a
//! **per-shard-pair lookahead** [`PairLookahead`]: `L(j, i)` is the
//! minimum simulated latency before an action shard `j` takes can be
//! observed by shard `i`. For the vnet stack that is the minimum
//! cross-shard ascending-path link latency from any of `j`'s hosts to
//! any of `i`'s; a packet injected at `t` cannot reach the other
//! shard's ingress before `t + L(j, i)`.
//!
//! ## Epoch protocol
//!
//! Each epoch: (1) every worker publishes its wheel's next-event bound
//! plus, per destination, the earliest delivery time of the cross-shard
//! mail it generated last epoch; (2) one spin barrier; (3) every worker
//! computes the same *effective bound* vector `Ḃ` — shard `i`'s wheel
//! bound folded with the in-flight mail addressed to `i` (the mail is
//! ingested this epoch, so it is accounted to its receiver) — then runs
//! to its own horizon
//!
//! ```text
//! E_i = min_j (Ḃ_j + D(j, i)) − 1
//! ```
//!
//! where `D` is the shortest-path closure of `L` over the shard digraph
//! (including `D(i, i)` = the shortest cycle through `i`, which covers
//! the echo of a shard's own sends). Any event still unprocessed
//! anywhere has timestamp `≥ Ḃ_j`, so mail it (transitively) generates
//! for `i` is stamped `≥ Ḃ_j + D(j, i) > E_i` — always delivered before
//! the epoch that could observe it. A shard pair joined only by slow
//! links gets a wide window even while some other pair's fast links
//! bound their own; with a single uniform latency the horizon
//! degenerates to the classic `min(B) + L − 1` (and better: a lone busy
//! shard gets `B + 2L − 1`, the self-echo bound). Publication slots are
//! double-buffered by epoch parity, so a single barrier per epoch
//! suffices. Empty stretches of simulated time cost nothing: the bounds
//! jump straight to the next event anywhere in the system.
//!
//! ## Barrier elision
//!
//! Two epochs' worth of barrier crossings are removed outright. Mail
//! scans are batched behind a per-epoch publication bitmap: a worker
//! that published no mail never forces the other `n − 1` workers to
//! touch its `n` mailbox slots. And the final epoch of a finite-deadline
//! run is detected *inside* the epoch — when every shard's horizon
//! already reaches the deadline (a fact each worker computes from the
//! same published bounds) the workers run their last window and exit
//! without re-publishing, re-barriering, or re-checking. Mail generated
//! in that last window is provably timestamped past the deadline; it is
//! left in each shard's outbox for the caller to relay (see
//! [`run_conservative`]'s contract).
//!
//! ## Determinism
//!
//! Results are byte-identical to a sequential run for any shard count
//! because *order never depends on arrival*: cross-shard mail is
//! scheduled with [`schedule_keyed`](crate::wheel::TimingWheel::schedule_keyed)
//! under a key that is a pure function of the traffic
//! (`INGRESS_KEY_BIT | source << 40 | per-source sequence`), and wheels
//! break same-time ties by key. The sequential engine routes the same
//! messages through the same keyed path, so both executors process the
//! same events at the same timestamps in the same order.
//!
//! ## `Send` discipline
//!
//! Shard state is `Rc`-linked and deliberately not `Send`. [`SendCell`]
//! is the audited escape hatch: constructing one is `unsafe`, with the
//! invariant that the wrapped value is a *closed* `Rc` graph — every
//! strong count is reachable only from inside the value — so moving the
//! whole cell between threads is sound. Mail itself must be genuinely
//! `Send` (the vnet stack's wire frames carry frozen `Arc` payloads, so
//! crossing a shard moves a pointer, not a copy of the body).

use crate::time::{SimDuration, SimTime};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Bit 63: set on every cross-shard ingress tie-break key so keyed events
/// sort after counter-scheduled events at the same nanosecond (the wheel
/// counter can never reach bit 63).
pub const INGRESS_KEY_BIT: u64 = 1 << 63;

/// Fallback epoch width when a shard digraph has no cycle information at
/// all (a single shard, or a campaign interval with every cross link
/// down): ~18 simulated minutes, far beyond any workload's horizon, so
/// the "epoch" degenerates to one `run_until` per bounds refresh.
const OPEN_HORIZON: u64 = 1 << 40;

/// Per-shard-pair conservative lookahead, closed over relay paths and
/// sliced by fault-campaign interval.
///
/// Built from one or more `n × n` *edge* matrices (`edge[j * n + i]` =
/// minimum latency of direct mail `j → i` in nanoseconds, `u64::MAX`
/// when no such mail is possible), each tagged with the simulated time
/// at which it takes effect. Construction runs a min-plus Floyd–Warshall
/// per interval, producing the closure `D(j, i)` = cheapest way any
/// influence can travel from `j` to `i` through any sequence of shards —
/// including `D(i, i)`, the cheapest *cycle* through `i`.
///
/// Campaign intervals exist because a scheduled `LinkUp` can *lower* a
/// pair's latency floor mid-run; an epoch computed from the wider
/// pre-transition matrix must therefore never extend past the next
/// transition instant, which [`PairLookahead::horizon`] enforces.
#[derive(Clone, Debug)]
pub struct PairLookahead {
    n: usize,
    /// Interval start times in nanoseconds; `starts[0] == 0`.
    starts: Vec<u64>,
    /// One closure matrix per interval (`mats[k][j * n + i]`), entries
    /// saturating at `u64::MAX`, floor-clamped to 1 ns.
    mats: Vec<Vec<u64>>,
}

impl PairLookahead {
    /// A single-interval lookahead with the same latency `l` between
    /// every ordered pair — the pre-per-pair behavior, used by harness
    /// tests and as the degenerate plan for uniform topologies.
    ///
    /// # Panics
    /// Panics if `l` is zero (no conservative window exists).
    pub fn uniform(n: usize, l: SimDuration) -> Self {
        assert!(l.as_nanos() > 0, "lookahead must be positive");
        let lns = l.as_nanos();
        let mut edges = vec![u64::MAX; n * n];
        for j in 0..n {
            for i in 0..n {
                if i != j {
                    edges[j * n + i] = lns;
                }
            }
        }
        Self::from_edge_intervals(n, vec![(0, edges)])
    }

    /// Build from `(start_ns, edge_matrix)` intervals (see type docs).
    /// Intervals must be sorted by start time with `intervals[0].0 == 0`.
    ///
    /// # Panics
    /// Panics on an empty interval list, a misordered schedule, a matrix
    /// of the wrong dimension, or a zero edge latency.
    pub fn from_edge_intervals(n: usize, intervals: Vec<(u64, Vec<u64>)>) -> Self {
        assert!(n >= 1, "no shards");
        assert!(!intervals.is_empty(), "no lookahead intervals");
        assert_eq!(intervals[0].0, 0, "first interval must start at time zero");
        let mut starts = Vec::with_capacity(intervals.len());
        let mut mats = Vec::with_capacity(intervals.len());
        for (start, edges) in intervals {
            assert!(starts.last().is_none_or(|&p| p < start), "intervals out of order");
            assert_eq!(edges.len(), n * n, "edge matrix dimension mismatch");
            assert!(
                edges.iter().all(|&e| e > 0),
                "zero-latency cross-shard edge destroys the lookahead bound"
            );
            starts.push(start);
            mats.push(closure(n, edges));
        }
        PairLookahead { n, starts, mats }
    }

    /// Number of shards this plan covers.
    pub fn shards(&self) -> usize {
        self.n
    }

    /// The tightest pair bound in the static (time-zero) matrix — what a
    /// single global lookahead would have been. Informational.
    pub fn min_pair(&self) -> Option<SimDuration> {
        self.mats[0]
            .iter()
            .enumerate()
            .filter(|&(k, _)| k / self.n != k % self.n)
            .map(|(_, &d)| d)
            .min()
            .filter(|&d| d != u64::MAX)
            .map(SimDuration::from_nanos)
    }

    /// Index of the interval containing time `t`.
    fn interval(&self, t: u64) -> usize {
        self.starts.partition_point(|&s| s <= t) - 1
    }

    /// Shard `me`'s epoch horizon given the effective bound vector `eff`
    /// (one entry per shard, `u64::MAX` = idle), clamped to the deadline
    /// and to the end of the campaign interval the epoch starts in.
    /// Every worker evaluates this from identical published data, so any
    /// worker can also evaluate any *other* shard's horizon (the final-
    /// epoch elision depends on that).
    pub fn horizon(&self, eff: &[u64], me: usize, deadline_ns: u64) -> u64 {
        debug_assert_eq!(eff.len(), self.n);
        let g = eff.iter().copied().min().unwrap_or(u64::MAX);
        debug_assert_ne!(g, u64::MAX, "horizon of an idle system");
        let k = self.interval(g);
        let mat = &self.mats[k];
        let mut e = u64::MAX;
        for (j, &b) in eff.iter().enumerate() {
            e = e.min(b.saturating_add(mat[j * self.n + me]));
        }
        // No relay path constrains this shard (single shard, or every
        // cross link scheduled down): take a huge but finite window so
        // quiescence detection still loops.
        if e == u64::MAX {
            e = g.saturating_add(OPEN_HORIZON);
        }
        let mut e = e - 1;
        if k + 1 < self.starts.len() {
            // The matrix is only valid up to the next campaign
            // transition: a LinkUp there may lower latency floors.
            e = e.min(self.starts[k + 1] - 1);
        }
        e.min(deadline_ns)
    }
}

/// Min-plus Floyd–Warshall closure with saturating arithmetic. The
/// diagonal starts unreachable, so `out[i * n + i]` ends as the shortest
/// cycle through `i`. Entries are floor-clamped to 1 ns so a horizon is
/// always at least the bound itself.
fn closure(n: usize, edges: Vec<u64>) -> Vec<u64> {
    let mut d = edges;
    for k in 0..n {
        for i in 0..n {
            let dik = d[i * n + k];
            if dik == u64::MAX {
                continue;
            }
            for j in 0..n {
                let via = dik.saturating_add(d[k * n + j]);
                if via < d[i * n + j] {
                    d[i * n + j] = via;
                }
            }
        }
    }
    for v in d.iter_mut() {
        *v = (*v).max(1);
    }
    d
}

/// One shard of a partitioned simulation, as seen by the executor.
///
/// Implementations are single-threaded simulations; the executor moves
/// each shard to a worker thread for the duration of a run and calls
/// these hooks strictly from that worker, separated by barriers.
pub trait ParShard {
    /// A cross-shard message. Sent by value between workers, so it must
    /// be genuinely `Send` (share only atomically counted, frozen data).
    type Mail: Send;

    /// Process all pending events with timestamp ≤ `deadline`, leaving
    /// the local clock at `deadline`.
    fn run_until(&mut self, deadline: SimTime);

    /// Conservative lower bound on the next pending local event (`None`
    /// if idle). Must never exceed the true minimum.
    fn next_at_bound(&self) -> Option<SimTime>;

    /// Move mail generated by the last `run_until` into `out` as
    /// `(destination shard, delivery time, mail)`.
    fn drain_outbox(&mut self, out: &mut Vec<(usize, SimTime, Self::Mail)>);

    /// Accept one message for local delivery at `at` (schedule it keyed).
    fn ingest(&mut self, at: SimTime, mail: Self::Mail);

    /// Timestamp of the last event this shard processed, if any.
    fn last_event_at(&self) -> Option<SimTime>;

    /// Current local clock.
    fn now(&self) -> SimTime;

    /// Force the local clock to exactly `t` (may rewind an epoch-end
    /// overshoot, never behind a processed event).
    fn sync_now(&mut self, t: SimTime);
}

/// Unsafe `Send`/`Sync` wrapper: asserts the wrapped value is a closed
/// `Rc` graph that is only ever *accessed* by one thread at a time (the
/// executor's barriers provide the hand-off). See the module docs.
pub struct SendCell<T>(T);

unsafe impl<T> Send for SendCell<T> {}

impl<T> SendCell<T> {
    /// Wrap `v`.
    ///
    /// # Safety
    /// Every `Rc`/`RefCell` reachable from `v` must be reachable *only*
    /// from `v` (no aliases outside the cell), and the caller must not
    /// access `v` while another thread owns the cell.
    pub unsafe fn new(v: T) -> Self {
        SendCell(v)
    }

    /// Unwrap.
    pub fn into_inner(self) -> T {
        self.0
    }

    /// Shared access (single-thread phases only).
    pub fn get(&self) -> &T {
        &self.0
    }

    /// Exclusive access (single-thread phases only).
    pub fn get_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Busy-spin iterations before a waiter starts yielding its timeslice.
/// Epochs are often shorter than a mutex park/unpark (tens of µs), so a
/// short spin wins when every worker has a core; past the limit the
/// waiter must assume it is oversubscribed (shards > cores, or a peer
/// got descheduled) and `yield_now` so the peer can actually run —
/// unbounded spinning there collapses throughput to the scheduler tick.
const SPIN_LIMIT: u32 = 64;

/// Sense-reversing centralized spin barrier with a bounded spin (see
/// [`SPIN_LIMIT`]). `std::sync::Barrier` parks and wakes through a
/// mutex — tens of microseconds per crossing — while an epoch here is
/// often shorter than that.
struct SpinBarrier {
    count: AtomicUsize,
    sense: AtomicBool,
    n: usize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier { count: AtomicUsize::new(0), sense: AtomicBool::new(false), n }
    }

    fn wait(&self, local_sense: &mut bool) {
        *local_sense = !*local_sense;
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(*local_sense, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != *local_sense {
                if spins < SPIN_LIMIT {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Double-buffered per-epoch publication slots. All writes happen before
/// the epoch barrier and all reads after it (one parity apart for the
/// mail a worker is still draining), which is exactly the discipline
/// that makes the `UnsafeCell` sound; see the module docs for the lag
/// argument.
struct Mailboxes<M> {
    n: usize,
    /// `[parity][src * n + dst]` — mail published by `src` for `dst`.
    #[allow(clippy::type_complexity)]
    slots: [Vec<UnsafeCell<Vec<(SimTime, M)>>>; 2],
    /// `[parity][shard]` — published wheel bound (`u64::MAX` when idle).
    /// Outbound mail is *not* folded in here; it is published per
    /// destination below and accounted to its receiver.
    wheel: [Vec<AtomicU64>; 2],
    /// `[parity][src * n + dst]` — earliest delivery time of the mail
    /// `src` published for `dst` this epoch (`u64::MAX` if none).
    mail_min: [Vec<AtomicU64>; 2],
    /// `[parity]` — bit `src` set iff `src` published any mail this
    /// epoch. Readers skip the whole slot scan when their senders' bits
    /// are clear, so quiet epochs touch one shared word instead of
    /// `n − 1` slot vectors.
    mail_bits: [AtomicU64; 2],
}

unsafe impl<M> Sync for Mailboxes<M> {}

impl<M> Mailboxes<M> {
    fn new(n: usize) -> Self {
        let mk_slots = || (0..n * n).map(|_| UnsafeCell::new(Vec::new())).collect();
        let mk_wheel = || (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
        let mk_mail = || (0..n * n).map(|_| AtomicU64::new(u64::MAX)).collect();
        Mailboxes {
            n,
            slots: [mk_slots(), mk_slots()],
            wheel: [mk_wheel(), mk_wheel()],
            mail_min: [mk_mail(), mk_mail()],
            mail_bits: [AtomicU64::new(0), AtomicU64::new(0)],
        }
    }
}

/// Run `shards` to `deadline` (or to quiescence when `deadline` is
/// [`SimTime::MAX`]) under conservative epoch synchronization with the
/// given per-pair `lookahead`. Returns the final simulated time:
/// `deadline` when finite, otherwise the timestamp of the last event
/// processed anywhere. Every shard's clock is synchronized to that time
/// on return.
///
/// **Leftover-mail contract:** a finite-deadline run may end through the
/// final-epoch elision, in which case cross-shard mail generated in the
/// last window — all of it provably timestamped *after* the deadline —
/// is still sitting in shard outboxes. The caller must drain each
/// shard's outbox after the run and re-inject the mail (keyed) before
/// the next run; delivery order is fixed by `(time, key)`, so relaying
/// on one thread preserves byte-identical results.
///
/// With a single shard no threads are spawned and no barriers run; the
/// loop degenerates to plain sequential execution of that shard. With no
/// real parallelism available (one hardware core), the same epoch
/// protocol runs cooperatively on the calling thread — threads that can
/// never overlap would only add barrier context-switch thrash, and the
/// epoch schedule (hence the results, which are deterministic either
/// way) is identical.
pub fn run_conservative<S: ParShard>(
    shards: &mut [SendCell<S>],
    lookahead: &PairLookahead,
    deadline: SimTime,
) -> SimTime {
    // `VNET_PAR_DRIVER=threads|serial` pins the driver (results are
    // byte-identical either way — this exists so tests and CI can cover
    // the threaded protocol even on single-core machines and vice versa).
    let driver = match std::env::var("VNET_PAR_DRIVER").as_deref() {
        Ok("threads") => Driver::Threads,
        Ok("serial") => Driver::Serial,
        _ => {
            let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
            if cores == 1 {
                Driver::Serial
            } else {
                Driver::Threads
            }
        }
    };
    run_conservative_with(shards, lookahead, deadline, driver)
}

/// How [`run_conservative_with`] steps the epochs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Driver {
    /// One scoped worker thread per shard, spin barriers between epochs.
    Threads,
    /// Every shard stepped in turn on the calling thread — what
    /// [`run_conservative`] picks when only one hardware core is
    /// available and threads could never overlap anyway.
    Serial,
}

/// [`run_conservative`] with an explicit [`Driver`] instead of the
/// core-count heuristic. Results are byte-identical across drivers (the
/// epoch schedule is the same and keyed scheduling makes ingestion order
/// irrelevant); tests use this to cover the threaded protocol even on
/// single-core machines.
pub fn run_conservative_with<S: ParShard>(
    shards: &mut [SendCell<S>],
    lookahead: &PairLookahead,
    deadline: SimTime,
    driver: Driver,
) -> SimTime {
    let n = shards.len();
    assert!(n > 0, "no shards");
    assert!(n <= 64, "publication bitmap caps the executor at 64 shards");
    assert_eq!(lookahead.shards(), n, "lookahead planned for a different shard count");
    let entry_now = shards.iter().map(|c| c.get().now()).max().unwrap();

    if n > 1 && driver == Driver::Serial {
        serial_loop(shards, lookahead, deadline);
    } else {
        let boxes: Mailboxes<S::Mail> = Mailboxes::new(n);
        let barrier = SpinBarrier::new(n);
        std::thread::scope(|scope| {
            let boxes = &boxes;
            let barrier = &barrier;
            let mut workers = Vec::new();
            for (i, cell) in shards.iter_mut().enumerate() {
                let mut work = move || worker_loop(i, cell, boxes, barrier, lookahead, deadline);
                if i == n - 1 {
                    // Run the last shard on the calling thread; with n == 1
                    // this makes the parallel path thread-free.
                    work();
                } else {
                    workers.push(scope.spawn(work));
                }
            }
            for w in workers {
                w.join().expect("shard worker panicked");
            }
        });
    }

    let final_now = if deadline != SimTime::MAX {
        deadline
    } else {
        // Settling: end exactly where a sequential run would — the last
        // event processed anywhere in *this* call, or the entry clock if
        // the system was already quiescent. Lifetime `last_event_at`
        // values from earlier runs are ≤ `entry_now`, so the max folds
        // both cases together.
        shards
            .iter()
            .filter_map(|c| c.get().last_event_at())
            .chain(std::iter::once(entry_now))
            .max()
            .unwrap()
    };
    for c in shards.iter_mut() {
        c.get_mut().sync_now(final_now);
    }
    final_now
}

fn worker_loop<S: ParShard>(
    me: usize,
    cell: &mut SendCell<S>,
    boxes: &Mailboxes<S::Mail>,
    barrier: &SpinBarrier,
    look: &PairLookahead,
    deadline: SimTime,
) {
    let shard = cell.get_mut();
    let n = boxes.n;
    let deadline_ns = deadline.as_nanos();
    let mut local_sense = false;
    let mut outbox: Vec<(usize, SimTime, S::Mail)> = Vec::new();
    let mut dst_min = vec![u64::MAX; n];
    let mut eff = vec![u64::MAX; n];
    // Whether our publication bit is currently set, per parity, so the
    // shared bitmap word is only touched on a state change.
    let mut bit_set = [false; 2];
    let mut epoch: usize = 0;
    loop {
        let p = epoch % 2;
        // Publish: the wheel bound, and the previous epoch's mail with
        // its per-destination delivery minima. In-flight mail counts
        // toward its *receiver's* effective bound — it is delivered (and
        // ingested) this very epoch, so accounting it there is exact and
        // lets the per-pair horizon argument go through.
        let wheel = shard.next_at_bound().map_or(u64::MAX, |t| t.as_nanos());
        dst_min.iter_mut().for_each(|m| *m = u64::MAX);
        let any_mail = !outbox.is_empty();
        for (dst, at, mail) in outbox.drain(..) {
            debug_assert!(dst < n && dst != me, "bad mail routing");
            dst_min[dst] = dst_min[dst].min(at.as_nanos());
            // SAFETY: slot (p, me, dst) is written only by `me` before
            // barrier `epoch` and read only by `dst` after it.
            unsafe { (*boxes.slots[p][me * n + dst].get()).push((at, mail)) };
        }
        boxes.wheel[p][me].store(wheel, Ordering::Relaxed);
        for (dst, &m) in dst_min.iter().enumerate() {
            if dst != me {
                boxes.mail_min[p][me * n + dst].store(m, Ordering::Relaxed);
            }
        }
        if any_mail != bit_set[p] {
            let bit = 1u64 << me;
            if any_mail {
                boxes.mail_bits[p].fetch_or(bit, Ordering::Relaxed);
            } else {
                boxes.mail_bits[p].fetch_and(!bit, Ordering::Relaxed);
            }
            bit_set[p] = any_mail;
        }

        barrier.wait(&mut local_sense);

        // Everyone computes the same effective bounds from the same
        // slots: Ḃ_i = min(wheel_i, earliest mail addressed to i).
        for (i, e) in eff.iter_mut().enumerate() {
            let mut b = boxes.wheel[p][i].load(Ordering::Relaxed);
            for j in 0..n {
                if j != i {
                    b = b.min(boxes.mail_min[p][j * n + i].load(Ordering::Relaxed));
                }
            }
            *e = b;
        }
        let global = eff.iter().copied().min().unwrap();
        // Ingest mail addressed to us, scanning only senders that
        // actually published. Arrival order across sources is
        // irrelevant: delivery order is fixed by the (time, key) pairs.
        let bits = boxes.mail_bits[p].load(Ordering::Relaxed);
        if bits != 0 {
            for src in 0..n {
                if src == me || bits & (1u64 << src) == 0 {
                    continue;
                }
                // SAFETY: slot (p, src, me) was sealed at barrier `epoch`;
                // `src` will not touch it again until barrier `epoch + 1`.
                let slot = unsafe { &mut *boxes.slots[p][src * n + me].get() };
                for (at, mail) in slot.drain(..) {
                    shard.ingest(at, mail);
                }
            }
        }

        if global == u64::MAX || global > deadline_ns {
            // Nothing anywhere at or before the deadline (quiescence when
            // the deadline is infinite). Align the clock and leave — every
            // worker reaches this decision from the same data.
            if deadline != SimTime::MAX {
                shard.run_until(deadline);
            }
            return;
        }
        let end_ns = look.horizon(&eff, me, deadline_ns);
        if end_ns >= deadline_ns
            && (0..n).all(|i| i == me || look.horizon(&eff, i, deadline_ns) >= deadline_ns)
        {
            // Final-epoch elision: every shard's horizon reaches the
            // deadline, so after this window there is nothing left to
            // exchange *before* it — each worker proves the same fact
            // from the same bounds and exits without another barrier.
            // Mail born in this window is stamped past the deadline (the
            // horizon argument, applied at the deadline) and stays in
            // the outbox for the caller to relay.
            shard.run_until(deadline);
            return;
        }
        // Horizons are monotone in practice but the published bounds are
        // only *lower* bounds; never ask the wheel to run backwards.
        let end = SimTime::from_nanos(end_ns).max(shard.now());
        shard.run_until(end);
        shard.drain_outbox(&mut outbox);
        epoch += 1;
    }
}

/// The epoch protocol on one thread: every shard is stepped in turn each
/// epoch, mail moves through plain per-destination queues, and there are
/// no barriers or atomics. Epoch boundaries — the effective bounds, the
/// per-shard horizons, the termination test, the final-epoch elision —
/// are computed from exactly the same values as in [`worker_loop`], so
/// the two drivers process the same events in the same epochs (and keyed
/// scheduling makes results independent of ingestion order anyway).
fn serial_loop<S: ParShard>(
    shards: &mut [SendCell<S>],
    look: &PairLookahead,
    deadline: SimTime,
) {
    let n = shards.len();
    let deadline_ns = deadline.as_nanos();
    // Mail awaiting delivery, per destination shard.
    let mut mail: Vec<Vec<(SimTime, S::Mail)>> = (0..n).map(|_| Vec::new()).collect();
    let mut outbox: Vec<(usize, SimTime, S::Mail)> = Vec::new();
    let mut eff = vec![u64::MAX; n];
    loop {
        // Effective bounds over wheels and in-flight mail, then deliver.
        for (i, e) in eff.iter_mut().enumerate() {
            let mut b = shards[i].get().next_at_bound().map_or(u64::MAX, |t| t.as_nanos());
            for &(at, _) in &mail[i] {
                b = b.min(at.as_nanos());
            }
            *e = b;
        }
        for (i, cell) in shards.iter_mut().enumerate() {
            for (at, m) in mail[i].drain(..) {
                cell.get_mut().ingest(at, m);
            }
        }
        let global = eff.iter().copied().min().unwrap();
        if global == u64::MAX || global > deadline_ns {
            if deadline != SimTime::MAX {
                for cell in shards.iter_mut() {
                    cell.get_mut().run_until(deadline);
                }
            }
            return;
        }
        let last = deadline != SimTime::MAX
            && (0..n).all(|i| look.horizon(&eff, i, deadline_ns) >= deadline_ns);
        for (i, cell) in shards.iter_mut().enumerate() {
            let shard = cell.get_mut();
            if last {
                // Final-epoch elision (see worker_loop): leftover mail
                // stays in the shard outbox for the caller to relay.
                shard.run_until(deadline);
                continue;
            }
            let end_ns = look.horizon(&eff, i, deadline_ns);
            let end = SimTime::from_nanos(end_ns).max(shard.now());
            shard.run_until(end);
            shard.drain_outbox(&mut outbox);
            for (dst, at, m) in outbox.drain(..) {
                mail[dst].push((at, m));
            }
        }
        if last {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Ctx, Engine, SimWorld};

    const LAT: u64 = 50;

    #[derive(Clone)]
    struct Pass {
        host: u32,
        hops_left: u64,
    }

    /// Toy world: hosts pass a token; each pass goes to
    /// `(host + 1) % total` after `LAT` ns. Hosts are partitioned into
    /// contiguous shards, so most passes cross a shard boundary.
    struct TokenWorld {
        lo: u32,
        hi: u32,
        total: u32,
        log: Vec<(u64, u32, u64)>,
        outbox: Vec<(u32, SimTime, u64, Pass)>,
        seqs: Vec<u64>,
    }

    impl SimWorld for TokenWorld {
        type Event = Pass;
        fn handle(&mut self, ev: Pass, ctx: &mut Ctx<'_, Pass>) {
            self.log.push((ctx.now().as_nanos(), ev.host, ev.hops_left));
            if ev.hops_left == 0 {
                return;
            }
            let nxt = (ev.host + 1) % self.total;
            let at = ctx.now() + SimDuration::from_nanos(LAT);
            let seq = &mut self.seqs[ev.host as usize];
            let key = INGRESS_KEY_BIT | ((ev.host as u64) << 40) | *seq;
            *seq += 1;
            let pass = Pass { host: nxt, hops_left: ev.hops_left - 1 };
            if nxt >= self.lo && nxt < self.hi {
                ctx.schedule_keyed_at(at, key, pass);
            } else {
                self.outbox.push((nxt, at, key, pass));
            }
        }
    }

    struct Shard {
        engine: Engine<TokenWorld>,
        world: TokenWorld,
        hosts_per_shard: u32,
    }

    impl ParShard for Shard {
        type Mail = (u64, Pass);
        fn run_until(&mut self, deadline: SimTime) {
            self.engine.run_until(&mut self.world, deadline);
        }
        fn next_at_bound(&self) -> Option<SimTime> {
            self.engine.next_at_bound()
        }
        fn drain_outbox(&mut self, out: &mut Vec<(usize, SimTime, Self::Mail)>) {
            for (host, at, key, pass) in self.world.outbox.drain(..) {
                out.push(((host / self.hosts_per_shard) as usize, at, (key, pass)));
            }
        }
        fn ingest(&mut self, at: SimTime, (key, pass): Self::Mail) {
            self.engine.schedule_keyed_at(at, key, pass);
        }
        fn last_event_at(&self) -> Option<SimTime> {
            self.engine.last_event_at()
        }
        fn now(&self) -> SimTime {
            self.engine.now()
        }
        fn sync_now(&mut self, t: SimTime) {
            self.engine.sync_now(t);
        }
    }

    fn run_sharded(
        n_shards: u32,
        total_hosts: u32,
        hops: u64,
        deadline: SimTime,
        driver: Driver,
    ) -> Vec<(u64, u32, u64)> {
        let per = total_hosts / n_shards;
        let mut shards: Vec<SendCell<Shard>> = (0..n_shards)
            .map(|s| {
                let lo = s * per;
                let hi = lo + per;
                let mut sh = Shard {
                    engine: Engine::new(),
                    world: TokenWorld {
                        lo,
                        hi,
                        total: total_hosts,
                        log: Vec::new(),
                        outbox: Vec::new(),
                        seqs: vec![0; total_hosts as usize],
                    },
                    hosts_per_shard: per,
                };
                if lo == 0 {
                    sh.engine
                        .schedule(SimDuration::from_nanos(1), Pass { host: 0, hops_left: hops });
                }
                // SAFETY: freshly built, no external Rc references.
                unsafe { SendCell::new(sh) }
            })
            .collect();
        let look = PairLookahead::uniform(n_shards as usize, SimDuration::from_nanos(LAT));
        run_conservative_with(&mut shards, &look, deadline, driver);
        let mut log: Vec<(u64, u32, u64)> = shards
            .into_iter()
            .flat_map(|c| {
                let sh = c.into_inner();
                // The final-epoch elision may leave cross-shard mail in
                // the outbox (timestamped past the deadline); the real
                // cluster relays it into the destination engines. The
                // token test just asserts it is indeed past the deadline.
                for &(_, at, _, _) in &sh.world.outbox {
                    assert!(at > deadline, "undelivered mail within the deadline");
                }
                sh.world.log
            })
            .collect();
        log.sort();
        log
    }

    #[test]
    fn token_ring_matches_across_shard_counts_and_drivers() {
        let want = run_sharded(1, 4, 37, SimTime::MAX, Driver::Threads);
        assert_eq!(want.len(), 38);
        assert_eq!(want.last().unwrap().0, 1 + 37 * LAT);
        for driver in [Driver::Threads, Driver::Serial] {
            for n in [2, 4] {
                assert_eq!(
                    run_sharded(n, 4, 37, SimTime::MAX, driver),
                    want,
                    "{n} shards diverged under {driver:?}"
                );
            }
        }
    }

    #[test]
    fn finite_deadline_cuts_identically() {
        let cut = SimTime::from_nanos(1 + 10 * LAT + 3);
        let want = run_sharded(1, 4, 37, cut, Driver::Threads);
        assert_eq!(want.len(), 11, "10 hops + initial fire by the cut");
        for driver in [Driver::Threads, Driver::Serial] {
            assert_eq!(run_sharded(2, 4, 37, cut, driver), want);
            assert_eq!(run_sharded(4, 4, 37, cut, driver), want);
        }
    }

    #[test]
    fn oversubscribed_threads_still_complete_and_match() {
        // Regression for the bounded-spin barrier: more worker threads
        // than this machine has cores must neither livelock nor diverge.
        // (On a 1-core box this is the worst case: every barrier crossing
        // relies on the yield fallback.)
        let want = run_sharded(1, 8, 64, SimTime::MAX, Driver::Serial);
        assert_eq!(run_sharded(8, 8, 64, SimTime::MAX, Driver::Threads), want);
        let cut = SimTime::from_nanos(1 + 20 * LAT);
        let want = run_sharded(1, 8, 64, cut, Driver::Serial);
        assert_eq!(run_sharded(8, 8, 64, cut, Driver::Threads), want);
    }

    #[test]
    fn uniform_closure_degenerates_to_global_min_plus_echo() {
        let l = PairLookahead::uniform(3, SimDuration::from_nanos(100));
        // Direct pairs keep the edge latency; the self-cycle is the
        // round trip, which is what widens a lone busy shard's window.
        let eff = [500, u64::MAX, u64::MAX];
        assert_eq!(l.horizon(&eff, 1, u64::MAX), 500 + 100 - 1);
        assert_eq!(l.horizon(&eff, 0, u64::MAX), 500 + 200 - 1, "self-echo doubles the window");
        assert_eq!(l.min_pair(), Some(SimDuration::from_nanos(100)));
    }

    #[test]
    fn asymmetric_closure_relays_through_the_fast_path() {
        // 0 -> 1 slow (1000), 1 -> 2 fast (10), 0 -> 2 direct (2000):
        // the closure must take the relay 0 -> 1 -> 2 = 1010.
        let mut edges = vec![u64::MAX; 9];
        edges[1] = 1000; // 0 -> 1
        edges[5] = 10; // 1 -> 2
        edges[2] = 2000; // 0 -> 2
        edges[3] = 50; // 1 -> 0
        edges[7] = 300; // 2 -> 1
        edges[6] = 400; // 2 -> 0
        let l = PairLookahead::from_edge_intervals(3, vec![(0, edges)]);
        let eff = [100, u64::MAX, u64::MAX];
        assert_eq!(l.horizon(&eff, 2, u64::MAX), 100 + 1010 - 1);
        // Shard 1 is bounded by the direct slow edge.
        assert_eq!(l.horizon(&eff, 1, u64::MAX), 100 + 1000 - 1);
        // Shard 0's own echo: 0 -> 1 -> 0 = 1050.
        assert_eq!(l.horizon(&eff, 0, u64::MAX), 100 + 1050 - 1);
    }

    #[test]
    fn campaign_interval_caps_the_horizon() {
        let mk = |lat: u64| {
            let mut e = vec![u64::MAX; 4];
            e[1] = lat;
            e[2] = lat;
            e
        };
        // Wide window until t=10_000, then (post-LinkUp) a tighter one.
        let l = PairLookahead::from_edge_intervals(2, vec![(0, mk(5_000)), (10_000, mk(100))]);
        let eff = [8_000, u64::MAX];
        // Uncapped the horizon would be 8_000 + 10_000 - 1; the interval
        // boundary must cut it to 9_999.
        assert_eq!(l.horizon(&eff, 1, u64::MAX), 9_999);
        // Inside the second interval the tight matrix rules: the direct
        // 100ns edge bounds shard 1, the 200ns echo bounds shard 0.
        let eff = [12_000, u64::MAX];
        assert_eq!(l.horizon(&eff, 1, u64::MAX), 12_000 + 100 - 1);
        assert_eq!(l.horizon(&eff, 0, u64::MAX), 12_000 + 200 - 1);
    }

    #[test]
    fn mailboxes_move_arcs_by_pointer() {
        use std::sync::Arc;
        // A frozen Arc payload crossing the executor must arrive as the
        // same allocation (zero-copy), not a clone of the bytes.
        struct ArcShard {
            engine: Engine<ArcWorld>,
            world: ArcWorld,
        }
        struct ArcWorld {
            me: usize,
            received: Vec<Arc<Vec<u64>>>,
            outbox: Vec<(usize, SimTime, Arc<Vec<u64>>)>,
        }
        impl SimWorld for ArcWorld {
            type Event = Arc<Vec<u64>>;
            fn handle(&mut self, ev: Arc<Vec<u64>>, ctx: &mut Ctx<'_, Self::Event>) {
                if self.me == 0 {
                    // Shard 0 originates: forward the payload untouched.
                    self.outbox.push((1, ctx.now() + SimDuration::from_nanos(LAT), ev));
                } else {
                    self.received.push(ev);
                }
            }
        }
        impl ParShard for ArcShard {
            type Mail = Arc<Vec<u64>>;
            fn run_until(&mut self, deadline: SimTime) {
                self.engine.run_until(&mut self.world, deadline);
            }
            fn next_at_bound(&self) -> Option<SimTime> {
                self.engine.next_at_bound()
            }
            fn drain_outbox(&mut self, out: &mut Vec<(usize, SimTime, Self::Mail)>) {
                for (dst, at, m) in self.world.outbox.drain(..) {
                    out.push((dst, at, m));
                }
            }
            fn ingest(&mut self, at: SimTime, mail: Self::Mail) {
                self.engine.schedule_keyed_at(at, INGRESS_KEY_BIT, mail);
            }
            fn last_event_at(&self) -> Option<SimTime> {
                self.engine.last_event_at()
            }
            fn now(&self) -> SimTime {
                self.engine.now()
            }
            fn sync_now(&mut self, t: SimTime) {
                self.engine.sync_now(t);
            }
        }
        let payload = Arc::new(vec![1u64, 2, 3, 4]);
        let before = Arc::as_ptr(&payload);
        let mut shards: Vec<SendCell<ArcShard>> = (0..2)
            .map(|me| {
                let mut sh = ArcShard {
                    engine: Engine::new(),
                    world: ArcWorld { me, received: Vec::new(), outbox: Vec::new() },
                };
                if me == 0 {
                    sh.engine.schedule(SimDuration::from_nanos(1), Arc::clone(&payload));
                }
                unsafe { SendCell::new(sh) }
            })
            .collect();
        let look = PairLookahead::uniform(2, SimDuration::from_nanos(LAT));
        run_conservative_with(&mut shards, &look, SimTime::MAX, Driver::Threads);
        let receiver = shards.pop().unwrap().into_inner();
        assert_eq!(receiver.world.received.len(), 1);
        let got = &receiver.world.received[0];
        assert_eq!(Arc::as_ptr(got), before, "payload was copied, not moved");
        assert_eq!(**got, vec![1, 2, 3, 4]);
        // Sender kept its handle and the count survived the crossing:
        // nothing along the path could have mutated the sealed payload.
        assert!(Arc::strong_count(&payload) >= 2);
    }
}
