//! Simulated time.
//!
//! Time is a monotone count of nanoseconds since simulation start. All
//! protocol constants in the paper are microsecond- or millisecond-scale
//! (switch cut-through latency ≈ 300 ns, NI loiter bound = 4 ms), so a `u64`
//! nanosecond clock gives ~584 years of range — far beyond any run.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute simulation timestamp, in nanoseconds since time zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable timestamp (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Timestamp as fractional microseconds (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Timestamp as fractional seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Elapsed time since `earlier`; saturates to zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional microseconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us.max(0.0) * 1_000.0).round() as u64)
    }

    /// Duration needed to move `bytes` at `mb_per_s` megabytes per second
    /// (decimal MB, matching the paper's bandwidth units).
    pub fn for_bytes(bytes: u64, mb_per_s: f64) -> Self {
        if mb_per_s <= 0.0 {
            return SimDuration(u64::MAX);
        }
        let ns = bytes as f64 * 1_000.0 / mb_per_s; // bytes / (MB/s) -> ns
        SimDuration(ns.round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating multiply by an integer factor (exponential backoff).
    pub fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scale by a float factor (randomized jitter), clamping at zero.
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration((self.0 as f64 * factor.max(0.0)).round() as u64)
    }

    /// The larger of two durations.
    pub fn max(self, other: Self) -> Self {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Self) -> Self {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(10);
        assert_eq!(t.as_nanos(), 10_000);
        let d = t - SimTime::from_nanos(4_000);
        assert_eq!(d.as_nanos(), 6_000);
        // Saturating: subtracting a later time yields zero, not wraparound.
        assert_eq!((SimTime::from_nanos(5) - SimTime::from_nanos(9)).as_nanos(), 0);
    }

    #[test]
    fn bandwidth_duration() {
        // 46.8 MB/s over 8192 bytes: 8192 / 46.8e6 s = 175.04 us.
        let d = SimDuration::for_bytes(8192, 46.8);
        assert!((d.as_micros_f64() - 175.04).abs() < 0.05, "{d}");
        // Zero bandwidth is "never".
        assert_eq!(SimDuration::for_bytes(1, 0.0).as_nanos(), u64::MAX);
    }

    #[test]
    fn backoff_helpers() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.saturating_mul(4).as_nanos(), 400_000);
        assert_eq!(d.mul_f64(1.5).as_nanos(), 150_000);
        assert_eq!(d.mul_f64(-1.0).as_nanos(), 0);
        assert_eq!(d.max(SimDuration::from_micros(50)), d);
        assert_eq!(d.min(SimDuration::from_micros(50)).as_nanos(), 50_000);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(300);
        assert_eq!(b.since(a).as_nanos(), 200);
        assert_eq!(a.since(b).as_nanos(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_nanos(1_500)), "1.500us");
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2.000us");
    }
}
