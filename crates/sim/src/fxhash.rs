//! A minimal FxHash-style hasher for the simulator's internal maps.
//!
//! The invariant auditor keys its ledgers by small integers (message
//! uids, `(host, endpoint)` pairs) and sits on the engine's hot path in
//! audit builds. `std`'s default SipHash is DoS-resistant but pays ~2× in
//! throughput for keys that are never attacker-controlled here — every
//! key is produced by the simulation itself. This module provides the
//! classic Firefox `FxHasher` (multiply-rotate word mixing), the same
//! construction `rustc` uses internally, written in-tree because the
//! workspace takes no external dependencies.
//!
//! Determinism note: unlike `RandomState`, `FxHasher` is seed-free, so
//! map iteration order is stable across runs *of the same binary*. The
//! auditor still never iterates its maps when reporting — canonical
//! orderings are imposed explicitly — but stability removes a whole class
//! of "works under one hasher" heisenbugs.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// An `FxHashMap` pre-sized for `cap` entries.
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate word hasher (Firefox / rustc "FxHash").
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip_and_presize() {
        let mut m: FxHashMap<(u32, u32), u64> = fx_map_with_capacity(64);
        let cap = m.capacity();
        assert!(cap >= 64);
        for i in 0..64u32 {
            m.insert((i, i ^ 7), i as u64 * 3);
        }
        assert_eq!(m.capacity(), cap, "pre-sized map reallocated");
        for i in 0..64u32 {
            assert_eq!(m.get(&(i, i ^ 7)), Some(&(i as u64 * 3)));
        }
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |x: u64| {
            let mut f = FxHasher::default();
            f.write_u64(x);
            f.finish()
        };
        assert_eq!(h(42), h(42));
        // Sequential uids (the auditor's dominant key shape) must not
        // collide in the low bits the table actually indexes with.
        let mut low: FxHashSet<u64> = FxHashSet::default();
        for uid in 0..1024u64 {
            low.insert(h((7 << 40) | uid) & 0x3ff);
        }
        assert!(low.len() > 512, "low-bit spread too poor: {}", low.len());
    }
}
