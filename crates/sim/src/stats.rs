//! Measurement utilities shared by the instrumentation and the benchmark
//! harness: counters, streaming moments, samplers with exact quantiles,
//! log-bucketed histograms, interval rate meters, time-weighted gauges, and
//! an ordinary-least-squares line fit (used for the paper's
//! `RTT(n) = 0.1112·n + 61.02 µs` regression).

use crate::time::{SimDuration, SimTime};

/// Monotone event counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    n: u64,
}

impl Counter {
    /// Add one.
    pub fn inc(&mut self) {
        self.n += 1;
    }

    /// Add `k`.
    pub fn add(&mut self, k: u64) {
        self.n += k;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.n
    }
}

/// Streaming mean/variance via Welford's algorithm.
#[derive(Clone, Debug, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        if self.n == 1 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 when fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Sample collector with exact quantiles (stores every observation).
///
/// Used where the paper reports distributions — e.g. the "strongly bimodal"
/// client round-trip latencies of §6.4.1.
#[derive(Clone, Debug, Default)]
pub struct Sampler {
    xs: Vec<f64>,
    sorted: bool,
}

impl Sampler {
    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.xs.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.xs.len()
    }

    /// The raw observations, in insertion order unless a quantile call
    /// has sorted them (merge per-component samplers into one
    /// distribution with `absorb`).
    pub fn samples(&self) -> &[f64] {
        &self.xs
    }

    /// Fold another sampler's observations into this one.
    pub fn absorb(&mut self, other: &Sampler) {
        self.xs.extend_from_slice(&other.xs);
        self.sorted = false;
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.xs.is_empty() {
            0.0
        } else {
            self.xs.iter().sum::<f64>() / self.xs.len() as f64
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// Exact q-quantile by nearest-rank (0 when empty), `q` in `[0,1]`.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.xs.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = ((self.xs.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        self.xs[idx]
    }

    /// Median.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Detect bimodality with a crude valley test: splits the sorted samples
    /// at the largest gap and reports `(low_mode_mean, high_mode_mean,
    /// low_fraction)` when the gap exceeds `gap_factor` × median spacing.
    pub fn bimodal_split(&mut self, gap_factor: f64) -> Option<(f64, f64, f64)> {
        if self.xs.len() < 8 {
            return None;
        }
        self.ensure_sorted();
        let mut gaps: Vec<f64> =
            self.xs.windows(2).map(|w| w[1] - w[0]).collect();
        let (mut best_i, mut best_gap) = (0, 0.0);
        for (i, &g) in gaps.iter().enumerate() {
            if g > best_gap {
                best_gap = g;
                best_i = i;
            }
        }
        gaps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_gap = gaps[gaps.len() / 2].max(f64::MIN_POSITIVE);
        if best_gap < gap_factor * median_gap {
            return None;
        }
        let low = &self.xs[..=best_i];
        let high = &self.xs[best_i + 1..];
        let lm = low.iter().sum::<f64>() / low.len() as f64;
        let hm = high.iter().sum::<f64>() / high.len() as f64;
        Some((lm, hm, low.len() as f64 / self.xs.len() as f64))
    }
}

/// Log₂-bucketed histogram for nonnegative integer magnitudes (latencies in
/// ns, queue depths). Constant memory regardless of sample count.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram { buckets: [0; 64], count: 0, sum: 0 }
    }
}

impl LogHistogram {
    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let b = 64 - v.leading_zeros() as usize; // 0 -> bucket 0
        self.buckets[b.min(63)] += 1;
        self.count += 1;
        self.sum += v as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold another histogram into this one. Bucket counts and sums are
    /// plain additions, so absorption is commutative and associative —
    /// merging per-shard histograms yields the same bytes in any order,
    /// which the parallel differential tests rely on.
    pub fn absorb(&mut self, other: &LogHistogram) {
        for (b, &c) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += c;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Raw bucket counts (bucket `i` holds values in `[2^(i-1), 2^i)`,
    /// bucket 0 holds zero).
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the q-quantile (approximate,
    /// within 2× of the true value).
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count as f64 * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return if i == 0 { 0 } else { 1u64 << i } - if i == 0 { 0 } else { 1 };
            }
        }
        u64::MAX
    }
}

/// Measures a rate (events per second of *simulated* time) over an interval.
#[derive(Clone, Debug)]
pub struct RateMeter {
    started: SimTime,
    count: u64,
    bytes: u64,
}

impl RateMeter {
    /// Begin metering at `now`.
    pub fn start(now: SimTime) -> Self {
        RateMeter { started: now, count: 0, bytes: 0 }
    }

    /// Record one event carrying `bytes` payload.
    pub fn record(&mut self, bytes: u64) {
        self.count += 1;
        self.bytes += bytes;
    }

    /// Events recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Payload bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Events per second of simulated time elapsed by `now`.
    pub fn rate_per_sec(&self, now: SimTime) -> f64 {
        let dt = now.since(self.started).as_secs_f64();
        if dt <= 0.0 {
            0.0
        } else {
            self.count as f64 / dt
        }
    }

    /// Megabytes per second (decimal) of simulated time elapsed by `now`.
    pub fn mb_per_sec(&self, now: SimTime) -> f64 {
        let dt = now.since(self.started).as_secs_f64();
        if dt <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1e6 / dt
        }
    }

    /// Reset the window to begin at `now`.
    pub fn reset(&mut self, now: SimTime) {
        self.started = now;
        self.count = 0;
        self.bytes = 0;
    }
}

/// Time-weighted average of a piecewise-constant quantity (queue depth,
/// number of resident endpoints).
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    weighted_sum: f64,
    started: SimTime,
}

impl TimeWeighted {
    /// Begin tracking with initial value `v` at `now`.
    pub fn start(now: SimTime, v: f64) -> Self {
        TimeWeighted { last_t: now, last_v: v, weighted_sum: 0.0, started: now }
    }

    /// Record that the quantity changed to `v` at `now`.
    pub fn set(&mut self, now: SimTime, v: f64) {
        self.weighted_sum += self.last_v * now.since(self.last_t).as_secs_f64();
        self.last_t = now;
        self.last_v = v;
    }

    /// Time-weighted mean over `[start, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let total = now.since(self.started).as_secs_f64();
        if total <= 0.0 {
            return self.last_v;
        }
        let acc = self.weighted_sum + self.last_v * now.since(self.last_t).as_secs_f64();
        acc / total
    }
}

/// Ordinary least-squares fit `y = slope·x + intercept`.
///
/// Returns `(slope, intercept, r_squared)`. Panics if fewer than two points
/// or zero x-variance.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64, f64) {
    assert!(points.len() >= 2, "need at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let mx = sx / n;
    let my = sy / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    assert!(sxx > 0.0, "x values are degenerate");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| {
            let e = p.1 - (slope * p.0 + intercept);
            e * e
        })
        .sum();
    let r2 = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    (slope, intercept, r2)
}

/// Convenience: duration observation in microseconds into a [`Sampler`].
pub fn record_us(s: &mut Sampler, d: SimDuration) {
    s.record(d.as_micros_f64());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn counter_counts() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn moments_match_closed_form() {
        let mut m = Moments::default();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            m.record(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let m = Moments::default();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        let mut s = Sampler::default();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn sampler_quantiles_exact() {
        let mut s = Sampler::default();
        for x in (1..=100).rev() {
            s.record(x as f64);
        }
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert!((s.median() - 50.0).abs() <= 1.0);
        assert!((s.quantile(0.9) - 90.0).abs() <= 1.0);
    }

    #[test]
    fn sampler_detects_bimodal() {
        let mut s = Sampler::default();
        for i in 0..50 {
            s.record(10.0 + (i % 5) as f64 * 0.1); // fast mode ~10us
        }
        for i in 0..25 {
            s.record(3000.0 + (i % 5) as f64 * 10.0); // remap mode ~3ms
        }
        let (lo, hi, frac) = s.bimodal_split(10.0).expect("should detect modes");
        assert!(lo < 15.0 && hi > 2900.0);
        assert!((frac - 2.0 / 3.0).abs() < 0.05);
    }

    #[test]
    fn sampler_unimodal_no_split() {
        let mut s = Sampler::default();
        for i in 0..100 {
            s.record(10.0 + i as f64 * 0.05);
        }
        assert!(s.bimodal_split(10.0).is_none());
    }

    #[test]
    fn log_histogram_quantiles() {
        let mut h = LogHistogram::default();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 10_090.0).abs() < 1.0);
        assert!(h.quantile_bound(0.5) < 256);
        assert!(h.quantile_bound(0.99) > 65_000);
    }

    #[test]
    fn log_histogram_absorb_is_order_independent() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        for v in [1u64, 5, 90, 4096, 70_000] {
            a.record(v);
        }
        for v in [2u64, 300, 8_000_000] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab.buckets(), ba.buckets());
        assert_eq!(ab.count(), 8);
        assert_eq!(ab.sum(), ba.sum());
        assert_eq!(ab.quantile_bound(0.5), ba.quantile_bound(0.5));
    }

    #[test]
    fn rate_meter_rates() {
        let t0 = SimTime::ZERO;
        let mut r = RateMeter::start(t0);
        for _ in 0..78_000 {
            r.record(16);
        }
        let t1 = t0 + SimDuration::from_secs(1);
        assert!((r.rate_per_sec(t1) - 78_000.0).abs() < 1e-6);
        assert!((r.mb_per_sec(t1) - 78_000.0 * 16.0 / 1e6).abs() < 1e-9);
        r.reset(t1);
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn time_weighted_mean() {
        let t0 = SimTime::ZERO;
        let mut g = TimeWeighted::start(t0, 0.0);
        g.set(t0 + SimDuration::from_secs(1), 10.0); // 0 for 1s
        let t2 = t0 + SimDuration::from_secs(2); // 10 for 1s
        assert!((g.mean(t2) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_recovers_line() {
        // y = 0.1112 x + 61.02 with no noise, like the paper's RTT fit.
        let pts: Vec<(f64, f64)> =
            (1..=64).map(|i| (i as f64 * 128.0, 0.1112 * i as f64 * 128.0 + 61.02)).collect();
        let (m, b, r2) = linear_fit(&pts);
        assert!((m - 0.1112).abs() < 1e-9);
        assert!((b - 61.02).abs() < 1e-6);
        assert!(r2 > 0.999999);
    }

    #[test]
    fn record_us_converts() {
        let mut s = Sampler::default();
        record_us(&mut s, SimDuration::from_micros(21));
        assert_eq!(s.mean(), 21.0);
    }
}
